#pragma once

// The OPS5 recognize-act interpreter — our analog of ParaOPS5's sequential
// core. Each PSM task process owns one Engine; the engine owns a Rete
// network, working memory, and conflict set, and exposes the instrumentation
// (work counters, per-cycle match chunks) the psm virtual-time models consume.

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ops5/conflict.hpp"
#include "ops5/external.hpp"
#include "ops5/production.hpp"
#include "ops5/wme.hpp"
#include "rete/network.hpp"
#include "rete/parallel.hpp"
#include "util/counters.hpp"

namespace psmsys::obs {
class Tracer;
}

namespace psmsys::ops5 {

/// Where the ParallelMatcher's LPT partitioning weights come from.
enum class MatchCostSource : std::uint8_t {
  /// Static join-cost estimates from the whole-rule-base Rete analyzer
  /// (analysis/rete_static) — the default. Falls back to ConditionCount for
  /// any production the analyzer assigns a non-positive cost.
  Analyzer,
  /// The PR 4 condition-count heuristic (1 + sum of 2 + tests per CE).
  ConditionCount,
};

/// Construction-time engine configuration. This is the ONE place an engine
/// is configured: every knob is read at construction (or via reconfigure()
/// on a still-pristine engine). `EngineOptions` remains as an alias for
/// older call sites.
struct EngineConfig {
  Strategy strategy = Strategy::Lex;
  /// Safety valve against runaway rule bases.
  std::uint64_t max_cycles = 1'000'000;
  /// Record per-cycle match chunks and cost splits (needed by the
  /// match-parallelism model; adds memory proportional to cycles).
  bool record_cycles = false;
  util::CostModel costs;
  rete::NetworkOptions rete;
  /// Intra-task match parallelism: 0 = single serial Rete network; N >= 1 =
  /// rete::ParallelMatcher with N match workers (1 is the degenerate pool,
  /// useful because it exercises the canonical delta merge). Firing order is
  /// identical for all N >= 1; N = 0 may differ only where conflict
  /// resolution ties down to insertion order.
  std::size_t match_threads = 0;
  /// LPT partition weights for match_threads >= 1. Cost source only steers
  /// load balance; results are identical either way (canonical merge).
  MatchCostSource match_cost_source = MatchCostSource::Analyzer;
  /// Precomputed analyzer cost vector (indexed by production id) for the
  /// Analyzer cost source. When set, build_matcher() uses it instead of
  /// re-running the whole-rule-base static analyzer per engine — a
  /// compile-once artifact shared by every session of a serve pool
  /// (serve::SharedRuleBase populates it together with rete shared_bindings).
  std::shared_ptr<const std::vector<double>> shared_match_costs;
};

/// Backwards-compatible alias; EngineConfig is the canonical name.
using EngineOptions = EngineConfig;

/// Per recognize-act cycle: the independently-schedulable match chunk costs
/// (what ParaOPS5 distributes over match processes) and the sequential
/// resolve + RHS costs.
struct CycleRecord {
  std::vector<util::WorkUnits> match_chunks;
  util::WorkUnits resolve_cost = 0;
  util::WorkUnits rhs_cost = 0;

  [[nodiscard]] util::WorkUnits match_cost() const noexcept {
    util::WorkUnits total = 0;
    for (auto c : match_chunks) total += c;
    return total;
  }
  [[nodiscard]] util::WorkUnits total_cost() const noexcept {
    return match_cost() + resolve_cost + rhs_cost;
  }
};

struct RunResult {
  std::uint64_t firings = 0;
  std::uint64_t cycles = 0;
  bool halted = false;        ///< stopped by (halt) rather than quiescence
  bool cycle_limited = false; ///< hit max_cycles
};

class Engine final : private rete::MatchListener {
 public:
  /// The program must be frozen. `externals` may be nullptr if the program
  /// uses no (call ...) expressions; it must outlive the engine.
  Engine(std::shared_ptr<const Program> program, const ExternalRegistry* externals,
         EngineOptions options = {});
  ~Engine() override;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // ------------------------------ working memory --------------------------

  /// Create a WME of `cls` with the given slot values (missing slots nil).
  /// Returns a reference valid until the WME is removed or reset() is called.
  const Wme& make_wme(ClassIndex cls, std::vector<std::pair<SlotIndex, Value>> sets);

  /// Convenience: class and attributes by name. Names must already be
  /// interned (the program is frozen).
  const Wme& make_wme(std::string_view class_name,
                      std::vector<std::pair<std::string_view, Value>> sets);

  void remove_wme(const Wme& wme);

  [[nodiscard]] std::size_t wm_size() const noexcept;

  /// All live WMEs of a class (unspecified order).
  [[nodiscard]] std::vector<const Wme*> wmes_of_class(ClassIndex cls) const;
  [[nodiscard]] std::vector<const Wme*> wmes_of_class(std::string_view class_name) const;

  // --------------------------------- running -------------------------------

  /// Run recognize-act cycles until quiescence, (halt), or max_cycles.
  RunResult run();

  /// Run at most `cycle_budget` further cycles (relative to the current
  /// cycle count; 0 = unlimited apart from max_cycles). Sets cycle_limited
  /// when the budget cuts the run off — the per-task deadline used by the
  /// robust executor to cut off livelocked tasks.
  RunResult run(std::uint64_t cycle_budget);

  /// Execute one cycle. Returns false if the conflict set offers nothing.
  bool step();

  /// Clear working memory, conflict set, counters, cycle records, and
  /// timetags. The compiled network is retained — this is what a PSM task
  /// process does between tasks.
  void reset();

  // ----------------------------- undo log ---------------------------------
  // Abort recovery for fault-tolerant task execution: journal every WM
  // mutation from begin_undo_log() on, then either commit (drop the
  // journal) or roll back. Rollback replays the journal in reverse through
  // the Rete network and restores removed WMEs *with their original
  // timetags* (and rewinds the timetag counter), so conflict-resolution
  // recency — and therefore every later firing — is bit-identical to a run
  // in which the aborted attempt never happened.

  /// Start journaling. Rejects nesting.
  void begin_undo_log();

  /// Keep the attempt's effects; discard the journal.
  void commit_undo_log() noexcept;

  /// Undo every journaled mutation (reverse order), rewind timetags, clear
  /// any halt raised during the attempt, and drop pending match chunks.
  void rollback_undo_log();

  [[nodiscard]] bool undo_log_active() const noexcept { return undo_active_; }

  /// A position in an ACTIVE undo log: everything journaled after the
  /// checkpoint can be undone alone (rollback_to_checkpoint), leaving the
  /// log active and earlier entries intact. This is the per-tick recovery
  /// unit of streaming sessions — a failed tick rolls back to its own
  /// checkpoint while the stream's accumulated working memory survives;
  /// whole-scene recovery stays rollback_undo_log(). Checkpoints are plain
  /// positions, not resources: taking one costs nothing and none need to be
  /// "released".
  struct UndoCheckpoint {
    std::size_t log_size = 0;     ///< journal entries at checkpoint time
    TimeTag timetag = 1;          ///< next_timetag_ to rewind to
    bool halted = false;
    std::uint64_t cycles = 0;     ///< logical clock to rewind to
  };

  /// Snapshot the current undo-log position. Requires an active log.
  [[nodiscard]] UndoCheckpoint undo_checkpoint() const;

  /// Undo every mutation journaled after `cp` (reverse order), truncate the
  /// journal back to it, and rewind timetags/halt/cycle clock to the
  /// checkpoint — with the same bit-identity guarantee as rollback_undo_log:
  /// recency ordering and the logical clock are exactly as if the rolled-back
  /// tail never ran. The undo log STAYS ACTIVE. A checkpoint taken after
  /// `cp` is invalidated by this call and must not be replayed to.
  void rollback_to_checkpoint(const UndoCheckpoint& cp);

  // ------------------------------ inspection ------------------------------

  [[nodiscard]] const Program& program() const noexcept { return *program_; }
  [[nodiscard]] const util::WorkCounters& counters() const noexcept { return counters_; }
  [[nodiscard]] std::span<const CycleRecord> cycle_records() const noexcept { return cycles_; }
  /// The active matcher (serial Rete network or ParallelMatcher), exposed
  /// through the common instrumentation interface. The historical name stays:
  /// every matcher is still a compiled Rete network underneath.
  [[nodiscard]] const rete::Matcher& network() const noexcept { return *matcher_; }
  [[nodiscard]] std::size_t conflict_set_size() const noexcept { return conflict_set_.size(); }

  // --------------------------- match parallelism ---------------------------

  /// Configured match workers (0 = serial matcher).
  [[nodiscard]] std::size_t match_threads() const noexcept { return options_.match_threads; }

  /// The construction-time configuration currently in force.
  [[nodiscard]] const EngineConfig& config() const noexcept { return options_; }

  /// Replace the configuration of a still-pristine engine (empty working
  /// memory, no undo log, empty conflict set — freshly constructed or
  /// reset()): the matcher is rebuilt and compilation counters restart from
  /// zero, exactly as if the engine had been constructed with `config`. This
  /// is the one legal reconfiguration window, used by executors that apply
  /// per-run overrides (match threads / cost source) between construction
  /// and base-WM load. The conflict-resolution strategy is fixed for the
  /// engine's lifetime and must match the current one.
  void reconfigure(const EngineConfig& config);

  [[nodiscard]] MatchCostSource match_cost_source() const noexcept {
    return options_.match_cost_source;
  }

  /// Measured per-partition match work (work units) of the parallel matcher;
  /// empty for the serial matcher. Ground truth for the static cost model.
  [[nodiscard]] std::vector<std::uint64_t> match_partition_costs() const {
    return parallel_ != nullptr ? parallel_->partition_match_costs()
                                : std::vector<std::uint64_t>{};
  }

  /// Match-thread utilization gauges; all-zero for the serial matcher.
  [[nodiscard]] rete::MatchThreadStats match_thread_stats() const noexcept {
    return parallel_ != nullptr ? parallel_->thread_stats() : rete::MatchThreadStats{};
  }

  /// Sink for (write ...) output; defaults to discarding. The string is one
  /// whole write action's output.
  void set_write_handler(std::function<void(const std::string&)> handler) {
    write_handler_ = std::move(handler);
  }

  /// Opaque pointer surfaced to external functions via ExternalContext.
  void set_user_data(void* p) noexcept { user_data_ = p; }

  /// OPS5-style watch tracing: level 0 = off, 1 = production firings,
  /// 2 = firings plus working-memory changes. Lines go to `sink`.
  void set_watch(int level, std::function<void(const std::string&)> sink);
  [[nodiscard]] int watch_level() const noexcept { return watch_level_; }

  /// Attach a span tracer (nullptr detaches). Fired cycles emit sampled
  /// "cycle" spans on thread lane `tid` (the executor passes its task-process
  /// index) with the cycle's match/resolve/RHS work-unit split in args. The
  /// hooks compile away entirely under PSMSYS_OBS=0; with OBS on, a detached
  /// engine never touches the clock. The tracer must outlive its attachment
  /// and is not owned. Survives reset(), like the watch sink.
  void set_tracer(obs::Tracer* tracer, std::uint32_t tid = 0) noexcept {
    tracer_ = tracer;
    tracer_tid_ = tid;
  }
  [[nodiscard]] obs::Tracer* tracer() const noexcept { return tracer_; }

  /// Largest conflict set observed since construction or reset() — the
  /// contention gauge behind the paper's conflict-resolution discussion.
  /// Always 0 when built with PSMSYS_OBS=0.
  [[nodiscard]] std::size_t peak_conflict_set() const noexcept {
    return peak_conflict_set_;
  }

 private:
  void on_activate(const Production& production, std::span<const Wme* const> wmes) override;
  void on_deactivate(const Production& production, std::span<const Wme* const> wmes) override;

  void fire(const Production& production, std::vector<const Wme*> matched);

  struct FiringEnv;
  [[nodiscard]] Value eval(const Expr& expr, FiringEnv& env);
  [[nodiscard]] std::vector<Value> build_slots(ClassIndex cls,
                                               std::span<const std::pair<SlotIndex, Expr>> sets,
                                               FiringEnv& env,
                                               const std::vector<Value>* base);

  std::shared_ptr<const Program> program_;
  const ExternalRegistry* externals_;
  EngineConfig options_;
  void build_matcher();
  /// Reverse-replay journal entries [down_to, end) and truncate to down_to.
  /// Callers own undo_active_/watch suppression and the mark restoration.
  void replay_undo_tail(std::size_t down_to);

  util::WorkCounters counters_;
  ConflictSet conflict_set_{options_.strategy};
  std::unique_ptr<rete::Matcher> matcher_;
  rete::ParallelMatcher* parallel_ = nullptr;  // matcher_, when parallel
  std::vector<CycleRecord> cycles_;

  std::unordered_map<TimeTag, std::unique_ptr<Wme>> wm_;
  TimeTag next_timetag_ = 1;
  bool halted_ = false;

  struct UndoEntry {
    bool was_add = false;          ///< true: WME added; false: WME removed
    TimeTag timetag = 0;
    ClassIndex cls = 0;            ///< only for removals
    std::vector<Value> slots;      ///< only for removals
  };
  bool undo_active_ = false;
  std::vector<UndoEntry> undo_log_;
  TimeTag undo_mark_timetag_ = 0;
  bool undo_mark_halted_ = false;
  std::uint64_t undo_mark_cycles_ = 0;

  std::function<void(const std::string&)> write_handler_;
  void* user_data_ = nullptr;
  int watch_level_ = 0;
  std::function<void(const std::string&)> watch_sink_;

  // Observability (members always present to keep the class layout identical
  // across PSMSYS_OBS settings; only the hot-path code is conditional).
  obs::Tracer* tracer_ = nullptr;
  std::uint32_t tracer_tid_ = 0;
  std::size_t peak_conflict_set_ = 0;
};

}  // namespace psmsys::ops5
