#include "ops5/external.hpp"

#include <cmath>
#include <stdexcept>

namespace psmsys::ops5 {

void ExternalRegistry::register_function(SymbolTable& symbols, std::string_view name,
                                         ExternalFn fn) {
  const Symbol sym = symbols.intern(name);
  functions_[index_of(sym)] = std::move(fn);
}

const ExternalFn* ExternalRegistry::find(Symbol name) const noexcept {
  const auto it = functions_.find(index_of(name));
  return it != functions_.end() ? &it->second : nullptr;
}

namespace {

[[nodiscard]] double need_number(const Value& v, const char* fn) {
  if (!v.is_number()) {
    throw std::invalid_argument(std::string("external function ") + fn + " needs numeric args");
  }
  return v.number();
}

void register_binary(ExternalRegistry& registry, SymbolTable& symbols, std::string_view name,
                     double (*op)(double, double)) {
  const std::string fn_name(name);
  registry.register_function(symbols, name,
                             [op, fn_name](std::span<const Value> args, ExternalContext&) {
                               if (args.size() != 2) {
                                 throw std::invalid_argument("builtin " + fn_name +
                                                             " needs 2 arguments");
                               }
                               return Value(op(need_number(args[0], fn_name.c_str()),
                                               need_number(args[1], fn_name.c_str())));
                             });
}

}  // namespace

void register_builtins(ExternalRegistry& registry, SymbolTable& symbols) {
  register_binary(registry, symbols, "+", [](double a, double b) { return a + b; });
  register_binary(registry, symbols, "-", [](double a, double b) { return a - b; });
  register_binary(registry, symbols, "*", [](double a, double b) { return a * b; });
  register_binary(registry, symbols, "//", [](double a, double b) {
    if (b == 0.0) throw std::domain_error("division by zero in //");
    return std::trunc(a / b);
  });
  register_binary(registry, symbols, "mod", [](double a, double b) {
    if (b == 0.0) throw std::domain_error("division by zero in mod");
    return a - b * std::floor(a / b);
  });
  registry.register_function(symbols, "abs", [](std::span<const Value> args, ExternalContext&) {
    if (args.size() != 1) throw std::invalid_argument("abs needs 1 argument");
    return Value(std::abs(need_number(args[0], "abs")));
  });
  register_binary(registry, symbols, "min", [](double a, double b) { return std::min(a, b); });
  register_binary(registry, symbols, "max", [](double a, double b) { return std::max(a, b); });
}

}  // namespace psmsys::ops5
