#include "ops5/value.hpp"

#include <sstream>
#include <stdexcept>

namespace psmsys::ops5 {

SymbolTable::SymbolTable() {
  names_.emplace_back("nil");
  ids_.emplace("nil", kNilSymbol);
}

Symbol SymbolTable::intern(std::string_view name) {
  if (auto it = ids_.find(std::string(name)); it != ids_.end()) return it->second;
  if (frozen_) {
    throw std::logic_error("SymbolTable frozen; cannot intern new symbol: " + std::string(name));
  }
  const auto id = static_cast<Symbol>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(std::string(name), id);
  return id;
}

std::optional<Symbol> SymbolTable::find(std::string_view name) const {
  if (auto it = ids_.find(std::string(name)); it != ids_.end()) return it->second;
  return std::nullopt;
}

const std::string& SymbolTable::name(Symbol s) const {
  const auto i = index_of(s);
  if (i >= names_.size()) throw std::out_of_range("unknown symbol id");
  return names_[i];
}

std::string Value::to_string(const SymbolTable& symbols) const {
  switch (kind_) {
    case Kind::Nil: return "nil";
    case Kind::Sym: return symbols.name(sym_);
    case Kind::Num: {
      std::ostringstream os;
      const double n = num_;
      if (n == static_cast<double>(static_cast<long long>(n))) {
        os << static_cast<long long>(n);
      } else {
        os << n;
      }
      return os.str();
    }
  }
  return "?";
}

std::string_view predicate_name(Predicate p) noexcept {
  switch (p) {
    case Predicate::Eq: return "=";
    case Predicate::Ne: return "<>";
    case Predicate::Lt: return "<";
    case Predicate::Le: return "<=";
    case Predicate::Gt: return ">";
    case Predicate::Ge: return ">=";
  }
  return "?";
}

}  // namespace psmsys::ops5
