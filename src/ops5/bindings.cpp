#include "ops5/bindings.hpp"

#include <algorithm>
#include <stdexcept>

namespace psmsys::ops5 {

namespace {

void collect_rhs_vars(const Expr& expr, std::vector<VariableId>& out) {
  if (const auto* v = std::get_if<VarRef>(&expr.node)) {
    out.push_back(v->var);
  } else if (const auto* c = std::get_if<CallExpr>(&expr.node)) {
    for (const auto& a : c->args) collect_rhs_vars(a, out);
  }
}

}  // namespace

BindingAnalysis analyze_bindings(const Production& production) {
  BindingAnalysis analysis;
  std::uint32_t positive_ordinal = 0;
  const auto lhs = production.lhs();
  for (std::uint32_t pos = 0; pos < lhs.size(); ++pos) {
    const auto& ce = lhs[pos];
    for (const auto& test : ce.tests) {
      if (!test.is_variable) continue;
      if (analysis.sites.contains(test.var)) continue;  // already bound: a test
      bool local_to_this_negative = false;
      if (ce.negated) {
        auto& locals = analysis.negative_locals[pos];
        bool already_local = false;
        for (auto v : locals) {
          if (v == test.var) {
            already_local = true;
            break;
          }
        }
        if (!already_local) {
          if (test.pred != Predicate::Eq) {
            throw std::invalid_argument(
                "first occurrence of a variable in a negated CE must be an equality test");
          }
          locals.push_back(test.var);
        }
        local_to_this_negative = true;
      }
      if (!local_to_this_negative) {
        if (test.pred != Predicate::Eq) {
          throw std::invalid_argument("first occurrence of a variable must be an equality test");
        }
        analysis.sites.emplace(test.var, BindingSite{positive_ordinal, test.slot});
      }
    }
    if (!ce.negated) ++positive_ordinal;
  }

  // Validate RHS variable uses: every variable read on the RHS must be bound
  // by a positive CE or by an earlier (bind) action.
  std::vector<VariableId> bound_by_actions;
  for (const auto& action : production.rhs()) {
    std::vector<VariableId> used;
    std::visit(
        [&](const auto& a) {
          using T = std::decay_t<decltype(a)>;
          if constexpr (std::is_same_v<T, MakeAction> || std::is_same_v<T, ModifyAction>) {
            for (const auto& [slot, expr] : a.sets) collect_rhs_vars(expr, used);
          } else if constexpr (std::is_same_v<T, BindAction>) {
            collect_rhs_vars(a.expr, used);
          } else if constexpr (std::is_same_v<T, WriteAction>) {
            for (const auto& e : a.exprs) collect_rhs_vars(e, used);
          }
        },
        action);
    for (auto v : used) {
      const bool ok = analysis.sites.contains(v) ||
                      std::find(bound_by_actions.begin(), bound_by_actions.end(), v) !=
                          bound_by_actions.end();
      if (!ok) throw std::invalid_argument("RHS uses unbound variable");
    }
    if (const auto* b = std::get_if<BindAction>(&action)) bound_by_actions.push_back(b->var);
  }
  return analysis;
}

Value binding_value(const BindingAnalysis& analysis, VariableId var,
                    std::span<const Wme* const> wmes) {
  const auto site = analysis.site(var);
  if (!site) throw std::logic_error("variable has no binding site");
  return wmes[site->positive_ce]->slot(site->slot);
}

}  // namespace psmsys::ops5
