#pragma once

// Productions: left-hand-side condition elements and right-hand-side actions,
// plus the Program container that holds a complete parsed OPS5 system.

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "ops5/value.hpp"
#include "ops5/wme.hpp"

namespace psmsys::ops5 {

/// Interned LHS variable (the `<x>` in OPS5 source), scoped to a production.
using VariableId = std::uint32_t;

/// 1-based source position recorded by the parser. Productions and condition
/// elements built programmatically (the SPAM generators construct source text
/// first, so they get real positions too) default to unknown.
struct SourceLoc {
  int line = 0;
  int column = 0;

  [[nodiscard]] bool known() const noexcept { return line > 0; }
};

/// One attribute test inside a condition element, e.g. `^elong > 6`,
/// `^region <r>`, or the OPS5 value disjunction `^class << runway taxiway >>`.
struct AttrTest {
  SlotIndex slot = 0;
  Predicate pred = Predicate::Eq;
  bool is_variable = false;
  Value constant;                  ///< valid when !is_variable and no disjunction
  VariableId var = 0;              ///< valid when is_variable
  std::vector<Value> disjunction;  ///< non-empty: slot must equal one of these

  [[nodiscard]] bool is_disjunction() const noexcept { return !disjunction.empty(); }
};

/// True iff `v` satisfies a (non-variable) test.
[[nodiscard]] inline bool constant_test_passes(const AttrTest& test, const Value& v) noexcept {
  if (test.is_disjunction()) {
    for (const auto& alt : test.disjunction) {
      if (v == alt) return true;
    }
    return false;
  }
  return apply_predicate(test.pred, v, test.constant);
}

/// A condition element: a pattern over one WME class, possibly negated.
struct ConditionElement {
  ClassIndex cls = 0;
  Symbol class_name = kNilSymbol;
  bool negated = false;
  std::vector<AttrTest> tests;
  SourceLoc loc;  ///< position of the CE's class symbol in the source
};

// ---------------------------------------------------------------------------
// RHS expressions and actions
// ---------------------------------------------------------------------------

struct Expr;

/// Call of a registered external function (SPAM's geometric computations are
/// reached this way, mirroring the paper's "RHS evaluation outside OPS5").
struct CallExpr {
  Symbol function = kNilSymbol;
  std::vector<Expr> args;
};

struct VarRef {
  VariableId var = 0;
};

struct Expr {
  std::variant<Value, VarRef, CallExpr> node;

  Expr() : node(Value{}) {}
  explicit Expr(Value v) : node(v) {}
  explicit Expr(VarRef v) : node(v) {}
  explicit Expr(CallExpr c) : node(std::move(c)) {}
};

/// `(make class ^attr expr ...)`
struct MakeAction {
  ClassIndex cls = 0;
  std::vector<std::pair<SlotIndex, Expr>> sets;
};

/// `(modify <ce> ^attr expr ...)` — 1-based CE index into the LHS.
struct ModifyAction {
  std::uint32_t ce_index = 1;
  std::vector<std::pair<SlotIndex, Expr>> sets;
};

/// `(remove <ce>)`
struct RemoveAction {
  std::uint32_t ce_index = 1;
};

/// `(bind <var> expr)`
struct BindAction {
  VariableId var = 0;
  Expr expr;
};

/// `(write expr ...)`
struct WriteAction {
  std::vector<Expr> exprs;
};

/// `(halt)`
struct HaltAction {};

using Action =
    std::variant<MakeAction, ModifyAction, RemoveAction, BindAction, WriteAction, HaltAction>;

// ---------------------------------------------------------------------------
// Production and Program
// ---------------------------------------------------------------------------

class Production {
 public:
  Production(Symbol name, std::vector<ConditionElement> lhs, std::vector<Action> rhs);

  [[nodiscard]] Symbol name() const noexcept { return name_; }
  [[nodiscard]] std::span<const ConditionElement> lhs() const noexcept { return lhs_; }
  [[nodiscard]] std::span<const Action> rhs() const noexcept { return rhs_; }

  /// Number of positive (matchable) CEs; instantiations carry this many WMEs.
  [[nodiscard]] std::size_t positive_ce_count() const noexcept { return positive_ces_; }

  /// Total number of attribute tests — OPS5 LEX/MEA specificity measure.
  [[nodiscard]] std::size_t specificity() const noexcept { return specificity_; }

  /// Index assigned by the owning Program.
  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }

  /// Source position of the production name (unknown when built in memory).
  [[nodiscard]] SourceLoc location() const noexcept { return loc_; }
  void set_location(SourceLoc loc) noexcept { loc_ = loc; }

 private:
  friend class Program;
  Symbol name_;
  std::vector<ConditionElement> lhs_;
  std::vector<Action> rhs_;
  std::size_t positive_ces_ = 0;
  std::size_t specificity_ = 0;
  std::uint32_t id_ = 0;
  SourceLoc loc_;
};

/// A complete OPS5 system: symbols, class declarations, productions, and the
/// names of the variables used (for tracing). Programs are immutable after
/// freeze() and shared (shared_ptr) across PSM task processes.
class Program {
 public:
  Program() = default;

  [[nodiscard]] SymbolTable& symbols() noexcept { return symbols_; }
  [[nodiscard]] const SymbolTable& symbols() const noexcept { return symbols_; }

  /// Declare a WME class. Throws on duplicate or if frozen.
  ClassIndex declare_class(std::string_view name, std::span<const std::string_view> attributes);

  [[nodiscard]] std::optional<ClassIndex> class_index(Symbol name) const noexcept;
  [[nodiscard]] const WmeClass& wme_class(ClassIndex i) const { return classes_.at(i); }
  [[nodiscard]] std::size_t class_count() const noexcept { return classes_.size(); }

  /// Intern a variable name (without angle brackets); per-program scope.
  VariableId intern_variable(std::string_view name);
  [[nodiscard]] const std::string& variable_name(VariableId v) const;
  [[nodiscard]] std::size_t variable_count() const noexcept { return variable_names_.size(); }

  void add_production(Production p);
  [[nodiscard]] std::span<const Production> productions() const noexcept { return productions_; }
  [[nodiscard]] const Production* find_production(Symbol name) const noexcept;

  /// Rule-pack identity for versioned loading (the `(pack name version)`
  /// source directive). Purely metadata: admission verdicts and the serve
  /// admin surface label packs with it. Throws if frozen.
  void set_pack(std::string name, std::string version);
  [[nodiscard]] const std::string& pack_name() const noexcept { return pack_name_; }
  [[nodiscard]] const std::string& pack_version() const noexcept { return pack_version_; }

  void freeze();
  [[nodiscard]] bool frozen() const noexcept { return frozen_; }

 private:
  SymbolTable symbols_;
  std::vector<WmeClass> classes_;
  std::vector<Production> productions_;
  std::vector<std::string> variable_names_;
  std::unordered_map<std::string, VariableId> variable_ids_;
  std::unordered_map<std::uint32_t, ClassIndex> class_by_symbol_;
  std::string pack_name_;
  std::string pack_version_;
  bool frozen_ = false;
};

}  // namespace psmsys::ops5
