#pragma once

// OPS5 scalar values and interned symbols.
//
// OPS5 working-memory slots hold either symbolic atoms or numbers. Symbols
// are interned once in a SymbolTable so that all match-time comparisons are
// integer compares, as in ParaOPS5's C implementation.

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace psmsys::ops5 {

/// Interned symbol id. Id 0 is reserved for "nil".
enum class Symbol : std::uint32_t {};

inline constexpr Symbol kNilSymbol{0};

[[nodiscard]] constexpr std::uint32_t index_of(Symbol s) noexcept {
  return static_cast<std::uint32_t>(s);
}

/// Two-way string <-> Symbol map. Interning is only legal while unfrozen;
/// after freeze() the table is immutable and safe to share across threads
/// (each PSM task process holds a shared_ptr to the frozen Program).
class SymbolTable {
 public:
  SymbolTable();

  /// Intern (or look up) a symbol. Throws if frozen and the name is new.
  Symbol intern(std::string_view name);

  /// Look up without interning.
  [[nodiscard]] std::optional<Symbol> find(std::string_view name) const;

  [[nodiscard]] const std::string& name(Symbol s) const;
  [[nodiscard]] std::size_t size() const noexcept { return names_.size(); }

  void freeze() noexcept { frozen_ = true; }
  [[nodiscard]] bool frozen() const noexcept { return frozen_; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, Symbol> ids_;
  bool frozen_ = false;
};

/// An OPS5 value: nil, symbol, or (double) number.
class Value {
 public:
  enum class Kind : std::uint8_t { Nil, Sym, Num };

  constexpr Value() noexcept : kind_(Kind::Nil), sym_(kNilSymbol) {}
  constexpr explicit Value(Symbol s) noexcept : kind_(Kind::Sym), sym_(s) {}
  constexpr explicit Value(double n) noexcept : kind_(Kind::Num), num_(n) {}
  constexpr explicit Value(int n) noexcept : Value(static_cast<double>(n)) {}

  [[nodiscard]] constexpr Kind kind() const noexcept { return kind_; }
  [[nodiscard]] constexpr bool is_nil() const noexcept { return kind_ == Kind::Nil; }
  [[nodiscard]] constexpr bool is_symbol() const noexcept { return kind_ == Kind::Sym; }
  [[nodiscard]] constexpr bool is_number() const noexcept { return kind_ == Kind::Num; }

  [[nodiscard]] constexpr Symbol symbol() const noexcept { return sym_; }
  [[nodiscard]] constexpr double number() const noexcept { return num_; }

  [[nodiscard]] constexpr bool operator==(const Value& o) const noexcept {
    if (kind_ != o.kind_) return false;
    switch (kind_) {
      case Kind::Nil: return true;
      case Kind::Sym: return sym_ == o.sym_;
      case Kind::Num: return num_ == o.num_;
    }
    return false;
  }

  /// Numeric ordering; symbols are unordered (predicates <,> on symbols are
  /// false, matching OPS5 semantics where they only apply to numbers).
  [[nodiscard]] constexpr bool less_than(const Value& o) const noexcept {
    return is_number() && o.is_number() && num_ < o.num_;
  }

  [[nodiscard]] std::string to_string(const SymbolTable& symbols) const;

  [[nodiscard]] std::size_t hash() const noexcept {
    switch (kind_) {
      case Kind::Nil: return 0x9e3779b9;
      case Kind::Sym: return 0x85ebca6b ^ (static_cast<std::size_t>(index_of(sym_)) * 0xc2b2ae35);
      case Kind::Num: {
        const double n = num_ == 0.0 ? 0.0 : num_;  // collapse -0.0 with +0.0
        std::size_t h = 0;
        static_assert(sizeof(h) >= sizeof(n));
        __builtin_memcpy(&h, &n, sizeof(n));
        return h * 0x9e3779b97f4a7c15ULL;
      }
    }
    return 0;
  }

 private:
  Kind kind_;
  union {
    Symbol sym_;
    double num_;
  };
};

struct ValueHash {
  [[nodiscard]] std::size_t operator()(const Value& v) const noexcept { return v.hash(); }
};

/// Comparison predicates available in LHS attribute tests.
enum class Predicate : std::uint8_t { Eq, Ne, Lt, Le, Gt, Ge };

[[nodiscard]] constexpr bool apply_predicate(Predicate p, const Value& lhs,
                                             const Value& rhs) noexcept {
  switch (p) {
    case Predicate::Eq: return lhs == rhs;
    case Predicate::Ne: return !(lhs == rhs);
    case Predicate::Lt: return lhs.less_than(rhs);
    case Predicate::Le: return lhs.less_than(rhs) || lhs == rhs;
    case Predicate::Gt: return rhs.less_than(lhs);
    case Predicate::Ge: return rhs.less_than(lhs) || lhs == rhs;
  }
  return false;
}

[[nodiscard]] std::string_view predicate_name(Predicate p) noexcept;

}  // namespace psmsys::ops5
