#pragma once

// External (RHS) function registry.
//
// SPAM's RHS evaluation "is performed outside OPS5 using external processes"
// (Section 2.2) — geometric computations reached from rule actions. Here
// external functions are C++ callables registered by name and invoked from
// `(call name args...)` expressions; they charge their computational cost
// (geometry flops) to the engine's RHS cost, producing the paper's large
// non-match component.

#include <functional>
#include <span>
#include <string_view>
#include <unordered_map>

#include "ops5/value.hpp"
#include "util/counters.hpp"

namespace psmsys::ops5 {

/// Handed to external functions: cost charging plus an opaque pointer to the
/// domain store (e.g. the SPAM scene holding region polygons).
class ExternalContext {
 public:
  ExternalContext(util::WorkCounters& counters, const util::CostModel& costs,
                  void* user_data) noexcept
      : counters_(counters), costs_(costs), user_data_(user_data) {}

  /// Charge `flops` elementary geometry operations to RHS cost.
  void charge_flops(std::uint64_t flops) noexcept {
    counters_.rhs_cost += flops * costs_.geometry_flop;
  }

  [[nodiscard]] void* user_data() const noexcept { return user_data_; }

  template <typename T>
  [[nodiscard]] T& user_data_as() const {
    return *static_cast<T*>(user_data_);
  }

 private:
  util::WorkCounters& counters_;
  const util::CostModel& costs_;
  void* user_data_;
};

using ExternalFn = std::function<Value(std::span<const Value>, ExternalContext&)>;

class ExternalRegistry {
 public:
  /// Register `fn` under `name` (interned into `symbols`). Re-registration
  /// replaces the previous function.
  void register_function(SymbolTable& symbols, std::string_view name, ExternalFn fn);

  [[nodiscard]] const ExternalFn* find(Symbol name) const noexcept;

 private:
  std::unordered_map<std::uint32_t, ExternalFn> functions_;
};

/// Register the arithmetic builtins used by `(compute ...)`:
/// + - * // mod abs min max. `//` is integer-style division (truncates).
void register_builtins(ExternalRegistry& registry, SymbolTable& symbols);

}  // namespace psmsys::ops5
