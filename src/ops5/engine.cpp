#include "ops5/engine.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "analysis/rete_static.hpp"
#include "obs/trace.hpp"

namespace psmsys::ops5 {

Engine::Engine(std::shared_ptr<const Program> program, const ExternalRegistry* externals,
               EngineOptions options)
    : program_(std::move(program)), externals_(externals), options_(options) {
  if (program_ == nullptr) throw std::invalid_argument("engine needs a program");
  build_matcher();
}

void Engine::build_matcher() {
  rete::MatchListener& listener = *this;  // private base: convert in member scope
  if (options_.match_threads == 0) {
    matcher_ = std::make_unique<rete::Network>(*program_, listener, counters_, options_.costs,
                                               options_.rete);
    parallel_ = nullptr;
  } else {
    rete::ParallelMatcherOptions po;
    po.threads = options_.match_threads;
    po.network = options_.rete;
    if (options_.match_cost_source == MatchCostSource::Analyzer) {
      // Static join-cost estimates from the whole-rule-base analyzer; any
      // production it scores <= 0 falls back to the heuristic inside the
      // matcher, so a partial vector degrades gracefully.
      po.production_costs = options_.shared_match_costs
                                ? *options_.shared_match_costs
                                : analysis::static_match_costs(*program_, options_.rete);
    }
    auto pm = std::make_unique<rete::ParallelMatcher>(*program_, listener, counters_,
                                                      options_.costs, po);
    parallel_ = pm.get();
    matcher_ = std::move(pm);
  }
}

void Engine::reconfigure(const EngineConfig& config) {
  if (config.strategy != options_.strategy) {
    throw std::logic_error("reconfigure cannot change the conflict-resolution strategy");
  }
  // The matcher-affecting knobs: only these force a rebuild (compilation
  // charges alpha/beta construction costs, so rebuilds restart the counters
  // from a clean slate to avoid double-charging them).
  const bool rebuild =
      config.match_threads != options_.match_threads ||
      (config.match_threads != 0 &&
       config.match_cost_source != options_.match_cost_source);
  if (rebuild && (!wm_.empty() || undo_active_ || conflict_set_.size() != 0)) {
    throw std::logic_error("reconfigure requires an empty working memory");
  }
  options_ = config;
  if (rebuild) {
    counters_ = util::WorkCounters{};
    build_matcher();
  }
}

Engine::~Engine() = default;

// ---------------------------------------------------------------------------
// Working memory
// ---------------------------------------------------------------------------

const Wme& Engine::make_wme(ClassIndex cls, std::vector<std::pair<SlotIndex, Value>> sets) {
  const WmeClass& decl = program_->wme_class(cls);
  std::vector<Value> slots(decl.arity());
  for (auto& [slot, value] : sets) {
    if (slot >= slots.size()) throw std::out_of_range("make_wme: slot out of range");
    slots[slot] = value;
  }
  auto wme = std::make_unique<Wme>(cls, decl.name(), std::move(slots), next_timetag_++);
  Wme& ref = *wme;
  wm_.emplace(ref.timetag(), std::move(wme));
  ++counters_.wmes_added;
  if (undo_active_) undo_log_.push_back({true, ref.timetag(), 0, {}});
  if (watch_level_ >= 2) {
    watch_sink_("=>WM: " + std::to_string(ref.timetag()) + ": " +
                ref.to_string(program_->symbols(), decl));
  }
  matcher_->add_wme(ref);
  return ref;
}

const Wme& Engine::make_wme(std::string_view class_name,
                            std::vector<std::pair<std::string_view, Value>> sets) {
  const auto cls_sym = program_->symbols().find(class_name);
  if (!cls_sym) throw std::invalid_argument("unknown class: " + std::string(class_name));
  const auto cls = program_->class_index(*cls_sym);
  if (!cls) throw std::invalid_argument("not a WME class: " + std::string(class_name));
  const WmeClass& decl = program_->wme_class(*cls);
  std::vector<std::pair<SlotIndex, Value>> resolved;
  resolved.reserve(sets.size());
  for (auto& [attr, value] : sets) {
    const auto attr_sym = program_->symbols().find(attr);
    if (!attr_sym) throw std::invalid_argument("unknown attribute: " + std::string(attr));
    const SlotIndex slot = decl.slot_of(*attr_sym);
    if (slot == kInvalidSlot) {
      throw std::invalid_argument("class has no attribute ^" + std::string(attr));
    }
    resolved.emplace_back(slot, value);
  }
  return make_wme(*cls, std::move(resolved));
}

void Engine::remove_wme(const Wme& wme) {
  const auto it = wm_.find(wme.timetag());
  if (it == wm_.end() || it->second.get() != &wme) {
    throw std::logic_error("removing WME not in working memory");
  }
  ++counters_.wmes_removed;
  if (watch_level_ >= 2) {
    watch_sink_("<=WM: " + std::to_string(wme.timetag()) + ": " +
                wme.to_string(program_->symbols(), program_->wme_class(wme.class_index())));
  }
  if (undo_active_) {
    undo_log_.push_back({false, wme.timetag(), wme.class_index(),
                         std::vector<Value>(wme.slots().begin(), wme.slots().end())});
  }
  matcher_->remove_wme(wme);
  wm_.erase(it);
}

std::size_t Engine::wm_size() const noexcept { return wm_.size(); }

void Engine::set_watch(int level, std::function<void(const std::string&)> sink) {
  if (level < 0 || level > 2) throw std::invalid_argument("watch level must be 0..2");
  watch_level_ = level;
  watch_sink_ = std::move(sink);
  if (watch_level_ > 0 && !watch_sink_) {
    throw std::invalid_argument("watch level > 0 needs a sink");
  }
}

std::vector<const Wme*> Engine::wmes_of_class(ClassIndex cls) const {
  std::vector<const Wme*> out;
  for (const auto& [tag, wme] : wm_) {
    if (wme->class_index() == cls) out.push_back(wme.get());
  }
  return out;
}

std::vector<const Wme*> Engine::wmes_of_class(std::string_view class_name) const {
  const auto sym = program_->symbols().find(class_name);
  if (!sym) return {};
  const auto cls = program_->class_index(*sym);
  if (!cls) return {};
  return wmes_of_class(*cls);
}

// ---------------------------------------------------------------------------
// Match listener
// ---------------------------------------------------------------------------

void Engine::on_activate(const Production& production, std::span<const Wme* const> wmes) {
  conflict_set_.add(production, std::vector<const Wme*>(wmes.begin(), wmes.end()));
#if PSMSYS_OBS
  peak_conflict_set_ = std::max(peak_conflict_set_, conflict_set_.size());
#endif
}

void Engine::on_deactivate(const Production& production, std::span<const Wme* const> wmes) {
  conflict_set_.remove(production, wmes);
}

// ---------------------------------------------------------------------------
// RHS evaluation
// ---------------------------------------------------------------------------

struct Engine::FiringEnv {
  // Slot values of the matched WMEs, snapshotted at fire start: OPS5 variable
  // bindings are fixed at match time, and the underlying WMEs may be removed
  // by earlier actions of the same firing.
  std::vector<std::vector<Value>> wme_slots;
  const BindingAnalysis& bindings;
  std::unordered_map<VariableId, Value> bound;  // from (bind ...) actions
};

Value Engine::eval(const Expr& expr, FiringEnv& env) {
  counters_.rhs_cost += 1;
  if (const auto* lit = std::get_if<Value>(&expr.node)) return *lit;
  if (const auto* ref = std::get_if<VarRef>(&expr.node)) {
    if (const auto it = env.bound.find(ref->var); it != env.bound.end()) return it->second;
    const auto site = env.bindings.site(ref->var);
    if (!site) throw std::logic_error("variable has no binding site");
    return env.wme_slots[site->positive_ce][site->slot];
  }
  const auto& call = std::get<CallExpr>(expr.node);
  std::vector<Value> args;
  args.reserve(call.args.size());
  for (const auto& a : call.args) args.push_back(eval(a, env));
  if (externals_ != nullptr) {
    if (const ExternalFn* fn = externals_->find(call.function)) {
      ExternalContext ctx(counters_, options_.costs, user_data_);
      return (*fn)(args, ctx);
    }
  }
  // Arithmetic builtins used by (compute ...) are always available.
  const std::string& name = program_->symbols().name(call.function);
  const auto binary = [&](auto op) {
    if (args.size() != 2 || !args[0].is_number() || !args[1].is_number()) {
      throw std::logic_error("builtin " + name + " needs two numeric arguments");
    }
    return Value(op(args[0].number(), args[1].number()));
  };
  if (name == "+") return binary([](double a, double b) { return a + b; });
  if (name == "-") return binary([](double a, double b) { return a - b; });
  if (name == "*") return binary([](double a, double b) { return a * b; });
  if (name == "//") {
    return binary([](double a, double b) {
      if (b == 0.0) throw std::domain_error("division by zero in //");
      return std::trunc(a / b);
    });
  }
  if (name == "mod") {
    return binary([](double a, double b) {
      if (b == 0.0) throw std::domain_error("division by zero in mod");
      return a - b * std::floor(a / b);
    });
  }
  throw std::logic_error("unknown external function: " + name);
}

std::vector<Value> Engine::build_slots(ClassIndex cls,
                                       std::span<const std::pair<SlotIndex, Expr>> sets,
                                       FiringEnv& env, const std::vector<Value>* base) {
  const WmeClass& decl = program_->wme_class(cls);
  std::vector<Value> slots = base != nullptr ? *base : std::vector<Value>(decl.arity());
  for (const auto& [slot, expr] : sets) slots[slot] = eval(expr, env);
  return slots;
}

void Engine::fire(const Production& production, std::vector<const Wme*> matched) {
  FiringEnv env{{}, matcher_->bindings(production), {}};
  env.wme_slots.reserve(matched.size());
  for (const Wme* w : matched) {
    env.wme_slots.emplace_back(w->slots().begin(), w->slots().end());
  }
  ++counters_.firings;

  // Map 1-based positive-CE index -> live WME (updated by modify/remove).
  std::vector<const Wme*> ce_wme = std::move(matched);

  for (const auto& action : production.rhs()) {
    counters_.rhs_cost += options_.costs.rhs_action;
    std::visit(
        [&](const auto& a) {
          using T = std::decay_t<decltype(a)>;
          if constexpr (std::is_same_v<T, MakeAction>) {
            ++counters_.rhs_actions;
            make_wme(a.cls, [&] {
              std::vector<std::pair<SlotIndex, Value>> sets;
              sets.reserve(a.sets.size());
              for (const auto& [slot, expr] : a.sets) sets.emplace_back(slot, eval(expr, env));
              return sets;
            }());
          } else if constexpr (std::is_same_v<T, ModifyAction>) {
            ++counters_.rhs_actions;
            const Wme* target = ce_wme.at(a.ce_index - 1);
            if (target == nullptr) {
              throw std::logic_error("modify of a WME already removed in this firing");
            }
            const std::vector<Value> base(target->slots().begin(), target->slots().end());
            std::vector<Value> slots = build_slots(target->class_index(), a.sets, env, &base);
            const ClassIndex cls = target->class_index();
            remove_wme(*target);
            // The same WME may be matched at several CE positions.
            for (auto& slot_wme : ce_wme) {
              if (slot_wme == target) slot_wme = nullptr;
            }
            std::vector<std::pair<SlotIndex, Value>> sets;
            sets.reserve(slots.size());
            for (SlotIndex i = 0; i < slots.size(); ++i) sets.emplace_back(i, slots[i]);
            const Wme& replacement = make_wme(cls, std::move(sets));
            ce_wme[a.ce_index - 1] = &replacement;
          } else if constexpr (std::is_same_v<T, RemoveAction>) {
            ++counters_.rhs_actions;
            const Wme* target = ce_wme.at(a.ce_index - 1);
            if (target == nullptr) {
              throw std::logic_error("remove of a WME already removed in this firing");
            }
            remove_wme(*target);
            for (auto& slot_wme : ce_wme) {
              if (slot_wme == target) slot_wme = nullptr;
            }
          } else if constexpr (std::is_same_v<T, BindAction>) {
            env.bound[a.var] = eval(a.expr, env);
          } else if constexpr (std::is_same_v<T, WriteAction>) {
            ++counters_.rhs_actions;
            if (write_handler_) {
              std::ostringstream os;
              for (std::size_t i = 0; i < a.exprs.size(); ++i) {
                if (i) os << ' ';
                os << eval(a.exprs[i], env).to_string(program_->symbols());
              }
              write_handler_(os.str());
            } else {
              for (const auto& e : a.exprs) (void)eval(e, env);
            }
          } else if constexpr (std::is_same_v<T, HaltAction>) {
            halted_ = true;
          }
        },
        action);
    if (halted_) break;
  }
}

// ---------------------------------------------------------------------------
// The recognize-act cycle
// ---------------------------------------------------------------------------

bool Engine::step() {
  if (halted_) return false;

#if PSMSYS_OBS
  // A detached tracer costs one pointer test; an attached one costs a clock
  // read only on sampled cycles (set_sample_every).
  const bool traced =
      tracer_ != nullptr && tracer_->should_sample(counters_.cycles);
  const auto span_begin =
      traced ? obs::Tracer::Clock::now() : obs::Tracer::Clock::time_point{};
#endif

  // Match: the network processed WM deltas eagerly; collect this cycle's
  // chunks (the work a parallel matcher would distribute).
  std::vector<util::WorkUnits> chunks = matcher_->take_chunks();

  // Resolve: the ordered conflict set selects in O(log n); charge that.
  const util::WorkUnits resolve_cost =
      options_.costs.resolve_per_inst *
      static_cast<util::WorkUnits>(1 + std::bit_width(conflict_set_.size() + 1));
  counters_.resolve_cost += resolve_cost;
  const Instantiation* winner = conflict_set_.select();
  if (winner == nullptr) {
    if (options_.record_cycles && !chunks.empty()) {
      CycleRecord rec;
      rec.match_chunks = std::move(chunks);
      rec.resolve_cost = resolve_cost;
      cycles_.push_back(std::move(rec));
    }
    return false;
  }

  // Act. Copy the winner's identity first: firing can retract the winning
  // instantiation itself (removing a matched WME destroys the entry).
  const Production& production = *winner->production;
  std::vector<const Wme*> matched = winner->wmes;
  if (watch_level_ >= 1) {
    std::string line = std::to_string(counters_.cycles + 1) + ". " +
                       program_->symbols().name(production.name());
    for (const Wme* w : matched) line += " " + std::to_string(w->timetag());
    watch_sink_(line);
  }
  const util::WorkUnits rhs_before = counters_.rhs_cost;
  fire(production, std::move(matched));
  ++counters_.cycles;

#if PSMSYS_OBS
  if (traced) {
    util::WorkUnits match_wu = 0;
    for (auto c : chunks) match_wu += c;
    obs::json::Object args;
    args.emplace_back("cycle", obs::json::Value(counters_.cycles));
    args.emplace_back("production",
                      obs::json::Value(program_->symbols().name(production.name())));
    args.emplace_back("match_wu", obs::json::Value(match_wu));
    args.emplace_back("resolve_wu", obs::json::Value(resolve_cost));
    args.emplace_back("rhs_wu",
                      obs::json::Value(counters_.rhs_cost - rhs_before));
    args.emplace_back("conflict_set", obs::json::Value(conflict_set_.size()));
    args.emplace_back("wm_size", obs::json::Value(wm_.size()));
    tracer_->record_span("cycle", "engine", span_begin,
                         obs::Tracer::Clock::now(), tracer_tid_,
                         std::move(args));
  }
#endif

  if (options_.record_cycles) {
    CycleRecord rec;
    rec.match_chunks = std::move(chunks);
    rec.resolve_cost = resolve_cost;
    rec.rhs_cost = counters_.rhs_cost - rhs_before;
    cycles_.push_back(std::move(rec));
  }
  return true;
}

RunResult Engine::run() { return run(0); }

RunResult Engine::run(std::uint64_t cycle_budget) {
  const std::uint64_t deadline =
      cycle_budget == 0 ? options_.max_cycles
                        : std::min(options_.max_cycles, counters_.cycles + cycle_budget);
  RunResult result;
  while (true) {
    if (counters_.cycles >= deadline) {
      result.cycle_limited = true;
      break;
    }
    if (!step()) break;
  }
  result.firings = counters_.firings;
  result.cycles = counters_.cycles;
  result.halted = halted_;
  return result;
}

// ---------------------------------------------------------------------------
// Undo log (abort recovery)
// ---------------------------------------------------------------------------

void Engine::begin_undo_log() {
  if (undo_active_) throw std::logic_error("undo log already active");
  undo_active_ = true;
  undo_log_.clear();
  undo_mark_timetag_ = next_timetag_;
  undo_mark_halted_ = halted_;
  undo_mark_cycles_ = counters_.cycles;
}

void Engine::commit_undo_log() noexcept {
  undo_active_ = false;
  undo_log_.clear();
}

void Engine::replay_undo_tail(std::size_t down_to) {
  for (std::size_t i = undo_log_.size(); i > down_to; --i) {
    const UndoEntry& entry = undo_log_[i - 1];
    if (entry.was_add) {
      // Replaying in reverse guarantees the WME is live here: any later
      // removal of it was already undone.
      const auto live = wm_.find(entry.timetag);
      if (live == wm_.end()) throw std::logic_error("undo log corrupt: added WME not live");
      ++counters_.wmes_removed;
      matcher_->remove_wme(*live->second);
      wm_.erase(live);
    } else {
      // Restore with the *original* timetag so recency ordering — and every
      // later conflict resolution — is unchanged by the aborted attempt.
      const WmeClass& decl = program_->wme_class(entry.cls);
      auto wme = std::make_unique<Wme>(entry.cls, decl.name(), entry.slots, entry.timetag);
      Wme& ref = *wme;
      wm_.emplace(ref.timetag(), std::move(wme));
      ++counters_.wmes_added;
      matcher_->add_wme(ref);
    }
  }
  undo_log_.resize(down_to);
}

void Engine::rollback_undo_log() {
  if (!undo_active_) throw std::logic_error("no undo log to roll back");
  undo_active_ = false;  // mutations below must not journal themselves

  // Watch output during recovery would read as spurious WM churn.
  const int saved_watch = watch_level_;
  watch_level_ = 0;

  replay_undo_tail(0);
  next_timetag_ = undo_mark_timetag_;
  halted_ = undo_mark_halted_;
  // The cycle counter is the engine's observable logical clock: it numbers
  // watch-trace lines and anchors budget deadlines. Rewind it so a retry (or
  // the next resident task after a rolled-back one) sees the same clock the
  // aborted attempt saw — its trace comes out bit-identical. The remaining
  // WorkCounters stay monotonic: they meter real work done, and an aborted
  // attempt's match/RHS effort genuinely happened.
  counters_.cycles = undo_mark_cycles_;
  watch_level_ = saved_watch;
  // Match work done while rolling back is recovery, not a cycle's chunks.
  (void)matcher_->take_chunks();
}

Engine::UndoCheckpoint Engine::undo_checkpoint() const {
  if (!undo_active_) throw std::logic_error("undo checkpoint requires an active undo log");
  UndoCheckpoint cp;
  cp.log_size = undo_log_.size();
  cp.timetag = next_timetag_;
  cp.halted = halted_;
  cp.cycles = counters_.cycles;
  return cp;
}

void Engine::rollback_to_checkpoint(const UndoCheckpoint& cp) {
  if (!undo_active_) throw std::logic_error("no undo log to roll back");
  if (cp.log_size > undo_log_.size()) {
    throw std::logic_error("undo checkpoint is ahead of the journal (stale checkpoint?)");
  }
  // Same discipline as the whole-log rollback — journaling off, watch
  // silenced, original timetags restored — but only for the tail after the
  // checkpoint, and the log stays active for the rest of the stream.
  undo_active_ = false;
  const int saved_watch = watch_level_;
  watch_level_ = 0;

  replay_undo_tail(cp.log_size);
  next_timetag_ = cp.timetag;
  halted_ = cp.halted;
  counters_.cycles = cp.cycles;
  watch_level_ = saved_watch;
  undo_active_ = true;
  (void)matcher_->take_chunks();
}

void Engine::reset() {
  matcher_->clear();
  conflict_set_.clear();
  wm_.clear();
  cycles_.clear();
  counters_ = util::WorkCounters{};
  next_timetag_ = 1;
  halted_ = false;
  undo_active_ = false;
  undo_log_.clear();
  peak_conflict_set_ = 0;
  // tracer_/tracer_tid_ deliberately survive, like the watch sink.
}

}  // namespace psmsys::ops5
