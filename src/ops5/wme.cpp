#include "ops5/wme.hpp"

#include <sstream>
#include <stdexcept>

namespace psmsys::ops5 {

WmeClass::WmeClass(Symbol name, std::vector<Symbol> attributes)
    : name_(name), attributes_(std::move(attributes)) {
  if (attributes_.empty()) throw std::invalid_argument("WME class needs >= 1 attribute");
}

SlotIndex WmeClass::slot_of(Symbol attribute) const noexcept {
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i] == attribute) return static_cast<SlotIndex>(i);
  }
  return kInvalidSlot;
}

std::string Wme::to_string(const SymbolTable& symbols, const WmeClass& cls) const {
  std::ostringstream os;
  os << '(' << symbols.name(class_name_);
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].is_nil()) continue;
    os << " ^" << symbols.name(cls.attributes()[i]) << ' ' << slots_[i].to_string(symbols);
  }
  os << ')';
  return os.str();
}

}  // namespace psmsys::ops5
