#pragma once

// Working memory elements and class (literalize) declarations.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ops5/value.hpp"

namespace psmsys::ops5 {

/// Index of a WME class within a Program's declaration list.
using ClassIndex = std::uint32_t;

/// Slot index within a WME of a given class.
using SlotIndex = std::uint32_t;

inline constexpr SlotIndex kInvalidSlot = static_cast<SlotIndex>(-1);

/// A `(literalize class attr...)` declaration: fixed attribute layout.
class WmeClass {
 public:
  WmeClass(Symbol name, std::vector<Symbol> attributes);

  [[nodiscard]] Symbol name() const noexcept { return name_; }
  [[nodiscard]] std::span<const Symbol> attributes() const noexcept { return attributes_; }
  [[nodiscard]] std::size_t arity() const noexcept { return attributes_.size(); }

  /// Slot of an attribute, or kInvalidSlot if the class lacks it.
  [[nodiscard]] SlotIndex slot_of(Symbol attribute) const noexcept;

 private:
  Symbol name_;
  std::vector<Symbol> attributes_;
};

/// Monotonically increasing creation stamp; drives conflict-resolution
/// recency ordering (LEX / MEA).
using TimeTag = std::uint64_t;

/// A working memory element: class + slot values + timetag. Instances are
/// owned by the Engine's WorkingMemory and referenced (never owned) by the
/// matcher and by conflict-set instantiations.
class Wme {
 public:
  Wme(ClassIndex cls, Symbol class_name, std::vector<Value> slots, TimeTag tag)
      : slots_(std::move(slots)), tag_(tag), class_(cls), class_name_(class_name) {}

  [[nodiscard]] ClassIndex class_index() const noexcept { return class_; }
  [[nodiscard]] Symbol class_name() const noexcept { return class_name_; }
  [[nodiscard]] TimeTag timetag() const noexcept { return tag_; }
  [[nodiscard]] std::span<const Value> slots() const noexcept { return slots_; }
  [[nodiscard]] const Value& slot(SlotIndex i) const { return slots_.at(i); }

  [[nodiscard]] std::string to_string(const SymbolTable& symbols, const WmeClass& cls) const;

 private:
  std::vector<Value> slots_;
  TimeTag tag_;
  ClassIndex class_;
  Symbol class_name_;
};

}  // namespace psmsys::ops5
