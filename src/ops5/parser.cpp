#include "ops5/parser.hpp"

#include <cctype>
#include <charconv>
#include <optional>
#include <utility>
#include <vector>

namespace psmsys::ops5 {

namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class TokKind {
  LParen,
  RParen,
  LBrace,
  RBrace,
  DisjOpen,   // <<
  DisjClose,  // >>
  Arrow,      // -->
  Negation,   // '-' immediately before '('
  Attribute,  // ^name
  Variable,   // <name>
  Pred,       // = <> < <= > >=
  Sym,
  Number,
  End,
};

struct Token {
  TokKind kind = TokKind::End;
  std::string text;       // Sym, Attribute (without ^), Variable (without <>)
  double number = 0.0;    // Number
  Predicate pred = Predicate::Eq;
  int line = 1;
  int col = 1;  // 1-based column of the token's first character

  [[nodiscard]] SourceLoc loc() const noexcept { return {line, col}; }
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) { advance(); }

  [[nodiscard]] const Token& peek() const noexcept { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

  [[nodiscard]] int line() const noexcept { return current_.line; }

 private:
  void advance() { current_ = lex(); }

  [[nodiscard]] bool at_end() const noexcept { return pos_ >= src_.size(); }
  [[nodiscard]] char cur() const noexcept { return src_[pos_]; }
  [[nodiscard]] char look(std::size_t k) const noexcept {
    return pos_ + k < src_.size() ? src_[pos_ + k] : '\0';
  }

  void skip_space_and_comments() {
    while (!at_end()) {
      const char c = cur();
      if (c == '\n') {
        ++line_;
        ++pos_;
        line_start_ = pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == ';') {
        while (!at_end() && cur() != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  [[nodiscard]] static bool is_sym_char(char c) noexcept {
    return !std::isspace(static_cast<unsigned char>(c)) && c != '(' && c != ')' && c != '{' &&
           c != '}' && c != ';' && c != '^' && c != '\0';
  }

  [[nodiscard]] static bool looks_numeric(std::string_view s) noexcept {
    if (s.empty()) return false;
    std::size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
    if (i >= s.size()) return false;
    bool digit = false;
    bool dot = false;
    for (; i < s.size(); ++i) {
      if (std::isdigit(static_cast<unsigned char>(s[i]))) {
        digit = true;
      } else if (s[i] == '.' && !dot) {
        dot = true;
      } else {
        return false;
      }
    }
    return digit;
  }

  Token lex() {
    skip_space_and_comments();
    Token t;
    t.line = line_;
    t.col = static_cast<int>(pos_ - line_start_) + 1;
    if (at_end()) return t;

    const char c = cur();
    switch (c) {
      case '(': ++pos_; t.kind = TokKind::LParen; return t;
      case ')': ++pos_; t.kind = TokKind::RParen; return t;
      case '{': ++pos_; t.kind = TokKind::LBrace; return t;
      case '}': ++pos_; t.kind = TokKind::RBrace; return t;
      default: break;
    }

    if (c == '^') {
      ++pos_;
      t.kind = TokKind::Attribute;
      while (!at_end() && is_sym_char(cur()) && cur() != '<' && cur() != '>' && cur() != '=') {
        t.text += src_[pos_++];
      }
      if (t.text.empty()) throw ParseError("empty attribute name after ^", line_);
      return t;
    }

    if (c == '<') {
      // <<, <>, <=, <var>, or bare <.
      if (look(1) == '<') {
        pos_ += 2;
        t.kind = TokKind::DisjOpen;
        return t;
      }
      if (look(1) == '>') {
        pos_ += 2;
        t.kind = TokKind::Pred;
        t.pred = Predicate::Ne;
        return t;
      }
      if (look(1) == '=') {
        pos_ += 2;
        t.kind = TokKind::Pred;
        t.pred = Predicate::Le;
        return t;
      }
      // Try a variable: <ident>
      std::size_t j = pos_ + 1;
      std::string name;
      while (j < src_.size() && src_[j] != '>' && is_sym_char(src_[j]) && src_[j] != '<') {
        name += src_[j++];
      }
      if (j < src_.size() && src_[j] == '>' && !name.empty()) {
        pos_ = j + 1;
        t.kind = TokKind::Variable;
        t.text = std::move(name);
        return t;
      }
      ++pos_;
      t.kind = TokKind::Pred;
      t.pred = Predicate::Lt;
      return t;
    }

    if (c == '>') {
      if (look(1) == '>') {
        pos_ += 2;
        t.kind = TokKind::DisjClose;
        return t;
      }
      if (look(1) == '=') {
        pos_ += 2;
        t.kind = TokKind::Pred;
        t.pred = Predicate::Ge;
        return t;
      }
      ++pos_;
      t.kind = TokKind::Pred;
      t.pred = Predicate::Gt;
      return t;
    }

    if (c == '=' && !is_sym_char(look(1))) {
      ++pos_;
      t.kind = TokKind::Pred;
      t.pred = Predicate::Eq;
      return t;
    }

    if (c == '-') {
      if (look(1) == '-' && look(2) == '>') {
        pos_ += 3;
        t.kind = TokKind::Arrow;
        return t;
      }
      if (look(1) == '(') {
        ++pos_;
        t.kind = TokKind::Negation;
        return t;
      }
      // falls through to symbol/number
    }

    std::string word;
    while (!at_end() && is_sym_char(cur())) word += src_[pos_++];
    if (word.empty()) throw ParseError(std::string("unexpected character '") + c + "'", line_);
    if (looks_numeric(word)) {
      t.kind = TokKind::Number;
      double v = 0.0;
      const auto* begin = word.data();
      const auto* end = word.data() + word.size();
      const auto res = std::from_chars(begin, end, v);
      if (res.ec != std::errc{} || res.ptr != end) {
        throw ParseError("bad number: " + word, line_);
      }
      t.number = v;
      return t;
    }
    t.kind = TokKind::Sym;
    t.text = std::move(word);
    return t;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  std::size_t line_start_ = 0;
  int line_ = 1;
  Token current_;
};

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

class Parser {
 public:
  Parser(Program& program, std::string_view source) : program_(program), lex_(source) {}

  void run() {
    while (lex_.peek().kind != TokKind::End) {
      expect(TokKind::LParen, "top-level form");
      const Token head = expect(TokKind::Sym, "form keyword");
      if (head.text == "literalize") {
        parse_literalize();
      } else if (head.text == "p") {
        parse_production();
      } else if (head.text == "pack") {
        parse_pack();
      } else {
        throw ParseError("unknown top-level form: " + head.text, head.line);
      }
    }
  }

 private:
  Token expect(TokKind kind, std::string_view what) {
    Token t = lex_.take();
    if (t.kind != kind) {
      throw ParseError("expected " + std::string(what), t.line, t.col);
    }
    return t;
  }

  void parse_literalize() {
    const Token name = expect(TokKind::Sym, "class name");
    std::vector<std::string> attrs;
    while (lex_.peek().kind == TokKind::Sym) attrs.push_back(lex_.take().text);
    expect(TokKind::RParen, "')' after literalize");
    if (attrs.empty()) throw ParseError("literalize needs >= 1 attribute", name.line);
    std::vector<std::string_view> views(attrs.begin(), attrs.end());
    program_.declare_class(name.text, views);
  }

  /// `(pack <name> [<version>])` — rule-pack identity metadata for versioned
  /// loading. The version may be a symbol ("v2", "2026-08") or a number.
  void parse_pack() {
    const Token name = expect(TokKind::Sym, "pack name");
    std::string version;
    const TokKind k = lex_.peek().kind;
    if (k == TokKind::Sym) {
      version = lex_.take().text;
    } else if (k == TokKind::Number) {
      const double v = lex_.take().number;
      if (v == static_cast<double>(static_cast<long long>(v))) {
        version = std::to_string(static_cast<long long>(v));
      } else {
        version = std::to_string(v);
      }
    }
    expect(TokKind::RParen, "')' after pack");
    program_.set_pack(name.text, std::move(version));
  }

  void parse_production() {
    const Token name = expect(TokKind::Sym, "production name");
    std::vector<ConditionElement> lhs;
    while (true) {
      const TokKind k = lex_.peek().kind;
      if (k == TokKind::Arrow) {
        lex_.take();
        break;
      }
      if (k == TokKind::Negation) {
        lex_.take();
        expect(TokKind::LParen, "'(' after negation");
        lhs.push_back(parse_ce(/*negated=*/true));
      } else if (k == TokKind::LParen) {
        lex_.take();
        lhs.push_back(parse_ce(/*negated=*/false));
      } else {
        throw ParseError("expected condition element or -->", lex_.line());
      }
    }
    current_lhs_ = lhs;  // modify/remove resolve attribute names against the LHS
    std::vector<Action> rhs;
    while (lex_.peek().kind == TokKind::LParen) {
      lex_.take();
      rhs.push_back(parse_action());
    }
    expect(TokKind::RParen, "')' closing production");
    current_lhs_.clear();
    Production prod(program_.symbols().intern(name.text), std::move(lhs), std::move(rhs));
    prod.set_location(name.loc());
    program_.add_production(std::move(prod));
  }

  [[nodiscard]] ClassIndex resolve_class(const Token& tok) {
    const auto sym = program_.symbols().intern(tok.text);
    const auto idx = program_.class_index(sym);
    if (!idx) throw ParseError("undeclared WME class: " + tok.text, tok.line, tok.col);
    return *idx;
  }

  [[nodiscard]] SlotIndex resolve_slot(ClassIndex cls, const Token& attr) {
    const auto sym = program_.symbols().intern(attr.text);
    const SlotIndex slot = program_.wme_class(cls).slot_of(sym);
    if (slot == kInvalidSlot) {
      throw ParseError("class " + program_.symbols().name(program_.wme_class(cls).name()) +
                           " has no attribute ^" + attr.text,
                       attr.line, attr.col);
    }
    return slot;
  }

  ConditionElement parse_ce(bool negated) {
    ConditionElement ce;
    const Token cls = expect(TokKind::Sym, "WME class in condition element");
    ce.cls = resolve_class(cls);
    ce.class_name = program_.wme_class(ce.cls).name();
    ce.negated = negated;
    ce.loc = cls.loc();
    while (lex_.peek().kind == TokKind::Attribute) {
      const Token attr = lex_.take();
      const SlotIndex slot = resolve_slot(ce.cls, attr);
      if (lex_.peek().kind == TokKind::LBrace) {
        lex_.take();
        while (lex_.peek().kind != TokKind::RBrace) {
          ce.tests.push_back(parse_attr_test(slot));
        }
        lex_.take();
      } else {
        ce.tests.push_back(parse_attr_test(slot));
      }
    }
    expect(TokKind::RParen, "')' closing condition element");
    return ce;
  }

  AttrTest parse_attr_test(SlotIndex slot) {
    AttrTest test;
    test.slot = slot;
    if (lex_.peek().kind == TokKind::DisjOpen) {
      // OPS5 value disjunction: ^attr << v1 v2 ... >> (constants only).
      const int line = lex_.take().line;
      while (lex_.peek().kind != TokKind::DisjClose) {
        const Token v = lex_.take();
        if (v.kind == TokKind::Number) {
          test.disjunction.emplace_back(v.number);
        } else if (v.kind == TokKind::Sym) {
          test.disjunction.emplace_back(
              v.text == "nil" ? Value{} : Value(program_.symbols().intern(v.text)));
        } else {
          throw ParseError("disjunctions may only contain constants", v.line);
        }
      }
      lex_.take();
      if (test.disjunction.empty()) throw ParseError("empty value disjunction", line);
      return test;
    }
    if (lex_.peek().kind == TokKind::Pred) {
      test.pred = lex_.take().pred;
    }
    const Token operand = lex_.take();
    switch (operand.kind) {
      case TokKind::Variable:
        test.is_variable = true;
        test.var = program_.intern_variable(operand.text);
        break;
      case TokKind::Number:
        test.constant = Value(operand.number);
        break;
      case TokKind::Sym:
        test.constant = operand.text == "nil" ? Value{} : Value(program_.symbols().intern(operand.text));
        break;
      default:
        throw ParseError("expected test operand (constant or variable)", operand.line);
    }
    return test;
  }

  Action parse_action() {
    const Token head = expect(TokKind::Sym, "action keyword");
    if (head.text == "make") return parse_make();
    if (head.text == "modify") return parse_modify();
    if (head.text == "remove") return parse_remove();
    if (head.text == "bind") return parse_bind();
    if (head.text == "write") return parse_write();
    if (head.text == "halt") {
      expect(TokKind::RParen, "')' after halt");
      return HaltAction{};
    }
    throw ParseError("unknown action: " + head.text, head.line);
  }

  std::vector<std::pair<SlotIndex, Expr>> parse_attr_sets(ClassIndex cls) {
    std::vector<std::pair<SlotIndex, Expr>> sets;
    while (lex_.peek().kind == TokKind::Attribute) {
      const Token attr = lex_.take();
      const SlotIndex slot = resolve_slot(cls, attr);
      sets.emplace_back(slot, parse_expr());
    }
    return sets;
  }

  Action parse_make() {
    const Token cls_tok = expect(TokKind::Sym, "class name in make");
    MakeAction make;
    make.cls = resolve_class(cls_tok);
    make.sets = parse_attr_sets(make.cls);
    expect(TokKind::RParen, "')' after make");
    return make;
  }

  /// `modify` and `remove` designate a CE by 1-based number. The class for
  /// attribute resolution is that CE's class, so the caller must know the
  /// production being parsed; we record the CE index and resolve at the end.
  Action parse_modify() {
    const Token n = expect(TokKind::Number, "CE index in modify");
    ModifyAction mod;
    mod.ce_index = static_cast<std::uint32_t>(n.number);
    const ClassIndex cls = ce_class_for_index(mod.ce_index, n.line);
    mod.sets = parse_attr_sets(cls);
    expect(TokKind::RParen, "')' after modify");
    return mod;
  }

  Action parse_remove() {
    const Token n = expect(TokKind::Number, "CE index in remove");
    expect(TokKind::RParen, "')' after remove");
    return RemoveAction{static_cast<std::uint32_t>(n.number)};
  }

  Action parse_bind() {
    const Token var = expect(TokKind::Variable, "variable in bind");
    BindAction bind;
    bind.var = program_.intern_variable(var.text);
    bind.expr = parse_expr();
    expect(TokKind::RParen, "')' after bind");
    return bind;
  }

  Action parse_write() {
    WriteAction w;
    while (lex_.peek().kind != TokKind::RParen) w.exprs.push_back(parse_expr());
    lex_.take();
    return w;
  }

  Expr parse_expr() {
    const Token t = lex_.take();
    switch (t.kind) {
      case TokKind::Number: return Expr(Value(t.number));
      case TokKind::Variable: return Expr(VarRef{program_.intern_variable(t.text)});
      case TokKind::Sym:
        return t.text == "nil" ? Expr(Value{}) : Expr(Value(program_.symbols().intern(t.text)));
      case TokKind::LParen: return parse_call_expr();
      default: throw ParseError("expected expression", t.line);
    }
  }

  Expr parse_call_expr() {
    Token head = expect(TokKind::Sym, "function name");
    if (head.text == "compute") return parse_compute();
    // `(call fn args...)` names an external function explicitly; a bare
    // `(fn args...)` also works for anything that isn't a reserved form.
    if (head.text == "call") head = expect(TokKind::Sym, "external function name");
    CallExpr call;
    call.function = program_.symbols().intern(head.text);
    while (lex_.peek().kind != TokKind::RParen) call.args.push_back(parse_expr());
    lex_.take();
    return Expr(std::move(call));
  }

  /// `(compute e op e [op e ...])` — left-associative infix arithmetic.
  Expr parse_compute() {
    Expr acc = parse_expr();
    while (lex_.peek().kind != TokKind::RParen) {
      const Token op = lex_.take();
      std::string op_name;
      if (op.kind == TokKind::Sym) {
        op_name = op.text;  // + - * // mod
      } else if (op.kind == TokKind::Pred && op.pred == Predicate::Gt) {
        throw ParseError("comparison not allowed in compute", op.line);
      } else {
        throw ParseError("expected arithmetic operator in compute", op.line);
      }
      if (op_name != "+" && op_name != "-" && op_name != "*" && op_name != "//" &&
          op_name != "mod") {
        throw ParseError("unknown compute operator: " + op_name, op.line);
      }
      CallExpr call;
      call.function = program_.symbols().intern(op_name);
      call.args.push_back(std::move(acc));
      call.args.push_back(parse_expr());
      acc = Expr(std::move(call));
    }
    lex_.take();
    return acc;
  }

  [[nodiscard]] ClassIndex ce_class_for_index(std::uint32_t one_based, int line) {
    // modify/remove index counts positive CEs only (OPS5 numbers matchable CEs).
    std::uint32_t seen = 0;
    for (const auto& ce : current_lhs_) {
      if (ce.negated) continue;
      if (++seen == one_based) return ce.cls;
    }
    throw ParseError("modify/remove CE index out of range", line);
  }

  // parse_production stores its in-progress LHS here so modify can resolve
  // attribute names against the right class.
  std::vector<ConditionElement> current_lhs_;

  Program& program_;
  Lexer lex_;
};

}  // namespace

void parse_into(Program& program, std::string_view source) {
  Parser parser(program, source);
  parser.run();
}

Program parse_program(std::string_view source) {
  Program program;
  parse_into(program, source);
  program.freeze();
  return program;
}

}  // namespace psmsys::ops5
