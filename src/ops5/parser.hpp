#pragma once

// Parser for an OPS5-style rule language.
//
// Supported forms:
//
//   (literalize region id class area elong)
//   (p classify-runway
//      (region ^class linear ^elong > 6 ^id <r>)
//      -(fragment ^region <r>)
//      -->
//      (make fragment ^region <r> ^type runway)
//      (write matched <r>))
//
// LHS attribute tests: constant, <variable>, predicate+operand
// (^a > 5, ^a <> nil, ^a <= <x>), and conjunctive braces (^a { > 0 < 10 }).
// RHS actions: make, modify, remove, bind, write, halt. Expressions may be
// constants, variables, (compute e op e ...) with + - * // mod, or
// (call fn-name args...) invoking a registered external function.
//
// The SPAM rule generators emit this textual language and the benchmarks
// parse it, so every benchmark run exercises the full front end.

#include <stdexcept>
#include <string>
#include <string_view>

#include "ops5/production.hpp"

namespace psmsys::ops5 {

class ParseError : public std::runtime_error {
 public:
  ParseError(std::string message, int line, int column = 0)
      : std::runtime_error("parse error (line " + std::to_string(line) +
                           (column > 0 ? ", col " + std::to_string(column) : std::string()) +
                           "): " + message),
        line_(line),
        column_(column) {}
  [[nodiscard]] int line() const noexcept { return line_; }
  [[nodiscard]] int column() const noexcept { return column_; }

 private:
  int line_;
  int column_;
};

/// Parse OPS5 source into an existing (unfrozen) Program. Multiple sources
/// may be parsed into one Program; later sources can reference earlier
/// literalize declarations.
void parse_into(Program& program, std::string_view source);

/// Convenience: parse a standalone source into a fresh frozen Program.
[[nodiscard]] Program parse_program(std::string_view source);

}  // namespace psmsys::ops5
