#pragma once

// Conflict set and conflict-resolution strategies (LEX and MEA).
//
// The recognize-act cycle's resolve phase is the synchronization point that
// limits match parallelism (Section 3.1, limit 1). The conflict set keeps an
// ordered index of unfired instantiations (as ParaOPS5's optimized C
// implementation did), so selection is O(log n); the engine charges resolve
// cost accordingly.

#include <cstdint>
#include <memory>
#include <set>
#include <span>
#include <unordered_map>
#include <vector>

#include "ops5/production.hpp"
#include "ops5/wme.hpp"

namespace psmsys::ops5 {

/// A satisfied production: the production plus the WMEs matching its
/// positive CEs, in CE order.
struct Instantiation {
  const Production* production = nullptr;
  std::vector<const Wme*> wmes;
  /// Timetags sorted descending — the LEX recency key, precomputed on entry.
  std::vector<TimeTag> recency;
  /// Creation sequence number; final deterministic tie-break.
  std::uint64_t seq = 0;
  /// Refraction: an instantiation fires at most once while it remains in
  /// the conflict set.
  bool fired = false;
};

enum class Strategy : std::uint8_t { Lex, Mea };

/// Strict weak ordering: does `a` dominate `b` under the strategy?
[[nodiscard]] bool dominates(const Instantiation& a, const Instantiation& b, Strategy strategy);

/// The conflict set: all current instantiations, with O(1) add/remove by
/// (production, matched WMEs) identity and an ordered index of unfired
/// instantiations for O(log n) selection.
class ConflictSet {
 public:
  explicit ConflictSet(Strategy strategy = Strategy::Lex);

  /// Add an instantiation (called by the matcher on production activation).
  void add(const Production& production, std::vector<const Wme*> wmes);

  /// Remove the instantiation for this exact (production, wmes) match.
  /// Called by the matcher on retraction; must exist.
  void remove(const Production& production, std::span<const Wme* const> wmes);

  /// Pick the dominant unfired instantiation, or nullptr if none. Marks the
  /// winner as fired.
  [[nodiscard]] const Instantiation* select();

  [[nodiscard]] Strategy strategy() const noexcept { return strategy_; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t unfired() const noexcept { return unfired_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  /// All current instantiations (unspecified order); used by tests/oracle.
  [[nodiscard]] std::vector<const Instantiation*> snapshot() const;

  void clear();

 private:
  struct Key {
    std::uint32_t production_id;
    std::vector<const Wme*> wmes;
    [[nodiscard]] bool operator==(const Key& o) const noexcept {
      return production_id == o.production_id && wmes == o.wmes;
    }
  };
  struct KeyHash {
    [[nodiscard]] std::size_t operator()(const Key& k) const noexcept {
      std::size_t h = k.production_id * 0x9e3779b97f4a7c15ULL;
      for (const auto* w : k.wmes) {
        h ^= reinterpret_cast<std::size_t>(w) + 0x9e3779b9 + (h << 6) + (h >> 2);
      }
      return h;
    }
  };
  struct Dominance {
    Strategy strategy;
    [[nodiscard]] bool operator()(const Instantiation* a, const Instantiation* b) const {
      return dominates(*a, *b, strategy);
    }
  };

  Strategy strategy_;
  std::unordered_map<Key, std::unique_ptr<Instantiation>, KeyHash> entries_;
  std::set<Instantiation*, Dominance> unfired_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace psmsys::ops5
