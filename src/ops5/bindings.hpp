#pragma once

// Static analysis of variable bindings in a production's LHS.
//
// OPS5 semantics: a variable's first *equality* occurrence in a positive CE
// binds it; every other occurrence (any predicate, any CE) tests against that
// binding. Variables first occurring in a negated CE are local to that CE.
// The Rete builder turns non-binding occurrences into join tests; the naive
// matcher and the RHS evaluator use the binding map directly.

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ops5/production.hpp"

namespace psmsys::ops5 {

/// Where a variable is bound: ordinal of the positive CE (0-based, counting
/// positive CEs only) and the slot within the matched WME.
struct BindingSite {
  std::uint32_t positive_ce = 0;
  SlotIndex slot = 0;
};

struct BindingAnalysis {
  /// Binding site for every variable bound by a positive CE.
  std::unordered_map<VariableId, BindingSite> sites;

  /// Variables local to each negated CE (first occurrence inside it),
  /// keyed by LHS position of the negated CE.
  std::unordered_map<std::uint32_t, std::vector<VariableId>> negative_locals;

  [[nodiscard]] std::optional<BindingSite> site(VariableId v) const {
    if (const auto it = sites.find(v); it != sites.end()) return it->second;
    return std::nullopt;
  }
};

/// Analyze a production. Throws std::invalid_argument on semantic errors:
/// a non-equality first occurrence, or an RHS variable never bound.
[[nodiscard]] BindingAnalysis analyze_bindings(const Production& production);

/// Value of a variable under an instantiation's WME list (positive CEs, in
/// order). The binding must exist.
[[nodiscard]] Value binding_value(const BindingAnalysis& analysis, VariableId var,
                                  std::span<const Wme* const> wmes);

}  // namespace psmsys::ops5
