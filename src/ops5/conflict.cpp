#include "ops5/conflict.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>

namespace psmsys::ops5 {

namespace {

/// Lexicographic comparison of descending-sorted recency vectors.
/// Returns +1 if a is more recent, -1 if b is, 0 if equal.
[[nodiscard]] int compare_recency(std::span<const TimeTag> a, std::span<const TimeTag> b) noexcept {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return a[i] > b[i] ? 1 : -1;
  }
  if (a.size() != b.size()) return a.size() > b.size() ? 1 : -1;
  return 0;
}

}  // namespace

bool dominates(const Instantiation& a, const Instantiation& b, Strategy strategy) {
  if (strategy == Strategy::Mea) {
    // MEA: recency of the WME matching the *first* CE takes precedence.
    const TimeTag ta = a.wmes.empty() ? 0 : a.wmes.front()->timetag();
    const TimeTag tb = b.wmes.empty() ? 0 : b.wmes.front()->timetag();
    if (ta != tb) return ta > tb;
  }
  // LEX: full recency ordering.
  if (const int c = compare_recency(a.recency, b.recency); c != 0) return c > 0;
  // Specificity.
  const std::size_t sa = a.production->specificity();
  const std::size_t sb = b.production->specificity();
  if (sa != sb) return sa > sb;
  // Deterministic arbitrary tie-break: earliest-created wins.
  return a.seq < b.seq;
}

ConflictSet::ConflictSet(Strategy strategy)
    : strategy_(strategy), unfired_(Dominance{strategy}) {}

void ConflictSet::add(const Production& production, std::vector<const Wme*> wmes) {
  auto inst = std::make_unique<Instantiation>();
  inst->production = &production;
  inst->recency.reserve(wmes.size());
  for (const auto* w : wmes) inst->recency.push_back(w->timetag());
  std::sort(inst->recency.begin(), inst->recency.end(), std::greater<>());
  inst->seq = next_seq_++;
  Key key{production.id(), wmes};
  inst->wmes = std::move(wmes);
  Instantiation* raw = inst.get();
  const auto [it, inserted] = entries_.emplace(std::move(key), std::move(inst));
  if (!inserted) {
    throw std::logic_error("duplicate instantiation added to conflict set");
  }
  unfired_.insert(raw);
}

void ConflictSet::remove(const Production& production, std::span<const Wme* const> wmes) {
  Key key{production.id(), std::vector<const Wme*>(wmes.begin(), wmes.end())};
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    throw std::logic_error("removing instantiation not present in conflict set");
  }
  if (!it->second->fired) unfired_.erase(it->second.get());
  entries_.erase(it);
}

const Instantiation* ConflictSet::select() {
  if (unfired_.empty()) return nullptr;
  Instantiation* best = *unfired_.begin();
  unfired_.erase(unfired_.begin());
  best->fired = true;
  return best;
}

std::vector<const Instantiation*> ConflictSet::snapshot() const {
  std::vector<const Instantiation*> out;
  out.reserve(entries_.size());
  for (const auto& [key, inst] : entries_) out.push_back(inst.get());
  return out;
}

void ConflictSet::clear() {
  unfired_.clear();
  entries_.clear();
  next_seq_ = 0;
}

}  // namespace psmsys::ops5
