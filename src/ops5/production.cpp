#include "ops5/production.hpp"

#include <stdexcept>

namespace psmsys::ops5 {

Production::Production(Symbol name, std::vector<ConditionElement> lhs, std::vector<Action> rhs)
    : name_(name), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {
  if (lhs_.empty()) throw std::invalid_argument("production needs >= 1 condition element");
  if (lhs_.front().negated) {
    throw std::invalid_argument("first condition element must be positive");
  }
  for (const auto& ce : lhs_) {
    if (!ce.negated) ++positive_ces_;
    specificity_ += 1 + ce.tests.size();  // class test counts as one
  }
}

ClassIndex Program::declare_class(std::string_view name,
                                  std::span<const std::string_view> attributes) {
  if (frozen_) throw std::logic_error("Program frozen; cannot declare class");
  const Symbol sym = symbols_.intern(name);
  if (class_by_symbol_.contains(index_of(sym))) {
    throw std::invalid_argument("duplicate WME class: " + std::string(name));
  }
  std::vector<Symbol> attrs;
  attrs.reserve(attributes.size());
  for (auto a : attributes) attrs.push_back(symbols_.intern(a));
  const auto idx = static_cast<ClassIndex>(classes_.size());
  classes_.emplace_back(sym, std::move(attrs));
  class_by_symbol_.emplace(index_of(sym), idx);
  return idx;
}

std::optional<ClassIndex> Program::class_index(Symbol name) const noexcept {
  if (auto it = class_by_symbol_.find(index_of(name)); it != class_by_symbol_.end()) {
    return it->second;
  }
  return std::nullopt;
}

VariableId Program::intern_variable(std::string_view name) {
  if (auto it = variable_ids_.find(std::string(name)); it != variable_ids_.end()) {
    return it->second;
  }
  if (frozen_) throw std::logic_error("Program frozen; cannot intern variable");
  const auto id = static_cast<VariableId>(variable_names_.size());
  variable_names_.emplace_back(name);
  variable_ids_.emplace(std::string(name), id);
  return id;
}

const std::string& Program::variable_name(VariableId v) const {
  return variable_names_.at(v);
}

void Program::add_production(Production p) {
  if (frozen_) throw std::logic_error("Program frozen; cannot add production");
  for (const auto& existing : productions_) {
    if (existing.name() == p.name()) {
      throw std::invalid_argument("duplicate production name: " + symbols_.name(p.name()));
    }
  }
  // Validate CE class indices and RHS CE references.
  for (const auto& ce : p.lhs()) {
    if (ce.cls >= classes_.size()) throw std::invalid_argument("CE references unknown class");
    for (const auto& t : ce.tests) {
      if (t.slot >= classes_[ce.cls].arity()) {
        throw std::invalid_argument("CE test references slot out of range");
      }
    }
  }
  const std::size_t n_pos = p.positive_ce_count();
  for (const auto& action : p.rhs()) {
    const auto check_ce = [&](std::uint32_t idx) {
      if (idx == 0 || idx > n_pos) {
        throw std::invalid_argument("RHS action references CE index out of range");
      }
    };
    if (const auto* m = std::get_if<ModifyAction>(&action)) check_ce(m->ce_index);
    if (const auto* r = std::get_if<RemoveAction>(&action)) check_ce(r->ce_index);
  }
  p.id_ = static_cast<std::uint32_t>(productions_.size());
  productions_.push_back(std::move(p));
}

const Production* Program::find_production(Symbol name) const noexcept {
  for (const auto& p : productions_) {
    if (p.name() == name) return &p;
  }
  return nullptr;
}

void Program::set_pack(std::string name, std::string version) {
  if (frozen_) throw std::logic_error("Program frozen; cannot set pack identity");
  pack_name_ = std::move(name);
  pack_version_ = std::move(version);
}

void Program::freeze() {
  frozen_ = true;
  symbols_.freeze();
}

}  // namespace psmsys::ops5
