#pragma once

// Clang thread-safety-analysis annotations plus an annotated std::mutex
// wrapper. libstdc++'s std::mutex carries no capability attributes, so code
// that wants `-Wthread-safety` checking locks through util::Mutex/MutexLock
// instead. On compilers without the attributes (gcc) everything expands to
// nothing and the wrappers are zero-cost shims over std::mutex.
//
// MutexLock doubles as a BasicLockable so std::condition_variable_any can
// wait on it; the analysis treats a wait as "lock continuously held", which
// matches how guarded state must be re-checked after wakeup anyway.

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define PSMSYS_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef PSMSYS_THREAD_ANNOTATION
#define PSMSYS_THREAD_ANNOTATION(x)
#endif

#define PSMSYS_CAPABILITY(x) PSMSYS_THREAD_ANNOTATION(capability(x))
#define PSMSYS_SCOPED_CAPABILITY PSMSYS_THREAD_ANNOTATION(scoped_lockable)
#define PSMSYS_GUARDED_BY(x) PSMSYS_THREAD_ANNOTATION(guarded_by(x))
#define PSMSYS_PT_GUARDED_BY(x) PSMSYS_THREAD_ANNOTATION(pt_guarded_by(x))
#define PSMSYS_REQUIRES(...) \
  PSMSYS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define PSMSYS_ACQUIRE(...) \
  PSMSYS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define PSMSYS_RELEASE(...) \
  PSMSYS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define PSMSYS_EXCLUDES(...) PSMSYS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define PSMSYS_NO_THREAD_SAFETY_ANALYSIS \
  PSMSYS_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace psmsys::util {

/// std::mutex with clang capability attributes attached.
class PSMSYS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PSMSYS_ACQUIRE() { mu_.lock(); }
  void unlock() PSMSYS_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// Scoped lock over Mutex. The public lock()/unlock() pair exists only so
/// std::condition_variable_any::wait can release/reacquire during a wait;
/// those calls happen inside the system header, outside the analysis.
class PSMSYS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PSMSYS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() PSMSYS_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // BasicLockable surface for condition_variable_any.
  void lock() PSMSYS_NO_THREAD_SAFETY_ANALYSIS { mu_.lock(); }
  void unlock() PSMSYS_NO_THREAD_SAFETY_ANALYSIS { mu_.unlock(); }

 private:
  Mutex& mu_;
};

}  // namespace psmsys::util
