#pragma once

// Virtual-time currency.
//
// The paper measured wall-clock seconds on a 16-processor Encore Multimax.
// We cannot (the benchmark host is a 1-core container), so every component of
// the engine charges its cost in abstract *work units* (wu): one wu is
// roughly one elementary match/evaluation operation. The psm virtual-time
// models schedule tasks over P simulated processors in wu-time; speedups are
// ratios of wu-times and so are independent of the calibration constant used
// to print "seconds".

#include <cstdint>
#include <compare>

namespace psmsys::util {

/// Work units: additive, totally ordered virtual cost.
using WorkUnits = std::uint64_t;

/// Calibration used when printing paper-comparable "seconds". The paper's
/// Encore NS32332 was ~1.5 MIPS; the task granularities in Table 8 (1.4-6.6 s
/// per LCC task) correspond to a few hundred thousand elementary match and
/// geometry operations per task in our workload, giving this scale.
inline constexpr double kWorkUnitsPerSecond = 6'500.0;

[[nodiscard]] constexpr double to_seconds(WorkUnits wu) noexcept {
  return static_cast<double>(wu) / kWorkUnitsPerSecond;
}

[[nodiscard]] constexpr WorkUnits from_seconds(double seconds) noexcept {
  return static_cast<WorkUnits>(seconds * kWorkUnitsPerSecond);
}

}  // namespace psmsys::util
