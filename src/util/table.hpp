#pragma once

// Console table / CSV emission for the benchmark harness. Every bench binary
// prints rows in the shape of the paper's tables and figures so that the
// measured output can be compared side by side with the published numbers.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace psmsys::util {

/// A simple column-aligned text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  /// Format helpers.
  [[nodiscard]] static std::string fmt(double v, int precision = 2);
  [[nodiscard]] static std::string fmt(std::uint64_t v);
  [[nodiscard]] static std::string fmt(int v);

  void print(std::ostream& os, const std::string& title = {}) const;
  void write_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return headers_.size(); }

  /// Raw cell access, used by the bench harness to serialize tables to JSON.
  [[nodiscard]] const std::vector<std::string>& headers() const noexcept { return headers_; }
  [[nodiscard]] const std::vector<std::vector<std::string>>& row_data() const noexcept {
    return rows_;
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace psmsys::util
