#pragma once

// Streaming statistics used throughout the measurement methodology of
// Section 4 of the paper: average task time, standard deviation, and the
// coefficient of variance that drives the choice of decomposition level.

#include <cstddef>
#include <cmath>
#include <limits>
#include <span>
#include <vector>

namespace psmsys::util {

/// Welford's online algorithm: numerically stable single-pass mean/variance.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  /// Coefficient of variance = stddev / mean (Section 4, factor 3).
  [[nodiscard]] double coefficient_of_variance() const noexcept {
    return mean_ != 0.0 ? stddev() / mean_ : 0.0;
  }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Immutable summary of a sample, in the shape of the paper's Tables 5-7 rows.
struct Summary {
  std::size_t count = 0;
  double sum = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double cv = 0.0;
  double min = 0.0;
  double max = 0.0;
};

[[nodiscard]] Summary summarize(std::span<const double> xs) noexcept;
[[nodiscard]] Summary summarize(const RunningStats& rs) noexcept;

/// Percentile of a sample (copies + sorts; fine for measurement-sized data).
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Fixed-width histogram, used for task-granularity diagnostics.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count(std::size_t i) const { return bins_.at(i); }
  [[nodiscard]] std::size_t bins() const noexcept { return bins_.size(); }
  [[nodiscard]] std::size_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::size_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] double bin_low(std::size_t i) const noexcept;
  [[nodiscard]] double bin_high(std::size_t i) const noexcept;
  [[nodiscard]] std::size_t total() const noexcept;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> bins_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace psmsys::util
