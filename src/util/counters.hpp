#pragma once

// Instrumentation counters for the OPS5/Rete engine.
//
// These mirror the measurements the paper relies on: production firings,
// RHS actions (Table 8), match vs non-match cost split (Sections 3.1 and
// 6.3), and per-cycle match effort (the quantity that bounds match
// parallelism).

#include <cstdint>

#include "util/work_units.hpp"

namespace psmsys::util {

/// Cost charged per elementary operation (in work units). These are relative
/// weights, not host cycles; they make match cost dominated by join activity
/// (as in real Rete) and RHS cost dominated by external geometry.
struct CostModel {
  WorkUnits alpha_test = 2;           ///< one constant test in the alpha net
  WorkUnits alpha_mem_insert = 2;     ///< insertion/removal in an alpha memory
  WorkUnits join_probe = 4;           ///< one token×WME consistency probe
  WorkUnits join_test = 1;            ///< one variable-binding equality test
  WorkUnits token_op = 4;             ///< beta-memory token create/delete
  WorkUnits negative_op = 3;          ///< negative-node bookkeeping
  WorkUnits conflict_set_op = 4;      ///< conflict-set insert/remove
  WorkUnits resolve_per_inst = 2;     ///< conflict resolution, per instantiation
  WorkUnits rhs_action = 8;           ///< one make/remove/modify
  WorkUnits geometry_flop = 1;        ///< one geometry arithmetic op (external call)
};

/// Aggregated work counters for one engine run (or one task).
struct WorkCounters {
  // --- match side (parallelizable across match processes) ---
  WorkUnits match_cost = 0;        ///< total wu spent in the Rete network
  std::uint64_t alpha_tests = 0;
  std::uint64_t alpha_activations = 0;
  std::uint64_t join_probes = 0;
  std::uint64_t tokens_created = 0;
  std::uint64_t tokens_deleted = 0;

  // --- sequential side ---
  WorkUnits resolve_cost = 0;      ///< conflict resolution wu
  WorkUnits rhs_cost = 0;          ///< RHS actions incl. external geometry wu
  std::uint64_t firings = 0;       ///< production firings (Table 8 "prods fired")
  std::uint64_t rhs_actions = 0;   ///< RHS actions (Table 8 "RHS actions")
  std::uint64_t wmes_added = 0;
  std::uint64_t wmes_removed = 0;
  std::uint64_t cycles = 0;        ///< recognize-act cycles executed

  [[nodiscard]] WorkUnits total_cost() const noexcept {
    return match_cost + resolve_cost + rhs_cost;
  }

  /// Fraction of total cost in match — the Amdahl bound for match parallelism.
  [[nodiscard]] double match_fraction() const noexcept {
    const WorkUnits t = total_cost();
    return t ? static_cast<double>(match_cost) / static_cast<double>(t) : 0.0;
  }

  WorkCounters& operator+=(const WorkCounters& o) noexcept {
    match_cost += o.match_cost;
    alpha_tests += o.alpha_tests;
    alpha_activations += o.alpha_activations;
    join_probes += o.join_probes;
    tokens_created += o.tokens_created;
    tokens_deleted += o.tokens_deleted;
    resolve_cost += o.resolve_cost;
    rhs_cost += o.rhs_cost;
    firings += o.firings;
    rhs_actions += o.rhs_actions;
    wmes_added += o.wmes_added;
    wmes_removed += o.wmes_removed;
    cycles += o.cycles;
    return *this;
  }
};

}  // namespace psmsys::util
