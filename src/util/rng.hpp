#pragma once

// Deterministic pseudo-random number generation for workload synthesis.
//
// All stochastic choices in this repository (scene generation, cost jitter,
// synthetic rule bases) flow through Rng so that every benchmark and test is
// bit-reproducible across runs and hosts. std::mt19937 is avoided because its
// distributions are not guaranteed identical across standard libraries;
// everything here is specified exactly.

#include <cstdint>
#include <cmath>
#include <limits>

namespace psmsys::util {

/// SplitMix64: used to seed and to hash seeds. Public domain (Vigna).
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — fast, high-quality 64-bit generator (Blackman/Vigna).
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  [[nodiscard]] constexpr std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  [[nodiscard]] constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    while (true) {
      const std::uint64_t x = next_u64();
      const auto m = static_cast<unsigned __int128>(x) * bound;
      const auto lo = static_cast<std::uint64_t>(m);
      if (lo >= bound || lo >= static_cast<std::uint64_t>(-bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform integer in the closed range [lo, hi].
  [[nodiscard]] constexpr std::int64_t next_int(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] constexpr double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] constexpr double next_double(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Standard normal via Marsaglia polar method (deterministic given state).
  [[nodiscard]] double next_normal() noexcept {
    while (true) {
      const double u = next_double(-1.0, 1.0);
      const double v = next_double(-1.0, 1.0);
      const double s = u * u + v * v;
      if (s > 0.0 && s < 1.0) return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }

  [[nodiscard]] double next_normal(double mean, double sd) noexcept {
    return mean + sd * next_normal();
  }

  /// Log-normal draw; used for heavy-tailed task-cost structure (Section 6.2's
  /// "a few tasks ... an order of magnitude larger than the average").
  [[nodiscard]] double next_lognormal(double mu, double sigma) noexcept {
    return std::exp(next_normal(mu, sigma));
  }

  /// Bernoulli trial.
  [[nodiscard]] constexpr bool next_bool(double p_true) noexcept {
    return next_double() < p_true;
  }

  /// Derive an independent child generator (stable under reordering of other draws).
  [[nodiscard]] constexpr Rng fork(std::uint64_t stream_id) noexcept {
    std::uint64_t s = state_[0] ^ (stream_id * 0x9e3779b97f4a7c15ULL);
    return Rng(splitmix64(s));
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace psmsys::util
