#include "util/table.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace psmsys::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("table needs at least one column");
}

Table& Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("row width does not match header width");
  }
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::fmt(std::uint64_t v) { return std::to_string(v); }
std::string Table::fmt(int v) { return std::to_string(v); }

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto rule = [&] {
    os << '+';
    for (auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  const auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c])) << cells[c] << " |";
    }
    os << '\n';
  };

  if (!title.empty()) os << title << '\n';
  rule();
  emit(headers_);
  rule();
  for (const auto& row : rows_) emit(row);
  rule();
}

void Table::write_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      const bool quote = cells[c].find_first_of(",\"\n") != std::string::npos;
      if (quote) {
        os << '"';
        for (char ch : cells[c]) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << cells[c];
      }
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace psmsys::util
