#include "util/stats.hpp"

#include <algorithm>
#include <stdexcept>

namespace psmsys::util {

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Summary summarize(std::span<const double> xs) noexcept {
  RunningStats rs;
  for (double x : xs) rs.add(x);
  return summarize(rs);
}

Summary summarize(const RunningStats& rs) noexcept {
  Summary s;
  s.count = rs.count();
  s.sum = rs.sum();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.cv = rs.coefficient_of_variance();
  s.min = rs.min();
  s.max = rs.max();
  return s;
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile of empty sample");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile out of [0,100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bins_(bins, 0) {
  if (bins == 0 || !(lo < hi)) throw std::invalid_argument("bad histogram bounds");
}

void Histogram::add(double x) noexcept {
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    const auto i = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) *
                                            static_cast<double>(bins_.size()));
    ++bins_[std::min(i, bins_.size() - 1)];
  }
}

double Histogram::bin_low(std::size_t i) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(bins_.size());
}

double Histogram::bin_high(std::size_t i) const noexcept {
  return bin_low(i + 1);
}

std::size_t Histogram::total() const noexcept {
  std::size_t t = underflow_ + overflow_;
  for (auto b : bins_) t += b;
  return t;
}

}  // namespace psmsys::util
