#include "spam/phases.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace psmsys::spam {

namespace {

using ops5::Engine;
using ops5::Value;

/// Cached slot lookups for reading WMEs of a class back out of an engine.
class SlotReader {
 public:
  SlotReader(const ops5::Program& program, std::string_view class_name) {
    const auto cls_sym = program.symbols().find(class_name);
    if (!cls_sym) throw std::logic_error("program lacks class " + std::string(class_name));
    cls_ = *program.class_index(*cls_sym);
    decl_ = &program.wme_class(cls_);
    symbols_ = &program.symbols();
  }

  [[nodiscard]] ops5::SlotIndex slot(std::string_view attr) const {
    const auto sym = symbols_->find(attr);
    if (!sym) throw std::logic_error("unknown attribute " + std::string(attr));
    const auto s = decl_->slot_of(*sym);
    if (s == ops5::kInvalidSlot) throw std::logic_error("class lacks ^" + std::string(attr));
    return s;
  }

  [[nodiscard]] ops5::ClassIndex cls() const noexcept { return cls_; }

 private:
  ops5::ClassIndex cls_ = 0;
  const ops5::WmeClass* decl_ = nullptr;
  const ops5::SymbolTable* symbols_ = nullptr;
};

[[nodiscard]] Value sym_value(const Engine& engine, std::string_view name) {
  const auto sym = engine.program().symbols().find(name);
  if (!sym) throw std::logic_error("symbol not in program: " + std::string(name));
  return Value(*sym);
}

[[nodiscard]] RegionClass class_of_value(const Engine& engine, const Value& v) {
  const auto name = engine.program().symbols().name(v.symbol());
  const auto cls = class_from_name(name);
  if (!cls) throw std::logic_error("not a region class: " + name);
  return *cls;
}

}  // namespace

// ---------------------------------------------------------------------------
// Seeding
// ---------------------------------------------------------------------------

void seed_region_wmes(Engine& engine, const Scene& scene, int group_size) {
  if (group_size < 1) throw std::invalid_argument("group_size must be >= 1");
  for (const auto& r : scene.regions()) {
    const double group = std::floor(static_cast<double>(r.id - 1) / group_size);
    engine.make_wme("region", {
        {"id", Value(static_cast<double>(r.id))},
        {"group", Value(group)},
        {"texture", sym_value(engine, texture_name(r.texture))},
        {"area", Value(std::round(r.area))},
        {"elong", Value(std::round(r.elongation * 10.0) / 10.0)},
        {"compact", Value(std::round(r.compactness * 100.0) / 100.0)},
        {"orient", Value(std::round(r.orientation * 100.0) / 100.0)},
    });
  }
}

void seed_fragment_wmes(Engine& engine, std::span<const Fragment> fragments) {
  const Value yes = sym_value(engine, "yes");
  for (const auto& f : fragments) {
    std::vector<std::pair<std::string_view, Value>> sets{
        {"id", Value(static_cast<double>(f.id))},
        {"region", Value(static_cast<double>(f.region))},
        {"class", sym_value(engine, class_name(f.cls))},
        {"score", Value(f.score)},
    };
    if (f.best) sets.emplace_back("best", yes);
    engine.make_wme("fragment", std::move(sets));
  }
}

void seed_constraint_wmes(Engine& engine) {
  for (const auto& c : constraint_catalog()) {
    engine.make_wme("constraint", {
        {"id", Value(static_cast<double>(c.id))},
        {"name", sym_value(engine, c.name)},
        {"subject-class", sym_value(engine, class_name(c.subject))},
        {"object-class", sym_value(engine, class_name(c.object))},
    });
  }
}

void seed_support_wmes(Engine& engine, std::span<const Fragment> fragments) {
  for (const auto& f : fragments) {
    engine.make_wme("support", {
        {"subject", Value(static_cast<double>(f.id))},
        {"count", Value(0.0)},
    });
  }
}

void seed_context_wmes(Engine& engine, std::span<const Context> contexts) {
  for (const auto& c : contexts) {
    engine.make_wme("context", {
        {"subject", Value(static_cast<double>(c.subject))},
        {"class", sym_value(engine, class_name(c.cls))},
        {"strength", Value(c.strength)},
    });
  }
}

// ---------------------------------------------------------------------------
// Extraction
// ---------------------------------------------------------------------------

std::vector<Fragment> extract_fragments(const Engine& engine) {
  const SlotReader reader(engine.program(), "fragment");
  const auto id = reader.slot("id");
  const auto region = reader.slot("region");
  const auto cls = reader.slot("class");
  const auto score = reader.slot("score");
  const auto best = reader.slot("best");

  std::vector<Fragment> out;
  for (const auto* w : engine.wmes_of_class(reader.cls())) {
    Fragment f;
    f.id = static_cast<std::uint32_t>(w->slot(id).number());
    f.region = static_cast<std::uint32_t>(w->slot(region).number());
    f.cls = class_of_value(engine, w->slot(cls));
    f.score = w->slot(score).number();
    f.best = !w->slot(best).is_nil();
    out.push_back(f);
  }
  // Deterministic order regardless of WM hash iteration.
  std::sort(out.begin(), out.end(),
            [](const Fragment& a, const Fragment& b) { return a.id < b.id; });

  // Control-process disambiguation: highest score per region wins (ties go
  // to the lowest fragment id thanks to the sort above). Pre-marked bests
  // (WMEs seeded with ^best yes, as in LCC engines) are left untouched.
  bool any_marked = false;
  for (const auto& f : out) any_marked |= f.best;
  if (!any_marked) {
    std::unordered_map<std::uint32_t, Fragment*> winner;
    for (auto& f : out) {
      auto [it, inserted] = winner.try_emplace(f.region, &f);
      if (!inserted && f.score > it->second->score) it->second = &f;
    }
    for (auto& [region, frag] : winner) frag->best = true;
  }
  return out;
}

std::vector<Context> extract_contexts(const Engine& engine) {
  const SlotReader reader(engine.program(), "context");
  const auto subject = reader.slot("subject");
  const auto cls = reader.slot("class");
  const auto strength = reader.slot("strength");

  std::vector<Context> out;
  for (const auto* w : engine.wmes_of_class(reader.cls())) {
    Context c;
    c.subject = static_cast<std::uint32_t>(w->slot(subject).number());
    c.cls = class_of_value(engine, w->slot(cls));
    c.strength = w->slot(strength).number();
    out.push_back(c);
  }
  std::sort(out.begin(), out.end(),
            [](const Context& a, const Context& b) { return a.subject < b.subject; });
  return out;
}

std::vector<ConsistencyRecord> extract_consistency(const Engine& engine) {
  const SlotReader reader(engine.program(), "consistency");
  const auto constraint = reader.slot("constraint");
  const auto subject = reader.slot("subject");
  const auto object = reader.slot("object");
  const auto result = reader.slot("result");

  std::vector<ConsistencyRecord> out;
  for (const auto* w : engine.wmes_of_class(reader.cls())) {
    ConsistencyRecord r;
    r.constraint = static_cast<std::uint32_t>(w->slot(constraint).number());
    r.subject = static_cast<std::uint32_t>(w->slot(subject).number());
    r.object = static_cast<std::uint32_t>(w->slot(object).number());
    r.result = w->slot(result) == Value(1.0);
    out.push_back(r);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Context> contexts_from_consistency(std::span<const ConsistencyRecord> records,
                                               std::span<const Fragment> fragments) {
  std::unordered_map<std::uint32_t, std::size_t> positives;
  for (const auto& r : records) {
    if (r.result) ++positives[r.subject];
  }
  std::unordered_map<std::uint32_t, RegionClass> class_of;
  for (const auto& f : fragments) class_of.emplace(f.id, f.cls);

  std::vector<Context> out;
  for (const auto& [subject, count] : positives) {
    if (count < 2) continue;
    const auto it = class_of.find(subject);
    if (it == class_of.end()) continue;
    out.push_back(Context{subject, it->second, static_cast<double>(count)});
  }
  std::sort(out.begin(), out.end(),
            [](const Context& a, const Context& b) { return a.subject < b.subject; });
  return out;
}

std::size_t count_positive_consistency(const Engine& engine) {
  const SlotReader reader(engine.program(), "consistency");
  const auto result = reader.slot("result");
  std::size_t n = 0;
  for (const auto* w : engine.wmes_of_class(reader.cls())) {
    if (w->slot(result) == Value(1.0)) ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// Sequential phase runs
// ---------------------------------------------------------------------------

RtfRun run_rtf(const Scene& scene, int group_size) {
  const PhaseProgram phase = build_rtf_program();
  auto engine = phase.make_engine(scene);
  seed_region_wmes(*engine, scene, group_size);

  const std::size_t groups =
      (scene.size() + static_cast<std::size_t>(group_size) - 1) / group_size;
  for (std::size_t g = 0; g < groups; ++g) {
    engine->make_wme("rtf-task", {{"group", Value(static_cast<double>(g))}});
  }

  RtfRun out;
  out.report.name = "RTF";
  out.report.run = engine->run();
  out.report.counters = engine->counters();
  out.fragments = extract_fragments(*engine);
  out.report.hypotheses = out.fragments.size();
  out.task_count = groups;
  return out;
}

LccRun run_lcc(const Scene& scene, std::span<const Fragment> fragments) {
  const PhaseProgram phase = build_lcc_program();
  auto engine = phase.make_engine(scene);
  seed_fragment_wmes(*engine, fragments);
  seed_constraint_wmes(*engine);
  seed_support_wmes(*engine, fragments);
  for (std::size_t i = 0; i < kRegionClassCount; ++i) {
    engine->make_wme("lcc-task", {
        {"level", Value(4.0)},
        {"subject-class", sym_value(*engine, class_name(static_cast<RegionClass>(i)))},
    });
  }

  LccRun out;
  out.report.name = "LCC";
  out.report.run = engine->run();
  out.report.counters = engine->counters();
  out.contexts = extract_contexts(*engine);
  out.positive_consistency = count_positive_consistency(*engine);
  out.report.hypotheses = out.contexts.size();
  return out;
}

FaRun run_fa(const Scene& scene, std::span<const Fragment> fragments,
             std::span<const Context> contexts) {
  const PhaseProgram phase = build_fa_program();
  auto engine = phase.make_engine(scene);
  seed_fragment_wmes(*engine, fragments);
  seed_context_wmes(*engine, contexts);
  for (std::size_t i = 0; i < kRegionClassCount; ++i) {
    engine->make_wme("fa-task", {
        {"class", sym_value(*engine, class_name(static_cast<RegionClass>(i)))},
    });
  }

  FaRun out;
  out.report.name = "FA";
  out.report.run = engine->run();
  out.report.counters = engine->counters();

  // Member counts live in fa-size WMEs (keyed by area id).
  const SlotReader size_reader(engine->program(), "fa-size");
  const auto size_fa = size_reader.slot("fa");
  const auto size_count = size_reader.slot("count");
  std::unordered_map<std::uint32_t, double> sizes;
  for (const auto* w : engine->wmes_of_class(size_reader.cls())) {
    sizes[static_cast<std::uint32_t>(w->slot(size_fa).number())] = w->slot(size_count).number();
  }

  const SlotReader reader(engine->program(), "functional-area");
  const auto id = reader.slot("id");
  const auto region = reader.slot("region");
  const auto cls = reader.slot("class");
  for (const auto* w : engine->wmes_of_class(reader.cls())) {
    FunctionalArea fa;
    fa.id = static_cast<std::uint32_t>(w->slot(id).number());
    fa.region = static_cast<std::uint32_t>(w->slot(region).number());
    fa.cls = class_of_value(*engine, w->slot(cls));
    const auto it = sizes.find(fa.id);
    fa.size = it != sizes.end() ? it->second : 1.0;
    out.areas.push_back(fa);
  }
  std::sort(out.areas.begin(), out.areas.end(),
            [](const FunctionalArea& a, const FunctionalArea& b) { return a.id < b.id; });
  out.report.hypotheses = out.areas.size();
  return out;
}

PhaseReport run_model(const Scene& scene, std::span<const FunctionalArea> areas) {
  const PhaseProgram phase = build_model_program();
  auto engine = phase.make_engine(scene);
  for (const auto& fa : areas) {
    engine->make_wme("functional-area", {
        {"id", Value(static_cast<double>(fa.id))},
        {"region", Value(static_cast<double>(fa.region))},
        {"class", sym_value(*engine, class_name(fa.cls))},
        {"size", Value(fa.size)},
    });
  }
  engine->make_wme("model-task", {{"go", sym_value(*engine, "yes")}});

  PhaseReport report;
  report.name = "MODEL";
  report.run = engine->run();
  report.counters = engine->counters();
  report.hypotheses = engine->wmes_of_class("model").size();
  return report;
}

PipelineResult run_pipeline(const Scene& scene, int rtf_group_size) {
  PipelineResult result;

  RtfRun rtf = run_rtf(scene, rtf_group_size);
  result.fragments = rtf.fragments;
  result.phases.push_back(std::move(rtf.report));

  const std::vector<Fragment> best = best_fragments(result.fragments);
  LccRun lcc = run_lcc(scene, best);
  result.contexts = lcc.contexts;
  result.phases.push_back(std::move(lcc.report));

  FaRun fa = run_fa(scene, best, result.contexts);
  result.phases.push_back(std::move(fa.report));

  PhaseReport model = run_model(scene, fa.areas);
  result.phases.push_back(std::move(model));

  return result;
}

}  // namespace psmsys::spam
