#pragma once

// Match-intensive mini production systems — analogs of Rubik, Weaver and
// Tourney, the three OPS5 systems whose ParaOPS5 match speedups the paper
// reproduces in Figure 3 (from Gupta et al. [9]).
//
// Each system is a rule ring: production k fires on a token at position k,
// advances the token, and churns `cell` WMEs. Match effort per cycle — the
// quantity that determines how much match parallelism is available — is
// controlled by the ring width, the cell memory sizes (join fan-in), and the
// join depth:
//
//   rubik analog:   wide ring, large memories, 3-way joins  -> high per-cycle
//                   match effort, near-linear match speedup (~8-9x);
//   weaver analog:  mid-sized                              -> ~5-6x;
//   tourney analog: narrow ring, small memories             -> little match
//                   effort per cycle, speedup stuck near 2x.
//
// All three are >90% match (they do almost nothing on their RHS), like the
// originals.

#include <memory>
#include <string>

#include "ops5/engine.hpp"
#include "psm/task.hpp"

namespace psmsys::spam {

struct MiniSystemConfig {
  std::string name;
  int ring_size = 16;       ///< number of productions
  int cells_per_key = 8;    ///< WMEs per alpha memory (join fan-in)
  int value_range = 4;      ///< join selectivity: ~cells/value matches per probe
  int join_depth = 2;       ///< extra cell CEs per production
  int steps = 300;          ///< recognize-act cycles to run
};

[[nodiscard]] MiniSystemConfig rubik_analog();
[[nodiscard]] MiniSystemConfig weaver_analog();
[[nodiscard]] MiniSystemConfig tourney_analog();

/// OPS5 source for a configuration (exposed for tests).
[[nodiscard]] std::string minisystem_source(const MiniSystemConfig& config);

[[nodiscard]] std::shared_ptr<const ops5::Program> build_minisystem(
    const MiniSystemConfig& config);

/// Seed working memory and run to completion with per-cycle recording;
/// the returned measurement feeds the match-parallelism model directly.
[[nodiscard]] psm::TaskMeasurement run_minisystem(const MiniSystemConfig& config);

}  // namespace psmsys::spam
