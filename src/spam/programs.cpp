#include "spam/programs.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "spam/constraints.hpp"
#include "spam/fragment.hpp"

namespace psmsys::spam {

namespace {

using ops5::ExternalContext;
using ops5::Value;

/// Fragment-id arithmetic shared with fragment.hpp: id = region*16 + ord + 1.
[[nodiscard]] std::string frag_id_expr(RegionClass cls) {
  return "(compute <r> * 16 + " +
         std::to_string(static_cast<std::uint32_t>(cls) + 1) + ")";
}

/// One RTF classification rule from an abstraction CE to a fragment. Each
/// classification runs a geometric verification outside OPS5 (the paper's
/// "linear alignment in region-to-fragment (RTF) phase" top-down activity),
/// which contributes the RTF phase's ~40% non-match time.
void emit_classifier(std::ostream& os, std::string_view rule, std::string_view abstraction_ce,
                     RegionClass cls, std::string_view score_expr) {
  os << "(p rtf-" << rule << "\n"
     << "   " << abstraction_ce << "\n"
     << "   -(fragment ^region <r> ^class " << class_name(cls) << ")\n"
     << "   -->\n"
     << "   (make fragment ^id " << frag_id_expr(cls) << " ^region <r> ^class "
     << class_name(cls) << " ^score (compute " << score_expr
     << " + (call geom-rtf-verify <r>))))\n\n";
}

}  // namespace

// ---------------------------------------------------------------------------
// RTF: heuristic classification (region -> abstraction -> fragment).
// ---------------------------------------------------------------------------

std::string rtf_source() {
  std::ostringstream os;
  os << R"((literalize region id group texture area elong compact orient)
(literalize linear region elong area)
(literalize blob region area compact)
(literalize building region elong area)
(literalize fragment id region class score best)
(literalize rtf-task group)

; --- Abstraction rules: the first classification stage groups regions into
; --- shape categories, as SPAM's region-to-fragment mapping does.
(p rtf-abstract-linear
   (rtf-task ^group <g>)
   (region ^group <g> ^id <r> ^texture paved ^elong { > 15 <e> } ^area <a>)
   -(linear ^region <r>)
   -->
   (make linear ^region <r> ^elong <e> ^area <a>))

(p rtf-abstract-blob
   (rtf-task ^group <g>)
   (region ^group <g> ^id <r> ^texture paved ^elong { < 3 <e> } ^area <a> ^compact <c>)
   -(blob ^region <r>)
   -->
   (make blob ^region <r> ^area <a> ^compact <c>))

(p rtf-abstract-building
   (rtf-task ^group <g>)
   (region ^group <g> ^id <r> ^texture roofed ^elong <e> ^area <a>)
   -(building ^region <r>)
   -->
   (make building ^region <r> ^elong <e> ^area <a>))

)";

  // --- Linear classifiers.
  emit_classifier(os, "runway", "(linear ^region <r> ^elong <e> ^area > 100000)",
                  RegionClass::Runway, "(compute 50 + <e>)");
  emit_classifier(os, "taxiway",
                  "(linear ^region <r> ^elong <e> ^area { > 10000 < 100000 })",
                  RegionClass::Taxiway, "(compute 40 + <e>)");
  emit_classifier(os, "access-road", "(linear ^region <r> ^elong <e> ^area < 10000)",
                  RegionClass::AccessRoad, "55");

  // --- Building classifiers (ambiguous band: 2 < elong < 3, 8k < area < 14k).
  emit_classifier(os, "terminal", "(building ^region <r> ^elong { > 2 < 8 } ^area > 8000)",
                  RegionClass::TerminalBuilding, "60");
  emit_classifier(os, "hangar", "(building ^region <r> ^elong < 3 ^area < 14000)",
                  RegionClass::Hangar, "(compute 62 - (compute <r> mod 5))");

  // --- Blob classifiers (ambiguous band: 25k < area < 60k tarmac vs lot).
  emit_classifier(os, "apron", "(blob ^region <r> ^area > 150000)", RegionClass::ParkingApron,
                  "65");
  emit_classifier(os, "tarmac", "(blob ^region <r> ^area { > 25000 < 160000 <a> })",
                  RegionClass::Tarmac, "(compute 40 + (compute <a> // 4000))");
  emit_classifier(os, "parking-lot", "(blob ^region <r> ^area { > 4000 < 60000 <a> })",
                  RegionClass::ParkingLot, "(compute 70 - (compute <a> // 3000))");

  os << R"(
; --- Grass: texture is decisive.
(p rtf-grass
   (rtf-task ^group <g>)
   (region ^group <g> ^id <r> ^texture grass)
   -(fragment ^region <r> ^class grassy-area)
   -->
   (make fragment ^id (compute <r> * 16 + 7) ^region <r> ^class grassy-area
         ^score (compute 80 + (call geom-rtf-verify <r>))))

; --- Weak fallback for mixed-texture regions (possible tarmac).
(p rtf-tarmac-weak
   (rtf-task ^group <g>)
   (region ^group <g> ^id <r> ^texture mixed ^elong < 2 ^area > 20000)
   -(fragment ^region <r>)
   -->
   (make fragment ^id (compute <r> * 16 + 8) ^region <r> ^class tarmac
         ^score (compute 25 + (call geom-rtf-verify <r>))))

; --- Note: best-hypothesis disambiguation happens in the control process at
; --- result-collection time (extract_fragments): an in-engine winner rule
; --- would race classification under LEX recency, crowning a hypothesis
; --- before its rivals exist.
)";
  return os.str();
}

// ---------------------------------------------------------------------------
// LCC: constraint satisfaction with explicit task WMEs at 4 levels.
// ---------------------------------------------------------------------------

std::string lcc_source() {
  std::ostringstream os;
  os << R"((literalize fragment id region class score best)
(literalize constraint id name subject-class object-class)
(literalize lcc-task level subject-class subject constraint object)
(literalize consistency constraint subject object result counted)
(literalize relation name subject object weight)
(literalize support subject count)
(literalize context subject class strength)

)";

  // --- Constraint application. Real SPAM assembled "a large collection of
  // such consistency knowledge" as per-constraint productions; we generate
  // one production per (catalog constraint, decomposition level), with the
  // constraint's classes baked into the LHS, plus one relation-recording
  // production per constraint. The task WME is "just a working memory
  // element, which initializes the production system of the process"
  // (Section 5.1). Matched combinations are unique and immutable, so OPS5
  // refraction guarantees exactly one application per component.
  for (const auto& c : constraint_catalog()) {
    const std::string subject(class_name(c.subject));
    const std::string object(class_name(c.object));
    const std::string id = std::to_string(c.id);
    const std::string make_consistency =
        "   (make consistency ^constraint " + id +
        " ^subject <s> ^object <o>\n"
        "         ^result (call geom-check " + id + " <sr> <or>)))\n\n";
    const std::string object_ce =
        "   (fragment ^id { <o> <> <s> } ^class " + object + " ^region <or> ^best yes)\n";

    os << "(p lcc-l4-" << c.name << "\n"
       << "   (lcc-task ^level 4 ^subject-class " << subject << ")\n"
       << "   (fragment ^id <s> ^class " << subject << " ^region <sr> ^best yes)\n"
       << object_ce << "   -->\n" << make_consistency;

    os << "(p lcc-l3-" << c.name << "\n"
       << "   (lcc-task ^level 3 ^subject <s>)\n"
       << "   (fragment ^id <s> ^class " << subject << " ^region <sr>)\n"
       << object_ce << "   -->\n" << make_consistency;

    os << "(p lcc-l2-" << c.name << "\n"
       << "   (lcc-task ^level 2 ^subject <s> ^constraint " << id << ")\n"
       << "   (fragment ^id <s> ^class " << subject << " ^region <sr>)\n"
       << object_ce << "   -->\n" << make_consistency;

    os << "(p lcc-l1-" << c.name << "\n"
       << "   (lcc-task ^level 1 ^subject <s> ^constraint " << id << " ^object <o>)\n"
       << "   (fragment ^id <s> ^class " << subject << " ^region <sr>)\n"
       << "   (fragment ^id <o> ^class " << object << " ^region <or>)\n"
       << "   -->\n" << make_consistency;

    // Record the named spatial relation for positive results (consumed by
    // downstream interpretation; adds the constraint-specific depth real
    // SPAM's consistency knowledge had).
    os << "(p lcc-relate-" << c.name << "\n"
       << "   (consistency ^constraint " << id << " ^subject <s> ^object <o> ^result 1)\n"
       << "   (fragment ^id <s> ^score <ss>)\n"
       << "   (fragment ^id <o> ^score <os>)\n"
       << "   -->\n"
       << "   (make relation ^name " << c.name << " ^subject <s> ^object <o>\n"
       << "         ^weight (compute <ss> + <os>)))\n\n";
  }

  os << R"(

; --- Context formation: mutually consistent hypotheses accumulate support;
; --- sufficient support creates an interpretation context (Section 2.2).
; --- The control process seeds a zero-count support WME per fragment with
; --- the base working memory.
(p lcc-support-count
   (support ^subject <s> ^count <c>)
   (consistency ^subject <s> ^result 1 ^counted nil)
   -->
   (modify 2 ^counted yes)
   (modify 1 ^count (compute <c> + 1)))

(p lcc-context
   (support ^subject <s> ^count { <n> >= 2 })
   (fragment ^id <s> ^class <sc>)
   -(context ^subject <s>)
   -->
   (make context ^subject <s> ^class <sc> ^strength <n>))

(p lcc-context-strengthen
   (context ^subject <s> ^strength <old>)
   (support ^subject <s> ^count { <n> > <old> })
   -->
   (modify 1 ^strength <n>))
)";
  return os.str();
}

// ---------------------------------------------------------------------------
// FA: functional-area aggregation.
// ---------------------------------------------------------------------------

std::string fa_source() {
  // The functional-area WME is immutable; its mutable member count lives in
  // a separate fa-size WME. This keeps fa-probe instantiations stable (no
  // re-probing — and no re-charging of geometry — when an area grows).
  return R"((literalize fragment id region class score best)
(literalize context subject class strength)
(literalize fa-task class)
(literalize functional-area id region class)
(literalize fa-size fa count)
(literalize fa-near fa fragment result)
(literalize fa-member fa fragment)

; --- Seed one functional area per class from the strongest contexts.
(p fa-seed
   (fa-task ^class <c>)
   (context ^subject <s> ^class <c> ^strength > 2)
   (fragment ^id <s> ^region <r> ^best yes)
   -(functional-area ^class <c>)
   -->
   (make functional-area ^id <s> ^region <r> ^class <c>)
   (make fa-size ^fa <s> ^count 1)
   (make fa-member ^fa <s> ^fragment <s>))

; --- Probe spatial proximity of other contexts to the functional area. The
; --- geometry runs outside OPS5 (FA "spends much of its time doing RHS
; --- evaluation outside of OPS5", Section 2.2). All matched WMEs are
; --- immutable, so refraction gives exactly one probe per pair.
(p fa-probe
   (functional-area ^id <f> ^region <fr> ^class <c>)
   (context ^subject <s> ^class <c> ^strength > 2)
   (fragment ^id { <s> <> <f> } ^region <sr>)
   -(fa-member ^fragment <s>)
   -->
   (make fa-near ^fa <f> ^fragment <s> ^result (call geom-fa-near <fr> <sr>)))

(p fa-join
   (fa-near ^fa <f> ^fragment <s> ^result 1)
   (fa-size ^fa <f> ^count <z>)
   -(fa-member ^fragment <s>)
   -->
   (make fa-member ^fa <f> ^fragment <s>)
   (modify 2 ^count (compute <z> + 1)))

; --- Contexts rejected by every nearby area seed secondary areas.
(p fa-seed-secondary
   (fa-near ^fa <f> ^fragment <s> ^result 0)
   (context ^subject <s> ^class <c> ^strength > 2)
   (fragment ^id <s> ^region <r>)
   -(fa-member ^fragment <s>)
   -(functional-area ^id <s>)
   -->
   (make functional-area ^id <s> ^region <r> ^class <c>)
   (make fa-size ^fa <s> ^count 1)
   (make fa-member ^fa <s> ^fragment <s>))
)";
}

// ---------------------------------------------------------------------------
// MODEL: scene-model assembly over functional areas.
// ---------------------------------------------------------------------------

std::string model_source() {
  // The model WME is immutable (like functional-area in the FA phase); the
  // running score lives in a model-score WME and members carry a counted
  // flag, so admissions never re-instantiate and scoring is linear.
  return R"((literalize functional-area id region class size)
(literalize model-task go)
(literalize model id)
(literalize model-score model score areas)
(literalize model-member model fa verified counted)

(p model-init
   (model-task ^go yes)
   -(model)
   -->
   (make model ^id 1)
   (make model-score ^model 1 ^score 0 ^areas 0))

; --- Every sufficiently large functional area is admitted after (simulated)
; --- stereo verification, an external geometric computation.
(p model-admit
   (model ^id <m>)
   (functional-area ^id <f> ^region <r> ^size >= 1)
   -(model-member ^model <m> ^fa <f>)
   -->
   (make model-member ^model <m> ^fa <f> ^verified (call geom-verify <r>)))

(p model-score-verified
   (model-member ^model <m> ^fa <f> ^verified 1 ^counted nil)
   (functional-area ^id <f> ^region <r>)
   (model-score ^model <m> ^score <sc> ^areas <n>)
   -->
   (modify 1 ^counted yes)
   (modify 3 ^score (compute <sc> + (call geom-fa-score <r>)) ^areas (compute <n> + 1)))
)";
}

// ---------------------------------------------------------------------------
// External registration and program construction
// ---------------------------------------------------------------------------

namespace {

[[nodiscard]] std::uint32_t arg_region(std::span<const Value> args, std::size_t i) {
  return static_cast<std::uint32_t>(args[i].number());
}

void register_geometry(ops5::ExternalRegistry& registry, ops5::SymbolTable& symbols) {
  registry.register_function(
      symbols, "geom-check", [](std::span<const Value> args, ExternalContext& ctx) {
        const auto& scene = ctx.user_data_as<const Scene>();
        const auto k = static_cast<std::uint32_t>(args[0].number());
        const auto catalog = constraint_catalog();
        const auto result =
            evaluate_constraint(catalog[k], scene, arg_region(args, 1), arg_region(args, 2));
        ctx.charge_flops(result.flops);
        return Value(result.value ? 1.0 : 0.0);
      });
  registry.register_function(
      symbols, "geom-fa-near", [](std::span<const Value> args, ExternalContext& ctx) {
        const auto& scene = ctx.user_data_as<const Scene>();
        const auto& a = scene.at(arg_region(args, 0));
        const auto& b = scene.at(arg_region(args, 1));
        const auto result = geom::near(a.polygon, b.polygon, 2800.0);
        // FA proximity is a composite check in SPAM: centroid distance plus
        // a boundary sweep over a bounded working resolution (oversized
        // regions are subsampled, so giants do not dominate the phase).
        const std::size_t verts = std::min<std::size_t>(a.polygon.size() + b.polygon.size(), 48);
        ctx.charge_flops(result.flops + 10 * verts);
        return Value(result.value ? 1.0 : 0.0);
      });
  registry.register_function(
      symbols, "geom-fa-score", [](std::span<const Value> args, ExternalContext& ctx) {
        const auto& scene = ctx.user_data_as<const Scene>();
        const auto& region = scene.at(arg_region(args, 0));
        ctx.charge_flops(6 * region.polygon.size());
        return Value(std::round(region.polygon.area() / 1000.0));
      });
  registry.register_function(
      symbols, "geom-rtf-verify", [](std::span<const Value> args, ExternalContext& ctx) {
        // Linear-alignment verification of a fresh hypothesis: a boundary
        // sweep over the region polygon; returns a small score bonus.
        const auto& scene = ctx.user_data_as<const Scene>();
        const auto& region = scene.at(arg_region(args, 0));
        ctx.charge_flops(12 * region.polygon.size());
        const double bonus = std::fmod(region.polygon.orientation_angle() * 10.0, 5.0);
        return Value(std::round(bonus));
      });
  registry.register_function(
      symbols, "geom-verify", [](std::span<const Value> args, ExternalContext& ctx) {
        // Stereo-verification stand-in: a second expensive pass over the
        // polygon (Section 2.2's top-down activity).
        const auto& scene = ctx.user_data_as<const Scene>();
        const auto& region = scene.at(arg_region(args, 0));
        ctx.charge_flops(40 * std::min<std::size_t>(region.polygon.size(), 64));
        return Value(region.polygon.area() > 500.0 ? 1.0 : 0.0);
      });
}

/// The seeding helpers (phases.cpp) reference domain symbols that may not
/// appear literally in a phase's rule text; intern them all up front so the
/// frozen symbol table is complete.
void intern_domain_symbols(ops5::SymbolTable& symbols) {
  for (std::size_t i = 0; i < kRegionClassCount; ++i) {
    symbols.intern(class_name(static_cast<RegionClass>(i)));
  }
  for (const auto t : {Texture::Paved, Texture::Roofed, Texture::Grass, Texture::Mixed}) {
    symbols.intern(texture_name(t));
  }
  for (const auto& c : constraint_catalog()) symbols.intern(c.name);
  symbols.intern("yes");
}

[[nodiscard]] PhaseProgram build_phase(const std::string& source) {
  auto program = std::make_shared<ops5::Program>();
  ops5::parse_into(*program, source);
  intern_domain_symbols(program->symbols());
  auto registry = std::make_shared<ops5::ExternalRegistry>();
  register_geometry(*registry, program->symbols());
  program->freeze();
  return PhaseProgram{program, registry};
}

}  // namespace

std::unique_ptr<ops5::Engine> PhaseProgram::make_engine(const Scene& scene,
                                                        ops5::EngineOptions options) const {
  auto engine = std::make_unique<ops5::Engine>(program, externals.get(), options);
  // Engines never mutate the scene; externals read polygons only.
  engine->set_user_data(const_cast<Scene*>(&scene));
  return engine;
}

PhaseProgram build_rtf_program() { return build_phase(rtf_source()); }
PhaseProgram build_lcc_program() { return build_phase(lcc_source()); }
PhaseProgram build_fa_program() { return build_phase(fa_source()); }
PhaseProgram build_model_program() { return build_phase(model_source()); }

}  // namespace psmsys::spam
