#pragma once

// Streaming delta schedules for the serve layer's incremental sessions.
//
// A streaming scene feeds the interpretation engine a sequence of timed
// *ticks* — batches of working-memory deltas (arrivals of new items and
// retractions of items seen earlier) — instead of one monolithic scene.
// This models the paper's interactive deployment mode: a sensor front end
// delivering region extractions as they are segmented, with the rule base
// refining its interpretation incrementally between deliveries.
//
// The generator is purely combinatorial: it decides *which* item indices
// arrive and retract on *which* tick, deterministically in the seed. What
// an "item" means (a region, a decomposition task, a counter) is the
// caller's business — the bench and example layers map indices onto real
// WME injections. Guarantees:
//
//   - every item index in [0, items) arrives exactly once across the run;
//   - a retraction only names an item that arrived on a strictly earlier
//     tick, and no item is retracted twice;
//   - tick timestamps are non-decreasing and start at 0;
//   - the same config always yields byte-identical schedules (util::Rng).

#include <cstdint>
#include <vector>

#include "spam/scene_generator.hpp"

namespace psmsys::spam {

struct StreamScheduleConfig {
  /// Total distinct items delivered over the stream's lifetime.
  std::size_t items = 200;
  /// Number of ticks the deliveries are spread across.
  std::size_t ticks = 50;
  /// Nominal inter-tick gap for the timestamps (steady-state pacing).
  std::uint64_t interval_ms = 10;
  /// 0 = perfectly even arrivals per tick; 1 = heavily clumped (a few
  /// ticks carry most of the arrivals). Interpolates linearly.
  double burstiness = 0.0;
  /// Fraction of arrived items that are later retracted (sensor
  /// revisions). Retractions are scheduled on ticks after the arrival.
  double retract_fraction = 0.0;
  std::uint64_t seed = 1;
};

struct StreamTickSpec {
  /// Timestamp offset from stream open; non-decreasing across ticks.
  std::uint64_t at_ms = 0;
  /// Item indices arriving on this tick.
  std::vector<std::size_t> arrivals;
  /// Item indices retracted on this tick (each arrived on an earlier tick).
  std::vector<std::size_t> retractions;
};

/// Build the delta schedule for a stream. Deterministic in config.seed;
/// throws std::invalid_argument on a degenerate config (zero ticks, or a
/// retract_fraction outside [0, 1]).
[[nodiscard]] std::vector<StreamTickSpec> make_stream_schedule(
    const StreamScheduleConfig& config);

/// Streaming preset for a dataset: pacing and churn knobs scaled the way
/// the batch DatasetConfig scales region counts (SF streams largest and
/// burstiest, DC retracts most, MOFF is the calm mid-size). `items` is the
/// caller's delivery count — typically the dataset's region count or a
/// bench-sized stand-in.
[[nodiscard]] StreamScheduleConfig stream_config_for(const DatasetConfig& dataset,
                                                     std::size_t items);

}  // namespace psmsys::spam
