#include "spam/minisys.hpp"

#include <sstream>

#include "ops5/parser.hpp"

namespace psmsys::spam {

MiniSystemConfig rubik_analog() {
  MiniSystemConfig c;
  c.name = "rubik";
  c.ring_size = 36;
  c.cells_per_key = 24;
  c.value_range = 8;
  c.join_depth = 3;
  c.steps = 300;
  return c;
}

MiniSystemConfig weaver_analog() {
  MiniSystemConfig c;
  c.name = "weaver";
  c.ring_size = 24;
  c.cells_per_key = 5;
  c.value_range = 3;
  c.join_depth = 2;
  c.steps = 300;
  return c;
}

MiniSystemConfig tourney_analog() {
  MiniSystemConfig c;
  c.name = "tourney";
  c.ring_size = 10;
  c.cells_per_key = 3;
  c.value_range = 3;
  c.join_depth = 1;
  c.steps = 300;
  return c;
}

std::string minisystem_source(const MiniSystemConfig& config) {
  std::ostringstream os;
  os << "(literalize token pos count)\n"
     << "(literalize cell key val)\n\n";
  for (int k = 0; k < config.ring_size; ++k) {
    os << "(p step-" << k << "\n"
       << "   (token ^pos " << k << " ^count { <c> < " << config.steps << " })\n"
       << "   (cell ^key " << k << " ^val <v>)\n";
    for (int d = 1; d <= config.join_depth; ++d) {
      const int key = (k + d) % config.ring_size;
      // Alternate equality and inequality joins for varied test profiles.
      const char* pred = d % 2 == 1 ? "" : "<> ";
      os << "   (cell ^key " << key << " ^val " << pred << "<v>)\n";
    }
    os << "   -->\n"
       << "   (modify 2 ^val (compute <v> + 0))\n"
       << "   (modify 1 ^pos " << (k + 1) % config.ring_size
       << " ^count (compute <c> + 1)))\n\n";
  }
  return os.str();
}

std::shared_ptr<const ops5::Program> build_minisystem(const MiniSystemConfig& config) {
  auto program = std::make_shared<ops5::Program>();
  ops5::parse_into(*program, minisystem_source(config));
  program->freeze();
  return program;
}

psm::TaskMeasurement run_minisystem(const MiniSystemConfig& config) {
  ops5::EngineOptions options;
  options.record_cycles = true;
  options.max_cycles = static_cast<std::uint64_t>(config.steps) + 16;
  ops5::Engine engine(build_minisystem(config), nullptr, options);

  using ops5::Value;
  for (int k = 0; k < config.ring_size; ++k) {
    for (int i = 0; i < config.cells_per_key; ++i) {
      engine.make_wme("cell", {
          {"key", Value(static_cast<double>(k))},
          {"val", Value(static_cast<double>(i % config.value_range))},
      });
    }
  }
  engine.make_wme("token", {{"pos", Value(0.0)}, {"count", Value(0.0)}});

  (void)engine.run();

  psm::TaskMeasurement m;
  m.task_id = 0;
  m.counters = engine.counters();
  const auto records = engine.cycle_records();
  m.cycles.assign(records.begin(), records.end());
  return m;
}

}  // namespace psmsys::spam
