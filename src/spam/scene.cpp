#include "spam/scene.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace psmsys::spam {

std::string_view class_name(RegionClass c) noexcept {
  switch (c) {
    case RegionClass::Runway: return "runway";
    case RegionClass::Taxiway: return "taxiway";
    case RegionClass::TerminalBuilding: return "terminal-building";
    case RegionClass::ParkingApron: return "parking-apron";
    case RegionClass::Hangar: return "hangar";
    case RegionClass::AccessRoad: return "access-road";
    case RegionClass::GrassyArea: return "grassy-area";
    case RegionClass::Tarmac: return "tarmac";
    case RegionClass::ParkingLot: return "parking-lot";
  }
  return "?";
}

std::optional<RegionClass> class_from_name(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kRegionClassCount; ++i) {
    const auto c = static_cast<RegionClass>(i);
    if (class_name(c) == name) return c;
  }
  return std::nullopt;
}

std::string_view texture_name(Texture t) noexcept {
  switch (t) {
    case Texture::Paved: return "paved";
    case Texture::Roofed: return "roofed";
    case Texture::Grass: return "grass";
    case Texture::Mixed: return "mixed";
  }
  return "?";
}

Scene::Scene(std::vector<Region> regions) : regions_(std::move(regions)) {
  by_id_.reserve(regions_.size());
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    const auto [it, inserted] = by_id_.emplace(regions_[i].id, i);
    if (!inserted) throw std::invalid_argument("duplicate region id in scene");
  }
}

const Region* Scene::find(std::uint32_t id) const noexcept {
  const auto it = by_id_.find(id);
  return it != by_id_.end() ? &regions_[it->second] : nullptr;
}

const Region& Scene::at(std::uint32_t id) const {
  const Region* r = find(id);
  if (r == nullptr) throw std::out_of_range("no region with id " + std::to_string(id));
  return *r;
}

std::size_t Scene::truth_count(RegionClass c) const noexcept {
  std::size_t n = 0;
  for (const auto& r : regions_) {
    if (r.truth == c) ++n;
  }
  return n;
}

void compute_features(Region& region) noexcept {
  const double area = region.polygon.area();
  const double perimeter = region.polygon.perimeter();
  region.area = area;
  region.elongation = region.polygon.elongation();
  region.compactness =
      perimeter > 0.0 ? 4.0 * std::numbers::pi * area / (perimeter * perimeter) : 0.0;
  region.orientation = region.polygon.orientation_angle();
}

}  // namespace psmsys::spam
