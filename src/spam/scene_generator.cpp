#include "spam/scene_generator.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace psmsys::spam {

namespace {

using geom::Polygon;
using geom::Vec2;
using util::Rng;

constexpr double kPi = std::numbers::pi;

/// Incrementally builds the region list with fresh ids.
class SceneBuilder {
 public:
  explicit SceneBuilder(const DatasetConfig& config) : config_(config), rng_(config.seed) {}

  void add(Polygon polygon, Texture texture, RegionClass truth) {
    Region r;
    r.id = next_id_++;
    r.polygon = std::move(polygon);
    r.texture = jitter_texture(texture);
    r.truth = truth;
    finish(r);
  }

  void add_noise(Polygon polygon) {
    Region r;
    r.id = next_id_++;
    r.polygon = std::move(polygon);
    r.texture = Texture::Mixed;
    r.truth = std::nullopt;
    finish(r);
  }

  [[nodiscard]] Rng& rng() noexcept { return rng_; }

  [[nodiscard]] Scene build() { return Scene(std::move(regions_)); }

  /// A blobby region: jittered regular polygon.
  [[nodiscard]] Polygon blob(Vec2 center, double radius) {
    return blob_with_sides(center, radius,
                           static_cast<int>(rng_.next_int(config_.blob_vertices_min,
                                                          config_.blob_vertices_max)));
  }

  [[nodiscard]] Polygon blob_with_sides(Vec2 center, double radius, int sides) {
    std::vector<Vec2> vs;
    vs.reserve(static_cast<std::size_t>(sides));
    const double phase = rng_.next_double(0.0, 2.0 * kPi);
    for (int i = 0; i < sides; ++i) {
      const double a = phase + 2.0 * kPi * i / sides;
      const double rr = radius * rng_.next_double(0.75, 1.15);
      vs.push_back(center + Vec2{rr * std::cos(a), rr * std::sin(a)});
    }
    return Polygon(std::move(vs));
  }

 private:
  void finish(Region& r) {
    compute_features(r);
    // Measurement noise on derived features, as a segmentation front end
    // would introduce; drives RTF hypothesis ambiguity.
    const double noise = config_.feature_noise;
    r.area *= 1.0 + rng_.next_normal(0.0, noise);
    r.elongation *= 1.0 + rng_.next_normal(0.0, noise);
    r.compactness *= 1.0 + rng_.next_normal(0.0, noise);
    if (r.area < 1.0) r.area = 1.0;
    if (r.elongation < 1.0) r.elongation = 1.0;
    regions_.push_back(std::move(r));
  }

  [[nodiscard]] Texture jitter_texture(Texture t) {
    return rng_.next_bool(0.04) ? Texture::Mixed : t;
  }

  const DatasetConfig& config_;
  Rng rng_;
  std::vector<Region> regions_;
  std::uint32_t next_id_ = 1;
};

}  // namespace

Scene generate_scene(const DatasetConfig& config) {
  SceneBuilder b(config);
  Rng& rng = b.rng();

  // Airfield frame: runways run along `base_angle`, spread laterally.
  const double base_angle = rng.next_double(0.1, 0.6);
  const Vec2 axis{std::cos(base_angle), std::sin(base_angle)};
  const Vec2 lateral{-std::sin(base_angle), std::cos(base_angle)};
  const Vec2 field_center{6000.0, 5000.0};

  struct RunwayInfo {
    Vec2 center;
    double angle;
    double length;
    double width;
  };
  std::vector<RunwayInfo> runways;

  // --- Runways: long, very elongated, paved. One crossing runway when the
  // airport has more than two (as at DCA).
  for (int i = 0; i < config.runways; ++i) {
    const bool crossing = config.runways > 2 && i == config.runways - 1;
    const double angle = crossing ? base_angle + kPi / 3.0
                                  : base_angle + rng.next_double(-0.02, 0.02);
    const double length = rng.next_double(2400.0, 3600.0);
    const double width = rng.next_double(45.0, 60.0);
    const Vec2 center = field_center + lateral * (static_cast<double>(i) * 900.0 - 900.0) +
                        axis * rng.next_double(-300.0, 300.0);
    b.add(Polygon::oriented_rectangle(center, length, width, angle), Texture::Paved,
          RegionClass::Runway);
    runways.push_back({center, angle, length, width});
  }

  // --- Grass strips flanking each runway on both sides.
  {
    int remaining = config.grass_regions;
    for (const auto& rw : runways) {
      const Vec2 side{-std::sin(rw.angle), std::cos(rw.angle)};
      for (int s = -1; s <= 1 && remaining > 0; s += 2) {
        const Vec2 center = rw.center + side * (rw.width * 0.5 + 90.0) * static_cast<double>(s);
        b.add(Polygon::oriented_rectangle(center, rw.length * 0.8, 150.0, rw.angle),
              Texture::Grass, RegionClass::GrassyArea);
        --remaining;
      }
    }
    // Remaining grass: blobs scattered over the field.
    while (remaining-- > 0) {
      const Vec2 c{rng.next_double(1000.0, 11000.0), rng.next_double(1000.0, 9000.0)};
      b.add(b.blob(c, rng.next_double(80.0, 260.0)), Texture::Grass, RegionClass::GrassyArea);
    }
  }

  // --- Taxiways: one (or more) parallel per runway plus perpendicular
  // connectors that cross the runway (the "runways intersect taxiways"
  // constraint must hold by construction).
  for (const auto& rw : runways) {
    const Vec2 side{-std::sin(rw.angle), std::cos(rw.angle)};
    for (int par = 0; par < config.parallel_taxiways_per_runway; ++par) {
      const Vec2 center =
          rw.center + side * (rw.width * 0.5 + 280.0 + 160.0 * static_cast<double>(par));
      b.add(Polygon::oriented_rectangle(center, rw.length * rng.next_double(0.7, 0.95), 25.0,
                                        rw.angle + rng.next_double(-0.015, 0.015)),
            Texture::Paved, RegionClass::Taxiway);
    }
    const Vec2 along{std::cos(rw.angle), std::sin(rw.angle)};
    for (int c = 0; c < config.connectors_per_runway; ++c) {
      const double offset =
          rw.length * (static_cast<double>(c + 1) / (config.connectors_per_runway + 1) - 0.5);
      const Vec2 center = rw.center + along * offset;
      b.add(Polygon::oriented_rectangle(center, 700.0, 23.0, rw.angle + kPi / 2.0),
            Texture::Paved, RegionClass::Taxiway);
    }
  }

  // --- Terminal complex in one corner of the field.
  const Vec2 complex_center = field_center + lateral * -2600.0 + axis * -1500.0;
  std::vector<Vec2> apron_centers;
  for (int i = 0; i < config.aprons; ++i) {
    const Vec2 c = complex_center +
                   Vec2{rng.next_double(-1400.0, 1400.0), rng.next_double(-1100.0, 1100.0)};
    const double w = rng.next_double(260.0, 420.0);
    b.add(b.blob(c, w), Texture::Paved, RegionClass::ParkingApron);
    apron_centers.push_back(c);
  }
  std::vector<Vec2> terminal_centers;
  for (int i = 0; i < config.terminals; ++i) {
    // Adjacent to an apron: placed just outside its radius.
    const Vec2 apron = apron_centers[rng.next_below(apron_centers.size())];
    const double dir = rng.next_double(0.0, 2.0 * kPi);
    const Vec2 c = apron + Vec2{std::cos(dir), std::sin(dir)} * rng.next_double(430.0, 470.0);
    b.add(Polygon::oriented_rectangle(c, rng.next_double(180.0, 320.0),
                                      rng.next_double(50.0, 90.0), dir + kPi / 2.0),
          Texture::Roofed, RegionClass::TerminalBuilding);
    terminal_centers.push_back(c);
  }
  for (int i = 0; i < config.parking_lots; ++i) {
    const Vec2 terminal = terminal_centers[rng.next_below(terminal_centers.size())];
    const Vec2 c = terminal + Vec2{rng.next_double(-350.0, 350.0), rng.next_double(-350.0, 350.0)};
    b.add(b.blob(c, rng.next_double(60.0, 140.0)), Texture::Paved, RegionClass::ParkingLot);
  }
  for (int i = 0; i < config.access_roads; ++i) {
    // Oriented to point at a terminal: `leads_to` holds by construction.
    const Vec2 terminal = terminal_centers[rng.next_below(terminal_centers.size())];
    const double dir = rng.next_double(0.0, 2.0 * kPi);
    const double dist = rng.next_double(500.0, 900.0);
    const Vec2 c = terminal + Vec2{std::cos(dir), std::sin(dir)} * dist;
    const double road_angle = std::atan2(terminal.y - c.y, terminal.x - c.x);
    b.add(Polygon::oriented_rectangle(c, rng.next_double(400.0, 700.0), 12.0,
                                      road_angle + rng.next_double(-0.03, 0.03)),
          Texture::Paved, RegionClass::AccessRoad);
  }

  // --- Maintenance area: tarmac patches with hangars abutting them.
  const Vec2 maint_center = field_center + lateral * 2400.0 + axis * 1200.0;
  std::vector<Vec2> tarmac_centers;
  for (int i = 0; i < config.tarmac_regions; ++i) {
    const Vec2 c = maint_center +
                   Vec2{rng.next_double(-2000.0, 2000.0), rng.next_double(-1600.0, 1600.0)};
    b.add(b.blob(c, rng.next_double(90.0, 220.0)), Texture::Paved, RegionClass::Tarmac);
    tarmac_centers.push_back(c);
  }
  for (int i = 0; i < config.hangars; ++i) {
    const Vec2 tarmac = tarmac_centers[rng.next_below(tarmac_centers.size())];
    const double dir = rng.next_double(0.0, 2.0 * kPi);
    const Vec2 c = tarmac + Vec2{std::cos(dir), std::sin(dir)} * rng.next_double(240.0, 300.0);
    b.add(Polygon::oriented_rectangle(c, rng.next_double(90.0, 150.0),
                                      rng.next_double(60.0, 90.0), dir),
          Texture::Roofed, RegionClass::Hangar);
  }

  // --- Unclassifiable noise regions.
  for (int i = 0; i < config.noise_regions; ++i) {
    const Vec2 c{rng.next_double(500.0, 11500.0), rng.next_double(500.0, 9500.0)};
    b.add_noise(b.blob(c, rng.next_double(30.0, 120.0)));
  }

  // --- Giant outlier regions, generated last so they land at the end of
  // FIFO task queues (Section 6.2's tail-end effect: "a few tasks in each
  // level ... have execution times an order of magnitude larger than the
  // average"). Their segmentation boundaries are proportionally more
  // detailed, so every geometric check against them costs ~giant_scale more.
  for (int i = 0; i < config.giant_regions; ++i) {
    const Vec2 c{rng.next_double(3000.0, 9000.0), rng.next_double(2500.0, 7500.0)};
    const int sides = static_cast<int>(2.0 * static_cast<double>(config.blob_vertices_max) *
                                       config.giant_scale);
    Polygon big = b.blob_with_sides(c, 250.0 * config.giant_scale, sides);
    b.add(std::move(big), Texture::Grass, RegionClass::GrassyArea);
  }

  return b.build();
}

DatasetConfig sf_config() {
  DatasetConfig c;
  c.name = "SF";
  c.seed = 0x5f5f5f01;
  // Largest airport: most regions, moderately complex polygons. Highest
  // match fraction of the three (most fragments -> largest join activity).
  c.runways = 4;
  c.parallel_taxiways_per_runway = 2;
  c.connectors_per_runway = 5;
  c.terminals = 14;
  c.aprons = 10;
  c.hangars = 14;
  c.access_roads = 24;
  c.grass_regions = 84;
  c.tarmac_regions = 62;
  c.parking_lots = 22;
  c.noise_regions = 22;
  c.blob_vertices_min = 5;
  c.blob_vertices_max = 9;
  c.giant_regions = 3;
  return c;
}

DatasetConfig dc_config() {
  DatasetConfig c;
  c.name = "DC";
  c.seed = 0xdc0dc002;
  // Washington National: compact airport, fewer regions, but segmentation
  // polygons are complex -> geometry dominates, lowest match fraction.
  c.runways = 3;
  c.parallel_taxiways_per_runway = 1;
  c.connectors_per_runway = 4;
  c.terminals = 7;
  c.aprons = 5;
  c.hangars = 7;
  c.access_roads = 12;
  c.grass_regions = 40;
  c.tarmac_regions = 30;
  c.parking_lots = 10;
  c.noise_regions = 12;
  c.blob_vertices_min = 14;
  c.blob_vertices_max = 22;
  c.giant_regions = 2;
  c.giant_scale = 3.5;
  return c;
}

DatasetConfig moff_config() {
  DatasetConfig c;
  c.name = "MOFF";
  c.seed = 0x0ffe1103;
  // Moffett Field: mid-sized military field; mid-complexity polygons.
  c.runways = 3;
  c.parallel_taxiways_per_runway = 2;
  c.connectors_per_runway = 4;
  c.terminals = 9;
  c.aprons = 7;
  c.hangars = 12;
  c.access_roads = 16;
  c.grass_regions = 60;
  c.tarmac_regions = 44;
  c.parking_lots = 14;
  c.noise_regions = 16;
  c.blob_vertices_min = 8;
  c.blob_vertices_max = 13;
  c.giant_regions = 2;
  c.giant_scale = 5.0;
  return c;
}

DatasetConfig dataset_by_name(std::string_view name) {
  if (name == "SF") return sf_config();
  if (name == "DC") return dc_config();
  if (name == "MOFF") return moff_config();
  throw std::invalid_argument("unknown dataset: " + std::string(name));
}

std::vector<DatasetConfig> all_datasets() {
  return {sf_config(), dc_config(), moff_config()};
}

}  // namespace psmsys::spam
