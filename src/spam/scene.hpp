#pragma once

// Scene model for the synthetic SPAM workload.
//
// SPAM interprets an image segmentation — a set of image regions — as
// real-world airport objects (Section 2.2). We do not have the original
// aerial imagery or its segmentations, so scenes are generated synthetically
// (scene_generator.hpp) with the geometric structure the LCC constraints
// rely on: runways crossed by taxiways, terminals adjacent to aprons, access
// roads leading to terminals, grass flanking runways, and so on.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "geom/polygon.hpp"

namespace psmsys::spam {

/// The nine object classes of the airport domain — one Level 4 task each
/// (Tables 5-7 all show 9 Level 4 tasks).
enum class RegionClass : std::uint8_t {
  Runway,
  Taxiway,
  TerminalBuilding,
  ParkingApron,
  Hangar,
  AccessRoad,
  GrassyArea,
  Tarmac,
  ParkingLot,
};

inline constexpr std::size_t kRegionClassCount = 9;

[[nodiscard]] std::string_view class_name(RegionClass c) noexcept;
[[nodiscard]] std::optional<RegionClass> class_from_name(std::string_view name) noexcept;

/// Surface appearance labels attached by the (simulated) low-level vision
/// front end; RTF classification rules combine them with geometry.
enum class Texture : std::uint8_t { Paved, Roofed, Grass, Mixed };

[[nodiscard]] std::string_view texture_name(Texture t) noexcept;

/// One segmented image region.
struct Region {
  std::uint32_t id = 0;
  geom::Polygon polygon;
  Texture texture = Texture::Paved;
  /// Ground-truth class (what the generator intended); RTF must recover it
  /// from features, and gets some regions wrong or ambiguous by design.
  std::optional<RegionClass> truth;

  // Features precomputed for RTF (rounded, as a segmentation system would
  // report them).
  double area = 0.0;
  double elongation = 0.0;
  double compactness = 0.0;  ///< 4*pi*A/P^2 in [0,1]
  double orientation = 0.0;  ///< radians in [0, pi)
};

/// A complete synthetic scene: regions plus an id index. Immutable after
/// construction; shared read-only by all PSM task processes (it plays the
/// part of the control process's initial working memory copy).
class Scene {
 public:
  explicit Scene(std::vector<Region> regions);

  [[nodiscard]] std::span<const Region> regions() const noexcept { return regions_; }
  [[nodiscard]] const Region* find(std::uint32_t id) const noexcept;
  [[nodiscard]] const Region& at(std::uint32_t id) const;
  [[nodiscard]] std::size_t size() const noexcept { return regions_.size(); }

  /// Number of regions whose ground truth is `c`.
  [[nodiscard]] std::size_t truth_count(RegionClass c) const noexcept;

 private:
  std::vector<Region> regions_;
  std::unordered_map<std::uint32_t, std::size_t> by_id_;
};

/// Compute the derived features of a region from its polygon (id, texture and
/// truth left untouched).
void compute_features(Region& region) noexcept;

}  // namespace psmsys::spam
