#include "spam/constraints.hpp"

#include <stdexcept>
#include <vector>

namespace psmsys::spam {

namespace {

using RC = RegionClass;
using PK = PredicateKind;

[[nodiscard]] std::vector<Constraint> make_catalog() {
  std::vector<Constraint> catalog;
  std::uint32_t next_id = 0;
  const auto add = [&](std::string name, RC subject, RC object, PK kind, double param,
                       bool swapped = false) {
    catalog.push_back({next_id++, std::move(name), subject, object, kind, param, swapped});
  };

  // Runway.
  add("runway-intersects-taxiway", RC::Runway, RC::Taxiway, PK::Intersects, 0.0);
  add("runway-flanked-by-grass", RC::Runway, RC::GrassyArea, PK::FlankedBy, 250.0);
  add("runway-aligned-with-runway", RC::Runway, RC::Runway, PK::AlignedWith, 0.1);

  // Taxiway.
  add("taxiway-intersects-runway", RC::Taxiway, RC::Runway, PK::Intersects, 0.0);
  add("taxiway-aligned-with-taxiway", RC::Taxiway, RC::Taxiway, PK::AlignedWith, 0.1);
  add("taxiway-near-apron", RC::Taxiway, RC::ParkingApron, PK::Near, 2500.0);
  add("taxiway-near-tarmac", RC::Taxiway, RC::Tarmac, PK::Near, 2500.0);

  // Terminal building.
  add("terminal-adjacent-to-apron", RC::TerminalBuilding, RC::ParkingApron, PK::AdjacentTo,
      250.0);
  add("terminal-near-parking-lot", RC::TerminalBuilding, RC::ParkingLot, PK::Near, 600.0);
  add("access-road-leads-to-terminal", RC::TerminalBuilding, RC::AccessRoad, PK::LeadsTo,
      1600.0, /*swapped=*/true);
  add("terminal-near-terminal", RC::TerminalBuilding, RC::TerminalBuilding, PK::Near, 2000.0);

  // Parking apron.
  add("apron-adjacent-to-terminal", RC::ParkingApron, RC::TerminalBuilding, PK::AdjacentTo,
      250.0);
  add("apron-near-taxiway", RC::ParkingApron, RC::Taxiway, PK::Near, 2500.0);
  add("apron-near-apron", RC::ParkingApron, RC::ParkingApron, PK::Near, 2500.0);

  // Hangar.
  add("hangar-adjacent-to-tarmac", RC::Hangar, RC::Tarmac, PK::AdjacentTo, 250.0);
  add("hangar-near-hangar", RC::Hangar, RC::Hangar, PK::Near, 2000.0);
  add("hangar-near-taxiway", RC::Hangar, RC::Taxiway, PK::Near, 3000.0);

  // Access road.
  add("road-leads-to-terminal", RC::AccessRoad, RC::TerminalBuilding, PK::LeadsTo, 1600.0);
  add("road-leads-to-parking-lot", RC::AccessRoad, RC::ParkingLot, PK::LeadsTo, 1200.0);
  add("road-aligned-with-road", RC::AccessRoad, RC::AccessRoad, PK::AlignedWith, 0.15);

  // Grassy area.
  add("grass-adjacent-to-runway", RC::GrassyArea, RC::Runway, PK::AdjacentTo, 300.0);
  add("grass-near-grass", RC::GrassyArea, RC::GrassyArea, PK::Near, 1500.0);
  add("grass-near-taxiway", RC::GrassyArea, RC::Taxiway, PK::Near, 1500.0);
  add("grass-near-tarmac", RC::GrassyArea, RC::Tarmac, PK::Near, 1500.0);

  // Tarmac.
  add("tarmac-adjacent-to-hangar", RC::Tarmac, RC::Hangar, PK::AdjacentTo, 350.0);
  add("tarmac-near-apron", RC::Tarmac, RC::ParkingApron, PK::Near, 4000.0);
  add("tarmac-near-tarmac", RC::Tarmac, RC::Tarmac, PK::Near, 1500.0);

  // Parking lot.
  add("lot-near-terminal", RC::ParkingLot, RC::TerminalBuilding, PK::Near, 600.0);
  add("road-leads-to-lot", RC::ParkingLot, RC::AccessRoad, PK::LeadsTo, 1200.0,
      /*swapped=*/true);
  add("lot-near-lot", RC::ParkingLot, RC::ParkingLot, PK::Near, 1200.0);

  return catalog;
}

}  // namespace

std::span<const Constraint> constraint_catalog() {
  static const std::vector<Constraint> catalog = make_catalog();
  return catalog;
}

std::vector<const Constraint*> constraints_for(RegionClass subject) {
  std::vector<const Constraint*> out;
  for (const auto& c : constraint_catalog()) {
    if (c.subject == subject) out.push_back(&c);
  }
  return out;
}

geom::PredicateResult evaluate_constraint(const Constraint& constraint, const Scene& scene,
                                          std::uint32_t subject_region,
                                          std::uint32_t object_region) {
  const geom::Polygon& s = scene.at(subject_region).polygon;
  const geom::Polygon& o = scene.at(object_region).polygon;
  const geom::Polygon& a = constraint.swapped ? o : s;
  const geom::Polygon& b = constraint.swapped ? s : o;
  switch (constraint.kind) {
    case PredicateKind::Intersects: return geom::intersects(a, b);
    case PredicateKind::AdjacentTo: return geom::adjacent_to(a, b, constraint.param);
    case PredicateKind::ContainsRegion: return geom::contains_region(a, b);
    case PredicateKind::Near: return geom::near(a, b, constraint.param);
    case PredicateKind::AlignedWith: return geom::aligned_with(a, b, constraint.param);
    case PredicateKind::PerpendicularTo:
      return geom::perpendicular_to(a, b, constraint.param);
    case PredicateKind::LeadsTo: return geom::leads_to(a, b, constraint.param);
    case PredicateKind::FlankedBy: return geom::flanked_by(a, b, constraint.param);
  }
  throw std::logic_error("unknown predicate kind");
}

}  // namespace psmsys::spam
