#include "spam/decomposition.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

namespace psmsys::spam {

namespace {

using ops5::Engine;
using ops5::Value;

[[nodiscard]] Value sym_value(const Engine& engine, std::string_view name) {
  const auto sym = engine.program().symbols().find(name);
  if (!sym) throw std::logic_error("symbol not in program: " + std::string(name));
  return Value(*sym);
}

/// Factory for LCC task processes: each owns an engine with the fragment +
/// constraint base WM ("a copy of the initial working memory supplied by the
/// control process", Section 5.1).
[[nodiscard]] psm::TaskProcessFactory lcc_factory(const Scene& scene,
                                                  std::shared_ptr<const std::vector<Fragment>> fragments,
                                                  bool record_cycles) {
  // One shared compiled program bundle; engines are per process.
  auto phase = std::make_shared<const PhaseProgram>(build_lcc_program());
  psm::TaskProcessFactory factory;
  factory.make_engine = [phase, &scene, record_cycles] {
    ops5::EngineOptions options;
    options.record_cycles = record_cycles;
    return phase->make_engine(scene, options);
  };
  factory.base_init = [fragments](Engine& engine) {
    seed_fragment_wmes(engine, *fragments);
    seed_constraint_wmes(engine);
    seed_support_wmes(engine, *fragments);
  };
  return factory;
}

void push_task(std::vector<psm::Task>& tasks, std::string label,
               std::function<void(Engine&)> inject) {
  psm::Task t;
  t.id = tasks.size();
  t.label = std::move(label);
  t.inject = std::move(inject);
  tasks.push_back(std::move(t));
}

}  // namespace

Decomposition lcc_decomposition(int level, const Scene& scene,
                                std::vector<Fragment> best_fragments, bool record_cycles) {
  if (level < 1 || level > 4) throw std::invalid_argument("LCC level must be 1..4");

  // FIFO order: fragments by id (== region order; giants last).
  std::sort(best_fragments.begin(), best_fragments.end(),
            [](const Fragment& a, const Fragment& b) { return a.id < b.id; });
  auto fragments = std::make_shared<const std::vector<Fragment>>(std::move(best_fragments));

  Decomposition d;
  d.factory = lcc_factory(scene, fragments, record_cycles);

  const auto num = [](auto v) { return Value(static_cast<double>(v)); };

  switch (level) {
    case 4:
      for (std::size_t i = 0; i < kRegionClassCount; ++i) {
        const auto cls = static_cast<RegionClass>(i);
        push_task(d.tasks, "L4 " + std::string(class_name(cls)), [cls, num](Engine& e) {
          e.make_wme("lcc-task", {{"level", Value(4.0)},
                                  {"subject-class", sym_value(e, class_name(cls))}});
        });
      }
      break;

    case 3:
      for (const auto& f : *fragments) {
        push_task(d.tasks, "L3 subj=" + std::to_string(f.id), [id = f.id, num](Engine& e) {
          e.make_wme("lcc-task", {{"level", Value(3.0)}, {"subject", num(id)}});
        });
      }
      break;

    case 2:
      for (const auto& f : *fragments) {
        for (const Constraint* c : constraints_for(f.cls)) {
          push_task(d.tasks, "L2 subj=" + std::to_string(f.id) + " k=" + c->name,
                    [id = f.id, k = c->id, num](Engine& e) {
                      e.make_wme("lcc-task", {{"level", Value(2.0)},
                                              {"subject", num(id)},
                                              {"constraint", num(k)}});
                    });
        }
      }
      break;

    case 1:
      for (const auto& f : *fragments) {
        for (const Constraint* c : constraints_for(f.cls)) {
          for (const auto& other : *fragments) {
            if (other.id == f.id || other.cls != c->object) continue;
            push_task(d.tasks,
                      "L1 subj=" + std::to_string(f.id) + " k=" + std::to_string(c->id) +
                          " obj=" + std::to_string(other.id),
                      [id = f.id, k = c->id, obj = other.id, num](Engine& e) {
                        e.make_wme("lcc-task", {{"level", Value(1.0)},
                                                {"subject", num(id)},
                                                {"constraint", num(k)},
                                                {"object", num(obj)}});
                      });
          }
        }
      }
      break;

    default:
      break;
  }
  return d;
}

Decomposition rtf_decomposition(const Scene& scene, int group_size, bool record_cycles) {
  if (group_size < 1) throw std::invalid_argument("group_size must be >= 1");

  auto phase = std::make_shared<const PhaseProgram>(build_rtf_program());
  Decomposition d;
  d.factory.make_engine = [phase, &scene, record_cycles] {
    ops5::EngineOptions options;
    options.record_cycles = record_cycles;
    return phase->make_engine(scene, options);
  };
  d.factory.base_init = [&scene, group_size](Engine& engine) {
    seed_region_wmes(engine, scene, group_size);
  };

  const std::size_t groups =
      (scene.size() + static_cast<std::size_t>(group_size) - 1) / group_size;
  for (std::size_t g = 0; g < groups; ++g) {
    push_task(d.tasks, "RTF group " + std::to_string(g), [g](Engine& e) {
      e.make_wme("rtf-task", {{"group", Value(static_cast<double>(g))}});
    });
  }
  return d;
}

std::vector<psm::TaskMeasurement> run_baseline(const Decomposition& decomposition) {
  psm::TaskRunner runner(decomposition.factory);
  std::vector<psm::TaskMeasurement> out;
  out.reserve(decomposition.tasks.size());
  for (const auto& task : decomposition.tasks) out.push_back(runner.run(task));
  return out;
}

}  // namespace psmsys::spam
