#include "spam/decomposition.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <stdexcept>

namespace psmsys::spam {

namespace {

using analysis::AbstractVal;
using ops5::ClassIndex;
using ops5::Engine;
using ops5::SlotIndex;
using ops5::Value;

[[nodiscard]] Value sym_value(const Engine& engine, std::string_view name) {
  const auto sym = engine.program().symbols().find(name);
  if (!sym) throw std::logic_error("symbol not in program: " + std::string(name));
  return Value(*sym);
}

// --- Spec-building helpers (mirror the runtime seeding/injection exactly).

[[nodiscard]] ClassIndex spec_class(const ops5::Program& program, std::string_view name) {
  const auto sym = program.symbols().find(name);
  if (!sym) throw std::logic_error("class not in program: " + std::string(name));
  const auto idx = program.class_index(*sym);
  if (!idx) throw std::logic_error("not a WME class: " + std::string(name));
  return *idx;
}

[[nodiscard]] SlotIndex spec_slot(const ops5::Program& program, ClassIndex cls,
                                  std::string_view attr) {
  const auto sym = program.symbols().find(attr);
  if (!sym) throw std::logic_error("attribute not in program: " + std::string(attr));
  const auto slot = program.wme_class(cls).slot_of(*sym);
  if (slot == ops5::kInvalidSlot) throw std::logic_error("class lacks attribute: " + std::string(attr));
  return slot;
}

[[nodiscard]] Value spec_sym(const ops5::Program& program, std::string_view name) {
  const auto sym = program.symbols().find(name);
  if (!sym) throw std::logic_error("symbol not in program: " + std::string(name));
  return Value(*sym);
}

/// Factory for LCC task processes: each owns an engine with the fragment +
/// constraint base WM ("a copy of the initial working memory supplied by the
/// control process", Section 5.1).
[[nodiscard]] psm::TaskProcessFactory lcc_factory(std::shared_ptr<const PhaseProgram> phase,
                                                  const Scene& scene,
                                                  std::shared_ptr<const std::vector<Fragment>> fragments,
                                                  bool record_cycles) {
  psm::TaskProcessFactory factory;
  factory.make_engine = [phase, &scene, record_cycles] {
    ops5::EngineOptions options;
    options.record_cycles = record_cycles;
    return phase->make_engine(scene, options);
  };
  factory.base_init = [fragments](Engine& engine) {
    seed_fragment_wmes(engine, *fragments);
    seed_constraint_wmes(engine);
    seed_support_wmes(engine, *fragments);
  };
  return factory;
}

void push_task(std::vector<psm::Task>& tasks, std::string label,
               std::function<void(Engine&)> inject) {
  psm::Task t;
  t.id = tasks.size();
  t.label = std::move(label);
  t.inject = std::move(inject);
  tasks.push_back(std::move(t));
}

/// Record the static mirror of the task the runtime just pushed: one
/// injected WME of `cls` with the given slot values.
void push_task_spec(analysis::DecompositionSpec& spec, const std::vector<psm::Task>& tasks,
                    ClassIndex cls,
                    std::vector<std::pair<SlotIndex, Value>> slots) {
  analysis::TaskSpec ts;
  ts.task_id = tasks.back().id;
  ts.label = tasks.back().label;
  ts.wmes.push_back(analysis::TaskWmeSpec{cls, std::move(slots)});
  spec.tasks.push_back(std::move(ts));
}

/// Class roles + scene facts of the LCC rule base. Base classes are seeded
/// by the control process and immutable during the run (support's ^count is
/// task-local bookkeeping that never reaches merged results); the merged
/// result is `consistency`, keyed by the (constraint, subject, object)
/// triple that extract_consistency dedups on. Facts: the seeded fragments
/// tie each ^class to the finite ^id and ^region sets of that class.
[[nodiscard]] analysis::DecompositionSpec lcc_spec(std::shared_ptr<const ops5::Program> program,
                                                   const std::vector<Fragment>& fragments) {
  analysis::DecompositionSpec spec;
  spec.program = program;
  const auto& p = *program;

  const ClassIndex fragment_cls = spec_class(p, "fragment");
  const ClassIndex consistency_cls = spec_class(p, "consistency");
  spec.base_classes = {fragment_cls, spec_class(p, "constraint"), spec_class(p, "support")};
  spec.result_classes = {{consistency_cls,
                          {spec_slot(p, consistency_cls, "constraint"),
                           spec_slot(p, consistency_cls, "subject"),
                           spec_slot(p, consistency_cls, "object")}}};
  spec.scratch_classes = {spec_class(p, "lcc-task"), spec_class(p, "relation"),
                          spec_class(p, "context")};

  const SlotIndex frag_class = spec_slot(p, fragment_cls, "class");
  const SlotIndex frag_id = spec_slot(p, fragment_cls, "id");
  const SlotIndex frag_region = spec_slot(p, fragment_cls, "region");
  for (std::size_t i = 0; i < kRegionClassCount; ++i) {
    const auto cls = static_cast<RegionClass>(i);
    std::vector<Value> ids;
    std::vector<Value> regions;
    for (const auto& f : fragments) {
      if (f.cls != cls) continue;
      ids.emplace_back(static_cast<double>(f.id));
      regions.emplace_back(static_cast<double>(f.region));
    }
    spec.facts.push_back(analysis::DataFact{
        fragment_cls,
        frag_class,
        spec_sym(p, class_name(cls)),
        {{frag_id, AbstractVal::finite(std::move(ids))},
         {frag_region, AbstractVal::finite(std::move(regions))}}});
  }
  return spec;
}

/// Class roles + scene facts of the RTF rule base. The merged result is
/// `fragment`, keyed by (id, region, class) — ids already encode
/// (region, class), so any one key being disjoint separates two writes.
/// Facts tie ^group and ^texture to the finite region-id sets of the scene,
/// mirroring seed_region_wmes.
[[nodiscard]] analysis::DecompositionSpec rtf_spec(std::shared_ptr<const ops5::Program> program,
                                                   const Scene& scene, int group_size) {
  analysis::DecompositionSpec spec;
  spec.program = program;
  const auto& p = *program;

  const ClassIndex region_cls = spec_class(p, "region");
  const ClassIndex fragment_cls = spec_class(p, "fragment");
  spec.base_classes = {region_cls};
  spec.result_classes = {{fragment_cls,
                          {spec_slot(p, fragment_cls, "id"),
                           spec_slot(p, fragment_cls, "region"),
                           spec_slot(p, fragment_cls, "class")}}};
  spec.scratch_classes = {spec_class(p, "rtf-task"), spec_class(p, "linear"),
                          spec_class(p, "blob"), spec_class(p, "building")};

  const SlotIndex region_group = spec_slot(p, region_cls, "group");
  const SlotIndex region_texture = spec_slot(p, region_cls, "texture");
  const SlotIndex region_id = spec_slot(p, region_cls, "id");
  std::map<double, std::vector<Value>> by_group;
  std::map<Texture, std::vector<Value>> by_texture;
  for (const auto& r : scene.regions()) {
    const double group = std::floor(static_cast<double>(r.id - 1) / group_size);
    by_group[group].emplace_back(static_cast<double>(r.id));
    by_texture[r.texture].emplace_back(static_cast<double>(r.id));
  }
  for (auto& [group, ids] : by_group) {
    spec.facts.push_back(analysis::DataFact{
        region_cls, region_group, Value(group), {{region_id, AbstractVal::finite(std::move(ids))}}});
  }
  for (const Texture texture : {Texture::Paved, Texture::Roofed, Texture::Grass, Texture::Mixed}) {
    auto it = by_texture.find(texture);
    std::vector<Value> ids = it != by_texture.end() ? std::move(it->second) : std::vector<Value>{};
    spec.facts.push_back(analysis::DataFact{
        region_cls, region_texture, spec_sym(p, texture_name(texture)),
        {{region_id, AbstractVal::finite(std::move(ids))}}});
  }
  return spec;
}

}  // namespace

Decomposition lcc_decomposition(int level, const Scene& scene,
                                std::vector<Fragment> best_fragments, bool record_cycles) {
  if (level < 1 || level > 4) throw std::invalid_argument("LCC level must be 1..4");

  // FIFO order: fragments by id (== region order; giants last).
  std::sort(best_fragments.begin(), best_fragments.end(),
            [](const Fragment& a, const Fragment& b) { return a.id < b.id; });
  auto fragments = std::make_shared<const std::vector<Fragment>>(std::move(best_fragments));

  // One shared compiled program bundle; engines are per process.
  auto phase = std::make_shared<const PhaseProgram>(build_lcc_program());

  Decomposition d;
  d.factory = lcc_factory(phase, scene, fragments, record_cycles);
  d.spec = lcc_spec(phase->program, *fragments);

  const auto num = [](auto v) { return Value(static_cast<double>(v)); };

  const ClassIndex task_cls = spec_class(*phase->program, "lcc-task");
  const SlotIndex s_level = spec_slot(*phase->program, task_cls, "level");
  const SlotIndex s_subject_class = spec_slot(*phase->program, task_cls, "subject-class");
  const SlotIndex s_subject = spec_slot(*phase->program, task_cls, "subject");
  const SlotIndex s_constraint = spec_slot(*phase->program, task_cls, "constraint");
  const SlotIndex s_object = spec_slot(*phase->program, task_cls, "object");

  switch (level) {
    case 4:
      for (std::size_t i = 0; i < kRegionClassCount; ++i) {
        const auto cls = static_cast<RegionClass>(i);
        push_task(d.tasks, "L4 " + std::string(class_name(cls)), [cls, num](Engine& e) {
          e.make_wme("lcc-task", {{"level", Value(4.0)},
                                  {"subject-class", sym_value(e, class_name(cls))}});
        });
        push_task_spec(d.spec, d.tasks, task_cls,
                       {{s_level, Value(4.0)},
                        {s_subject_class, spec_sym(*phase->program, class_name(cls))}});
      }
      break;

    case 3:
      for (const auto& f : *fragments) {
        push_task(d.tasks, "L3 subj=" + std::to_string(f.id), [id = f.id, num](Engine& e) {
          e.make_wme("lcc-task", {{"level", Value(3.0)}, {"subject", num(id)}});
        });
        push_task_spec(d.spec, d.tasks, task_cls,
                       {{s_level, Value(3.0)}, {s_subject, num(f.id)}});
      }
      break;

    case 2:
      for (const auto& f : *fragments) {
        for (const Constraint* c : constraints_for(f.cls)) {
          push_task(d.tasks, "L2 subj=" + std::to_string(f.id) + " k=" + c->name,
                    [id = f.id, k = c->id, num](Engine& e) {
                      e.make_wme("lcc-task", {{"level", Value(2.0)},
                                              {"subject", num(id)},
                                              {"constraint", num(k)}});
                    });
          push_task_spec(d.spec, d.tasks, task_cls,
                         {{s_level, Value(2.0)},
                          {s_subject, num(f.id)},
                          {s_constraint, num(c->id)}});
        }
      }
      break;

    case 1:
      for (const auto& f : *fragments) {
        for (const Constraint* c : constraints_for(f.cls)) {
          for (const auto& other : *fragments) {
            if (other.id == f.id || other.cls != c->object) continue;
            push_task(d.tasks,
                      "L1 subj=" + std::to_string(f.id) + " k=" + std::to_string(c->id) +
                          " obj=" + std::to_string(other.id),
                      [id = f.id, k = c->id, obj = other.id, num](Engine& e) {
                        e.make_wme("lcc-task", {{"level", Value(1.0)},
                                                {"subject", num(id)},
                                                {"constraint", num(k)},
                                                {"object", num(obj)}});
                      });
            push_task_spec(d.spec, d.tasks, task_cls,
                           {{s_level, Value(1.0)},
                            {s_subject, num(f.id)},
                            {s_constraint, num(c->id)},
                            {s_object, num(other.id)}});
          }
        }
      }
      break;

    default:
      break;
  }
  return d;
}

Decomposition rtf_decomposition(const Scene& scene, int group_size, bool record_cycles) {
  if (group_size < 1) throw std::invalid_argument("group_size must be >= 1");

  auto phase = std::make_shared<const PhaseProgram>(build_rtf_program());
  Decomposition d;
  d.factory.make_engine = [phase, &scene, record_cycles] {
    ops5::EngineOptions options;
    options.record_cycles = record_cycles;
    return phase->make_engine(scene, options);
  };
  d.factory.base_init = [&scene, group_size](Engine& engine) {
    seed_region_wmes(engine, scene, group_size);
  };

  d.spec = rtf_spec(phase->program, scene, group_size);
  const ClassIndex task_cls = spec_class(*phase->program, "rtf-task");
  const SlotIndex s_group = spec_slot(*phase->program, task_cls, "group");

  const std::size_t groups =
      (scene.size() + static_cast<std::size_t>(group_size) - 1) / group_size;
  for (std::size_t g = 0; g < groups; ++g) {
    push_task(d.tasks, "RTF group " + std::to_string(g), [g](Engine& e) {
      e.make_wme("rtf-task", {{"group", Value(static_cast<double>(g))}});
    });
    push_task_spec(d.spec, d.tasks, task_cls, {{s_group, Value(static_cast<double>(g))}});
  }
  return d;
}

std::vector<psm::TaskMeasurement> run_baseline(const Decomposition& decomposition) {
  psm::TaskRunner runner(decomposition.factory);
  std::vector<psm::TaskMeasurement> out;
  out.reserve(decomposition.tasks.size());
  for (const auto& task : decomposition.tasks) out.push_back(runner.run(task));
  return out;
}

}  // namespace psmsys::spam
