#pragma once

// Task decompositions of the LCC and RTF phases (Section 4, Figure 4).
//
//   Level 4: one task per object class (9 tasks);
//   Level 3: one task per object (fragment hypothesis);
//   Level 2: one task per (constraint, object) pair;
//   Level 1: one task per constraint component — a single object pair check.
//
// Tasks are emitted in FIFO queue order: fragments in region-id order, so the
// oversized late-generated regions land at the end of the queue (the paper's
// tail-end effect, Section 6.2). RTF decomposes into region groups of
// roughly Level-2 granularity (Section 4, last paragraph).

#include <vector>

#include "analysis/interference.hpp"
#include "psm/task.hpp"
#include "spam/fragment.hpp"
#include "spam/phases.hpp"
#include "spam/programs.hpp"
#include "spam/scene_generator.hpp"

namespace psmsys::spam {

/// A decomposition: the factory builds a task process (engine + base WM);
/// tasks inject the per-task WMEs. `spec` is the matching static description
/// (rule base, class roles, scene-derived data facts, task injections) that
/// analysis::check_interference certifies independent — the machine-checked
/// form of Section 5.1's "tasks are independent OPS5 runs".
struct Decomposition {
  psm::TaskProcessFactory factory;
  std::vector<psm::Task> tasks;
  analysis::DecompositionSpec spec;
};

/// LCC decomposition at `level` (1..4). `scene` and `fragments` must outlive
/// the decomposition (the factory and tasks capture references via the
/// phase program's user data and copies of fragment data).
///
/// `record_cycles` enables per-cycle records on the task engines — required
/// when the measurements will feed the match-parallelism model.
[[nodiscard]] Decomposition lcc_decomposition(int level, const Scene& scene,
                                              std::vector<Fragment> best_fragments,
                                              bool record_cycles = false);

/// RTF decomposition into region groups of `group_size` consecutive ids.
[[nodiscard]] Decomposition rtf_decomposition(const Scene& scene, int group_size,
                                              bool record_cycles = false);

/// Run every task of a decomposition on a single task process, in order —
/// the BASELINE configuration of Section 5.2 — returning per-task
/// measurements.
[[nodiscard]] std::vector<psm::TaskMeasurement> run_baseline(const Decomposition& decomposition);

}  // namespace psmsys::spam
