#pragma once

// Phase execution: seeding working memory from scenes/fragments, running the
// four interpretation phases, and extracting their products. This is the
// "control process" side of SPAM/PSM — everything here is also reused by the
// task decompositions (decomposition.hpp) that split LCC and RTF into
// parallel tasks.

#include <cstdint>
#include <string>
#include <vector>

#include "ops5/engine.hpp"
#include "spam/constraints.hpp"
#include "spam/fragment.hpp"
#include "spam/programs.hpp"
#include "spam/scene.hpp"

namespace psmsys::spam {

/// An interpretation context produced by LCC (a consistent hypothesis with
/// spatial support, Section 2.2).
struct Context {
  std::uint32_t subject = 0;  ///< fragment id
  RegionClass cls = RegionClass::Runway;
  double strength = 0.0;
};

// ---------------------------------------------------------------------------
// Working-memory seeding (the control process's "copy of the initial working
// memory supplied to each task process", Section 5.1)
// ---------------------------------------------------------------------------

/// Add one region WME per scene region. `group_size` consecutive ids share a
/// ^group value — the RTF task decomposition unit.
void seed_region_wmes(ops5::Engine& engine, const Scene& scene, int group_size);

/// Add one fragment WME per hypothesis.
void seed_fragment_wmes(ops5::Engine& engine, std::span<const Fragment> fragments);

/// Add one constraint WME per catalog entry.
void seed_constraint_wmes(ops5::Engine& engine);

/// Add one zero-count support WME per fragment (LCC base WM).
void seed_support_wmes(ops5::Engine& engine, std::span<const Fragment> fragments);

/// Add context WMEs (input of FA).
void seed_context_wmes(ops5::Engine& engine, std::span<const Context> contexts);

// ---------------------------------------------------------------------------
// Extraction
// ---------------------------------------------------------------------------

[[nodiscard]] std::vector<Fragment> extract_fragments(const ops5::Engine& engine);
[[nodiscard]] std::vector<Context> extract_contexts(const ops5::Engine& engine);

/// One constraint application result (what LCC task processes hand back to
/// the control process).
struct ConsistencyRecord {
  std::uint32_t constraint = 0;
  std::uint32_t subject = 0;  ///< fragment id
  std::uint32_t object = 0;   ///< fragment id
  bool result = false;

  [[nodiscard]] auto operator<=>(const ConsistencyRecord&) const = default;
};

/// Sorted consistency records from an engine's working memory.
[[nodiscard]] std::vector<ConsistencyRecord> extract_consistency(const ops5::Engine& engine);

/// Count of consistency WMEs with ^result 1 (for result-equivalence checks
/// between sequential and parallel runs).
[[nodiscard]] std::size_t count_positive_consistency(const ops5::Engine& engine);

/// Control-process context formation from merged task results: a fragment
/// with >= 2 positive consistencies becomes a context of its class with
/// strength = positive count. Sequential Level-4 in-engine contexts must
/// equal this (property-tested); parallel runs at finer levels need it
/// because support counting spans task boundaries.
[[nodiscard]] std::vector<Context> contexts_from_consistency(
    std::span<const ConsistencyRecord> records, std::span<const Fragment> fragments);

// ---------------------------------------------------------------------------
// Sequential phase runs
// ---------------------------------------------------------------------------

struct PhaseReport {
  std::string name;
  ops5::RunResult run;
  util::WorkCounters counters;
  std::uint64_t hypotheses = 0;  ///< fragments / contexts / areas / models
};

struct RtfRun {
  PhaseReport report;
  std::vector<Fragment> fragments;
  std::size_t task_count = 0;
};

struct LccRun {
  PhaseReport report;
  std::vector<Context> contexts;
  std::size_t positive_consistency = 0;
};

/// Run RTF for a scene as one engine run over all region groups.
[[nodiscard]] RtfRun run_rtf(const Scene& scene, int group_size = 3);

/// Run LCC for the best fragments as one engine run (Level 4 tasks for all
/// nine classes).
[[nodiscard]] LccRun run_lcc(const Scene& scene, std::span<const Fragment> fragments);

/// A functional area assembled by the FA phase.
struct FunctionalArea {
  std::uint32_t id = 0;      ///< seed fragment id
  std::uint32_t region = 0;  ///< seed region
  RegionClass cls = RegionClass::Runway;
  double size = 0.0;         ///< member count
};

struct FaRun {
  PhaseReport report;
  std::vector<FunctionalArea> areas;
};

/// Run FA over contexts; hypotheses = functional areas created.
[[nodiscard]] FaRun run_fa(const Scene& scene, std::span<const Fragment> fragments,
                           std::span<const Context> contexts);

/// Run MODEL over functional areas; hypotheses = models (1).
[[nodiscard]] PhaseReport run_model(const Scene& scene, std::span<const FunctionalArea> areas);

/// The complete four-phase pipeline for Tables 1-3 and the examples.
struct PipelineResult {
  std::vector<PhaseReport> phases;  // RTF, LCC, FA, MODEL in order
  std::vector<Fragment> fragments;
  std::vector<Context> contexts;
};

[[nodiscard]] PipelineResult run_pipeline(const Scene& scene, int rtf_group_size = 3);

}  // namespace psmsys::spam
