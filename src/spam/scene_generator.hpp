#pragma once

// Synthetic airport scene generator.
//
// Substitutes for the paper's three airport segmentations (San Francisco
// International, Washington National, NASA Ames Moffett Field). The
// generator lays out airport objects so that the LCC constraint catalog
// holds for ground-truth pairs: taxiway connectors cross runways, grass
// strips flank runways, terminals sit adjacent to aprons, access roads point
// at terminals, hangars abut tarmac. Region counts and polygon complexity
// are per-dataset knobs tuned so the task-decomposition statistics match the
// shape of Tables 5-8.

#include <cstdint>
#include <string>

#include "spam/scene.hpp"
#include "util/rng.hpp"

namespace psmsys::spam {

struct DatasetConfig {
  std::string name;
  std::uint64_t seed = 1;

  // Object counts (ground truth).
  int runways = 3;
  int parallel_taxiways_per_runway = 1;
  int connectors_per_runway = 3;
  int terminals = 8;
  int aprons = 6;
  int hangars = 8;
  int access_roads = 12;
  int grass_regions = 40;
  int tarmac_regions = 30;
  int parking_lots = 10;
  int noise_regions = 15;

  // Polygon complexity for blobby regions (grass/tarmac/apron/noise).
  // Higher vertex counts make geometry (RHS) more expensive relative to
  // match, lowering the phase's match fraction (Figure 7's per-dataset
  // asymptotic limits differ this way).
  int blob_vertices_min = 6;
  int blob_vertices_max = 14;

  /// A few late-generated oversized regions produce the order-of-magnitude
  /// outlier tasks behind the tail-end effect (Section 6.2).
  int giant_regions = 2;
  double giant_scale = 6.0;

  /// Relative feature noise applied to RTF features (drives hypothesis
  /// ambiguity and misclassification).
  double feature_noise = 0.06;
};

/// Generate the scene for a configuration. Deterministic in config.seed.
[[nodiscard]] Scene generate_scene(const DatasetConfig& config);

/// The three datasets of the paper, by analogy: sf (largest), dc
/// (geometry-heavy), moff (mid-sized).
[[nodiscard]] DatasetConfig sf_config();
[[nodiscard]] DatasetConfig dc_config();
[[nodiscard]] DatasetConfig moff_config();

/// Lookup by name ("SF", "DC", "MOFF"); throws on unknown name.
[[nodiscard]] DatasetConfig dataset_by_name(std::string_view name);

/// All three, in paper order.
[[nodiscard]] std::vector<DatasetConfig> all_datasets();

}  // namespace psmsys::spam
