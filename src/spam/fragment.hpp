#pragma once

// Fragment hypotheses: the product of the RTF phase and the input of LCC.

#include <cstdint>
#include <vector>

#include "spam/scene.hpp"

namespace psmsys::spam {

/// Fragment ids encode (region, class): id = region * 16 + class ordinal + 1.
/// The rule bases compute them with (compute <r> * 16 + ord); these helpers
/// keep the C++ side in sync.
[[nodiscard]] constexpr std::uint32_t fragment_id(std::uint32_t region, RegionClass cls) noexcept {
  return region * 16 + static_cast<std::uint32_t>(cls) + 1;
}

[[nodiscard]] constexpr std::uint32_t fragment_region(std::uint32_t fragment_id) noexcept {
  return fragment_id / 16;
}

[[nodiscard]] constexpr RegionClass fragment_class(std::uint32_t fragment_id) noexcept {
  return static_cast<RegionClass>(fragment_id % 16 - 1);
}

/// One fragment hypothesis extracted from RTF's working memory.
struct Fragment {
  std::uint32_t id = 0;
  std::uint32_t region = 0;
  RegionClass cls = RegionClass::Runway;
  double score = 0.0;
  bool best = false;  ///< winner of per-region disambiguation
};

[[nodiscard]] inline std::vector<Fragment> best_fragments(const std::vector<Fragment>& all) {
  std::vector<Fragment> out;
  for (const auto& f : all) {
    if (f.best) out.push_back(f);
  }
  return out;
}

}  // namespace psmsys::spam
