#pragma once

// The LCC constraint catalog: geometric consistency knowledge of the airport
// domain (Section 2.2: "runways intersect taxiways", "terminal buildings are
// adjacent to parking apron", "access roads lead to terminal buildings").
//
// Each constraint relates a subject class to an object class through one of
// the named spatial predicates. Applying one constraint to one subject
// against one candidate object is a Level 1 task; the higher decomposition
// levels aggregate over constraints, objects, and classes (Section 4).

#include <cstdint>
#include <span>
#include <string>

#include "geom/predicates.hpp"
#include "spam/scene.hpp"

namespace psmsys::spam {

enum class PredicateKind : std::uint8_t {
  Intersects,
  AdjacentTo,
  ContainsRegion,
  Near,
  AlignedWith,
  PerpendicularTo,
  LeadsTo,
  FlankedBy,
};

struct Constraint {
  std::uint32_t id = 0;          ///< stable index into the catalog
  std::string name;              ///< e.g. "runway-intersects-taxiway"
  RegionClass subject;
  RegionClass object;
  PredicateKind kind;
  double param = 0.0;            ///< gap / radius / tolerance / reach
  /// When true the geometric predicate is evaluated as p(object, subject) —
  /// e.g. "access roads lead to terminal buildings" with subject = terminal.
  bool swapped = false;
};

/// The full catalog (every subject class has 3-4 constraints; 9 classes, the
/// paper's 9 Level 4 tasks).
[[nodiscard]] std::span<const Constraint> constraint_catalog();

/// Constraints whose subject class is `subject`.
[[nodiscard]] std::vector<const Constraint*> constraints_for(RegionClass subject);

/// Evaluate a constraint between two regions of the scene. Returns the truth
/// value plus the geometry flops spent (charged to RHS cost by the engine's
/// external function).
[[nodiscard]] geom::PredicateResult evaluate_constraint(const Constraint& constraint,
                                                        const Scene& scene,
                                                        std::uint32_t subject_region,
                                                        std::uint32_t object_region);

}  // namespace psmsys::spam
