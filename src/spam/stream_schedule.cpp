#include "spam/stream_schedule.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace psmsys::spam {

std::vector<StreamTickSpec> make_stream_schedule(const StreamScheduleConfig& config) {
  if (config.ticks == 0) {
    throw std::invalid_argument("stream schedule needs at least one tick");
  }
  if (config.retract_fraction < 0.0 || config.retract_fraction > 1.0) {
    throw std::invalid_argument("retract_fraction must lie in [0, 1]");
  }
  const double burst = std::clamp(config.burstiness, 0.0, 1.0);
  util::Rng rng(config.seed);

  std::vector<StreamTickSpec> schedule(config.ticks);
  for (std::size_t t = 0; t < config.ticks; ++t) {
    schedule[t].at_ms = config.interval_ms * t;
  }

  // Arrival weights per tick: mix a uniform share with a squared-uniform
  // draw. At burstiness 0 every tick weighs the same; at 1 the weights are
  // heavy-tailed enough that a handful of ticks absorb most arrivals.
  std::vector<double> weight(config.ticks);
  double total_weight = 0.0;
  for (double& w : weight) {
    const double u = rng.next_double();
    w = (1.0 - burst) + burst * (u * u * static_cast<double>(config.ticks));
    total_weight += w;
  }

  // Deal each item to a tick by weighted draw, then sort arrivals within a
  // tick so the delta order is canonical (identity proofs diff these).
  for (std::size_t item = 0; item < config.items; ++item) {
    double pick = rng.next_double() * total_weight;
    std::size_t t = 0;
    while (t + 1 < config.ticks && pick >= weight[t]) {
      pick -= weight[t];
      ++t;
    }
    schedule[t].arrivals.push_back(item);
  }
  for (StreamTickSpec& tick : schedule) {
    std::sort(tick.arrivals.begin(), tick.arrivals.end());
  }

  if (config.retract_fraction > 0.0) {
    // Walk ticks in order, keeping the pool of items that arrived strictly
    // earlier and were not yet retracted. Each selected victim is removed
    // from the pool, so nothing retracts twice, and pool membership by
    // construction means the arrival happened on an earlier tick.
    std::vector<std::size_t> pool;
    const auto target = static_cast<std::size_t>(
        std::floor(config.retract_fraction * static_cast<double>(config.items)));
    std::size_t retracted = 0;
    for (std::size_t t = 0; t < config.ticks; ++t) {
      if (t > 0 && retracted < target && !pool.empty()) {
        // Spread the remaining retraction budget over the remaining ticks.
        const std::size_t ticks_left = config.ticks - t;
        std::size_t quota = (target - retracted + ticks_left - 1) / ticks_left;
        quota = std::min(quota, pool.size());
        for (std::size_t k = 0; k < quota; ++k) {
          const std::size_t slot = rng.next_below(pool.size());
          schedule[t].retractions.push_back(pool[slot]);
          pool[slot] = pool.back();
          pool.pop_back();
          ++retracted;
        }
        std::sort(schedule[t].retractions.begin(), schedule[t].retractions.end());
      }
      pool.insert(pool.end(), schedule[t].arrivals.begin(), schedule[t].arrivals.end());
    }
  }
  return schedule;
}

StreamScheduleConfig stream_config_for(const DatasetConfig& dataset, std::size_t items) {
  StreamScheduleConfig config;
  config.items = items;
  config.seed = dataset.seed ^ 0x57ea3ULL;
  if (dataset.name == "SF") {
    // Largest scene: long, bursty feed — the segmentation front end
    // delivers region clumps as each image strip completes.
    config.ticks = 64;
    config.interval_ms = 8;
    config.burstiness = 0.6;
    config.retract_fraction = 0.10;
  } else if (dataset.name == "DC") {
    // Geometry-heavy scene: steadier pacing but the most revision churn
    // (ambiguous blobs get retracted and re-delivered downstream).
    config.ticks = 48;
    config.interval_ms = 12;
    config.burstiness = 0.25;
    config.retract_fraction = 0.25;
  } else {
    // MOFF and anything unnamed: calm mid-size default.
    config.ticks = 40;
    config.interval_ms = 10;
    config.burstiness = 0.15;
    config.retract_fraction = 0.12;
  }
  return config;
}

}  // namespace psmsys::spam
