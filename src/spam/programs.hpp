#pragma once

// OPS5 rule bases for the four SPAM phases.
//
// The rule bases are emitted as OPS5 source text and run through the full
// parser, exactly as SPAM's productions were OPS5 source. RTF performs
// heuristic classification through intermediate abstractions
// (region -> linear/blob/building -> fragment); LCC performs
// constraint-satisfaction by calling the geometry externals; FA aggregates
// consistent contexts into functional areas; MODEL assembles functional
// areas into a scene model.

#include <memory>
#include <string>

#include "ops5/engine.hpp"
#include "ops5/external.hpp"
#include "ops5/parser.hpp"
#include "spam/scene.hpp"

namespace psmsys::spam {

/// A parsed phase program together with its external-function registry.
/// Engines built from it must set_user_data(&scene) so externals can reach
/// the polygons.
struct PhaseProgram {
  std::shared_ptr<const ops5::Program> program;
  std::shared_ptr<const ops5::ExternalRegistry> externals;

  /// Convenience: construct a ready engine bound to `scene`.
  [[nodiscard]] std::unique_ptr<ops5::Engine> make_engine(const Scene& scene,
                                                          ops5::EngineOptions options = {}) const;
};

/// OPS5 source text of each phase (exposed for tests and documentation).
[[nodiscard]] std::string rtf_source();
[[nodiscard]] std::string lcc_source();
[[nodiscard]] std::string fa_source();
[[nodiscard]] std::string model_source();

[[nodiscard]] PhaseProgram build_rtf_program();
[[nodiscard]] PhaseProgram build_lcc_program();
[[nodiscard]] PhaseProgram build_fa_program();
[[nodiscard]] PhaseProgram build_model_program();

}  // namespace psmsys::spam
