#include "obs/trace.hpp"

namespace psmsys::obs {

json::Value Tracer::to_json() const {
  json::Array events;
  {
    std::lock_guard lock(mutex_);
    events.reserve(events_.size());
    for (const SpanEvent& ev : events_) {
      json::Object e;
      e.emplace_back("name", json::Value(ev.name));
      e.emplace_back("cat", json::Value(ev.category));
      e.emplace_back("ph", json::Value("X"));
      e.emplace_back("ts", json::Value(ev.ts_us));
      e.emplace_back("dur", json::Value(ev.dur_us));
      e.emplace_back("pid", json::Value(ev.pid));
      e.emplace_back("tid", json::Value(ev.tid));
      if (!ev.args.empty()) {
        e.emplace_back("args", json::Value(ev.args));
      }
      events.emplace_back(std::move(e));
    }
  }
  json::Object doc;
  doc.emplace_back("traceEvents", json::Value(std::move(events)));
  doc.emplace_back("displayTimeUnit", json::Value("ms"));
  return json::Value(std::move(doc));
}

}  // namespace psmsys::obs
