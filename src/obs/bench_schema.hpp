#pragma once

// Schema for the BENCH_<suite>.json documents the bench harness emits
// (documented prose version: DESIGN.md §11.4).
//
// Version 1 layout:
//
//   {
//     "schema_version": 1,
//     "suite": "<suite name>",
//     "quick": true|false,
//     "env": {
//       "compiler": str, "build_type": str, "os": str, "arch": str,
//       "hardware_threads": int >= 1, "obs_enabled": bool
//     },
//     "cases": [
//       {
//         "name": str,
//         "wall_ns": number >= 0,
//         "cpu_ns": number >= 0,
//         "metrics": { str: number, ... },          // optional
//         "speedups": [                              // optional
//           { "name": str,
//             "points": [ {"procs": int >= 1, "speedup": number > 0}, ... ] }
//         ],
//         "tables": [                                // optional
//           { "name": str, "columns": [str...],
//             "rows": [[str...], ...] }              // row width == columns
//         ],
//         "notes": [str...]                          // optional
//       }, ...
//     ]
//   }
//
// The validator is deliberately strict about the fields above and silent
// about unknown extra keys, so documents can grow forward-compatibly.

#include <string>
#include <vector>

#include "obs/json.hpp"

namespace psmsys::obs {

inline constexpr int kBenchSchemaVersion = 1;

/// Validate a parsed BENCH document. Returns a list of human-readable
/// violations; empty means the document conforms.
[[nodiscard]] std::vector<std::string> validate_bench_json(
    const json::Value& doc);

}  // namespace psmsys::obs
