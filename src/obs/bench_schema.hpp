#pragma once

// Schema for the BENCH_<suite>.json documents the bench harness emits
// (documented prose version: DESIGN.md §11.4).
//
// Version 1 layout:
//
//   {
//     "schema_version": 1,
//     "suite": "<suite name>",
//     "quick": true|false,
//     "env": {
//       "compiler": str, "build_type": str, "os": str, "arch": str,
//       "hardware_threads": int >= 1, "obs_enabled": bool
//     },
//     "cases": [
//       {
//         "name": str,
//         "wall_ns": number >= 0,
//         "cpu_ns": number >= 0,
//         "metrics": { str: number, ... },          // optional
//         "speedups": [                              // optional
//           { "name": str,
//             "points": [ {"procs": int >= 1, "speedup": number > 0}, ... ] }
//         ],
//         "tables": [                                // optional
//           { "name": str, "columns": [str...],
//             "rows": [[str...], ...] }              // row width == columns
//         ],
//         "notes": [str...]                          // optional
//       }, ...
//     ]
//   }
//
// The validator is deliberately strict about the fields above and silent
// about unknown extra keys, so documents can grow forward-compatibly.

#include <string>
#include <vector>

#include "obs/json.hpp"

namespace psmsys::obs {

inline constexpr int kBenchSchemaVersion = 1;

/// Validate a parsed BENCH document. Returns a list of human-readable
/// violations; empty means the document conforms.
[[nodiscard]] std::vector<std::string> validate_bench_json(
    const json::Value& doc);

// ---------------------------------------------------------------------------
// Serve rollup (serve::ServerStats::to_json; prose: DESIGN.md §14.4)
//
// Version 1 layout:
//
//   {
//     "schema_version": 1,
//     "kind": "serve_rollup",
//     "workers": int >= 1,            // engine contexts in the pool
//     "submitted": int >= 0,          // admission attempts
//     "admitted": int >= 0,
//     "rejected": { "queue_full": int >= 0, "draining": int >= 0 },
//     "completed": int >= 0,
//     "quarantined": int >= 0,
//     "aborted": int >= 0,
//     "retries": int >= 0,
//     "wall_ns": number >= 0,
//     "scenes_per_sec": number >= 0,
//     "packs": {                      // hot-reload registry (DESIGN.md §15)
//       "loaded": int >= 1, "rejected": int >= 0, "swaps": int >= 0,
//       "rollbacks": int >= 0, "active": int >= 1,
//       "per_pack": [
//         { "id": int >= 1, "name": str, "version": str,
//           "state": "active"|"staged"|"retired"|"rejected",
//           "decision": "pass"|"warn"|"reject", "gated": bool,
//           "scenes_completed": int >= 0, "workers_on": int >= 0 }, ...
//       ]
//     },
//     "streams": {                    // streaming sessions (DESIGN.md §16);
//       "opened": int >= 0,           //  real streams only, one-shot scenes
//       "completed": int >= 0,        //  report through the scene bins
//       "quarantined": int >= 0, "aborted": int >= 0, "drained": int >= 0,
//       "ticks": int >= 0, "ticks_completed": int >= 0,
//       "ticks_failed": int >= 0, "ticks_shed": int >= 0,
//       "tick_retries": int >= 0, "wmes_streamed": int >= 0,
//       "peak_resident_wm": int >= 0,
//       "tick_latency_ns": { same shape as latency_ns },
//       "ticks_per_sec": number >= 0
//     },
//     "latency_ns": {                 // completed scenes; all 0 when none
//       "count": int, "p50_ns": int, "p90_ns": int, "p99_ns": int,
//       "mean_ns": int, "max_ns": int
//     },
//     "engine": { ... }               // obs::RunMetrics flat object; values
//                                     // are numbers or arrays of numbers
//                                     // (per-node activation gauges)
//   }
//
// Invariants checked beyond shape: submitted == admitted + rejected.* and
// admitted == completed + quarantined + aborted (exactly-once accounting —
// the graceful-drain "no lost or double-counted scenes" contract). When
// "packs" is present: completed equals the sum of per-pack scenes_completed,
// loaded equals the per_pack length, exactly one pack is active, the active
// id names that pack — and, unconditionally, a rollup with zero admitted
// scenes must carry all-zero per-pack scene counts (a drain that served
// nothing cannot have attributed scenes to any pack). When "streams" is
// present: opened == completed + quarantined + aborted, drained <= completed,
// ticks == ticks_completed + ticks_failed + ticks_shed, and every stream bin
// is bounded by its scene-level counterpart (a stream is one scene).
// ---------------------------------------------------------------------------

inline constexpr int kServeRollupSchemaVersion = 1;

/// Validate a parsed serve rollup document (shape + accounting invariants).
/// Returns human-readable violations; empty means the document conforms.
[[nodiscard]] std::vector<std::string> validate_serve_rollup(
    const json::Value& doc);

// ---------------------------------------------------------------------------
// Admission verdict (analysis::AdmissionVerdict::to_json; prose: DESIGN.md §15)
//
//   {
//     "schema": "admission-verdict-v1",
//     "live": str,                    // "" for a candidate-only check
//     "candidate": str,
//     "decision": "pass"|"warn"|"reject",
//     "errors": int >= 0,             // totals over all sections (exact even
//     "warnings": int >= 0,           //  when findings are truncated)
//     "sections": [
//       { "analyzer": str,            // lint | rete_static | interference |
//         "decision": ...,            //  semantic_diff
//         "errors": int >= 0, "warnings": int >= 0,
//         "findings": [
//           { "code": "ANnnn", "severity": "warning"|"error",
//             "production": str, "message": str }, ...
//         ],
//         "details": { ... }          // analyzer-specific, deterministic
//       }, ...
//     ]
//   }
//
// Invariants beyond shape: the verdict decision is the worst section
// decision, and the top-level error/warning totals are the sums of the
// per-section counts.
// ---------------------------------------------------------------------------

/// Validate a parsed AdmissionVerdict document (shape + aggregation
/// invariants). Returns human-readable violations; empty means it conforms.
[[nodiscard]] std::vector<std::string> validate_admission_verdict(
    const json::Value& doc);

}  // namespace psmsys::obs
