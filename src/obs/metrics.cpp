#include "obs/metrics.hpp"

#include <algorithm>
#include <vector>

#include "util/stats.hpp"

namespace psmsys::obs {

void RunMetrics::add_counters(const util::WorkCounters& c) noexcept {
  cycles += c.cycles;
  firings += c.firings;
  rhs_actions += c.rhs_actions;
  wmes_added += c.wmes_added;
  wmes_removed += c.wmes_removed;
  tokens_created += c.tokens_created;
  tokens_deleted += c.tokens_deleted;
  join_probes += c.join_probes;
  alpha_tests += c.alpha_tests;
  alpha_activations += c.alpha_activations;
  match_cost_wu += c.match_cost;
  resolve_cost_wu += c.resolve_cost;
  rhs_cost_wu += c.rhs_cost;
}

namespace {
void add_vec(std::vector<std::uint64_t>& into,
             std::span<const std::uint64_t> from) {
  if (into.size() < from.size()) into.resize(from.size(), 0);
  for (std::size_t i = 0; i < from.size(); ++i) into[i] += from[i];
}
}  // namespace

void RunMetrics::add_node_activations(std::span<const std::uint64_t> alpha,
                                      std::span<const std::uint64_t> join) {
  add_vec(alpha_node_activations, alpha);
  add_vec(join_node_activations, join);
}

json::Value RunMetrics::to_json() const {
  json::Object o;
  const auto put = [&o](const char* key, std::uint64_t v) {
    o.emplace_back(key, json::Value(v));
  };
  put("tasks", tasks);
  put("task_processes", task_processes);
  put("cycles", cycles);
  put("firings", firings);
  put("rhs_actions", rhs_actions);
  put("wmes_added", wmes_added);
  put("wmes_removed", wmes_removed);
  put("tokens_created", tokens_created);
  put("tokens_deleted", tokens_deleted);
  put("join_probes", join_probes);
  put("alpha_tests", alpha_tests);
  put("alpha_activations", alpha_activations);
  put("match_cost_wu", match_cost_wu);
  put("resolve_cost_wu", resolve_cost_wu);
  put("rhs_cost_wu", rhs_cost_wu);
  put("total_cost_wu", total_cost_wu());
  o.emplace_back("match_fraction", json::Value(match_fraction()));
  put("peak_conflict_set", peak_conflict_set);
  put("peak_live_tokens", peak_live_tokens);
  const auto put_vec = [&o](const char* key,
                            const std::vector<std::uint64_t>& v) {
    if (v.empty()) return;
    json::Array a;
    a.reserve(v.size());
    for (std::uint64_t x : v) a.emplace_back(x);
    o.emplace_back(key, json::Value(std::move(a)));
  };
  put_vec("alpha_node_activations", alpha_node_activations);
  put_vec("join_node_activations", join_node_activations);
  put("match_threads", match_threads);
  put("match_parallel_ops", match_parallel_ops);
  put("match_busy_ns", match_busy_ns);
  put("match_wall_ns", match_wall_ns);
  o.emplace_back("match_thread_utilization",
                 json::Value(match_thread_utilization()));
  put("match_partitions", match_partitions);
  put("match_partition_cost_max", match_partition_cost_max);
  put("match_partition_cost_sum", match_partition_cost_sum);
  o.emplace_back("match_partition_imbalance",
                 json::Value(match_partition_imbalance()));
  put("retries", retries);
  put("requeues", requeues);
  put("quarantined", quarantined);
  put("abandoned", abandoned);
  put("dead_workers", dead_workers);
  o.emplace_back("wall_ns", json::Value(wall_ns));
  return json::Value(std::move(o));
}

namespace {
std::uint64_t sub_sat(std::uint64_t a, std::uint64_t b) noexcept {
  return a > b ? a - b : 0;
}
}  // namespace

RunMetrics metrics_delta(const RunMetrics& after,
                         const RunMetrics& before) noexcept {
  RunMetrics d;
  d.tasks = sub_sat(after.tasks, before.tasks);
  d.task_processes = after.task_processes;
  d.cycles = sub_sat(after.cycles, before.cycles);
  d.firings = sub_sat(after.firings, before.firings);
  d.rhs_actions = sub_sat(after.rhs_actions, before.rhs_actions);
  d.wmes_added = sub_sat(after.wmes_added, before.wmes_added);
  d.wmes_removed = sub_sat(after.wmes_removed, before.wmes_removed);
  d.tokens_created = sub_sat(after.tokens_created, before.tokens_created);
  d.tokens_deleted = sub_sat(after.tokens_deleted, before.tokens_deleted);
  d.join_probes = sub_sat(after.join_probes, before.join_probes);
  d.alpha_tests = sub_sat(after.alpha_tests, before.alpha_tests);
  d.alpha_activations =
      sub_sat(after.alpha_activations, before.alpha_activations);
  d.match_cost_wu = sub_sat(after.match_cost_wu, before.match_cost_wu);
  d.resolve_cost_wu = sub_sat(after.resolve_cost_wu, before.resolve_cost_wu);
  d.rhs_cost_wu = sub_sat(after.rhs_cost_wu, before.rhs_cost_wu);
  // Gauges are peaks, not monotonic counters: the delta keeps the later peak.
  d.peak_conflict_set = after.peak_conflict_set;
  d.peak_live_tokens = after.peak_live_tokens;
  // Per-node activations are monotonic; element-wise saturating difference.
  d.alpha_node_activations = after.alpha_node_activations;
  for (std::size_t i = 0;
       i < d.alpha_node_activations.size() && i < before.alpha_node_activations.size(); ++i) {
    d.alpha_node_activations[i] =
        sub_sat(d.alpha_node_activations[i], before.alpha_node_activations[i]);
  }
  d.join_node_activations = after.join_node_activations;
  for (std::size_t i = 0;
       i < d.join_node_activations.size() && i < before.join_node_activations.size(); ++i) {
    d.join_node_activations[i] =
        sub_sat(d.join_node_activations[i], before.join_node_activations[i]);
  }
  // Configuration, not a counter; the ns/op tallies are monotonic.
  d.match_threads = after.match_threads;
  d.match_parallel_ops = sub_sat(after.match_parallel_ops, before.match_parallel_ops);
  d.match_busy_ns = sub_sat(after.match_busy_ns, before.match_busy_ns);
  d.match_wall_ns = sub_sat(after.match_wall_ns, before.match_wall_ns);
  // Partition balance is a per-run snapshot, not a monotonic counter.
  d.match_partitions = after.match_partitions;
  d.match_partition_cost_max = after.match_partition_cost_max;
  d.match_partition_cost_sum = after.match_partition_cost_sum;
  d.retries = sub_sat(after.retries, before.retries);
  d.requeues = sub_sat(after.requeues, before.requeues);
  d.quarantined = sub_sat(after.quarantined, before.quarantined);
  d.abandoned = sub_sat(after.abandoned, before.abandoned);
  d.dead_workers = sub_sat(after.dead_workers, before.dead_workers);
  d.wall_ns = after.wall_ns > before.wall_ns ? after.wall_ns - before.wall_ns
                                             : 0;
  return d;
}

json::Value LatencySummary::to_json() const {
  json::Object o;
  o.emplace_back("count", json::Value(count));
  o.emplace_back("p50_ns", json::Value(p50_ns));
  o.emplace_back("p90_ns", json::Value(p90_ns));
  o.emplace_back("p99_ns", json::Value(p99_ns));
  o.emplace_back("mean_ns", json::Value(mean_ns));
  o.emplace_back("max_ns", json::Value(max_ns));
  return json::Value(std::move(o));
}

LatencySummary summarize_latency_ns(std::span<const std::int64_t> samples_ns) {
  LatencySummary s;
  if (samples_ns.empty()) return s;
  std::vector<double> xs(samples_ns.begin(), samples_ns.end());
  const util::Summary sum = util::summarize(xs);
  s.count = xs.size();
  s.p50_ns = static_cast<std::int64_t>(util::percentile(xs, 50.0));
  s.p90_ns = static_cast<std::int64_t>(util::percentile(xs, 90.0));
  s.p99_ns = static_cast<std::int64_t>(util::percentile(xs, 99.0));
  s.mean_ns = static_cast<std::int64_t>(sum.mean);
  s.max_ns = static_cast<std::int64_t>(sum.max);
  return s;
}

}  // namespace psmsys::obs
