#pragma once

// Compile-time observability switch. The build defines PSMSYS_OBS globally
// (top-level CMakeLists, option PSMSYS_OBS); default to ON so ad-hoc
// compiles of a single TU still build. This header is deliberately tiny so
// the Rete and engine hot paths can test the switch without pulling in the
// tracer (mutexes, vectors, chrono).

#ifndef PSMSYS_OBS
#define PSMSYS_OBS 1
#endif

namespace psmsys::obs {

/// Usable in static_assert and `if constexpr`.
inline constexpr bool kEnabled = PSMSYS_OBS != 0;

}  // namespace psmsys::obs
