#pragma once

// Span tracing for the PSM executor and OPS5 engine.
//
// Spans are complete events ("ph":"X") in the Chrome trace_event JSON format,
// so a run's timeline loads directly into chrome://tracing or Perfetto. Two
// knobs keep the hot path within noise:
//
//   - compile time: PSMSYS_OBS=0 removes every per-cycle hook from the engine
//     and Rete (kEnabled lets code static_assert on the configuration);
//   - run time: Tracer::sample_every records only every Nth cycle span, and a
//     null tracer pointer short-circuits before any clock call.
//
// Timestamps are microseconds relative to the tracer's epoch (its moment of
// construction or the last reset), which keeps traces from concurrent workers
// on one comparable axis.

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/obs_config.hpp"

namespace psmsys::obs {

/// One completed span. `ts_us`/`dur_us` are microseconds against the tracer
/// epoch; `pid`/`tid` map to trace_event's process/thread lanes (the executor
/// uses pid 1 and tid = task-process index).
struct SpanEvent {
  std::string name;
  std::string category;
  std::int64_t ts_us = 0;
  std::int64_t dur_us = 0;
  std::uint32_t pid = 1;
  std::uint32_t tid = 0;
  /// Extra key/value payload, rendered into the event's "args" object.
  json::Object args;
};

/// Thread-safe span sink. Recording appends to an in-memory buffer; export is
/// explicit. The tracer never touches the engine hot path unless attached.
class Tracer {
 public:
  using Clock = std::chrono::steady_clock;

  Tracer() : epoch_(Clock::now()) {}

  /// Record only every Nth per-cycle span (task spans are always recorded).
  /// 0 disables cycle spans entirely; 1 records every cycle.
  void set_sample_every(std::uint64_t n) { sample_every_ = n; }
  [[nodiscard]] std::uint64_t sample_every() const noexcept {
    return sample_every_;
  }

  /// True when the nth occurrence (0-based) of a sampled span should record.
  [[nodiscard]] bool should_sample(std::uint64_t n) const noexcept {
    return sample_every_ != 0 && n % sample_every_ == 0;
  }

  [[nodiscard]] Clock::time_point epoch() const noexcept { return epoch_; }

  /// Microseconds since the tracer epoch for a raw clock reading.
  [[nodiscard]] std::int64_t to_us(Clock::time_point t) const noexcept {
    return std::chrono::duration_cast<std::chrono::microseconds>(t - epoch_)
        .count();
  }

  void record(SpanEvent ev) {
    std::lock_guard lock(mutex_);
    events_.push_back(std::move(ev));
  }

  /// Convenience: record a span from two clock readings.
  void record_span(std::string name, std::string category,
                   Clock::time_point begin, Clock::time_point end,
                   std::uint32_t tid, json::Object args = {}) {
    SpanEvent ev;
    ev.name = std::move(name);
    ev.category = std::move(category);
    ev.ts_us = to_us(begin);
    ev.dur_us =
        std::chrono::duration_cast<std::chrono::microseconds>(end - begin)
            .count();
    ev.tid = tid;
    ev.args = std::move(args);
    record(std::move(ev));
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return events_.size();
  }

  /// Snapshot of recorded events (copy; the tracer may keep recording).
  [[nodiscard]] std::vector<SpanEvent> events() const {
    std::lock_guard lock(mutex_);
    return events_;
  }

  void clear() {
    std::lock_guard lock(mutex_);
    events_.clear();
    epoch_ = Clock::now();
  }

  /// Chrome trace_event document: {"traceEvents": [...], "displayTimeUnit":
  /// "ms"}. Loadable in chrome://tracing / Perfetto as-is.
  [[nodiscard]] json::Value to_json() const;

  /// Serialized trace_event JSON (compact).
  [[nodiscard]] std::string to_string() const { return to_json().dump(); }

 private:
  mutable std::mutex mutex_;
  std::vector<SpanEvent> events_;
  Clock::time_point epoch_;
  std::uint64_t sample_every_ = 1;
};

}  // namespace psmsys::obs
