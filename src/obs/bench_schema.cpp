#include "obs/bench_schema.hpp"

#include <algorithm>
#include <cmath>

namespace psmsys::obs {

namespace {

class Checker {
 public:
  explicit Checker(std::vector<std::string>& out) : out_(out) {}

  void fail(const std::string& where, const std::string& why) {
    out_.push_back(where + ": " + why);
  }

  const json::Value* require(const json::Value& obj, const std::string& where,
                             const char* key, json::Type type) {
    const json::Value* v = obj.find(key);
    if (!v) {
      fail(where, std::string("missing required key \"") + key + "\"");
      return nullptr;
    }
    if (v->type() != type) {
      fail(where + "." + key, "wrong type");
      return nullptr;
    }
    return v;
  }

  /// Optional key: absent is fine, wrong type is a violation.
  const json::Value* optional(const json::Value& obj, const std::string& where,
                              const char* key, json::Type type) {
    const json::Value* v = obj.find(key);
    if (!v) return nullptr;
    if (v->type() != type) {
      fail(where + "." + key, "wrong type");
      return nullptr;
    }
    return v;
  }

  bool check_int(const json::Value& v, const std::string& where, double min) {
    if (!v.is_number() || v.as_number() != std::floor(v.as_number())) {
      fail(where, "expected integer");
      return false;
    }
    if (v.as_number() < min) {
      fail(where, "below minimum " + std::to_string(static_cast<long>(min)));
      return false;
    }
    return true;
  }

 private:
  std::vector<std::string>& out_;
};

void check_env(Checker& c, const json::Value& env) {
  const std::string w = "env";
  c.require(env, w, "compiler", json::Type::String);
  c.require(env, w, "build_type", json::Type::String);
  c.require(env, w, "os", json::Type::String);
  c.require(env, w, "arch", json::Type::String);
  if (const auto* ht = c.require(env, w, "hardware_threads",
                                 json::Type::Number)) {
    c.check_int(*ht, w + ".hardware_threads", 1);
  }
  c.require(env, w, "obs_enabled", json::Type::Bool);
}

void check_speedups(Checker& c, const json::Value& speedups,
                    const std::string& where) {
  std::size_t i = 0;
  for (const json::Value& s : speedups.as_array()) {
    const std::string w = where + "[" + std::to_string(i++) + "]";
    if (!s.is_object()) {
      c.fail(w, "expected object");
      continue;
    }
    c.require(s, w, "name", json::Type::String);
    const json::Value* points = c.require(s, w, "points", json::Type::Array);
    if (!points) continue;
    if (points->as_array().empty()) {
      c.fail(w + ".points", "speedup series must not be empty");
    }
    std::size_t j = 0;
    for (const json::Value& p : points->as_array()) {
      const std::string pw = w + ".points[" + std::to_string(j++) + "]";
      if (!p.is_object()) {
        c.fail(pw, "expected object");
        continue;
      }
      if (const auto* procs = c.require(p, pw, "procs", json::Type::Number)) {
        c.check_int(*procs, pw + ".procs", 1);
      }
      if (const auto* sp = c.require(p, pw, "speedup", json::Type::Number)) {
        if (sp->as_number() <= 0) c.fail(pw + ".speedup", "must be positive");
      }
    }
  }
}

void check_tables(Checker& c, const json::Value& tables,
                  const std::string& where) {
  std::size_t i = 0;
  for (const json::Value& t : tables.as_array()) {
    const std::string w = where + "[" + std::to_string(i++) + "]";
    if (!t.is_object()) {
      c.fail(w, "expected object");
      continue;
    }
    c.require(t, w, "name", json::Type::String);
    const json::Value* cols = c.require(t, w, "columns", json::Type::Array);
    const json::Value* rows = c.require(t, w, "rows", json::Type::Array);
    std::size_t width = 0;
    if (cols) {
      width = cols->as_array().size();
      for (const json::Value& col : cols->as_array()) {
        if (!col.is_string()) c.fail(w + ".columns", "entries must be strings");
      }
    }
    if (rows) {
      std::size_t j = 0;
      for (const json::Value& row : rows->as_array()) {
        const std::string rw = w + ".rows[" + std::to_string(j++) + "]";
        if (!row.is_array()) {
          c.fail(rw, "expected array");
          continue;
        }
        if (cols && row.as_array().size() != width) {
          c.fail(rw, "row width does not match columns");
        }
        for (const json::Value& cell : row.as_array()) {
          if (!cell.is_string()) c.fail(rw, "cells must be strings");
        }
      }
    }
  }
}

void check_case(Checker& c, const json::Value& cs, const std::string& w) {
  c.require(cs, w, "name", json::Type::String);
  if (const auto* wall = c.require(cs, w, "wall_ns", json::Type::Number)) {
    if (wall->as_number() < 0) c.fail(w + ".wall_ns", "must be >= 0");
  }
  if (const auto* cpu = c.require(cs, w, "cpu_ns", json::Type::Number)) {
    if (cpu->as_number() < 0) c.fail(w + ".cpu_ns", "must be >= 0");
  }
  if (const auto* metrics = c.optional(cs, w, "metrics", json::Type::Object)) {
    for (const auto& [k, v] : metrics->as_object()) {
      if (!v.is_number()) {
        c.fail(w + ".metrics." + k, "metric values must be numbers");
      }
    }
  }
  if (const auto* speedups = c.optional(cs, w, "speedups", json::Type::Array)) {
    check_speedups(c, *speedups, w + ".speedups");
  }
  if (const auto* tables = c.optional(cs, w, "tables", json::Type::Array)) {
    check_tables(c, *tables, w + ".tables");
  }
  if (const auto* notes = c.optional(cs, w, "notes", json::Type::Array)) {
    for (const json::Value& n : notes->as_array()) {
      if (!n.is_string()) c.fail(w + ".notes", "entries must be strings");
    }
  }
}

}  // namespace

std::vector<std::string> validate_bench_json(const json::Value& doc) {
  std::vector<std::string> violations;
  Checker c(violations);
  if (!doc.is_object()) {
    c.fail("$", "top-level value must be an object");
    return violations;
  }
  if (const auto* ver = c.require(doc, "$", "schema_version",
                                  json::Type::Number)) {
    if (ver->as_number() != kBenchSchemaVersion) {
      c.fail("$.schema_version",
             "unsupported version (expected " +
                 std::to_string(kBenchSchemaVersion) + ")");
    }
  }
  c.require(doc, "$", "suite", json::Type::String);
  c.require(doc, "$", "quick", json::Type::Bool);
  if (const auto* env = c.require(doc, "$", "env", json::Type::Object)) {
    check_env(c, *env);
  }
  if (const auto* cases = c.require(doc, "$", "cases", json::Type::Array)) {
    if (cases->as_array().empty()) {
      c.fail("$.cases", "must contain at least one case");
    }
    std::size_t i = 0;
    for (const json::Value& cs : cases->as_array()) {
      const std::string w = "$.cases[" + std::to_string(i++) + "]";
      if (!cs.is_object()) {
        c.fail(w, "expected object");
        continue;
      }
      check_case(c, cs, w);
    }
  }
  return violations;
}

std::vector<std::string> validate_serve_rollup(const json::Value& doc) {
  std::vector<std::string> violations;
  Checker c(violations);
  if (!doc.is_object()) {
    c.fail("$", "top-level value must be an object");
    return violations;
  }
  if (const auto* ver = c.require(doc, "$", "schema_version", json::Type::Number)) {
    if (ver->as_number() != kServeRollupSchemaVersion) {
      c.fail("$.schema_version", "unsupported version (expected " +
                                     std::to_string(kServeRollupSchemaVersion) + ")");
    }
  }
  if (const auto* kind = c.require(doc, "$", "kind", json::Type::String)) {
    if (kind->as_string() != "serve_rollup") {
      c.fail("$.kind", "expected \"serve_rollup\"");
    }
  }

  // Counters; collected for the accounting cross-checks below.
  const auto counter = [&](const char* key, double min) -> double {
    const json::Value* v = c.require(doc, "$", key, json::Type::Number);
    if (!v || !c.check_int(*v, std::string("$.") + key, min)) return 0.0;
    return v->as_number();
  };
  const double workers = counter("workers", 1);
  (void)workers;
  const double submitted = counter("submitted", 0);
  double rejected = 0.0;
  if (const auto* rej = c.require(doc, "$", "rejected", json::Type::Object)) {
    for (const char* key : {"queue_full", "draining"}) {
      if (const auto* v = c.require(*rej, "$.rejected", key, json::Type::Number)) {
        if (c.check_int(*v, std::string("$.rejected.") + key, 0)) rejected += v->as_number();
      }
    }
  }
  const double admitted = counter("admitted", 0);
  const double completed = counter("completed", 0);
  const double quarantined = counter("quarantined", 0);
  const double aborted = counter("aborted", 0);
  counter("retries", 0);
  if (const auto* wall = c.require(doc, "$", "wall_ns", json::Type::Number)) {
    if (wall->as_number() < 0) c.fail("$.wall_ns", "must be >= 0");
  }
  if (const auto* sps = c.require(doc, "$", "scenes_per_sec", json::Type::Number)) {
    if (sps->as_number() < 0) c.fail("$.scenes_per_sec", "must be >= 0");
  }
  if (const auto* lat = c.require(doc, "$", "latency_ns", json::Type::Object)) {
    for (const char* key : {"count", "p50_ns", "p90_ns", "p99_ns", "mean_ns", "max_ns"}) {
      if (const auto* v = c.require(*lat, "$.latency_ns", key, json::Type::Number)) {
        c.check_int(*v, std::string("$.latency_ns.") + key, 0);
      }
    }
  }
  if (const auto* engine = c.require(doc, "$", "engine", json::Type::Object)) {
    for (const auto& [k, v] : engine->as_object()) {
      // Scalars for counters; arrays of numbers for the per-node Rete
      // activation gauges (alpha/join_node_activations).
      if (v.is_array()) {
        for (const json::Value& e : v.as_array()) {
          if (!e.is_number()) {
            c.fail("$.engine." + k, "array metric entries must be numbers");
            break;
          }
        }
      } else if (!v.is_number()) {
        c.fail("$.engine." + k, "metric values must be numbers or number arrays");
      }
    }
  }

  // Hot-reload registry: optional for forward compatibility with rollups
  // produced before versioned packs existed; strict when present.
  double packs_completed = 0.0;
  double packs_loaded = 0.0;
  double packs_active_id = 0.0;
  bool have_packs = false;
  bool active_id_found = false;
  std::size_t per_pack_count = 0;
  bool any_pack_scenes = false;
  if (const auto* packs = c.optional(doc, "$", "packs", json::Type::Object)) {
    have_packs = true;
    const std::string w = "$.packs";
    // The registry always holds at least the boot pack, and exactly one pack
    // is active — so loaded and active are 1-based, not 0-based.
    if (const auto* v = c.require(*packs, w, "loaded", json::Type::Number)) {
      if (c.check_int(*v, w + ".loaded", 1)) packs_loaded = v->as_number();
    }
    for (const char* key : {"rejected", "swaps", "rollbacks"}) {
      if (const auto* v = c.require(*packs, w, key, json::Type::Number)) {
        c.check_int(*v, w + "." + key, 0);
      }
    }
    if (const auto* v = c.require(*packs, w, "active", json::Type::Number)) {
      if (c.check_int(*v, w + ".active", 1)) packs_active_id = v->as_number();
    }
    std::size_t active_count = 0;
    if (const auto* per = c.require(*packs, w, "per_pack", json::Type::Array)) {
      std::size_t i = 0;
      for (const json::Value& p : per->as_array()) {
        const std::string pw = w + ".per_pack[" + std::to_string(i++) + "]";
        ++per_pack_count;
        if (!p.is_object()) {
          c.fail(pw, "expected object");
          continue;
        }
        double pack_id = 0.0;
        if (const auto* id = c.require(p, pw, "id", json::Type::Number)) {
          if (c.check_int(*id, pw + ".id", 1)) pack_id = id->as_number();
        }
        c.require(p, pw, "name", json::Type::String);
        c.require(p, pw, "version", json::Type::String);
        if (const auto* st = c.require(p, pw, "state", json::Type::String)) {
          const std::string& s = st->as_string();
          if (s == "active") {
            ++active_count;
            if (pack_id == packs_active_id) active_id_found = true;
          }
          if (s != "active" && s != "staged" && s != "retired" && s != "rejected") {
            c.fail(pw + ".state", "unknown pack state \"" + s + "\"");
          }
        }
        if (const auto* d = c.require(p, pw, "decision", json::Type::String)) {
          const std::string& s = d->as_string();
          if (s != "pass" && s != "warn" && s != "reject") {
            c.fail(pw + ".decision", "unknown decision \"" + s + "\"");
          }
        }
        c.require(p, pw, "gated", json::Type::Bool);
        if (const auto* sc = c.require(p, pw, "scenes_completed", json::Type::Number)) {
          if (c.check_int(*sc, pw + ".scenes_completed", 0)) {
            packs_completed += sc->as_number();
            if (sc->as_number() > 0) any_pack_scenes = true;
          }
        }
        if (const auto* wo = c.require(p, pw, "workers_on", json::Type::Number)) {
          c.check_int(*wo, pw + ".workers_on", 0);
        }
      }
      if (active_count != 1) {
        c.fail(w + ".per_pack", "exactly one pack must be active, found " +
                                    std::to_string(active_count));
      } else if (!active_id_found) {
        c.fail(w + ".active", "active pack id does not name the active per_pack entry");
      }
      if (packs_loaded != 0.0 && packs_loaded != static_cast<double>(per_pack_count)) {
        c.fail(w + ".loaded", "loaded does not match the per_pack entry count");
      }
    }
  }

  // A drain that admitted nothing cannot have attributed scenes to any pack.
  // Unconditional (not gated on a clean shape): this is the cross-check that
  // catches a rollup claiming zero admitted scenes over a non-empty registry
  // with non-zero per-pack scene counts.
  if (have_packs && admitted == 0.0 && any_pack_scenes) {
    c.fail("$.packs", "zero admitted scenes but non-zero per-pack scene counts");
  }

  // Streaming sessions: optional for forward compatibility with rollups
  // produced before streams existed; strict when present.
  bool have_streams = false;
  double st_opened = 0.0, st_completed = 0.0, st_quarantined = 0.0, st_aborted = 0.0;
  double st_drained = 0.0, st_ticks = 0.0, st_ticks_completed = 0.0;
  double st_ticks_failed = 0.0, st_ticks_shed = 0.0;
  if (const auto* streams = c.optional(doc, "$", "streams", json::Type::Object)) {
    have_streams = true;
    const std::string w = "$.streams";
    const auto scounter = [&](const char* key) -> double {
      const json::Value* v = c.require(*streams, w, key, json::Type::Number);
      if (!v || !c.check_int(*v, w + "." + key, 0)) return 0.0;
      return v->as_number();
    };
    st_opened = scounter("opened");
    st_completed = scounter("completed");
    st_quarantined = scounter("quarantined");
    st_aborted = scounter("aborted");
    st_drained = scounter("drained");
    st_ticks = scounter("ticks");
    st_ticks_completed = scounter("ticks_completed");
    st_ticks_failed = scounter("ticks_failed");
    st_ticks_shed = scounter("ticks_shed");
    scounter("tick_retries");
    scounter("wmes_streamed");
    scounter("peak_resident_wm");
    if (const auto* lat = c.require(*streams, w, "tick_latency_ns", json::Type::Object)) {
      for (const char* key : {"count", "p50_ns", "p90_ns", "p99_ns", "mean_ns", "max_ns"}) {
        if (const auto* v = c.require(*lat, w + ".tick_latency_ns", key, json::Type::Number)) {
          c.check_int(*v, w + ".tick_latency_ns." + key, 0);
        }
      }
    }
    if (const auto* tps = c.require(*streams, w, "ticks_per_sec", json::Type::Number)) {
      if (tps->as_number() < 0) c.fail(w + ".ticks_per_sec", "must be >= 0");
    }
  }

  // Exactly-once accounting: every admission attempt ends in exactly one bin.
  if (violations.empty()) {
    if (submitted != admitted + rejected) {
      c.fail("$", "submitted != admitted + rejected (lost or double-counted scenes)");
    }
    if (admitted != completed + quarantined + aborted) {
      c.fail("$", "admitted != completed + quarantined + aborted "
                  "(lost or double-counted scenes)");
    }
    if (have_packs && packs_completed != completed) {
      c.fail("$.packs", "per-pack scenes_completed do not sum to completed "
                        "(scenes mis-attributed across a swap)");
    }
    if (have_streams) {
      if (st_opened != st_completed + st_quarantined + st_aborted) {
        c.fail("$.streams", "opened != completed + quarantined + aborted "
                            "(lost or double-counted streams)");
      }
      if (st_drained > st_completed) {
        c.fail("$.streams", "drained exceeds completed");
      }
      if (st_ticks != st_ticks_completed + st_ticks_failed + st_ticks_shed) {
        c.fail("$.streams", "ticks != ticks_completed + ticks_failed + ticks_shed "
                            "(lost or double-counted ticks)");
      }
      // A stream is one scene: each stream bin is bounded by its scene bin.
      if (st_completed > completed || st_quarantined > quarantined ||
          st_aborted > aborted) {
        c.fail("$.streams", "stream bins exceed their scene-level counterparts");
      }
    }
  }
  return violations;
}

namespace {

bool check_decision_string(Checker& c, const json::Value& v, const std::string& where) {
  const std::string& s = v.as_string();
  if (s != "pass" && s != "warn" && s != "reject") {
    c.fail(where, "unknown decision \"" + s + "\"");
    return false;
  }
  return true;
}

int decision_rank(const std::string& s) {
  if (s == "pass") return 0;
  if (s == "warn") return 1;
  return 2;
}

}  // namespace

std::vector<std::string> validate_admission_verdict(const json::Value& doc) {
  std::vector<std::string> violations;
  Checker c(violations);
  if (!doc.is_object()) {
    c.fail("$", "top-level value must be an object");
    return violations;
  }
  if (const auto* schema = c.require(doc, "$", "schema", json::Type::String)) {
    if (schema->as_string() != "admission-verdict-v1") {
      c.fail("$.schema", "unsupported schema (expected \"admission-verdict-v1\")");
    }
  }
  c.require(doc, "$", "live", json::Type::String);
  c.require(doc, "$", "candidate", json::Type::String);
  int verdict_rank = 0;
  if (const auto* d = c.require(doc, "$", "decision", json::Type::String)) {
    if (check_decision_string(c, *d, "$.decision")) {
      verdict_rank = decision_rank(d->as_string());
    }
  }
  double total_errors = 0.0, total_warnings = 0.0;
  if (const auto* e = c.require(doc, "$", "errors", json::Type::Number)) {
    if (c.check_int(*e, "$.errors", 0)) total_errors = e->as_number();
  }
  if (const auto* wv = c.require(doc, "$", "warnings", json::Type::Number)) {
    if (c.check_int(*wv, "$.warnings", 0)) total_warnings = wv->as_number();
  }

  double sum_errors = 0.0, sum_warnings = 0.0;
  int worst_rank = 0;
  if (const auto* sections = c.require(doc, "$", "sections", json::Type::Array)) {
    if (sections->as_array().empty()) {
      c.fail("$.sections", "must contain at least one section");
    }
    std::size_t i = 0;
    for (const json::Value& s : sections->as_array()) {
      const std::string w = "$.sections[" + std::to_string(i++) + "]";
      if (!s.is_object()) {
        c.fail(w, "expected object");
        continue;
      }
      c.require(s, w, "analyzer", json::Type::String);
      if (const auto* d = c.require(s, w, "decision", json::Type::String)) {
        if (check_decision_string(c, *d, w + ".decision")) {
          worst_rank = std::max(worst_rank, decision_rank(d->as_string()));
        }
      }
      if (const auto* e = c.require(s, w, "errors", json::Type::Number)) {
        if (c.check_int(*e, w + ".errors", 0)) sum_errors += e->as_number();
      }
      if (const auto* wv = c.require(s, w, "warnings", json::Type::Number)) {
        if (c.check_int(*wv, w + ".warnings", 0)) sum_warnings += wv->as_number();
      }
      if (const auto* findings = c.require(s, w, "findings", json::Type::Array)) {
        std::size_t j = 0;
        for (const json::Value& f : findings->as_array()) {
          const std::string fw = w + ".findings[" + std::to_string(j++) + "]";
          if (!f.is_object()) {
            c.fail(fw, "expected object");
            continue;
          }
          if (const auto* code = c.require(f, fw, "code", json::Type::String)) {
            const std::string& cs = code->as_string();
            if (cs.size() != 5 || cs.compare(0, 2, "AN") != 0) {
              c.fail(fw + ".code", "expected an ANnnn wire code");
            }
          }
          if (const auto* sev = c.require(f, fw, "severity", json::Type::String)) {
            const std::string& ss = sev->as_string();
            if (ss != "warning" && ss != "error") {
              c.fail(fw + ".severity", "expected \"warning\" or \"error\"");
            }
          }
          c.require(f, fw, "production", json::Type::String);
          c.require(f, fw, "message", json::Type::String);
        }
      }
      c.require(s, w, "details", json::Type::Object);
    }
  }

  // Aggregation invariants: the verdict is exactly the worst section, and
  // top-level totals are the per-section sums (exact despite truncation).
  if (violations.empty()) {
    if (verdict_rank != worst_rank) {
      c.fail("$.decision", "verdict decision does not match the worst section");
    }
    if (total_errors != sum_errors) {
      c.fail("$.errors", "top-level errors != sum of section errors");
    }
    if (total_warnings != sum_warnings) {
      c.fail("$.warnings", "top-level warnings != sum of section warnings");
    }
  }
  return violations;
}

}  // namespace psmsys::obs
