#include "obs/bench_schema.hpp"

#include <cmath>

namespace psmsys::obs {

namespace {

class Checker {
 public:
  explicit Checker(std::vector<std::string>& out) : out_(out) {}

  void fail(const std::string& where, const std::string& why) {
    out_.push_back(where + ": " + why);
  }

  const json::Value* require(const json::Value& obj, const std::string& where,
                             const char* key, json::Type type) {
    const json::Value* v = obj.find(key);
    if (!v) {
      fail(where, std::string("missing required key \"") + key + "\"");
      return nullptr;
    }
    if (v->type() != type) {
      fail(where + "." + key, "wrong type");
      return nullptr;
    }
    return v;
  }

  /// Optional key: absent is fine, wrong type is a violation.
  const json::Value* optional(const json::Value& obj, const std::string& where,
                              const char* key, json::Type type) {
    const json::Value* v = obj.find(key);
    if (!v) return nullptr;
    if (v->type() != type) {
      fail(where + "." + key, "wrong type");
      return nullptr;
    }
    return v;
  }

  bool check_int(const json::Value& v, const std::string& where, double min) {
    if (!v.is_number() || v.as_number() != std::floor(v.as_number())) {
      fail(where, "expected integer");
      return false;
    }
    if (v.as_number() < min) {
      fail(where, "below minimum " + std::to_string(static_cast<long>(min)));
      return false;
    }
    return true;
  }

 private:
  std::vector<std::string>& out_;
};

void check_env(Checker& c, const json::Value& env) {
  const std::string w = "env";
  c.require(env, w, "compiler", json::Type::String);
  c.require(env, w, "build_type", json::Type::String);
  c.require(env, w, "os", json::Type::String);
  c.require(env, w, "arch", json::Type::String);
  if (const auto* ht = c.require(env, w, "hardware_threads",
                                 json::Type::Number)) {
    c.check_int(*ht, w + ".hardware_threads", 1);
  }
  c.require(env, w, "obs_enabled", json::Type::Bool);
}

void check_speedups(Checker& c, const json::Value& speedups,
                    const std::string& where) {
  std::size_t i = 0;
  for (const json::Value& s : speedups.as_array()) {
    const std::string w = where + "[" + std::to_string(i++) + "]";
    if (!s.is_object()) {
      c.fail(w, "expected object");
      continue;
    }
    c.require(s, w, "name", json::Type::String);
    const json::Value* points = c.require(s, w, "points", json::Type::Array);
    if (!points) continue;
    if (points->as_array().empty()) {
      c.fail(w + ".points", "speedup series must not be empty");
    }
    std::size_t j = 0;
    for (const json::Value& p : points->as_array()) {
      const std::string pw = w + ".points[" + std::to_string(j++) + "]";
      if (!p.is_object()) {
        c.fail(pw, "expected object");
        continue;
      }
      if (const auto* procs = c.require(p, pw, "procs", json::Type::Number)) {
        c.check_int(*procs, pw + ".procs", 1);
      }
      if (const auto* sp = c.require(p, pw, "speedup", json::Type::Number)) {
        if (sp->as_number() <= 0) c.fail(pw + ".speedup", "must be positive");
      }
    }
  }
}

void check_tables(Checker& c, const json::Value& tables,
                  const std::string& where) {
  std::size_t i = 0;
  for (const json::Value& t : tables.as_array()) {
    const std::string w = where + "[" + std::to_string(i++) + "]";
    if (!t.is_object()) {
      c.fail(w, "expected object");
      continue;
    }
    c.require(t, w, "name", json::Type::String);
    const json::Value* cols = c.require(t, w, "columns", json::Type::Array);
    const json::Value* rows = c.require(t, w, "rows", json::Type::Array);
    std::size_t width = 0;
    if (cols) {
      width = cols->as_array().size();
      for (const json::Value& col : cols->as_array()) {
        if (!col.is_string()) c.fail(w + ".columns", "entries must be strings");
      }
    }
    if (rows) {
      std::size_t j = 0;
      for (const json::Value& row : rows->as_array()) {
        const std::string rw = w + ".rows[" + std::to_string(j++) + "]";
        if (!row.is_array()) {
          c.fail(rw, "expected array");
          continue;
        }
        if (cols && row.as_array().size() != width) {
          c.fail(rw, "row width does not match columns");
        }
        for (const json::Value& cell : row.as_array()) {
          if (!cell.is_string()) c.fail(rw, "cells must be strings");
        }
      }
    }
  }
}

void check_case(Checker& c, const json::Value& cs, const std::string& w) {
  c.require(cs, w, "name", json::Type::String);
  if (const auto* wall = c.require(cs, w, "wall_ns", json::Type::Number)) {
    if (wall->as_number() < 0) c.fail(w + ".wall_ns", "must be >= 0");
  }
  if (const auto* cpu = c.require(cs, w, "cpu_ns", json::Type::Number)) {
    if (cpu->as_number() < 0) c.fail(w + ".cpu_ns", "must be >= 0");
  }
  if (const auto* metrics = c.optional(cs, w, "metrics", json::Type::Object)) {
    for (const auto& [k, v] : metrics->as_object()) {
      if (!v.is_number()) {
        c.fail(w + ".metrics." + k, "metric values must be numbers");
      }
    }
  }
  if (const auto* speedups = c.optional(cs, w, "speedups", json::Type::Array)) {
    check_speedups(c, *speedups, w + ".speedups");
  }
  if (const auto* tables = c.optional(cs, w, "tables", json::Type::Array)) {
    check_tables(c, *tables, w + ".tables");
  }
  if (const auto* notes = c.optional(cs, w, "notes", json::Type::Array)) {
    for (const json::Value& n : notes->as_array()) {
      if (!n.is_string()) c.fail(w + ".notes", "entries must be strings");
    }
  }
}

}  // namespace

std::vector<std::string> validate_bench_json(const json::Value& doc) {
  std::vector<std::string> violations;
  Checker c(violations);
  if (!doc.is_object()) {
    c.fail("$", "top-level value must be an object");
    return violations;
  }
  if (const auto* ver = c.require(doc, "$", "schema_version",
                                  json::Type::Number)) {
    if (ver->as_number() != kBenchSchemaVersion) {
      c.fail("$.schema_version",
             "unsupported version (expected " +
                 std::to_string(kBenchSchemaVersion) + ")");
    }
  }
  c.require(doc, "$", "suite", json::Type::String);
  c.require(doc, "$", "quick", json::Type::Bool);
  if (const auto* env = c.require(doc, "$", "env", json::Type::Object)) {
    check_env(c, *env);
  }
  if (const auto* cases = c.require(doc, "$", "cases", json::Type::Array)) {
    if (cases->as_array().empty()) {
      c.fail("$.cases", "must contain at least one case");
    }
    std::size_t i = 0;
    for (const json::Value& cs : cases->as_array()) {
      const std::string w = "$.cases[" + std::to_string(i++) + "]";
      if (!cs.is_object()) {
        c.fail(w, "expected object");
        continue;
      }
      check_case(c, cs, w);
    }
  }
  return violations;
}

std::vector<std::string> validate_serve_rollup(const json::Value& doc) {
  std::vector<std::string> violations;
  Checker c(violations);
  if (!doc.is_object()) {
    c.fail("$", "top-level value must be an object");
    return violations;
  }
  if (const auto* ver = c.require(doc, "$", "schema_version", json::Type::Number)) {
    if (ver->as_number() != kServeRollupSchemaVersion) {
      c.fail("$.schema_version", "unsupported version (expected " +
                                     std::to_string(kServeRollupSchemaVersion) + ")");
    }
  }
  if (const auto* kind = c.require(doc, "$", "kind", json::Type::String)) {
    if (kind->as_string() != "serve_rollup") {
      c.fail("$.kind", "expected \"serve_rollup\"");
    }
  }

  // Counters; collected for the accounting cross-checks below.
  const auto counter = [&](const char* key, double min) -> double {
    const json::Value* v = c.require(doc, "$", key, json::Type::Number);
    if (!v || !c.check_int(*v, std::string("$.") + key, min)) return 0.0;
    return v->as_number();
  };
  const double workers = counter("workers", 1);
  (void)workers;
  const double submitted = counter("submitted", 0);
  double rejected = 0.0;
  if (const auto* rej = c.require(doc, "$", "rejected", json::Type::Object)) {
    for (const char* key : {"queue_full", "draining"}) {
      if (const auto* v = c.require(*rej, "$.rejected", key, json::Type::Number)) {
        if (c.check_int(*v, std::string("$.rejected.") + key, 0)) rejected += v->as_number();
      }
    }
  }
  const double admitted = counter("admitted", 0);
  const double completed = counter("completed", 0);
  const double quarantined = counter("quarantined", 0);
  const double aborted = counter("aborted", 0);
  counter("retries", 0);
  if (const auto* wall = c.require(doc, "$", "wall_ns", json::Type::Number)) {
    if (wall->as_number() < 0) c.fail("$.wall_ns", "must be >= 0");
  }
  if (const auto* sps = c.require(doc, "$", "scenes_per_sec", json::Type::Number)) {
    if (sps->as_number() < 0) c.fail("$.scenes_per_sec", "must be >= 0");
  }
  if (const auto* lat = c.require(doc, "$", "latency_ns", json::Type::Object)) {
    for (const char* key : {"count", "p50_ns", "p90_ns", "p99_ns", "mean_ns", "max_ns"}) {
      if (const auto* v = c.require(*lat, "$.latency_ns", key, json::Type::Number)) {
        c.check_int(*v, std::string("$.latency_ns.") + key, 0);
      }
    }
  }
  if (const auto* engine = c.require(doc, "$", "engine", json::Type::Object)) {
    for (const auto& [k, v] : engine->as_object()) {
      if (!v.is_number()) c.fail("$.engine." + k, "metric values must be numbers");
    }
  }

  // Exactly-once accounting: every admission attempt ends in exactly one bin.
  if (violations.empty()) {
    if (submitted != admitted + rejected) {
      c.fail("$", "submitted != admitted + rejected (lost or double-counted scenes)");
    }
    if (admitted != completed + quarantined + aborted) {
      c.fail("$", "admitted != completed + quarantined + aborted "
                  "(lost or double-counted scenes)");
    }
  }
  return violations;
}

}  // namespace psmsys::obs
