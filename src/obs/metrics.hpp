#pragma once

// RunMetrics: the machine-readable snapshot attached to every executor
// result (psm::RunResult) and embedded in BENCH_<suite>.json case entries.
//
// It aggregates the engine's WorkCounters across all completed tasks and adds
// the executor-level quantities the paper's tables need: wall time, retry /
// requeue accounting, and the peak conflict-set and live-token gauges that
// only the instrumented engine can observe.

#include <cstdint>
#include <span>
#include <vector>

#include "obs/json.hpp"
#include "util/counters.hpp"

namespace psmsys::obs {

struct RunMetrics {
  // --- scale of the run ---
  std::uint64_t tasks = 0;            ///< tasks completed
  std::uint64_t task_processes = 0;   ///< worker count used

  // --- engine counters, summed over completed tasks ---
  std::uint64_t cycles = 0;           ///< recognize-act cycles
  std::uint64_t firings = 0;
  std::uint64_t rhs_actions = 0;
  std::uint64_t wmes_added = 0;       ///< WME churn, add side
  std::uint64_t wmes_removed = 0;     ///< WME churn, remove side
  std::uint64_t tokens_created = 0;   ///< rete beta-memory tokens built
  std::uint64_t tokens_deleted = 0;
  std::uint64_t join_probes = 0;      ///< beta-join activations
  std::uint64_t alpha_tests = 0;
  std::uint64_t alpha_activations = 0;

  // --- virtual-time split (work units): match vs act per the paper §3.1 ---
  std::uint64_t match_cost_wu = 0;
  std::uint64_t resolve_cost_wu = 0;
  std::uint64_t rhs_cost_wu = 0;

  // --- gauges (require PSMSYS_OBS; 0 when compiled out) ---
  std::uint64_t peak_conflict_set = 0;  ///< max conflict-set size seen
  std::uint64_t peak_live_tokens = 0;   ///< max simultaneously-live rete tokens

  // --- per-node Rete activation counters (PSMSYS_OBS gauges), indexed by the
  //     NetworkTopology node ids; empty unless harvested from a matcher that
  //     exports them. Only meaningful when every contribution comes from
  //     networks compiled over the same program (same id space). ---
  std::vector<std::uint64_t> alpha_node_activations;
  std::vector<std::uint64_t> join_node_activations;

  // --- intra-task match parallelism (all 0 with the serial matcher) ---
  std::uint64_t match_threads = 0;       ///< match workers per task process
  std::uint64_t match_parallel_ops = 0;  ///< WME ops dispatched to match pools
  std::uint64_t match_busy_ns = 0;       ///< summed worker busy time (OBS gauge)
  std::uint64_t match_wall_ns = 0;       ///< summed dispatch wall time (OBS gauge)

  // --- match-pool partition balance (deterministic work-unit counters, not
  //     gauges: available in every build). Summed/maxed over all engines, so
  //     with one task process imbalance reads the pool's LPT quality. ---
  std::uint64_t match_partitions = 0;          ///< partition count, summed
  std::uint64_t match_partition_cost_max = 0;  ///< heaviest partition (wu)
  std::uint64_t match_partition_cost_sum = 0;  ///< all partition work (wu)

  // --- executor accounting ---
  std::uint64_t retries = 0;
  std::uint64_t requeues = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t abandoned = 0;
  std::uint64_t dead_workers = 0;
  std::int64_t wall_ns = 0;           ///< host wall-clock for the run

  [[nodiscard]] std::uint64_t total_cost_wu() const noexcept {
    return match_cost_wu + resolve_cost_wu + rhs_cost_wu;
  }

  [[nodiscard]] double match_fraction() const noexcept {
    const std::uint64_t t = total_cost_wu();
    return t ? static_cast<double>(match_cost_wu) / static_cast<double>(t)
             : 0.0;
  }

  /// Mean busy fraction of match workers while dispatches were in flight
  /// (0 for serial match or PSMSYS_OBS=0 builds).
  [[nodiscard]] double match_thread_utilization() const noexcept {
    return (match_wall_ns == 0 || match_threads == 0)
               ? 0.0
               : static_cast<double>(match_busy_ns) /
                     (static_cast<double>(match_wall_ns) *
                      static_cast<double>(match_threads));
  }

  /// Measured partition imbalance: heaviest partition / mean partition work
  /// (>= 1 when partitions exist; 0 for serial match). The quantity the
  /// static partitioning cost model is judged on (ISSUE 5 acceptance).
  [[nodiscard]] double match_partition_imbalance() const noexcept {
    if (match_partitions == 0 || match_partition_cost_sum == 0) return 0.0;
    const double mean = static_cast<double>(match_partition_cost_sum) /
                        static_cast<double>(match_partitions);
    return static_cast<double>(match_partition_cost_max) / mean;
  }

  /// Fold one task's counters into the aggregate.
  void add_counters(const util::WorkCounters& c) noexcept;

  /// Element-wise accumulate per-node activation vectors (resizing to the
  /// longer of the two). Callers must only mix vectors from networks sharing
  /// one topology id space.
  void add_node_activations(std::span<const std::uint64_t> alpha,
                            std::span<const std::uint64_t> join);

  /// Flat JSON object, one key per field (plus derived total_cost_wu and
  /// match_fraction). Key order matches declaration order above. The per-node
  /// activation arrays are emitted only when non-empty, so documents from
  /// builds or paths without them are byte-stable.
  [[nodiscard]] json::Value to_json() const;
};

/// Difference of two aggregated counter snapshots (for before/after deltas in
/// bench cases). Fields saturate at zero rather than wrapping.
[[nodiscard]] RunMetrics metrics_delta(const RunMetrics& after,
                                       const RunMetrics& before) noexcept;

/// Order statistics of a latency sample in nanoseconds — the per-scene
/// distribution a serve rollup reports (p50/p99 scene latency acceptance).
/// All fields are 0 for an empty sample.
struct LatencySummary {
  std::uint64_t count = 0;
  std::int64_t p50_ns = 0;
  std::int64_t p90_ns = 0;
  std::int64_t p99_ns = 0;
  std::int64_t mean_ns = 0;
  std::int64_t max_ns = 0;

  /// Flat JSON object, key order as declared.
  [[nodiscard]] json::Value to_json() const;
};

/// Summarize a sample of per-item latencies (ns). Copies + sorts internally.
[[nodiscard]] LatencySummary summarize_latency_ns(std::span<const std::int64_t> samples_ns);

}  // namespace psmsys::obs
