#pragma once

// Minimal JSON value model for the observability layer.
//
// The repo deliberately carries no third-party JSON dependency, so the trace
// exporter, the bench harness, and the schema validator share this one small
// implementation. Objects preserve insertion order so emitted documents diff
// cleanly across runs; numbers are stored as double (sufficient for work-unit
// counters well below 2^53).

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace psmsys::obs::json {

class Value;

using Array = std::vector<Value>;
/// Insertion-ordered object; lookups are linear, which is fine at the sizes
/// BENCH documents and traces reach (tens of keys).
using Object = std::vector<std::pair<std::string, Value>>;

enum class Type { Null, Bool, Number, String, Array, Object };

class Value {
 public:
  Value() : type_(Type::Null) {}
  Value(std::nullptr_t) : type_(Type::Null) {}
  Value(bool b) : type_(Type::Bool), bool_(b) {}
  Value(double d) : type_(Type::Number), num_(d) {}
  Value(int i) : type_(Type::Number), num_(i) {}
  Value(unsigned u) : type_(Type::Number), num_(u) {}
  Value(long l) : type_(Type::Number), num_(static_cast<double>(l)) {}
  Value(unsigned long ul) : type_(Type::Number), num_(static_cast<double>(ul)) {}
  Value(long long ll) : type_(Type::Number), num_(static_cast<double>(ll)) {}
  Value(unsigned long long ull)
      : type_(Type::Number), num_(static_cast<double>(ull)) {}
  Value(const char* s) : type_(Type::String), str_(s) {}
  Value(std::string_view s) : type_(Type::String), str_(s) {}
  Value(std::string s) : type_(Type::String), str_(std::move(s)) {}
  Value(Array a) : type_(Type::Array), arr_(std::move(a)) {}
  Value(Object o) : type_(Type::Object), obj_(std::move(o)) {}

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::Null; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::Bool; }
  [[nodiscard]] bool is_number() const noexcept { return type_ == Type::Number; }
  [[nodiscard]] bool is_string() const noexcept { return type_ == Type::String; }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::Array; }
  [[nodiscard]] bool is_object() const noexcept { return type_ == Type::Object; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_number() const { return num_; }
  [[nodiscard]] const std::string& as_string() const { return str_; }
  [[nodiscard]] const Array& as_array() const { return arr_; }
  [[nodiscard]] Array& as_array() { return arr_; }
  [[nodiscard]] const Object& as_object() const { return obj_; }
  [[nodiscard]] Object& as_object() { return obj_; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const;
  /// Insert-or-assign on an object value.
  void set(std::string_view key, Value v);

  /// Serialize. indent == 0 emits compact single-line JSON; indent > 0
  /// pretty-prints with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = 0) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Strict-enough JSON parser (UTF-8 pass-through, \uXXXX escapes decoded,
/// no comments, no trailing commas). Returns nullopt on malformed input and,
/// when err is non-null, a human-readable reason with byte offset.
[[nodiscard]] std::optional<Value> parse(std::string_view text,
                                         std::string* err = nullptr);

/// Escape a string for embedding in JSON output (no surrounding quotes).
[[nodiscard]] std::string escape(std::string_view s);

}  // namespace psmsys::obs::json
