#include "obs/json.hpp"

#include <array>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace psmsys::obs::json {

const Value* Value::find(std::string_view key) const {
  if (type_ != Type::Object) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Value::set(std::string_view key, Value v) {
  if (type_ != Type::Object) {
    *this = Value(Object{});
  }
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  obj_.emplace_back(std::string(key), std::move(v));
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

void append_number(std::string& out, double d) {
  if (!std::isfinite(d)) {
    // JSON has no Inf/NaN; null is the conventional stand-in.
    out += "null";
    return;
  }
  // Integers (the common case for counters) print without a fraction.
  if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", d);
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  // Trim to the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char probe[32];
    std::snprintf(probe, sizeof probe, "%.*g", prec, d);
    double back = 0;
    std::sscanf(probe, "%lf", &back);
    if (back == d) {
      std::memcpy(buf, probe, sizeof probe);
      break;
    }
  }
  out += buf;
}

void indent_to(std::string& out, int indent, int depth) {
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Value::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += bool_ ? "true" : "false"; break;
    case Type::Number: append_number(out, num_); break;
    case Type::String:
      out += '"';
      out += escape(str_);
      out += '"';
      break;
    case Type::Array: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      bool first = true;
      for (const Value& v : arr_) {
        if (!first) out += ',';
        first = false;
        if (indent) indent_to(out, indent, depth + 1);
        v.dump_to(out, indent, depth + 1);
      }
      if (indent) indent_to(out, indent, depth);
      out += ']';
      break;
    }
    case Type::Object: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out += ',';
        first = false;
        if (indent) indent_to(out, indent, depth + 1);
        out += '"';
        out += escape(k);
        out += "\":";
        if (indent) out += ' ';
        v.dump_to(out, indent, depth + 1);
      }
      if (indent) indent_to(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* err) : text_(text), err_(err) {}

  std::optional<Value> run() {
    skip_ws();
    auto v = parse_value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after JSON value");
      return std::nullopt;
    }
    return v;
  }

 private:
  void fail(const char* why) {
    if (err_ && err_->empty()) {
      *err_ = std::string(why) + " at byte " + std::to_string(pos_);
    }
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof()) {
      char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  std::optional<Value> parse_value() {
    if (++depth_ > kMaxDepth) {
      fail("nesting too deep");
      return std::nullopt;
    }
    struct DepthGuard {
      int& d;
      ~DepthGuard() { --d; }
    } guard{depth_};
    if (eof()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    switch (peek()) {
      case 'n':
        if (consume_literal("null")) return Value(nullptr);
        fail("invalid literal");
        return std::nullopt;
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("invalid literal");
        return std::nullopt;
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("invalid literal");
        return std::nullopt;
      case '"': return parse_string_value();
      case '[': return parse_array();
      case '{': return parse_object();
      default: return parse_number();
    }
  }

  std::optional<std::string> parse_string() {
    if (eof() || peek() != '"') {
      fail("expected string");
      return std::nullopt;
    }
    ++pos_;
    std::string out;
    while (true) {
      if (eof()) {
        fail("unterminated string");
        return std::nullopt;
      }
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (eof()) {
          fail("unterminated escape");
          return std::nullopt;
        }
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            auto cp = parse_hex4();
            if (!cp) return std::nullopt;
            unsigned code = *cp;
            // Surrogate pair handling.
            if (code >= 0xD800 && code <= 0xDBFF &&
                text_.substr(pos_, 2) == "\\u") {
              pos_ += 2;
              auto lo = parse_hex4();
              if (!lo) return std::nullopt;
              if (*lo >= 0xDC00 && *lo <= 0xDFFF) {
                code = 0x10000 + ((code - 0xD800) << 10) + (*lo - 0xDC00);
              } else {
                fail("invalid low surrogate");
                return std::nullopt;
              }
            }
            append_utf8(out, code);
            break;
          }
          default:
            fail("invalid escape character");
            return std::nullopt;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
        return std::nullopt;
      } else {
        out += c;
      }
    }
  }

  std::optional<unsigned> parse_hex4() {
    if (pos_ + 4 > text_.size()) {
      fail("truncated \\u escape");
      return std::nullopt;
    }
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v += static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v += static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v += static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid hex digit in \\u escape");
        return std::nullopt;
      }
    }
    return v;
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  std::optional<Value> parse_string_value() {
    auto s = parse_string();
    if (!s) return std::nullopt;
    return Value(std::move(*s));
  }

  std::optional<Value> parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    if (!eof() && peek() == '.') {
      ++pos_;
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (pos_ == start) {
      fail("expected value");
      return std::nullopt;
    }
    std::string num(text_.substr(start, pos_ - start));
    double d = 0;
    if (std::sscanf(num.c_str(), "%lf", &d) != 1) {
      fail("malformed number");
      return std::nullopt;
    }
    return Value(d);
  }

  std::optional<Value> parse_array() {
    ++pos_;  // '['
    Array arr;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    while (true) {
      skip_ws();
      auto v = parse_value();
      if (!v) return std::nullopt;
      arr.push_back(std::move(*v));
      skip_ws();
      if (eof()) {
        fail("unterminated array");
        return std::nullopt;
      }
      char c = text_[pos_++];
      if (c == ']') return Value(std::move(arr));
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
        return std::nullopt;
      }
    }
  }

  std::optional<Value> parse_object() {
    ++pos_;  // '{'
    Object obj;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (eof() || text_[pos_++] != ':') {
        fail("expected ':' in object");
        return std::nullopt;
      }
      skip_ws();
      auto v = parse_value();
      if (!v) return std::nullopt;
      obj.emplace_back(std::move(*key), std::move(*v));
      skip_ws();
      if (eof()) {
        fail("unterminated object");
        return std::nullopt;
      }
      char c = text_[pos_++];
      if (c == '}') return Value(std::move(obj));
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
        return std::nullopt;
      }
    }
  }

  static constexpr int kMaxDepth = 256;

  std::string_view text_;
  std::string* err_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::optional<Value> parse(std::string_view text, std::string* err) {
  if (err) err->clear();
  return Parser(text, err).run();
}

}  // namespace psmsys::obs::json
