#pragma once

// Shared-virtual-memory (network shared memory) cluster model — Section 7.
//
// The paper joined two 16-processor Encore Multimaxes with the MACH shared
// memory server: a page-granular shared virtual address space with ~50 ms
// network latency per remote fault. We model exactly the economics that
// produced Figure 9:
//
//  * Task processes on the first node touch only local memory.
//  * Task processes on the second node take network page faults on the
//    central task queue page and on every shared page their task's working
//    set churns (the paper's "translational effect ... equivalent to the
//    loss of about 1.5 processors").
//  * False contention (two nodes touching distinct objects on one page)
//    multiplies the fault count; with naive data-structure placement this
//    "brought our system to a halt just during the initialization".
//  * The netmemory server's diff-shipping optimization (ship modified
//    64-byte segments instead of full 8K pages) divides the per-fault cost.
//
// A task's working-set page count is estimated from its measured WME churn;
// everything else is scheduling, shared with the TLP simulator.
//
// Degraded-condition extensions (all default-off, reproducing the healthy
// cluster exactly):
//  * Fault storm — for a window of virtual time after start, remote faults
//    multiply by `storm_factor`: the paper's "brought our system to a halt
//    just during the initialization" as a transient rather than a constant.
//  * Node failure — the second Encore drops off the network at
//    `node1_fails_at`: its processors take no further tasks, the task each
//    one was running is lost mid-flight and re-executed on a survivor, and
//    the wasted partial work plus the re-execution are charged. This is the
//    cluster analog of the dead-worker recovery in robust psm::run.

#include <cstdint>
#include <span>
#include <vector>

#include "psm/task.hpp"
#include "util/work_units.hpp"

namespace psmsys::svm {

struct SvmConfig {
  /// Usable task processors per node. The paper could use 13 on the first
  /// Encore and 9 on the second (MACH + netmemory server occupy the rest).
  std::size_t node0_procs = 13;
  std::size_t node1_procs = 9;

  /// Cost of one remote page fault shipping a full 8K page (~50 ms network
  /// latency, Forin et al.).
  util::WorkUnits full_page_fault_cost = 3200;
  /// Cost when the server ships only modified 64-byte segments.
  util::WorkUnits diff_fault_cost = 900;
  bool diff_shipping = true;

  /// Multiplier on the remote fault count from false contention — distinct
  /// objects of different nodes sharing pages. 1.0 = data structures laid
  /// out per-node (the paper's fix); large values reproduce the initial
  /// behaviour where faulting halted the system.
  double false_sharing_factor = 1.0;

  /// Shared WME-sized records per 8K page (sets pages-per-task).
  std::size_t items_per_page = 32;

  /// Local queue-pop/task-init overhead (same as the TLP simulator).
  util::WorkUnits queue_overhead_per_task = 40;

  // ---- degraded-condition knobs (defaults = healthy cluster) ----

  /// Remote-fault multiplier during the storm window (>= 1).
  double storm_factor = 1.0;
  /// Virtual time (wu) at which the fault storm subsides; 0 = no storm.
  util::WorkUnits storm_until = 0;
  /// Virtual time (wu) at which node 1 fails; 0 = never. Tasks running on
  /// node 1 at that moment are lost and re-executed on node 0.
  util::WorkUnits node1_fails_at = 0;
};

struct SvmSimResult {
  util::WorkUnits makespan = 0;
  std::vector<util::WorkUnits> busy;     ///< per processor
  std::uint64_t remote_faults = 0;
  util::WorkUnits remote_fault_cost = 0; ///< total wu spent faulting
  std::uint64_t storm_extra_faults = 0;  ///< faults attributable to the storm window
  std::size_t failed_procs = 0;          ///< processors lost to node failure
  std::uint64_t reexecuted_tasks = 0;    ///< tasks lost mid-flight and rerun
  util::WorkUnits wasted_work = 0;       ///< partial work lost with the node
};

/// Estimated shared pages a task's execution churns (its WME adds/removes
/// plus the task-queue entry).
[[nodiscard]] std::uint64_t task_pages(const psm::TaskMeasurement& task, const SvmConfig& config);

/// Schedule tasks over `total_procs` processors spread over the two nodes
/// (first node0_procs on node 0, remainder on node 1; capped at
/// node0+node1). FIFO queue order, list scheduling.
[[nodiscard]] SvmSimResult simulate_svm(std::span<const psm::TaskMeasurement> tasks,
                                        std::size_t total_procs, const SvmConfig& config);

}  // namespace psmsys::svm
