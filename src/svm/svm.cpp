#include "svm/svm.hpp"

#include <algorithm>
#include <deque>
#include <queue>
#include <stdexcept>

namespace psmsys::svm {

std::uint64_t task_pages(const psm::TaskMeasurement& task, const SvmConfig& config) {
  const std::uint64_t wme_churn = task.counters.wmes_added + task.counters.wmes_removed;
  const std::uint64_t data_pages =
      (wme_churn + config.items_per_page - 1) / std::max<std::size_t>(config.items_per_page, 1);
  return data_pages + 1;  // +1: the task-queue page
}

SvmSimResult simulate_svm(std::span<const psm::TaskMeasurement> tasks, std::size_t total_procs,
                          const SvmConfig& config) {
  if (total_procs == 0) throw std::invalid_argument("need >= 1 processor");
  total_procs = std::min(total_procs, config.node0_procs + config.node1_procs);

  const util::WorkUnits fault_cost =
      config.diff_shipping ? config.diff_fault_cost : config.full_page_fault_cost;
  const util::WorkUnits fail_time = config.node1_fails_at;

  SvmSimResult result;
  result.busy.assign(total_procs, 0);

  using Slot = std::pair<util::WorkUnits, std::size_t>;
  std::priority_queue<Slot, std::vector<Slot>, std::greater<>> free_at;
  for (std::size_t p = 0; p < total_procs; ++p) free_at.emplace(0, p);

  // FIFO work list; a task lost with the failing node goes back to the head
  // for re-execution on a survivor.
  std::deque<std::size_t> pending;
  for (std::size_t i = 0; i < tasks.size(); ++i) pending.push_back(i);

  while (!pending.empty() && !free_at.empty()) {
    auto [t, p] = free_at.top();
    free_at.pop();
    const bool remote = p >= config.node0_procs;
    if (fail_time != 0 && remote && t >= fail_time) {
      // Node 1 is gone: this processor takes no further tasks.
      continue;
    }
    const std::size_t idx = pending.front();
    pending.pop_front();
    const auto& task = tasks[idx];

    util::WorkUnits duration = config.queue_overhead_per_task + task.cost();
    std::uint64_t faults = 0;
    std::uint64_t base_faults = 0;
    if (remote) {
      // Remote node: every working-set page faults across the network, with
      // false contention multiplying the count — further multiplied while
      // the initialization fault storm lasts.
      double factor = config.false_sharing_factor;
      base_faults =
          static_cast<std::uint64_t>(static_cast<double>(task_pages(task, config)) * factor);
      if (config.storm_until != 0 && t < config.storm_until) {
        factor *= std::max(config.storm_factor, 1.0);
      }
      faults = static_cast<std::uint64_t>(static_cast<double>(task_pages(task, config)) * factor);
      duration += faults * fault_cost;
    }

    if (fail_time != 0 && remote && t + duration > fail_time) {
      // The node dies mid-task: partial work is wasted, the task re-executes
      // on a survivor, and the processor never comes back.
      const util::WorkUnits partial = fail_time - t;
      result.busy[p] += partial;
      result.wasted_work += partial;
      ++result.reexecuted_tasks;
      result.makespan = std::max(result.makespan, fail_time);
      pending.push_front(idx);
      continue;
    }

    if (remote) {
      result.remote_faults += faults;
      result.remote_fault_cost += faults * fault_cost;
      result.storm_extra_faults += faults - base_faults;
    }
    result.busy[p] += duration;
    free_at.emplace(t + duration, p);
  }
  while (!free_at.empty()) {
    result.makespan = std::max(result.makespan, free_at.top().first);
    free_at.pop();
  }
  if (fail_time != 0 && total_procs > config.node0_procs) {
    result.failed_procs = total_procs - config.node0_procs;
  }
  return result;
}

}  // namespace psmsys::svm
