#include "svm/svm.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace psmsys::svm {

std::uint64_t task_pages(const psm::TaskMeasurement& task, const SvmConfig& config) {
  const std::uint64_t wme_churn = task.counters.wmes_added + task.counters.wmes_removed;
  const std::uint64_t data_pages =
      (wme_churn + config.items_per_page - 1) / std::max<std::size_t>(config.items_per_page, 1);
  return data_pages + 1;  // +1: the task-queue page
}

SvmSimResult simulate_svm(std::span<const psm::TaskMeasurement> tasks, std::size_t total_procs,
                          const SvmConfig& config) {
  if (total_procs == 0) throw std::invalid_argument("need >= 1 processor");
  total_procs = std::min(total_procs, config.node0_procs + config.node1_procs);

  const util::WorkUnits fault_cost =
      config.diff_shipping ? config.diff_fault_cost : config.full_page_fault_cost;

  SvmSimResult result;
  result.busy.assign(total_procs, 0);

  using Slot = std::pair<util::WorkUnits, std::size_t>;
  std::priority_queue<Slot, std::vector<Slot>, std::greater<>> free_at;
  for (std::size_t p = 0; p < total_procs; ++p) free_at.emplace(0, p);

  for (const auto& task : tasks) {
    auto [t, p] = free_at.top();
    free_at.pop();
    util::WorkUnits duration = config.queue_overhead_per_task + task.cost();
    if (p >= config.node0_procs) {
      // Remote node: every working-set page faults across the network, with
      // false contention multiplying the count.
      const auto faults = static_cast<std::uint64_t>(
          static_cast<double>(task_pages(task, config)) * config.false_sharing_factor);
      duration += faults * fault_cost;
      result.remote_faults += faults;
      result.remote_fault_cost += faults * fault_cost;
    }
    result.busy[p] += duration;
    free_at.emplace(t + duration, p);
  }
  while (!free_at.empty()) {
    result.makespan = std::max(result.makespan, free_at.top().first);
    free_at.pop();
  }
  return result;
}

}  // namespace psmsys::svm
