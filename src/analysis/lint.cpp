#include "analysis/lint.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <unordered_set>

#include "analysis/footprint.hpp"

namespace psmsys::analysis {

namespace {

using ops5::AttrTest;
using ops5::BindAction;
using ops5::ClassIndex;
using ops5::ConditionElement;
using ops5::Expr;
using ops5::MakeAction;
using ops5::ModifyAction;
using ops5::Predicate;
using ops5::Production;
using ops5::Program;
using ops5::RemoveAction;
using ops5::SlotIndex;
using ops5::Value;
using ops5::VariableId;
using ops5::WriteAction;

/// Whole-program pre-analysis shared by every per-production linter pass:
/// the dependency-graph substrate of AN003/AN008/AN009.
struct WholeProgram {
  /// Classes some production makes.
  std::unordered_set<ClassIndex> producers;
  /// Class -> productions with a (positive or negated) CE on it.
  std::unordered_map<ClassIndex, std::unordered_set<const Production*>> readers;
  /// Classes producible from the seeds through live productions (fixpoint);
  /// meaningful only when seed_classes was provided.
  std::unordered_set<ClassIndex> producible;
};

[[nodiscard]] std::unordered_set<ClassIndex> make_producers(const Program& program) {
  std::unordered_set<ClassIndex> producers;
  for (const auto& p : program.productions()) {
    for (const auto& action : p.rhs()) {
      if (const auto* make = std::get_if<MakeAction>(&action)) producers.insert(make->cls);
    }
  }
  return producers;
}

[[nodiscard]] WholeProgram whole_program_analysis(const Program& program,
                                                  const LintOptions& options) {
  WholeProgram wp;
  wp.producers = make_producers(program);
  for (const auto& p : program.productions()) {
    for (const auto& ce : p.lhs()) wp.readers[ce.cls].insert(&p);
  }
  if (options.seed_classes.has_value()) {
    wp.producible.insert(options.seed_classes->begin(), options.seed_classes->end());
    // Liveness fixpoint: a production is live once every positive CE class is
    // producible; a live production's makes extend producibility. Negated CEs
    // never block liveness (absence is free).
    std::unordered_set<const Production*> live;
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& p : program.productions()) {
        if (live.contains(&p)) continue;
        bool matchable = true;
        for (const auto& ce : p.lhs()) {
          if (!ce.negated && !wp.producible.contains(ce.cls)) {
            matchable = false;
            break;
          }
        }
        if (!matchable) continue;
        live.insert(&p);
        changed = true;
        for (const auto& action : p.rhs()) {
          if (const auto* make = std::get_if<MakeAction>(&action)) {
            wp.producible.insert(make->cls);
          }
        }
      }
    }
  }
  return wp;
}

class ProductionLinter {
 public:
  ProductionLinter(const Program& program, const Production& production,
                   const LintOptions& options, const WholeProgram& whole,
                   std::vector<Diagnostic>& out)
      : program_(program),
        production_(production),
        options_(options),
        whole_(whole),
        producers_(whole.producers),
        out_(out) {}

  void run() {
    check_bindings();          // AN006 + the bound-variable map
    check_rhs_variables();     // AN001
    check_unused_bindings();   // AN002
    check_reachability();      // AN003
    check_contradictions();    // AN004
    check_modify_targets();    // AN005
    check_duplicate_sets();    // AN007
    check_dead();              // AN008
    check_unproducible();      // AN009
  }

 private:
  void report(Code code, std::string message, ops5::SourceLoc loc = {},
              std::optional<Severity> severity = std::nullopt) {
    Diagnostic d;
    d.code = code;
    d.severity = severity.value_or(default_severity(code));
    d.production = production_.name();
    d.loc = loc.known() ? loc : production_.location();
    d.message = std::move(message);
    out_.push_back(std::move(d));
  }

  [[nodiscard]] std::string var(VariableId v) const {
    return "<" + program_.variable_name(v) + ">";
  }

  [[nodiscard]] std::string class_of(ClassIndex cls) const {
    return program_.symbols().name(program_.wme_class(cls).name());
  }

  [[nodiscard]] std::string attr_of(ClassIndex cls, SlotIndex slot) const {
    return program_.symbols().name(program_.wme_class(cls).attributes()[slot]);
  }

  // AN006 — mirror the engine's binding rule (bindings.hpp): a variable's
  // first occurrence in a positive CE must be an equality test, which binds
  // it; a first occurrence under <, <=, >, >=, <> has nothing to compare to.
  void check_bindings() {
    std::unordered_set<VariableId> flagged;
    for (const auto& ce : production_.lhs()) {
      if (ce.negated) continue;
      for (const auto& test : ce.tests) {
        if (!test.is_variable) continue;
        if (bound_.contains(test.var)) continue;
        if (test.pred == Predicate::Eq) {
          bound_.insert(test.var);
        } else if (flagged.insert(test.var).second) {
          report(Code::NonEqualityFirstUse,
                 "first occurrence of " + var(test.var) + " uses predicate '" +
                     std::string(ops5::predicate_name(test.pred)) +
                     "' — a variable must be bound by an equality test before it can "
                     "be compared",
                 ce.loc);
        }
      }
    }
  }

  // AN001 — every RHS variable reference must be bound by a positive CE or
  // by an earlier bind action.
  void check_rhs_variables() {
    std::unordered_set<VariableId> negation_only;
    for (const auto& ce : production_.lhs()) {
      if (!ce.negated) continue;
      for (const auto& test : ce.tests) {
        if (test.is_variable && !bound_.contains(test.var)) negation_only.insert(test.var);
      }
    }

    std::unordered_set<VariableId> eligible = bound_;
    std::unordered_set<VariableId> flagged;
    const auto check_expr = [&](const Expr& expr) {
      std::vector<VariableId> vars;
      collect_expr_variables(expr, vars);
      for (const VariableId v : vars) {
        if (eligible.contains(v) || !flagged.insert(v).second) continue;
        std::string message = "RHS references " + var(v) + ", which no positive CE binds";
        if (negation_only.contains(v)) {
          message += " (it appears only inside a negated CE, where bindings are local)";
        }
        report(Code::UnboundRhsVariable, std::move(message));
      }
    };

    for (const auto& action : production_.rhs()) {
      if (const auto* make = std::get_if<MakeAction>(&action)) {
        for (const auto& [slot, expr] : make->sets) check_expr(expr);
      } else if (const auto* mod = std::get_if<ModifyAction>(&action)) {
        for (const auto& [slot, expr] : mod->sets) check_expr(expr);
      } else if (const auto* bind = std::get_if<BindAction>(&action)) {
        check_expr(bind->expr);
        eligible.insert(bind->var);
      } else if (const auto* write = std::get_if<WriteAction>(&action)) {
        for (const auto& expr : write->exprs) check_expr(expr);
      }
    }
  }

  // AN002 — a positive-CE binding used exactly once (its own binding test)
  // constrains nothing; it is usually a leftover or a misspelling.
  void check_unused_bindings() {
    std::unordered_map<VariableId, std::size_t> uses;
    for (const auto& ce : production_.lhs()) {
      for (const auto& test : ce.tests) {
        if (test.is_variable) ++uses[test.var];
      }
    }
    const auto count_expr = [&](const Expr& expr) {
      std::vector<VariableId> vars;
      collect_expr_variables(expr, vars);
      for (const VariableId v : vars) ++uses[v];
    };
    for (const auto& action : production_.rhs()) {
      if (const auto* make = std::get_if<MakeAction>(&action)) {
        for (const auto& [slot, expr] : make->sets) count_expr(expr);
      } else if (const auto* mod = std::get_if<ModifyAction>(&action)) {
        for (const auto& [slot, expr] : mod->sets) count_expr(expr);
      } else if (const auto* bind = std::get_if<BindAction>(&action)) {
        count_expr(bind->expr);
      } else if (const auto* write = std::get_if<WriteAction>(&action)) {
        for (const auto& expr : write->exprs) count_expr(expr);
      }
    }
    // Report in LHS order for stable output.
    std::unordered_set<VariableId> reported;
    for (const auto& ce : production_.lhs()) {
      if (ce.negated) continue;
      for (const auto& test : ce.tests) {
        if (!test.is_variable || !bound_.contains(test.var)) continue;
        if (uses[test.var] != 1 || !reported.insert(test.var).second) continue;
        report(Code::UnusedBinding,
               "variable " + var(test.var) + " is bound but never used", ce.loc);
      }
    }
  }

  // AN003 — a positive CE over a class no production makes and nothing
  // seeds can never match, so the production can never fire.
  void check_reachability() {
    if (!options_.seed_classes.has_value()) return;
    const std::unordered_set<ClassIndex> seeds(options_.seed_classes->begin(),
                                               options_.seed_classes->end());
    std::unordered_set<ClassIndex> reported;
    for (const auto& ce : production_.lhs()) {
      if (ce.negated) continue;
      if (producers_.contains(ce.cls) || seeds.contains(ce.cls)) continue;
      if (!reported.insert(ce.cls).second) continue;
      report(Code::UnreachableProduction,
             "condition element matches class '" + class_of(ce.cls) +
                 "', which no production makes and no seed provides — the production "
                 "can never fire",
             ce.loc);
    }
  }

  // AN004 — the conjunction of one CE's constant tests on a single slot must
  // be satisfiable. Handles equality/disjunction value sets, <> exclusions,
  // numeric intervals, and ordering tests against non-numbers (always false
  // in OPS5: <,> compare numbers only).
  void check_contradictions() {
    for (const auto& ce : production_.lhs()) {
      std::set<SlotIndex> slots;
      for (const auto& test : ce.tests) {
        if (!test.is_variable) slots.insert(test.slot);
      }
      for (const SlotIndex slot : slots) check_slot_tests(ce, slot);
    }
  }

  void check_slot_tests(const ConditionElement& ce, SlotIndex slot) {
    std::vector<const AttrTest*> tests;
    for (const auto& test : ce.tests) {
      if (!test.is_variable && test.slot == slot) tests.push_back(&test);
    }
    if (tests.empty()) return;

    const auto contradiction = [&](std::string_view why) {
      report(Code::ContradictoryTests,
             "tests on ^" + attr_of(ce.cls, slot) + " of '" + class_of(ce.cls) +
                 "' can never all hold (" + std::string(why) + ")",
             ce.loc);
    };

    // Ordering predicates never match symbols or nil.
    for (const AttrTest* t : tests) {
      if (t->is_disjunction() || t->pred == Predicate::Eq || t->pred == Predicate::Ne) continue;
      if (!t->constant.is_number()) {
        contradiction("ordering test against a non-number never matches");
        return;
      }
    }

    // Intersect the explicit value sets (= and << ... >>).
    std::optional<std::vector<Value>> allowed;
    for (const AttrTest* t : tests) {
      std::vector<Value> set;
      if (t->is_disjunction()) {
        set = t->disjunction;
      } else if (t->pred == Predicate::Eq) {
        set = {t->constant};
      } else {
        continue;
      }
      if (!allowed) {
        allowed = std::move(set);
      } else {
        std::vector<Value> next;
        for (const auto& v : *allowed) {
          if (std::find(set.begin(), set.end(), v) != set.end()) next.push_back(v);
        }
        allowed = std::move(next);
      }
    }

    if (allowed) {
      // Keep only values passing every remaining predicate test.
      std::vector<Value> left;
      for (const auto& v : *allowed) {
        bool ok = true;
        for (const AttrTest* t : tests) {
          if (t->is_disjunction() || t->pred == Predicate::Eq) continue;
          if (!ops5::apply_predicate(t->pred, v, t->constant)) {
            ok = false;
            break;
          }
        }
        if (ok) left.push_back(v);
      }
      if (left.empty()) contradiction("no value satisfies every test");
      return;
    }

    // Pure interval reasoning over < <= > >=.
    double lb = -std::numeric_limits<double>::infinity();
    double ub = std::numeric_limits<double>::infinity();
    bool lb_strict = false;
    bool ub_strict = false;
    for (const AttrTest* t : tests) {
      if (t->is_disjunction() || !t->constant.is_number()) continue;
      const double c = t->constant.number();
      switch (t->pred) {
        case Predicate::Gt:
          if (c > lb || (c == lb && !lb_strict)) { lb = c; lb_strict = true; }
          break;
        case Predicate::Ge:
          if (c > lb) { lb = c; lb_strict = false; }
          break;
        case Predicate::Lt:
          if (c < ub || (c == ub && !ub_strict)) { ub = c; ub_strict = true; }
          break;
        case Predicate::Le:
          if (c < ub) { ub = c; ub_strict = false; }
          break;
        default:
          break;
      }
    }
    if (lb > ub || (lb == ub && (lb_strict || ub_strict))) {
      contradiction("the numeric interval is empty");
    }
  }

  // AN005 — modify/remove indices count positive CEs only. An index that,
  // read against the full LHS, lands on a negated element is the classic
  // OPS5 off-by-one: the author counted the negation too.
  void check_modify_targets() {
    const auto check_index = [&](std::uint32_t index, std::string_view what) {
      const ConditionElement* resolved = positive_ce(production_, index);
      if (resolved == nullptr) {
        report(Code::ModifyTargetsNegatedCe,
               std::string(what) + " " + std::to_string(index) +
                   " is out of range: the production has only " +
                   std::to_string(production_.positive_ce_count()) + " positive CE(s)",
               {}, Severity::Error);
        return;
      }
      if (index <= production_.lhs().size() && production_.lhs()[index - 1].negated) {
        report(Code::ModifyTargetsNegatedCe,
               std::string(what) + " " + std::to_string(index) + " resolves to the positive CE on '" +
                   class_of(resolved->cls) + "', but LHS element " + std::to_string(index) +
                   " is a negated CE on '" + class_of(production_.lhs()[index - 1].cls) +
                   "' — OPS5 numbers matchable CEs only; check for an off-by-one",
               production_.lhs()[index - 1].loc);
      }
    };
    for (const auto& action : production_.rhs()) {
      if (const auto* mod = std::get_if<ModifyAction>(&action)) {
        check_index(mod->ce_index, "modify");
      } else if (const auto* rem = std::get_if<RemoveAction>(&action)) {
        check_index(rem->ce_index, "remove");
      }
    }
  }

  // AN007 — assigning the same attribute twice in one action: the last
  // assignment silently wins.
  void check_duplicate_sets() {
    const auto check_sets = [&](ClassIndex cls,
                                const std::vector<std::pair<SlotIndex, Expr>>& sets,
                                std::string_view what) {
      std::set<SlotIndex> seen;
      std::set<SlotIndex> reported;
      for (const auto& [slot, expr] : sets) {
        if (!seen.insert(slot).second && reported.insert(slot).second) {
          report(Code::DuplicateAttributeSet,
                 std::string(what) + " assigns ^" + attr_of(cls, slot) +
                     " more than once — the last assignment silently wins");
        }
      }
    };
    for (const auto& action : production_.rhs()) {
      if (const auto* make = std::get_if<MakeAction>(&action)) {
        check_sets(make->cls, make->sets, "make");
      } else if (const auto* mod = std::get_if<ModifyAction>(&action)) {
        const ConditionElement* target = positive_ce(production_, mod->ce_index);
        if (target != nullptr) check_sets(target->cls, mod->sets, "modify");
      }
    }
  }

  // AN008 — a production whose every write lands on classes no *other*
  // production reads and the phase never outputs does work nobody observes.
  // Externally visible actions (write/halt) always count as consumption.
  void check_dead() {
    if (!options_.output_classes.has_value()) return;
    const std::unordered_set<ClassIndex> outputs(options_.output_classes->begin(),
                                                 options_.output_classes->end());
    std::vector<ClassIndex> written;  // first-write order, deduplicated
    const auto add_written = [&](ClassIndex cls) {
      if (std::find(written.begin(), written.end(), cls) == written.end()) {
        written.push_back(cls);
      }
    };
    for (const auto& action : production_.rhs()) {
      if (std::holds_alternative<WriteAction>(action) ||
          std::holds_alternative<ops5::HaltAction>(action)) {
        return;  // externally visible effect: never dead
      }
      if (const auto* make = std::get_if<MakeAction>(&action)) {
        add_written(make->cls);
      } else if (const auto* mod = std::get_if<ModifyAction>(&action)) {
        const ConditionElement* target = positive_ce(production_, mod->ce_index);
        if (target == nullptr) return;  // AN005 error territory; don't pile on
        add_written(target->cls);
      } else if (const auto* rem = std::get_if<RemoveAction>(&action)) {
        const ConditionElement* target = positive_ce(production_, rem->ce_index);
        if (target == nullptr) return;
        add_written(target->cls);
      }
    }
    for (const ClassIndex cls : written) {
      if (outputs.contains(cls)) return;
      const auto it = whole_.readers.find(cls);
      if (it != whole_.readers.end()) {
        for (const Production* reader : it->second) {
          if (reader != &production_) return;  // someone else consumes it
        }
      }
    }
    if (written.empty()) {
      report(Code::DeadProduction,
             "production is dead: its RHS writes no working-memory class and has "
             "no externally visible action");
      return;
    }
    std::string classes;
    for (const ClassIndex cls : written) {
      if (!classes.empty()) classes += ", ";
      classes += "'" + class_of(cls) + "'";
    }
    report(Code::DeadProduction,
           "production is dead: it writes only " + classes +
               ", which no other production reads and the phase does not output");
  }

  // AN009 — a positive CE class that *has* producers but none of them is
  // reachable from the seeds can still never match: the whole producer chain
  // is unreachable. AN003 already covers classes with no producer at all.
  void check_unproducible() {
    if (!options_.seed_classes.has_value()) return;
    const std::unordered_set<ClassIndex> seeds(options_.seed_classes->begin(),
                                               options_.seed_classes->end());
    std::unordered_set<ClassIndex> reported;
    for (const auto& ce : production_.lhs()) {
      if (ce.negated) continue;
      if (whole_.producible.contains(ce.cls)) continue;
      if (!producers_.contains(ce.cls) && !seeds.contains(ce.cls)) continue;  // AN003's case
      if (!reported.insert(ce.cls).second) continue;
      report(Code::UnproducibleClass,
             "condition element matches class '" + class_of(ce.cls) +
                 "', which has producers but none reachable from the seeds — the "
                 "production can never fire",
             ce.loc);
    }
  }

  const Program& program_;
  const Production& production_;
  const LintOptions& options_;
  const WholeProgram& whole_;
  const std::unordered_set<ClassIndex>& producers_;
  std::vector<Diagnostic>& out_;
  std::unordered_set<VariableId> bound_;
};

}  // namespace

std::vector<Diagnostic> lint_production(const Program& program, const Production& production,
                                        const LintOptions& options) {
  std::vector<Diagnostic> out;
  const WholeProgram whole = whole_program_analysis(program, options);
  ProductionLinter(program, production, options, whole, out).run();
  return out;
}

std::vector<Diagnostic> lint_program(const Program& program, const LintOptions& options) {
  std::vector<Diagnostic> out;
  const WholeProgram whole = whole_program_analysis(program, options);
  for (const auto& production : program.productions()) {
    ProductionLinter(program, production, options, whole, out).run();
  }
  return out;
}

}  // namespace psmsys::analysis
