#include "analysis/value_domain.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <variant>

namespace psmsys::analysis {

namespace {

using ops5::AttrTest;
using ops5::ClassIndex;
using ops5::ConditionElement;
using ops5::Predicate;
using ops5::Production;
using ops5::Program;
using ops5::SlotIndex;
using ops5::Symbol;
using ops5::Value;

[[nodiscard]] bool is_whole(double n) noexcept { return std::floor(n) == n; }

}  // namespace

// ---------------------------------------------------------------------------
// ValueDomain lattice
// ---------------------------------------------------------------------------

ValueDomain ValueDomain::top() {
  ValueDomain d;
  d.nil_ = true;
  d.sym_ = SymPart::Any;
  d.num_ = NumPart::Any;
  return d;
}

ValueDomain ValueDomain::of(const Value& v) {
  ValueDomain d;
  switch (v.kind()) {
    case Value::Kind::Nil:
      d.nil_ = true;
      break;
    case Value::Kind::Sym:
      d.sym_ = SymPart::Consts;
      d.sym_consts_ = {v.symbol()};
      break;
    case Value::Kind::Num:
      d.num_ = NumPart::Consts;
      d.num_consts_ = {v.number()};
      break;
  }
  return d;
}

bool ValueDomain::operator==(const ValueDomain& o) const noexcept {
  if (nil_ != o.nil_ || sym_ != o.sym_ || num_ != o.num_) return false;
  if (sym_ == SymPart::Consts && sym_consts_ != o.sym_consts_) return false;
  if (num_ == NumPart::Consts && num_consts_ != o.num_consts_) return false;
  if (num_ == NumPart::Range &&
      (range_.lo != o.range_.lo || range_.hi != o.range_.hi ||
       range_.integral != o.range_.integral)) {
    return false;
  }
  return true;
}

bool ValueDomain::contains(const Value& v) const {
  switch (v.kind()) {
    case Value::Kind::Nil:
      return nil_;
    case Value::Kind::Sym:
      if (sym_ == SymPart::Any) return true;
      if (sym_ == SymPart::Consts) {
        return std::binary_search(sym_consts_.begin(), sym_consts_.end(), v.symbol());
      }
      return false;
    case Value::Kind::Num: {
      const double n = v.number();
      switch (num_) {
        case NumPart::None: return false;
        case NumPart::Any: return true;
        case NumPart::Consts:
          return std::binary_search(num_consts_.begin(), num_consts_.end(), n);
        case NumPart::Range:
          return range_.lo <= n && n <= range_.hi && (!range_.integral || is_whole(n));
      }
      return false;
    }
  }
  return false;
}

double ValueDomain::num_min() const {
  return num_ == NumPart::Consts ? num_consts_.front() : range_.lo;
}

double ValueDomain::num_max() const {
  return num_ == NumPart::Consts ? num_consts_.back() : range_.hi;
}

bool ValueDomain::has_kind_of(const Value& constant) const noexcept {
  switch (constant.kind()) {
    case Value::Kind::Nil: return nil_;
    case Value::Kind::Sym: return sym_ != SymPart::None;
    case Value::Kind::Num: return num_ != NumPart::None;
  }
  return false;
}

bool ValueDomain::join_with(const ValueDomain& other, std::size_t max_constants) {
  bool changed = false;
  if (other.nil_ && !nil_) {
    nil_ = true;
    changed = true;
  }
  // Symbolic part.
  if (other.sym_ != SymPart::None && sym_ != SymPart::Any) {
    if (other.sym_ == SymPart::Any) {
      sym_ = SymPart::Any;
      sym_consts_.clear();
      changed = true;
    } else {
      std::vector<Symbol> merged;
      merged.reserve(sym_consts_.size() + other.sym_consts_.size());
      std::set_union(sym_consts_.begin(), sym_consts_.end(), other.sym_consts_.begin(),
                     other.sym_consts_.end(), std::back_inserter(merged));
      if (merged.size() > max_constants) {
        sym_ = SymPart::Any;
        sym_consts_.clear();
        changed = true;
      } else if (merged != sym_consts_) {
        sym_ = SymPart::Consts;
        sym_consts_ = std::move(merged);
        changed = true;
      } else if (sym_ == SymPart::None && !merged.empty()) {
        sym_ = SymPart::Consts;
        changed = true;
      }
    }
  }
  // Numeric part.
  if (other.num_ != NumPart::None && num_ != NumPart::Any) {
    if (other.num_ == NumPart::Any) {
      num_ = NumPart::Any;
      num_consts_.clear();
      changed = true;
    } else if (num_ == NumPart::None) {
      num_ = other.num_;
      num_consts_ = other.num_consts_;
      range_ = other.range_;
      changed = true;
    } else if (num_ == NumPart::Consts && other.num_ == NumPart::Consts) {
      std::vector<double> merged;
      merged.reserve(num_consts_.size() + other.num_consts_.size());
      std::set_union(num_consts_.begin(), num_consts_.end(), other.num_consts_.begin(),
                     other.num_consts_.end(), std::back_inserter(merged));
      if (merged.size() > max_constants) {
        bool integral = true;
        for (double n : merged) integral = integral && is_whole(n);
        range_ = {merged.front(), merged.back(), integral};
        num_ = NumPart::Range;
        num_consts_.clear();
        changed = true;
      } else if (merged != num_consts_) {
        num_consts_ = std::move(merged);
        changed = true;
      }
    } else {
      // At least one side is a Range: take the interval hull.
      bool integral = true;
      double lo = 0.0;
      double hi = 0.0;
      auto fold = [&](const ValueDomain& d, bool first) {
        double dlo = d.num_min();
        double dhi = d.num_max();
        bool dint = true;
        if (d.num_ == NumPart::Consts) {
          for (double n : d.num_consts_) dint = dint && is_whole(n);
        } else {
          dint = d.range_.integral;
        }
        if (first) {
          lo = dlo;
          hi = dhi;
          integral = dint;
        } else {
          lo = std::min(lo, dlo);
          hi = std::max(hi, dhi);
          integral = integral && dint;
        }
      };
      fold(*this, true);
      fold(other, false);
      const Interval merged{lo, hi, integral};
      if (num_ != NumPart::Range || range_.lo != merged.lo || range_.hi != merged.hi ||
          range_.integral != merged.integral) {
        num_ = NumPart::Range;
        num_consts_.clear();
        range_ = merged;
        changed = true;
      }
    }
  }
  return changed;
}

bool ValueDomain::may_satisfy(Predicate pred, const Value& constant) const {
  if (is_bottom()) return false;
  switch (pred) {
    case Predicate::Eq:
      return contains(constant);
    case Predicate::Ne: {
      // False only when the domain is exactly the singleton {constant}.
      switch (constant.kind()) {
        case Value::Kind::Nil:
          return sym_ != SymPart::None || num_ != NumPart::None || !nil_;
        case Value::Kind::Sym:
          return nil_ || num_ != NumPart::None || sym_ == SymPart::Any ||
                 sym_consts_.size() != 1 || sym_consts_.front() != constant.symbol();
        case Value::Kind::Num:
          return nil_ || sym_ != SymPart::None || num_ == NumPart::Any ||
                 num_ == NumPart::Range ||
                 num_consts_.size() != 1 || num_consts_.front() != constant.number();
      }
      return true;
    }
    case Predicate::Lt:
    case Predicate::Le:
    case Predicate::Gt:
    case Predicate::Ge: {
      // Ordering only relates numbers: a non-number constant fails for every
      // value, and only numeric domain members can pass.
      if (!constant.is_number() || num_ == NumPart::None) return false;
      if (num_ == NumPart::Any) return true;
      if (num_ == NumPart::Consts) {
        for (double n : num_consts_) {
          if (ops5::apply_predicate(pred, Value(n), constant)) return true;
        }
        return false;
      }
      const double c = constant.number();
      switch (pred) {
        case Predicate::Lt: return range_.lo < c;
        case Predicate::Le: return range_.lo <= c;
        case Predicate::Gt: return range_.hi > c;
        case Predicate::Ge: return range_.hi >= c;
        default: return true;
      }
    }
  }
  return true;
}

bool ValueDomain::must_satisfy(Predicate pred, const Value& constant) const {
  if (is_bottom()) return false;
  switch (pred) {
    case Predicate::Eq: {
      // Domain must be exactly the singleton {constant}.
      switch (constant.kind()) {
        case Value::Kind::Nil:
          return nil_ && sym_ == SymPart::None && num_ == NumPart::None;
        case Value::Kind::Sym:
          return !nil_ && num_ == NumPart::None && sym_ == SymPart::Consts &&
                 sym_consts_.size() == 1 && sym_consts_.front() == constant.symbol();
        case Value::Kind::Num:
          return !nil_ && sym_ == SymPart::None && num_ == NumPart::Consts &&
                 num_consts_.size() == 1 && num_consts_.front() == constant.number();
      }
      return false;
    }
    case Predicate::Ne:
      return !contains(constant);
    case Predicate::Lt:
    case Predicate::Le:
    case Predicate::Gt:
    case Predicate::Ge: {
      // Every member must be a number satisfying the bound.
      if (!constant.is_number()) return false;
      if (nil_ || sym_ != SymPart::None) return false;
      if (num_ == NumPart::Any || num_ == NumPart::None) return false;
      if (num_ == NumPart::Consts) {
        for (double n : num_consts_) {
          if (!ops5::apply_predicate(pred, Value(n), constant)) return false;
        }
        return true;
      }
      const double c = constant.number();
      switch (pred) {
        case Predicate::Lt: return range_.hi < c;
        case Predicate::Le: return range_.hi <= c;
        case Predicate::Gt: return range_.lo > c;
        case Predicate::Ge: return range_.lo >= c;
        default: return false;
      }
    }
  }
  return false;
}

bool ValueDomain::may_satisfy_disjunction(std::span<const Value> alts) const {
  for (const auto& alt : alts) {
    if (contains(alt)) return true;
  }
  return false;
}

ValueDomain ValueDomain::narrowed(Predicate pred, const Value& constant) const {
  switch (pred) {
    case Predicate::Eq:
      return contains(constant) ? of(constant) : bottom();
    case Predicate::Ne: {
      ValueDomain d = *this;
      switch (constant.kind()) {
        case Value::Kind::Nil:
          d.nil_ = false;
          break;
        case Value::Kind::Sym:
          if (d.sym_ == SymPart::Consts) {
            std::erase(d.sym_consts_, constant.symbol());
            if (d.sym_consts_.empty()) d.sym_ = SymPart::None;
          }
          break;
        case Value::Kind::Num:
          if (d.num_ == NumPart::Consts) {
            std::erase(d.num_consts_, constant.number());
            if (d.num_consts_.empty()) d.num_ = NumPart::None;
          }
          break;
      }
      return d;
    }
    case Predicate::Lt:
    case Predicate::Le:
    case Predicate::Gt:
    case Predicate::Ge: {
      if (!constant.is_number()) return bottom();
      ValueDomain d;  // ordering keeps numbers only
      d.num_ = num_;
      const double c = constant.number();
      switch (num_) {
        case NumPart::None:
        case NumPart::Any:
          break;
        case NumPart::Consts:
          for (double n : num_consts_) {
            if (ops5::apply_predicate(pred, Value(n), constant)) d.num_consts_.push_back(n);
          }
          if (d.num_consts_.empty()) d.num_ = NumPart::None;
          break;
        case NumPart::Range: {
          // Clip to a closed over-approximation of the strict bounds.
          Interval r = range_;
          if (pred == Predicate::Lt || pred == Predicate::Le) r.hi = std::min(r.hi, c);
          if (pred == Predicate::Gt || pred == Predicate::Ge) r.lo = std::max(r.lo, c);
          if (r.lo > r.hi) {
            d.num_ = NumPart::None;
          } else {
            d.range_ = r;
          }
          break;
        }
      }
      return d;
    }
  }
  return *this;
}

bool ValueDomain::intersects(const ValueDomain& other) const {
  if (nil_ && other.nil_) return true;
  // Symbols.
  if (sym_ != SymPart::None && other.sym_ != SymPart::None) {
    if (sym_ == SymPart::Any || other.sym_ == SymPart::Any) return true;
    std::vector<Symbol> common;
    std::set_intersection(sym_consts_.begin(), sym_consts_.end(), other.sym_consts_.begin(),
                          other.sym_consts_.end(), std::back_inserter(common));
    if (!common.empty()) return true;
  }
  // Numbers.
  if (num_ != NumPart::None && other.num_ != NumPart::None) {
    if (num_ == NumPart::Any || other.num_ == NumPart::Any) return true;
    if (num_ == NumPart::Consts && other.num_ == NumPart::Consts) {
      std::vector<double> common;
      std::set_intersection(num_consts_.begin(), num_consts_.end(), other.num_consts_.begin(),
                            other.num_consts_.end(), std::back_inserter(common));
      if (!common.empty()) return true;
    } else if (num_ == NumPart::Consts || other.num_ == NumPart::Consts) {
      const ValueDomain& consts = num_ == NumPart::Consts ? *this : other;
      const ValueDomain& ranged = num_ == NumPart::Consts ? other : *this;
      for (double n : consts.num_consts_) {
        if (ranged.range_.lo <= n && n <= ranged.range_.hi &&
            (!ranged.range_.integral || is_whole(n))) {
          return true;
        }
      }
    } else {
      // Two ranges: bound overlap (integrality refinement would only add
      // precision; skipping it stays over-approximate, hence sound).
      if (std::max(range_.lo, other.range_.lo) <= std::min(range_.hi, other.range_.hi)) {
        return true;
      }
    }
  }
  return false;
}

std::string ValueDomain::render(const ops5::SymbolTable& symbols) const {
  if (is_bottom()) return "bottom";
  if (is_top()) return "top";
  auto fmt_num = [](double n) {
    if (is_whole(n) && std::abs(n) < 1e15) {
      return std::to_string(static_cast<long long>(n));
    }
    return std::to_string(n);
  };
  std::string out;
  auto piece = [&](const std::string& s) {
    if (!out.empty()) out += " | ";
    out += s;
  };
  if (nil_) piece("nil");
  if (sym_ == SymPart::Any) {
    piece("sym*");
  } else if (sym_ == SymPart::Consts) {
    std::string s = "sym{";
    for (std::size_t i = 0; i < sym_consts_.size(); ++i) {
      if (i != 0) s += ", ";
      s += symbols.name(sym_consts_[i]);
    }
    s += '}';
    piece(s);
  }
  if (num_ == NumPart::Any) {
    piece("num*");
  } else if (num_ == NumPart::Consts) {
    std::string s = "num{";
    for (std::size_t i = 0; i < num_consts_.size(); ++i) {
      if (i != 0) s += ", ";
      s += fmt_num(num_consts_[i]);
    }
    s += '}';
    piece(s);
  } else if (num_ == NumPart::Range) {
    std::string s = range_.integral ? "int[" : "num[";
    s += fmt_num(range_.lo);
    s += "..";
    s += fmt_num(range_.hi);
    s += ']';
    piece(s);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Abstract interpretation over the rule base
// ---------------------------------------------------------------------------

namespace {

struct State {
  std::vector<std::vector<ValueDomain>> domains;  // [class][slot]
  std::vector<std::uint8_t> reachable;            // per class
};

[[nodiscard]] State initial_state(const Program& program, const ValueDomainOptions& options) {
  State st;
  const std::size_t n = program.class_count();
  st.domains.resize(n);
  st.reachable.assign(n, 0);
  for (ClassIndex c = 0; c < n; ++c) {
    st.domains[c].assign(program.wme_class(c).arity(), ValueDomain::bottom());
  }
  auto seed = [&](ClassIndex c) {
    st.reachable[c] = 1;
    for (auto& d : st.domains[c]) d = ValueDomain::top();
  };
  if (options.seed_classes) {
    for (ClassIndex c : *options.seed_classes) {
      if (c < n) seed(c);
    }
  } else {
    // No seed declaration: anything may arrive from outside any class.
    for (ClassIndex c = 0; c < n; ++c) seed(c);
  }
  return st;
}

[[nodiscard]] const ConditionElement* positive_ce(const Production& p, std::uint32_t index1) {
  std::uint32_t seen = 0;
  for (const auto& ce : p.lhs()) {
    if (ce.negated) continue;
    if (++seen == index1) return &ce;
  }
  return nullptr;
}

/// Slot domain at a CE, narrowed by the CE's own constant tests on that slot
/// (e.g. for `(c ^v > 3 ^v <x>)` the binding of <x> excludes values <= 3).
[[nodiscard]] ValueDomain site_domain(const State& st, const ConditionElement& ce,
                                      SlotIndex slot) {
  ValueDomain d = st.domains[ce.cls][slot];
  for (const auto& t : ce.tests) {
    if (t.slot != slot || t.is_variable || t.is_disjunction()) continue;
    d = d.narrowed(t.pred, t.constant);
  }
  return d;
}

/// One equality occurrence of a variable in a positive CE.
struct EqSite {
  const ConditionElement* ce = nullptr;
  SlotIndex slot = 0;
  ValueDomain domain;
};

/// All Eq occurrences of each variable across the positive CEs, in LHS order.
[[nodiscard]] std::vector<std::pair<ops5::VariableId, std::vector<EqSite>>> eq_sites(
    const Production& p, const State& st) {
  std::vector<std::pair<ops5::VariableId, std::vector<EqSite>>> out;
  for (const auto& ce : p.lhs()) {
    if (ce.negated) continue;
    for (const auto& t : ce.tests) {
      if (!t.is_variable || t.pred != Predicate::Eq) continue;
      auto it = std::find_if(out.begin(), out.end(),
                             [&](const auto& e) { return e.first == t.var; });
      if (it == out.end()) {
        out.push_back({t.var, {}});
        it = std::prev(out.end());
      }
      it->second.push_back({&ce, t.slot, site_domain(st, ce, t.slot)});
    }
  }
  return out;
}

[[nodiscard]] SpecializationCertificate::DomainFact fact_of(const Program& program,
                                                            const State& st, ClassIndex cls,
                                                            SlotIndex slot) {
  const auto& wc = program.wme_class(cls);
  SpecializationCertificate::DomainFact f;
  f.cls = cls;
  f.slot = slot;
  f.class_name = program.symbols().name(wc.name());
  f.attr = program.symbols().name(wc.attributes()[slot]);
  f.domain = st.domains[cls][slot].render(program.symbols());
  return f;
}

[[nodiscard]] std::string test_text(const Program& program, const ConditionElement& ce,
                                    const AttrTest& t) {
  const auto& wc = program.wme_class(ce.cls);
  std::string out = "^";
  out += program.symbols().name(wc.attributes()[t.slot]);
  out += ' ';
  if (t.is_disjunction()) {
    out += "<< ";
    for (const auto& alt : t.disjunction) {
      out += alt.to_string(program.symbols());
      out += ' ';
    }
    out += ">>";
  } else {
    if (t.pred != Predicate::Eq) {
      out += ops5::predicate_name(t.pred);
      out += ' ';
    }
    out += t.constant.to_string(program.symbols());
  }
  return out;
}

[[nodiscard]] std::string slot_text(const Program& program, ClassIndex cls, SlotIndex slot) {
  const auto& wc = program.wme_class(cls);
  std::string out = program.symbols().name(wc.name());
  out += '.';
  out += program.symbols().name(wc.attributes()[slot]);
  return out;
}

/// Why a production can provably never fire, with the domain facts proving it.
struct InfeasibleInfo {
  std::string detail;
  std::vector<SpecializationCertificate::DomainFact> facts;
};

[[nodiscard]] std::optional<InfeasibleInfo> production_infeasible(const Program& program,
                                                                  const Production& p,
                                                                  const State& st) {
  for (const auto& ce : p.lhs()) {
    if (ce.negated) continue;
    if (!st.reachable[ce.cls]) {
      InfeasibleInfo info;
      info.detail = "positive CE class ";
      info.detail += program.symbols().name(ce.class_name);
      info.detail += " is unreachable (never seeded or written by a fireable production)";
      return info;
    }
    for (const auto& t : ce.tests) {
      if (t.is_variable) continue;
      const ValueDomain& d = st.domains[ce.cls][t.slot];
      const bool dead = t.is_disjunction() ? !d.may_satisfy_disjunction(t.disjunction)
                                           : !d.may_satisfy(t.pred, t.constant);
      if (dead) {
        InfeasibleInfo info;
        info.detail = "positive CE test ";
        info.detail += test_text(program, ce, t);
        info.detail += " can never pass: domain of ";
        info.detail += slot_text(program, ce.cls, t.slot);
        info.detail += " is ";
        info.detail += d.render(program.symbols());
        info.facts.push_back(fact_of(program, st, ce.cls, t.slot));
        return info;
      }
    }
  }
  for (const auto& [var, sites] : eq_sites(p, st)) {
    for (std::size_t i = 0; i + 1 < sites.size(); ++i) {
      for (std::size_t j = i + 1; j < sites.size(); ++j) {
        if (!sites[i].domain.intersects(sites[j].domain)) {
          InfeasibleInfo info;
          info.detail = "join on <";
          info.detail += program.variable_name(var);
          info.detail += "> is infeasible: ";
          info.detail += slot_text(program, sites[i].ce->cls, sites[i].slot);
          info.detail += " in ";
          info.detail += sites[i].domain.render(program.symbols());
          info.detail += " never equals ";
          info.detail += slot_text(program, sites[j].ce->cls, sites[j].slot);
          info.detail += " in ";
          info.detail += sites[j].domain.render(program.symbols());
          info.facts.push_back(fact_of(program, st, sites[i].ce->cls, sites[i].slot));
          info.facts.push_back(fact_of(program, st, sites[j].ce->cls, sites[j].slot));
          return info;
        }
      }
    }
  }
  return std::nullopt;
}

/// Binding environment: per-variable domain from its first Eq occurrence in a
/// positive CE (AN006 guarantees first use is an equality for valid programs).
struct Env {
  std::vector<ValueDomain> domains;
  std::vector<std::uint8_t> bound;
};

[[nodiscard]] Env binding_env(const Program& program, const Production& p, const State& st) {
  Env env;
  env.domains.assign(program.variable_count(), ValueDomain());
  env.bound.assign(program.variable_count(), 0);
  for (const auto& ce : p.lhs()) {
    if (ce.negated) continue;
    for (const auto& t : ce.tests) {
      if (!t.is_variable || t.pred != Predicate::Eq) continue;
      if (t.var < env.bound.size() && !env.bound[t.var]) {
        env.domains[t.var] = site_domain(st, ce, t.slot);
        env.bound[t.var] = 1;
      }
    }
  }
  return env;
}

[[nodiscard]] ValueDomain eval_expr(const ops5::Expr& expr, const Env& env) {
  if (const auto* v = std::get_if<Value>(&expr.node)) {
    return ValueDomain::of(*v);
  }
  if (const auto* r = std::get_if<ops5::VarRef>(&expr.node)) {
    if (r->var < env.bound.size() && env.bound[r->var]) return env.domains[r->var];
    return ValueDomain::top();  // unbound is AN001's problem; stay sound
  }
  return ValueDomain::top();  // external call (compute/geometry): any value
}

/// One monotone transfer round: apply every fireable production's writes.
/// Returns true when any domain or reachability bit grew.
bool transfer_round(const Program& program, const ValueDomainOptions& options, State& st) {
  bool changed = false;
  for (const auto& p : program.productions()) {
    if (production_infeasible(program, p, st)) continue;
    Env env = binding_env(program, p, st);
    for (const auto& action : p.rhs()) {
      if (const auto* mk = std::get_if<ops5::MakeAction>(&action)) {
        if (mk->cls >= st.reachable.size()) continue;
        if (!st.reachable[mk->cls]) {
          st.reachable[mk->cls] = 1;
          changed = true;
        }
        auto& slots = st.domains[mk->cls];
        std::vector<std::uint8_t> written(slots.size(), 0);
        for (const auto& [slot, expr] : mk->sets) {
          if (slot >= slots.size()) continue;
          changed |= slots[slot].join_with(eval_expr(expr, env), options.max_constants);
          written[slot] = 1;
        }
        const ValueDomain nil_only = ValueDomain::of(Value());
        for (std::size_t s = 0; s < slots.size(); ++s) {
          if (!written[s]) changed |= slots[s].join_with(nil_only, options.max_constants);
        }
      } else if (const auto* mod = std::get_if<ops5::ModifyAction>(&action)) {
        const ConditionElement* ce = positive_ce(p, mod->ce_index);
        if (ce == nullptr) continue;  // AN005 territory
        auto& slots = st.domains[ce->cls];
        for (const auto& [slot, expr] : mod->sets) {
          if (slot >= slots.size()) continue;
          changed |= slots[slot].join_with(eval_expr(expr, env), options.max_constants);
        }
      } else if (const auto* bind = std::get_if<ops5::BindAction>(&action)) {
        if (bind->var < env.bound.size()) {
          env.domains[bind->var] = eval_expr(bind->expr, env);
          env.bound[bind->var] = 1;
        }
      }
      // remove/write/halt write no slot values.
    }
  }
  return changed;
}

[[nodiscard]] rete::SpecializationPlan::TestKey key_of(ClassIndex cls, const AttrTest& t) {
  rete::SpecializationPlan::TestKey k;
  k.cls = cls;
  k.slot = t.slot;
  k.pred = t.pred;
  k.value = t.constant;
  return k;
}

[[nodiscard]] bool in_classes(const std::optional<std::vector<ClassIndex>>& list,
                              ClassIndex cls) {
  return list && std::find(list->begin(), list->end(), cls) != list->end();
}

void emit(std::vector<Diagnostic>& out, Code code, const Production& p,
          const ops5::SourceLoc& loc, std::string message) {
  Diagnostic d;
  d.code = code;
  d.severity = default_severity(code);
  d.production = p.name();
  d.loc = loc;
  d.message = std::move(message);
  out.push_back(d);
}

}  // namespace

// ---------------------------------------------------------------------------
// analyze_value_domains
// ---------------------------------------------------------------------------

ValueDomainReport analyze_value_domains(const Program& program,
                                        const ValueDomainOptions& options) {
  ValueDomainReport report;
  State st = initial_state(program, options);

  bool changed = true;
  std::size_t iter = 0;
  while (changed && iter < options.max_iterations) {
    changed = transfer_round(program, options, st);
    ++iter;
  }
  report.iterations = iter;
  report.converged = !changed;
  report.domains = st.domains;
  report.reachable = st.reachable;

  auto plan = std::make_shared<rete::SpecializationPlan>();
  if (!report.converged) {
    // Never act on a state that is not a proven fixpoint.
    report.plan = std::move(plan);
    return report;
  }

  for (const auto& p : program.productions()) {
    // AN014 / AN015: constant tests against the inferred domains. Tests on
    // unreachable classes are skipped — AN003/AN009 already cover those.
    for (const auto& ce : p.lhs()) {
      if (!st.reachable[ce.cls]) continue;
      for (const auto& t : ce.tests) {
        if (t.is_variable) continue;
        const ValueDomain& d = st.domains[ce.cls][t.slot];
        if (t.is_disjunction()) {
          if (!d.may_satisfy_disjunction(t.disjunction)) {
            emit(report.diagnostics, Code::AlwaysFalseCondition, p, ce.loc,
                 "condition " + test_text(program, ce, t) + " can never match: domain of " +
                     slot_text(program, ce.cls, t.slot) + " is " +
                     d.render(program.symbols()));
          }
          continue;
        }
        if (d.may_satisfy(t.pred, t.constant)) continue;
        const bool order_pred = t.pred != Predicate::Eq && t.pred != Predicate::Ne;
        const bool type_mismatch =
            (order_pred && !t.constant.is_number()) || !d.has_kind_of(t.constant);
        const Code code =
            type_mismatch ? Code::AttributeTypeMismatch : Code::AlwaysFalseCondition;
        std::string why = type_mismatch
                              ? " can never pass: no value of this type occurs in "
                              : " can never pass: value-disjoint with domain of ";
        emit(report.diagnostics, code, p, ce.loc,
             "test " + test_text(program, ce, t) + why +
                 slot_text(program, ce.cls, t.slot) + " = " + d.render(program.symbols()));
      }
    }
    // AN016: equality joins whose site domains share no value.
    for (const auto& [var, sites] : eq_sites(p, st)) {
      bool reported = false;
      for (std::size_t i = 0; i + 1 < sites.size() && !reported; ++i) {
        for (std::size_t j = i + 1; j < sites.size() && !reported; ++j) {
          if (!st.reachable[sites[i].ce->cls] || !st.reachable[sites[j].ce->cls]) continue;
          if (sites[i].domain.intersects(sites[j].domain)) continue;
          emit(report.diagnostics, Code::InfeasibleJoin, p, sites[j].ce->loc,
               "join on <" + program.variable_name(var) + "> is infeasible: " +
                   slot_text(program, sites[i].ce->cls, sites[i].slot) + " in " +
                   sites[i].domain.render(program.symbols()) + " never equals " +
                   slot_text(program, sites[j].ce->cls, sites[j].slot) + " in " +
                   sites[j].domain.render(program.symbols()));
          reported = true;
        }
      }
    }
    // AN017: a modify whose written values make the WME unmatchable by every
    // condition on its class. Only meaningful when the output classes are
    // declared (a narrowing write to an output class is the normal way to
    // retire a WME from matching — LCC's `^counted yes` refraction idiom).
    if (options.output_classes && !production_infeasible(program, p, st)) {
      Env env = binding_env(program, p, st);
      for (const auto& action : p.rhs()) {
        if (const auto* bind = std::get_if<ops5::BindAction>(&action)) {
          if (bind->var < env.bound.size()) {
            env.domains[bind->var] = eval_expr(bind->expr, env);
            env.bound[bind->var] = 1;
          }
          continue;
        }
        const auto* mod = std::get_if<ops5::ModifyAction>(&action);
        if (mod == nullptr) continue;
        const ConditionElement* target = positive_ce(p, mod->ce_index);
        if (target == nullptr) continue;
        const ClassIndex cls = target->cls;
        if (in_classes(options.output_classes, cls)) continue;
        std::vector<std::pair<SlotIndex, ValueDomain>> written;
        for (const auto& [slot, expr] : mod->sets) {
          written.emplace_back(slot, eval_expr(expr, env));
        }
        if (written.empty()) continue;
        bool any_ce = false;
        bool all_blocked = true;
        for (const auto& q : program.productions()) {
          for (const auto& ce : q.lhs()) {
            if (ce.cls != cls) continue;
            any_ce = true;
            bool blocked = false;
            for (const auto& [slot, w] : written) {
              for (const auto& t : ce.tests) {
                if (t.slot != slot || t.is_variable) continue;
                const bool pass = t.is_disjunction()
                                      ? w.may_satisfy_disjunction(t.disjunction)
                                      : w.may_satisfy(t.pred, t.constant);
                if (!pass) {
                  blocked = true;
                  break;
                }
              }
              if (blocked) break;
            }
            if (!blocked) all_blocked = false;
          }
          if (!all_blocked) break;
        }
        if (any_ce && all_blocked) {
          std::string msg = "modify of " +
                            std::string(program.symbols().name(target->class_name)) +
                            " writes";
          for (const auto& [slot, w] : written) {
            msg += " ^";
            msg += program.symbols().name(program.wme_class(cls).attributes()[slot]);
            msg += " in ";
            msg += w.render(program.symbols());
          }
          msg += "; no condition on the class can match the result";
          emit(report.diagnostics, Code::DeadWriteModify, p, p.location(), std::move(msg));
        }
      }
    }
  }

  // Specialization plan + certificate. Productions are visited in id order,
  // keeping pruned_productions sorted for SpecializationPlan::prunes.
  for (const auto& p : program.productions()) {
    auto info = production_infeasible(program, p, st);
    if (!info) continue;
    plan->pruned_productions.push_back(p.id());
    SpecializationCertificate::Entry e;
    e.kind = "prune-production";
    e.production = program.symbols().name(p.name());
    e.production_id = p.id();
    e.detail = std::move(info->detail);
    e.facts = std::move(info->facts);
    report.certificate.entries.push_back(std::move(e));
  }
  for (const auto& p : program.productions()) {
    if (plan->prunes(p.id())) continue;
    for (const auto& ce : p.lhs()) {
      if (!st.reachable[ce.cls]) continue;  // no WME traffic: nothing to save
      for (const auto& t : ce.tests) {
        if (t.is_variable || t.is_disjunction()) continue;
        const ValueDomain& d = st.domains[ce.cls][t.slot];
        const auto key = key_of(ce.cls, t);
        if (!d.may_satisfy(t.pred, t.constant)) {
          // Only negated CEs get here: a dead test in a positive CE already
          // pruned the whole production above.
          if (std::find(plan->dead_tests.begin(), plan->dead_tests.end(), key) ==
              plan->dead_tests.end()) {
            plan->dead_tests.push_back(key);
            SpecializationCertificate::Entry e;
            e.kind = "dead-test";
            e.test = key;
            e.detail = "test " + test_text(program, ce, t) + " on class " +
                       std::string(program.symbols().name(ce.class_name)) +
                       " can never pass: domain of " + slot_text(program, ce.cls, t.slot) +
                       " is " + d.render(program.symbols());
            e.facts.push_back(fact_of(program, st, ce.cls, t.slot));
            report.certificate.entries.push_back(std::move(e));
          }
        } else if (d.must_satisfy(t.pred, t.constant)) {
          if (std::find(plan->fold_tests.begin(), plan->fold_tests.end(), key) ==
              plan->fold_tests.end()) {
            plan->fold_tests.push_back(key);
            SpecializationCertificate::Entry e;
            e.kind = "fold-test";
            e.test = key;
            e.detail = "test " + test_text(program, ce, t) + " on class " +
                       std::string(program.symbols().name(ce.class_name)) +
                       " always passes: domain of " + slot_text(program, ce.cls, t.slot) +
                       " is " + d.render(program.symbols());
            e.facts.push_back(fact_of(program, st, ce.cls, t.slot));
            report.certificate.entries.push_back(std::move(e));
          }
        }
      }
    }
  }
  report.plan = std::move(plan);
  return report;
}

// ---------------------------------------------------------------------------
// verify_specialization
// ---------------------------------------------------------------------------

std::vector<std::string> verify_specialization(const Program& program,
                                               const ValueDomainOptions& options,
                                               const ValueDomainReport& report) {
  std::vector<std::string> violations;
  if (!report.converged) {
    if (report.plan && !report.plan->empty()) {
      violations.push_back("unconverged report carries a non-empty plan");
    }
    return violations;
  }
  if (report.plan == nullptr) {
    violations.push_back("report has no specialization plan");
    return violations;
  }
  if (report.domains.size() != program.class_count() ||
      report.reachable.size() != program.class_count()) {
    violations.push_back("domain table shape does not match the program's classes");
    return violations;
  }
  for (ClassIndex c = 0; c < program.class_count(); ++c) {
    if (report.domains[c].size() != program.wme_class(c).arity()) {
      violations.push_back("domain row for class " +
                           std::string(program.symbols().name(program.wme_class(c).name())) +
                           " does not match its arity");
      return violations;
    }
  }

  State st;
  st.domains = report.domains;
  st.reachable = report.reachable;

  // 1. The seeds must be covered: every externally-seedable class Top.
  auto check_seed = [&](ClassIndex c) {
    if (!st.reachable[c]) {
      violations.push_back("seed class " +
                           std::string(program.symbols().name(program.wme_class(c).name())) +
                           " not marked reachable");
      return;
    }
    for (SlotIndex s = 0; s < st.domains[c].size(); ++s) {
      if (!st.domains[c][s].is_top()) {
        violations.push_back("seed class slot " + slot_text(program, c, s) +
                             " is not Top: external WMEs would escape the domains");
      }
    }
  };
  if (options.seed_classes) {
    for (ClassIndex c : *options.seed_classes) {
      if (c < program.class_count()) check_seed(c);
    }
  } else {
    for (ClassIndex c = 0; c < program.class_count(); ++c) check_seed(c);
  }

  // 2. The recorded domains must be a post-fixpoint of the transfer function:
  // one more round may not grow anything. This re-derives soundness without
  // trusting the iteration that produced the report.
  {
    State probe = st;
    if (transfer_round(program, options, probe)) {
      violations.push_back("recorded domains are not a post-fixpoint: one transfer round grew them");
    }
  }

  // 3. Every plan entry must be re-derivable from the domains alone and must
  // carry a certificate entry.
  auto cert_has = [&](const std::string& kind, auto pred) {
    for (const auto& e : report.certificate.entries) {
      if (e.kind == kind && pred(e)) return true;
    }
    return false;
  };
  if (!std::is_sorted(report.plan->pruned_productions.begin(),
                      report.plan->pruned_productions.end())) {
    violations.push_back("pruned production ids are not sorted");
  }
  for (std::uint32_t id : report.plan->pruned_productions) {
    if (id >= program.productions().size()) {
      violations.push_back("pruned production id " + std::to_string(id) + " out of range");
      continue;
    }
    const Production& p = program.productions()[id];
    if (!production_infeasible(program, p, st)) {
      violations.push_back("pruned production " +
                           std::string(program.symbols().name(p.name())) +
                           " is not provably infeasible under the recorded domains");
    }
    if (!cert_has("prune-production",
                  [&](const auto& e) { return e.production_id == id; })) {
      violations.push_back("no certificate entry for pruned production id " +
                           std::to_string(id));
    }
  }
  for (const auto& key : report.plan->dead_tests) {
    if (key.cls >= program.class_count() || key.slot >= st.domains[key.cls].size()) {
      violations.push_back("dead-test key indexes out of range");
      continue;
    }
    if (st.reachable[key.cls] &&
        st.domains[key.cls][key.slot].may_satisfy(key.pred, key.value)) {
      violations.push_back("dead test on " + slot_text(program, key.cls, key.slot) +
                           " may still be satisfiable under the recorded domains");
    }
    if (!cert_has("dead-test", [&](const auto& e) { return e.test == key; })) {
      violations.push_back("no certificate entry for dead test on " +
                           slot_text(program, key.cls, key.slot));
    }
  }
  for (const auto& key : report.plan->fold_tests) {
    if (key.cls >= program.class_count() || key.slot >= st.domains[key.cls].size()) {
      violations.push_back("fold-test key indexes out of range");
      continue;
    }
    if (st.reachable[key.cls] &&
        !st.domains[key.cls][key.slot].must_satisfy(key.pred, key.value)) {
      violations.push_back("folded test on " + slot_text(program, key.cls, key.slot) +
                           " is not guaranteed under the recorded domains");
    }
    if (!cert_has("fold-test", [&](const auto& e) { return e.test == key; })) {
      violations.push_back("no certificate entry for folded test on " +
                           slot_text(program, key.cls, key.slot));
    }
  }

  // 4. No stray certificate entries claiming transformations the plan lacks.
  for (const auto& e : report.certificate.entries) {
    bool in_plan = false;
    if (e.kind == "prune-production") {
      in_plan = report.plan->prunes(e.production_id);
    } else if (e.kind == "dead-test") {
      in_plan = std::find(report.plan->dead_tests.begin(), report.plan->dead_tests.end(),
                          e.test) != report.plan->dead_tests.end();
    } else if (e.kind == "fold-test") {
      in_plan = std::find(report.plan->fold_tests.begin(), report.plan->fold_tests.end(),
                          e.test) != report.plan->fold_tests.end();
    }
    if (!in_plan) {
      violations.push_back("certificate entry (" + e.kind +
                           ") does not correspond to any plan item");
    }
  }
  return violations;
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

obs::json::Value ValueDomainReport::to_json(const Program& program) const {
  using obs::json::Array;
  using obs::json::Object;
  using obs::json::Value;

  auto key_json = [&](const rete::SpecializationPlan::TestKey& k) {
    const auto& wc = program.wme_class(k.cls);
    Object o;
    o.emplace_back("class", Value(program.symbols().name(wc.name())));
    o.emplace_back("attr", Value(program.symbols().name(wc.attributes()[k.slot])));
    o.emplace_back("pred", Value(ops5::predicate_name(k.pred)));
    o.emplace_back("value", Value(k.value.to_string(program.symbols())));
    return Value(std::move(o));
  };

  Object root;
  root.emplace_back("converged", Value(converged));
  root.emplace_back("iterations", Value(static_cast<unsigned long long>(iterations)));

  Array pruned;
  Array dead;
  Array folds;
  if (plan != nullptr) {
    for (std::uint32_t id : plan->pruned_productions) {
      if (id < program.productions().size()) {
        pruned.emplace_back(program.symbols().name(program.productions()[id].name()));
      }
    }
    for (const auto& k : plan->dead_tests) dead.push_back(key_json(k));
    for (const auto& k : plan->fold_tests) folds.push_back(key_json(k));
  }
  root.emplace_back("pruned_productions", Value(std::move(pruned)));
  root.emplace_back("dead_tests", Value(std::move(dead)));
  root.emplace_back("fold_tests", Value(std::move(folds)));

  Array cert;
  for (const auto& e : certificate.entries) {
    Object o;
    o.emplace_back("kind", Value(e.kind));
    if (e.kind == "prune-production") {
      o.emplace_back("production", Value(e.production));
    } else {
      o.emplace_back("test", key_json(e.test));
    }
    o.emplace_back("detail", Value(e.detail));
    Array facts;
    for (const auto& f : e.facts) {
      Object fo;
      fo.emplace_back("class", Value(f.class_name));
      fo.emplace_back("attr", Value(f.attr));
      fo.emplace_back("domain", Value(f.domain));
      facts.push_back(Value(std::move(fo)));
    }
    o.emplace_back("facts", Value(std::move(facts)));
    cert.push_back(Value(std::move(o)));
  }
  root.emplace_back("certificate", Value(std::move(cert)));
  return Value(std::move(root));
}

}  // namespace psmsys::analysis
