#pragma once

// Whole-rule-base value-domain abstract interpreter (ISSUE 10 tentpole).
//
// Infers, for every (WME class, attribute) pair, an over-approximation of the
// values that slot can ever hold at runtime: a fixpoint over the RHS
// make/modify actions of every fireable production, seeded from the classes
// the control process injects (seed classes start at Top — anything can come
// from outside; everything else starts at Bottom and only grows by being
// written). The domain lattice is, per slot:
//
//     nil-bit  x  symbolic part (Bottom | const set | Any)
//              x  numeric part  (Bottom | const set | interval | Any)
//
// Constants only enter from program literals, const sets overflow to the
// interval hull (numbers) or Any (symbols) past `max_constants`, and every
// join is monotone — so the ascending chains are finite and the fixpoint
// terminates without widening.
//
// The analysis powers three consumers:
//   - lint diagnostics AN014 (attribute type mismatch), AN015 (always-false
//     condition), AN016 (infeasible join), AN017 (domain-narrowing modify
//     no condition can re-match);
//   - the proof-carrying rete::SpecializationPlan (NetworkOptions::specialize)
//     pruning never-fireable productions, dropping never-satisfiable alpha
//     tests from dispatch, and folding provably-true constant tests;
//   - the "value_domains" section of the admission verdict (admission.hpp).
//
// Soundness contract: the domains over-approximate every WME the rule base
// itself can create *plus* anything injected into a declared seed class.
// Injecting WMEs of a non-seed class from outside voids the certificate —
// the same contract LintOptions::seed_classes already states for AN003/AN009.
// Every plan ships with a SpecializationCertificate; verify_specialization()
// re-checks it from scratch (domains form a post-fixpoint, every pruned /
// folded entry is justified by the recorded domain facts) without trusting
// the fixpoint iteration that produced it.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "obs/json.hpp"
#include "ops5/production.hpp"
#include "rete/network.hpp"

namespace psmsys::analysis {

/// Abstract value of one (class, slot): which OPS5 scalars can appear there.
class ValueDomain {
 public:
  enum class SymPart : std::uint8_t { None, Consts, Any };
  enum class NumPart : std::uint8_t { None, Consts, Range, Any };

  /// Closed numeric interval; `integral` = every member is a whole number.
  struct Interval {
    double lo = 0.0;
    double hi = 0.0;
    bool integral = true;
  };

  [[nodiscard]] static ValueDomain bottom() { return {}; }
  [[nodiscard]] static ValueDomain top();
  [[nodiscard]] static ValueDomain of(const ops5::Value& v);

  [[nodiscard]] bool is_bottom() const noexcept {
    return !nil_ && sym_ == SymPart::None && num_ == NumPart::None;
  }
  [[nodiscard]] bool is_top() const noexcept {
    return nil_ && sym_ == SymPart::Any && num_ == NumPart::Any;
  }
  [[nodiscard]] bool may_be_nil() const noexcept { return nil_; }
  [[nodiscard]] SymPart sym_part() const noexcept { return sym_; }
  [[nodiscard]] NumPart num_part() const noexcept { return num_; }

  /// Least upper bound; returns true when *this grew. Symbol const sets
  /// overflow to Any and numeric const sets to their interval hull past
  /// `max_constants`, keeping ascending chains finite.
  bool join_with(const ValueDomain& other, std::size_t max_constants);

  /// Could some member of the domain satisfy `pred` against `constant`?
  /// Over-approximate (false => the test is statically impossible).
  [[nodiscard]] bool may_satisfy(ops5::Predicate pred, const ops5::Value& constant) const;

  /// Does every member of the domain satisfy `pred` against `constant`?
  /// Under-approximate (true => the test is statically redundant). False for
  /// Bottom: folding a test on an unreachable class proves nothing.
  [[nodiscard]] bool must_satisfy(ops5::Predicate pred, const ops5::Value& constant) const;

  /// Could the whole OPS5 disjunction `<< v1 v2 ... >>` ever pass?
  [[nodiscard]] bool may_satisfy_disjunction(std::span<const ops5::Value> alts) const;

  /// The domain restricted to values satisfying `pred` against `constant`
  /// (used to narrow a binding variable's domain by its CE's constant tests).
  [[nodiscard]] ValueDomain narrowed(ops5::Predicate pred, const ops5::Value& constant) const;

  /// Do the two domains share at least one concrete value? Over-approximate;
  /// false proves an equality join between them infeasible.
  [[nodiscard]] bool intersects(const ValueDomain& other) const;

  /// Does the domain contain any value of `constant`'s kind (nil / symbol /
  /// number)? Distinguishes AN014 (type mismatch) from AN015 (value-disjoint).
  [[nodiscard]] bool has_kind_of(const ops5::Value& constant) const noexcept;

  /// Canonical human-readable rendering, e.g. "{nil, yes}" or
  /// "num[1..4] | sym*"; deterministic for golden/JSON output.
  [[nodiscard]] std::string render(const ops5::SymbolTable& symbols) const;

  [[nodiscard]] bool operator==(const ValueDomain& o) const noexcept;

 private:
  bool nil_ = false;
  SymPart sym_ = SymPart::None;
  std::vector<ops5::Symbol> sym_consts_;  ///< sorted, unique (SymPart::Consts)
  NumPart num_ = NumPart::None;
  std::vector<double> num_consts_;        ///< sorted, unique (NumPart::Consts)
  Interval range_;                        ///< NumPart::Range

  [[nodiscard]] bool contains(const ops5::Value& v) const;
  [[nodiscard]] bool num_nonempty() const noexcept { return num_ != NumPart::None; }
  [[nodiscard]] double num_min() const;
  [[nodiscard]] double num_max() const;
  [[nodiscard]] bool num_bounded() const noexcept { return num_ == NumPart::Consts || num_ == NumPart::Range; }
};

struct ValueDomainOptions {
  /// Classes the control process may inject from outside the rule base; they
  /// start at Top. Unset = every class is externally seedable, which makes
  /// the analysis vacuous (all Top) but sound.
  std::optional<std::vector<ops5::ClassIndex>> seed_classes;
  /// Classes the control process extracts after quiescence. Unset disables
  /// AN017 — a write nobody in the rule base reads may still be the output.
  std::optional<std::vector<ops5::ClassIndex>> output_classes;
  /// Const-set size cap before overflow to interval hull / Any.
  std::size_t max_constants = 8;
  /// Fixpoint round cap (backstop only; the lattice is finite). If hit, the
  /// report is marked unconverged and carries no diagnostics and no plan.
  std::size_t max_iterations = 64;
};

/// Machine-checkable justification for every transformation in the plan.
/// Each entry names the transformation, the domain facts it relies on, and a
/// rendered explanation; verify_specialization() re-derives each claim from
/// the recorded per-class domains alone.
struct SpecializationCertificate {
  struct DomainFact {
    ops5::ClassIndex cls = 0;
    ops5::SlotIndex slot = 0;
    std::string class_name;
    std::string attr;
    std::string domain;  ///< ValueDomain::render of the fact relied upon
  };
  struct Entry {
    std::string kind;        ///< "prune-production" | "dead-test" | "fold-test"
    std::string production;  ///< prune entries only
    std::uint32_t production_id = 0;
    rete::SpecializationPlan::TestKey test;  ///< dead/fold entries only
    std::string detail;      ///< human-readable justification
    std::vector<DomainFact> facts;
  };
  std::vector<Entry> entries;
};

struct ValueDomainReport {
  /// Inferred domains, indexed [class][slot] over the program's classes.
  std::vector<std::vector<ValueDomain>> domains;
  /// Per-class: can any WME of the class ever exist (seeded or written by a
  /// fireable production)?
  std::vector<std::uint8_t> reachable;
  /// AN014–AN017, ordered by production then check order.
  std::vector<Diagnostic> diagnostics;
  /// The network specialization this analysis proves sound. Never null;
  /// empty when nothing is provable.
  std::shared_ptr<const rete::SpecializationPlan> plan;
  SpecializationCertificate certificate;
  bool converged = true;
  std::size_t iterations = 0;

  [[nodiscard]] const ValueDomain& domain(ops5::ClassIndex cls, ops5::SlotIndex slot) const {
    return domains.at(cls).at(slot);
  }

  /// Deterministic JSON: pruned productions, dead/fold tests, certificate
  /// entries with their domain facts, and convergence metadata.
  [[nodiscard]] obs::json::Value to_json(const ops5::Program& program) const;
};

/// Run the fixpoint and derive diagnostics + specialization plan +
/// certificate. The program must be frozen.
[[nodiscard]] ValueDomainReport analyze_value_domains(const ops5::Program& program,
                                                      const ValueDomainOptions& options = {});

/// Re-check a report's certificate from scratch: (1) the recorded domains are
/// a post-fixpoint of the transfer function under `options` (sound without
/// trusting the iteration), and (2) every plan entry (pruned production, dead
/// test, fold test) is justified by those domains and appears in the
/// certificate. Returns human-readable violations; empty = proof checks out.
[[nodiscard]] std::vector<std::string> verify_specialization(
    const ops5::Program& program, const ValueDomainOptions& options,
    const ValueDomainReport& report);

}  // namespace psmsys::analysis
