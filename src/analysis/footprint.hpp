#pragma once

// Read/write-set extraction: per-production footprints over (class, attribute)
// pairs, plus a non-throwing binding map and the may-bind variable flow from
// LHS binding sites into RHS writes. This is the shared substrate of the
// linter (lint.hpp) and the task-interference checker (interference.hpp) —
// unlike ops5::analyze_bindings it never throws on malformed productions,
// because the linter's whole job is to describe them.

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ops5/production.hpp"

namespace psmsys::analysis {

enum class AccessKind : std::uint8_t {
  Read,         ///< positive CE match
  NegatedRead,  ///< negated CE (absence test — still schedule-sensitive)
  Make,
  Modify,
  Remove,
};

[[nodiscard]] std::string_view access_kind_name(AccessKind k) noexcept;

[[nodiscard]] constexpr bool is_write(AccessKind k) noexcept {
  return k == AccessKind::Make || k == AccessKind::Modify || k == AccessKind::Remove;
}

/// One class touched by a production: the slots tested (reads) or assigned
/// (writes), sorted and deduplicated. `position` is the LHS CE index for
/// reads and the RHS action index for writes.
struct ClassAccess {
  ops5::ClassIndex cls = 0;
  AccessKind kind = AccessKind::Read;
  std::uint32_t position = 0;
  std::vector<ops5::SlotIndex> slots;
};

/// Where a variable binds: its first equality occurrence in a positive CE
/// (the engine's binding rule, bindings.hpp).
struct VarBinding {
  std::uint32_t ce = 0;  ///< LHS index of the binding CE
  ops5::ClassIndex cls = 0;
  ops5::SlotIndex slot = 0;
};

/// May-bind flow: a value read at (from_cls, from_slot) can reach the write
/// of (to_cls, to_slot) through variable `var` (directly or via bind-action
/// chains).
struct VarFlow {
  ops5::VariableId var = 0;
  ops5::ClassIndex from_cls = 0;
  ops5::SlotIndex from_slot = 0;
  ops5::ClassIndex to_cls = 0;
  ops5::SlotIndex to_slot = 0;
  std::uint32_t action = 0;  ///< RHS action index of the write
};

struct ProductionFootprint {
  const ops5::Production* production = nullptr;
  std::vector<ClassAccess> accesses;
  std::unordered_map<ops5::VariableId, VarBinding> bindings;
  std::vector<VarFlow> flows;

  [[nodiscard]] bool writes_class(ops5::ClassIndex cls) const noexcept;
  [[nodiscard]] bool reads_class(ops5::ClassIndex cls) const noexcept;
};

/// Extract the footprint of one production. `program` supplies class layouts
/// (modify targets resolve through the production's positive CEs).
[[nodiscard]] ProductionFootprint footprint_of(const ops5::Program& program,
                                               const ops5::Production& production);

[[nodiscard]] std::vector<ProductionFootprint> program_footprints(const ops5::Program& program);

/// Append every variable referenced by `expr` (recursing through calls).
void collect_expr_variables(const ops5::Expr& expr, std::vector<ops5::VariableId>& out);

/// The `index`-th (1-based) positive CE — the modify/remove numbering — or
/// nullptr when out of range.
[[nodiscard]] const ops5::ConditionElement* positive_ce(const ops5::Production& production,
                                                        std::uint32_t index);

}  // namespace psmsys::analysis
