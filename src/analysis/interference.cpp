#include "analysis/interference.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>

#include "analysis/footprint.hpp"

namespace psmsys::analysis {

namespace {

using ops5::BindAction;
using ops5::ClassIndex;
using ops5::ConditionElement;
using ops5::Expr;
using ops5::MakeAction;
using ops5::ModifyAction;
using ops5::Predicate;
using ops5::Production;
using ops5::Program;
using ops5::RemoveAction;
using ops5::SlotIndex;
using ops5::Symbol;
using ops5::Value;
using ops5::VariableId;

[[nodiscard]] bool value_less(const Value& a, const Value& b) noexcept {
  if (a.kind() != b.kind()) {
    return static_cast<int>(a.kind()) < static_cast<int>(b.kind());
  }
  switch (a.kind()) {
    case Value::Kind::Nil: return false;
    case Value::Kind::Sym: return ops5::index_of(a.symbol()) < ops5::index_of(b.symbol());
    case Value::Kind::Num: return a.number() < b.number();
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// AbstractVal
// ---------------------------------------------------------------------------

AbstractVal AbstractVal::bottom() {
  AbstractVal v;
  v.kind_ = Kind::Bottom;
  return v;
}

AbstractVal AbstractVal::of(const Value& v) { return finite({v}); }

AbstractVal AbstractVal::finite(std::vector<Value> values) {
  std::sort(values.begin(), values.end(), value_less);
  values.erase(std::unique(values.begin(), values.end()), values.end());
  AbstractVal out;
  if (values.empty()) {
    out.kind_ = Kind::Bottom;
  } else if (values.size() > kMaxFinite) {
    out.kind_ = Kind::Top;
  } else {
    out.kind_ = Kind::Finite;
    out.values_ = std::move(values);
  }
  return out;
}

std::optional<Value> AbstractVal::singleton() const {
  if (kind_ == Kind::Finite && values_.size() == 1) return values_.front();
  return std::nullopt;
}

bool AbstractVal::contains(const Value& v) const {
  switch (kind_) {
    case Kind::Bottom: return false;
    case Kind::Top: return true;
    case Kind::Finite:
      return std::binary_search(values_.begin(), values_.end(), v, value_less);
  }
  return false;
}

AbstractVal AbstractVal::join(const AbstractVal& o) const {
  if (is_bottom()) return o;
  if (o.is_bottom()) return *this;
  if (is_top() || o.is_top()) return top();
  std::vector<Value> merged;
  merged.reserve(values_.size() + o.values_.size());
  std::merge(values_.begin(), values_.end(), o.values_.begin(), o.values_.end(),
             std::back_inserter(merged), value_less);
  return finite(std::move(merged));
}

AbstractVal AbstractVal::meet(const AbstractVal& o) const {
  if (is_bottom() || o.is_bottom()) return bottom();
  if (is_top()) return o;
  if (o.is_top()) return *this;
  std::vector<Value> both;
  std::set_intersection(values_.begin(), values_.end(), o.values_.begin(), o.values_.end(),
                        std::back_inserter(both), value_less);
  return finite(std::move(both));
}

bool AbstractVal::provably_disjoint(const AbstractVal& o) const {
  if (is_bottom() || o.is_bottom()) return true;
  if (is_top() || o.is_top()) return false;
  return meet(o).is_bottom();
}

bool AbstractVal::operator==(const AbstractVal& o) const {
  return kind_ == o.kind_ && values_ == o.values_;
}

std::string AbstractVal::to_string(const ops5::SymbolTable& symbols) const {
  switch (kind_) {
    case Kind::Bottom: return "(none)";
    case Kind::Top: return "(any)";
    case Kind::Finite: {
      std::string out = "{";
      const std::size_t shown = std::min<std::size_t>(values_.size(), 8);
      for (std::size_t i = 0; i < shown; ++i) {
        if (i != 0) out += ' ';
        out += values_[i].to_string(symbols);
      }
      if (values_.size() > shown) out += " ...";
      out += '}';
      return out;
    }
  }
  return "?";
}

std::string_view conflict_kind_name(ConflictKind k) noexcept {
  switch (k) {
    case ConflictKind::WriteWrite: return "write-write";
    case ConflictKind::ReadWrite: return "read-write";
    case ConflictKind::RemoveWrite: return "remove-write";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Checker
// ---------------------------------------------------------------------------

namespace {

using SlotMap = std::map<SlotIndex, AbstractVal>;
using SlotKey = std::pair<ClassIndex, SlotIndex>;
using VarEnv = std::unordered_map<VariableId, AbstractVal>;

enum class WriteOp : std::uint8_t { Make, Modify, Remove };

struct WriteRec {
  const Production* prod = nullptr;  ///< null = task injection
  ClassIndex cls = 0;
  WriteOp op = WriteOp::Make;
  bool guarded = false;  ///< make keyed by its own negated-CE guard
  SlotMap vals;          ///< Make: every slot; Modify: assigned slots
  SlotMap target;        ///< Modify/Remove: the matched CE's refined pattern
};

struct ReadRec {
  const Production* prod = nullptr;
  ClassIndex cls = 0;
  bool negated = false;
  SlotMap pattern;  ///< refined slots only; untested slots are implicitly Top
};

struct ProdResult {
  std::vector<ReadRec> reads;    ///< on tracked (non-base) classes
  std::vector<WriteRec> writes;  ///< every class (global pass applies them all)
};

struct TaskEval {
  const TaskSpec* task = nullptr;
  std::vector<WriteRec> writes;  ///< on tracked classes, incl. the injections
  std::vector<ReadRec> reads;    ///< from result-tainting productions
  std::size_t activatable = 0;
  std::size_t result_writes = 0;
};

/// ∃ slot present in both maps whose values cannot overlap.
[[nodiscard]] bool patterns_disjoint(const SlotMap& a, const SlotMap& b) {
  for (const auto& [slot, v] : a) {
    const auto it = b.find(slot);
    if (it != b.end() && v.provably_disjoint(it->second)) return true;
  }
  return false;
}

class Checker {
 public:
  explicit Checker(const DecompositionSpec& spec)
      : spec_(spec), prog_(*spec.program) {
    for (const ClassIndex c : spec_.base_classes) base_.insert(c);
    for (const ClassIndex c : spec_.scratch_classes) scratch_.insert(c);
    for (const auto& rc : spec_.result_classes) {
      result_keys_[rc.cls] = rc.key_slots;
    }
    for (const auto& fact : spec_.facts) {
      facts_[{fact.cls, fact.guard_slot}].push_back(&fact);
    }
    const auto op = [&](std::string_view name, char tag) {
      if (const auto sym = prog_.symbols().find(name)) ops_[*sym] = tag;
    };
    op("+", '+');
    op("-", '-');
    op("*", '*');
    op("//", '/');
    op("mod", '%');
  }

  InterferenceReport run() {
    build_injection_join();
    global_fixpoint();
    classify_productions();
    std::vector<TaskEval> evals;
    evals.reserve(spec_.tasks.size());
    for (const auto& task : spec_.tasks) evals.push_back(eval_task(task));
    InterferenceReport report;
    for (const auto& te : evals) {
      report.tasks.push_back(TaskFootprintSummary{te.task->task_id, te.activatable,
                                                  te.result_writes, te.reads.size()});
    }
    detect_write_write(evals, report);
    detect_read_write(evals, report);
    return report;
  }

 private:
  [[nodiscard]] bool is_base(ClassIndex c) const { return base_.contains(c); }
  [[nodiscard]] bool is_result(ClassIndex c) const { return result_keys_.contains(c); }
  [[nodiscard]] bool tracked(ClassIndex c) const { return !is_base(c); }

  [[nodiscard]] std::string class_name(ClassIndex c) const {
    return prog_.symbols().name(prog_.wme_class(c).name());
  }

  // --- expression evaluation --------------------------------------------

  [[nodiscard]] AbstractVal eval_expr(const Expr& expr, const VarEnv& env) const {
    if (const auto* value = std::get_if<Value>(&expr.node)) return AbstractVal::of(*value);
    if (const auto* var = std::get_if<ops5::VarRef>(&expr.node)) {
      const auto it = env.find(var->var);
      return it != env.end() ? it->second : AbstractVal::top();
    }
    const auto& call = std::get<ops5::CallExpr>(expr.node);
    const auto op_it = ops_.find(call.function);
    if (op_it == ops_.end() || call.args.size() != 2) {
      // External function: Top under the pure_externals assumption (the
      // value is unknown but deterministic in its arguments).
      return AbstractVal::top();
    }
    const AbstractVal a = eval_expr(call.args[0], env);
    const AbstractVal b = eval_expr(call.args[1], env);
    return eval_arith(op_it->second, a, b);
  }

  [[nodiscard]] static AbstractVal eval_arith(char op, const AbstractVal& a,
                                              const AbstractVal& b) {
    if (a.is_bottom() || b.is_bottom()) return AbstractVal::bottom();
    if (!a.is_finite() || !b.is_finite()) return AbstractVal::top();
    if (a.values().size() * b.values().size() > AbstractVal::kMaxFinite) {
      return AbstractVal::top();
    }
    std::vector<Value> out;
    for (const Value& x : a.values()) {
      for (const Value& y : b.values()) {
        if (!x.is_number() || !y.is_number()) return AbstractVal::top();
        const double xa = x.number();
        const double ya = y.number();
        switch (op) {
          case '+': out.emplace_back(xa + ya); break;
          case '-': out.emplace_back(xa - ya); break;
          case '*': out.emplace_back(xa * ya); break;
          case '/':
            if (ya != 0.0) out.emplace_back(std::trunc(xa / ya));
            break;  // division by zero aborts the firing; no value flows
          case '%':
            if (ya != 0.0) out.emplace_back(xa - ya * std::floor(xa / ya));
            break;
          default: return AbstractVal::top();
        }
      }
    }
    return AbstractVal::finite(std::move(out));
  }

  // --- abstract state ----------------------------------------------------

  struct EvalCtx {
    std::set<ClassIndex> injected;          ///< classes this eval's task injects
    std::map<SlotKey, AbstractVal> injected_vals;
    const std::set<ClassIndex>* avail = nullptr;          ///< written classes
    const std::map<SlotKey, AbstractVal>* vals = nullptr; ///< their invariants
  };

  [[nodiscard]] bool class_avail(const EvalCtx& ctx, ClassIndex cls) const {
    return ctx.injected.contains(cls) || base_.contains(cls) || ctx.avail->contains(cls);
  }

  /// Anchor for a slot before the CE's own tests refine it. Injected classes
  /// use *this task's* injection (per-task trigger anchoring); base classes
  /// are unconstrained input; task-written classes use the cross-task
  /// invariant — never this task's own writes, because WMEs written by other
  /// tasks on a shared process are equally matchable.
  [[nodiscard]] AbstractVal slot_default(const EvalCtx& ctx, ClassIndex cls,
                                         SlotIndex slot) const {
    if (ctx.injected.contains(cls)) {
      const auto it = ctx.injected_vals.find({cls, slot});
      return it != ctx.injected_vals.end() ? it->second : AbstractVal::of(Value{});
    }
    if (base_.contains(cls)) return AbstractVal::top();
    const auto it = ctx.vals->find({cls, slot});
    return it != ctx.vals->end() ? it->second : AbstractVal::top();
  }

  // --- condition elements ------------------------------------------------

  SlotMap eval_ce(const ConditionElement& ce, const EvalCtx& ctx, VarEnv& env, bool bind_new,
                  bool& unsat) const {
    SlotMap sm;
    const auto get = [&](SlotIndex slot) -> AbstractVal& {
      const auto it = sm.find(slot);
      if (it != sm.end()) return it->second;
      return sm.emplace(slot, slot_default(ctx, ce.cls, slot)).first->second;
    };

    // Constant tests.
    for (const auto& test : ce.tests) {
      if (test.is_variable) continue;
      AbstractVal& v = get(test.slot);
      if (test.is_disjunction()) {
        v = v.meet(AbstractVal::finite(test.disjunction));
      } else if (test.pred == Predicate::Eq) {
        v = v.meet(AbstractVal::of(test.constant));
      } else if (v.is_finite()) {
        std::vector<Value> kept;
        for (const Value& x : v.values()) {
          if (ops5::apply_predicate(test.pred, x, test.constant)) kept.push_back(x);
        }
        v = AbstractVal::finite(std::move(kept));
      }
    }

    // Tests against already-bound variables.
    for (const auto& test : ce.tests) {
      if (!test.is_variable) continue;
      const auto bound = env.find(test.var);
      if (bound == env.end()) continue;
      AbstractVal& v = get(test.slot);
      if (test.pred == Predicate::Eq) {
        const AbstractVal m = v.meet(bound->second);
        v = m;
        if (bind_new) env[test.var] = m;
      } else if (test.pred == Predicate::Ne) {
        if (const auto sv = bound->second.singleton(); sv && v.is_finite()) {
          std::vector<Value> kept;
          for (const Value& x : v.values()) {
            if (!(x == *sv)) kept.push_back(x);
          }
          v = AbstractVal::finite(std::move(kept));
        }
      } else if (v.is_finite() && bound->second.is_finite()) {
        bool satisfiable = false;
        for (const Value& x : v.values()) {
          for (const Value& y : bound->second.values()) {
            if (ops5::apply_predicate(test.pred, x, y)) {
              satisfiable = true;
              break;
            }
          }
          if (satisfiable) break;
        }
        if (!satisfiable) v = AbstractVal::bottom();
      }
    }

    // Data facts: if the guard slot's value set is fully covered by facts,
    // meet the joined implications into the implied slots.
    apply_facts(ce.cls, ctx, sm, get);

    for (const auto& [slot, v] : sm) {
      if (v.is_bottom()) unsat = true;
    }

    // Bind new variables to the refined slot values.
    if (bind_new) {
      for (const auto& test : ce.tests) {
        if (test.is_variable && test.pred == Predicate::Eq && !env.contains(test.var)) {
          env.emplace(test.var, get(test.slot));
        }
      }
    }
    return sm;
  }

  template <typename Get>
  void apply_facts(ClassIndex cls, const EvalCtx& ctx, SlotMap& sm, const Get& get) const {
    for (const auto& [key, facts] : facts_) {
      if (key.first != cls) continue;
      const SlotIndex guard = key.second;
      const auto it = sm.find(guard);
      const AbstractVal gv = it != sm.end() ? it->second : slot_default(ctx, cls, guard);
      if (!gv.is_finite()) continue;
      // Every possible guard value must be covered by a fact, else the
      // implications do not hold for all matchable WMEs.
      std::map<SlotIndex, AbstractVal> implied;
      bool covered = true;
      for (const Value& v : gv.values()) {
        const DataFact* match = nullptr;
        for (const DataFact* fact : facts) {
          if (fact->guard_value == v) {
            match = fact;
            break;
          }
        }
        if (match == nullptr) {
          covered = false;
          break;
        }
        for (const auto& [slot, val] : match->implied) {
          const auto imp = implied.find(slot);
          if (imp == implied.end()) {
            implied.emplace(slot, val);
          } else {
            imp->second = imp->second.join(val);
          }
        }
      }
      if (!covered) continue;
      for (const auto& [slot, val] : implied) {
        AbstractVal& v = get(slot);
        v = v.meet(val);
      }
    }
  }

  // --- production evaluation ---------------------------------------------

  [[nodiscard]] std::optional<ProdResult> eval_production(const Production& prod,
                                                          const EvalCtx& ctx) const {
    VarEnv env;
    std::vector<SlotMap> pos_patterns;
    std::vector<ClassIndex> pos_classes;
    ProdResult result;

    for (const auto& ce : prod.lhs()) {
      if (ce.negated) continue;
      if (!class_avail(ctx, ce.cls)) return std::nullopt;
      bool unsat = false;
      SlotMap sm = eval_ce(ce, ctx, env, /*bind_new=*/true, unsat);
      if (unsat) return std::nullopt;
      if (tracked(ce.cls)) result.reads.push_back(ReadRec{&prod, ce.cls, false, sm});
      pos_patterns.push_back(std::move(sm));
      pos_classes.push_back(ce.cls);
    }
    for (const auto& ce : prod.lhs()) {
      if (!ce.negated) continue;
      if (!tracked(ce.cls)) continue;
      bool unsat = false;
      VarEnv frozen = env;  // negated-CE variables are local; no leaking binds
      SlotMap sm = eval_ce(ce, ctx, frozen, /*bind_new=*/false, unsat);
      if (!unsat) result.reads.push_back(ReadRec{&prod, ce.cls, true, std::move(sm)});
    }

    VarEnv local = env;
    for (const auto& action : prod.rhs()) {
      if (const auto* make = std::get_if<MakeAction>(&action)) {
        WriteRec w;
        w.prod = &prod;
        w.cls = make->cls;
        w.op = WriteOp::Make;
        const std::size_t arity = prog_.wme_class(make->cls).arity();
        for (SlotIndex slot = 0; slot < arity; ++slot) {
          w.vals.emplace(slot, AbstractVal::of(Value{}));
        }
        for (const auto& [slot, expr] : make->sets) {
          w.vals[slot] = eval_expr(expr, local);
        }
        w.guarded = guarded_make(prod, *make, w.vals, env);
        result.writes.push_back(std::move(w));
      } else if (const auto* mod = std::get_if<ModifyAction>(&action)) {
        if (mod->ce_index == 0 || mod->ce_index > pos_patterns.size()) continue;
        WriteRec w;
        w.prod = &prod;
        w.cls = pos_classes[mod->ce_index - 1];
        w.op = WriteOp::Modify;
        w.target = pos_patterns[mod->ce_index - 1];
        for (const auto& [slot, expr] : mod->sets) {
          w.vals[slot] = eval_expr(expr, local);
        }
        result.writes.push_back(std::move(w));
      } else if (const auto* rem = std::get_if<RemoveAction>(&action)) {
        if (rem->ce_index == 0 || rem->ce_index > pos_patterns.size()) continue;
        WriteRec w;
        w.prod = &prod;
        w.cls = pos_classes[rem->ce_index - 1];
        w.op = WriteOp::Remove;
        w.target = pos_patterns[rem->ce_index - 1];
        result.writes.push_back(std::move(w));
      } else if (const auto* bind = std::get_if<BindAction>(&action)) {
        local[bind->var] = eval_expr(bind->expr, local);
      }
    }
    return result;
  }

  /// A make is guarded when the production carries a negated CE over the
  /// written class whose every test is mirrored by the make: variable
  /// equality tests must be written back verbatim from a positively bound
  /// variable (the key), and constant tests must provably hold for the
  /// written value. Such a make creates at most one WME per key per engine,
  /// with content a function of the key (given pure externals) — confluent
  /// across task placements.
  [[nodiscard]] bool guarded_make(const Production& prod, const MakeAction& make,
                                  const SlotMap& vals, const VarEnv& bound) const {
    const auto last_set = [&](SlotIndex slot) -> const Expr* {
      const Expr* found = nullptr;
      for (const auto& [s, expr] : make.sets) {
        if (s == slot) found = &expr;
      }
      return found;
    };
    for (const auto& ce : prod.lhs()) {
      if (!ce.negated || ce.cls != make.cls) continue;
      bool keyed = false;
      bool compatible = true;
      for (const auto& test : ce.tests) {
        if (test.is_variable) {
          const Expr* expr = last_set(test.slot);
          const ops5::VarRef* ref =
              expr != nullptr ? std::get_if<ops5::VarRef>(&expr->node) : nullptr;
          if (test.pred == Predicate::Eq && ref != nullptr && ref->var == test.var &&
              bound.contains(test.var)) {
            keyed = true;
          } else {
            compatible = false;
            break;
          }
        } else {
          const auto it = vals.find(test.slot);
          const bool holds = it != vals.end() && it->second.is_finite() &&
                             std::all_of(it->second.values().begin(), it->second.values().end(),
                                         [&](const Value& v) {
                                           return ops5::constant_test_passes(test, v);
                                         });
          if (!holds) {
            compatible = false;
            break;
          }
        }
      }
      if (keyed && compatible) return true;
    }
    return false;
  }

  // --- global invariant pass ---------------------------------------------

  void build_injection_join() {
    for (const auto& task : spec_.tasks) {
      for (const auto& wme : task.wmes) {
        injected_classes_.insert(wme.cls);
        const std::size_t arity = prog_.wme_class(wme.cls).arity();
        SlotMap vals;
        for (SlotIndex slot = 0; slot < arity; ++slot) {
          vals.emplace(slot, AbstractVal::of(Value{}));
        }
        for (const auto& [slot, value] : wme.slots) vals[slot] = AbstractVal::of(value);
        for (const auto& [slot, v] : vals) {
          const SlotKey key{wme.cls, slot};
          const auto it = injection_join_.find(key);
          if (it == injection_join_.end()) {
            injection_join_.emplace(key, v);
          } else {
            it->second = it->second.join(v);
          }
        }
      }
    }
  }

  void global_fixpoint() {
    EvalCtx ctx;
    ctx.injected = injected_classes_;
    ctx.injected_vals = injection_join_;
    ctx.avail = &global_avail_;
    ctx.vals = &global_vals_;

    constexpr int kWidenAfter = 8;
    constexpr int kMaxIters = 48;
    for (int iter = 0; iter < kMaxIters; ++iter) {
      bool changed = false;
      const bool widen = iter >= kWidenAfter;
      for (const auto& prod : prog_.productions()) {
        const auto result = eval_production(prod, ctx);
        if (!result) continue;
        for (const auto& w : result->writes) {
          if (w.op == WriteOp::Remove) continue;
          if (w.op == WriteOp::Make && global_avail_.insert(w.cls).second) changed = true;
          for (const auto& [slot, v] : w.vals) {
            AbstractVal& cur =
                global_vals_.emplace(SlotKey{w.cls, slot}, AbstractVal::bottom()).first->second;
            AbstractVal next = cur.join(v);
            if (next == cur) continue;
            if (widen && cur.is_finite() && next.is_finite()) next = AbstractVal::top();
            cur = std::move(next);
            changed = true;
          }
        }
      }
      if (!changed) break;
    }
  }

  /// Result-taint and forgiveness, from a final evaluation against the
  /// stable global invariant.
  void classify_productions() {
    EvalCtx ctx;
    ctx.injected = injected_classes_;
    ctx.injected_vals = injection_join_;
    ctx.avail = &global_avail_;
    ctx.vals = &global_vals_;
    for (const auto& prod : prog_.productions()) {
      const auto result = eval_production(prod, ctx);
      if (!result) continue;
      ProdInfo info;
      bool all_result_writes_guarded_makes = true;
      for (const auto& w : result->writes) {
        if (!is_result(w.cls)) continue;
        const auto& keys = result_keys_.at(w.cls);
        switch (w.op) {
          case WriteOp::Make:
            info.taints = true;
            if (!w.guarded) all_result_writes_guarded_makes = false;
            break;
          case WriteOp::Modify: {
            const bool writes_key = std::any_of(keys.begin(), keys.end(), [&](SlotIndex k) {
              return w.vals.contains(k);
            });
            if (writes_key) {
              info.taints = true;
              all_result_writes_guarded_makes = false;
            }
            break;
          }
          case WriteOp::Remove:
            info.taints = true;
            all_result_writes_guarded_makes = false;
            break;
        }
      }
      info.forgiven = info.taints && all_result_writes_guarded_makes;
      info_.emplace(&prod, info);
    }
  }

  // --- per-task pass ------------------------------------------------------

  [[nodiscard]] TaskEval eval_task(const TaskSpec& task) const {
    TaskEval te;
    te.task = &task;

    EvalCtx ctx;
    ctx.avail = &global_avail_;
    ctx.vals = &global_vals_;
    for (const auto& wme : task.wmes) {
      ctx.injected.insert(wme.cls);
      const std::size_t arity = prog_.wme_class(wme.cls).arity();
      SlotMap vals;
      for (SlotIndex slot = 0; slot < arity; ++slot) {
        vals.emplace(slot, AbstractVal::of(Value{}));
      }
      for (const auto& [slot, value] : wme.slots) vals[slot] = AbstractVal::of(value);
      for (const auto& [slot, v] : vals) {
        const SlotKey key{wme.cls, slot};
        const auto it = ctx.injected_vals.find(key);
        if (it == ctx.injected_vals.end()) {
          ctx.injected_vals.emplace(key, v);
        } else {
          it->second = it->second.join(v);
        }
      }
      // The injection itself is a write other tasks' matches can see.
      if (tracked(wme.cls)) {
        WriteRec w;
        w.cls = wme.cls;
        w.op = WriteOp::Make;
        w.vals = vals;
        te.writes.push_back(std::move(w));
      }
    }

    for (const auto& prod : prog_.productions()) {
      const auto result = eval_production(prod, ctx);
      if (!result) continue;
      ++te.activatable;
      const auto info = info_.find(&prod);
      for (const auto& w : result->writes) {
        if (!tracked(w.cls)) continue;
        if (is_result(w.cls)) ++te.result_writes;
        te.writes.push_back(w);
      }
      if (info != info_.end() && info->second.taints) {
        te.reads.insert(te.reads.end(), result->reads.begin(), result->reads.end());
      }
    }
    return te;
  }

  // --- conflict detection -------------------------------------------------

  struct ConflictSink {
    InterferenceReport& report;
    std::set<std::tuple<int, ClassIndex, const Production*, const Production*>> seen;

    [[nodiscard]] bool full() const {
      return report.conflicts.size() >= InterferenceReport::kMaxConflicts;
    }

    void add(ConflictKind kind, ClassIndex cls, const TaskEval& a, const TaskEval& b,
             const Production* pa, const Production* pb, std::string detail) {
      const Production* lo = pa < pb ? pa : pb;
      const Production* hi = pa < pb ? pb : pa;
      if (!seen.insert({static_cast<int>(kind), cls, lo, hi}).second) return;
      if (full()) {
        report.conflicts_truncated = true;
        return;
      }
      Conflict c;
      c.kind = kind;
      c.cls = cls;
      c.task_a = a.task->task_id;
      c.task_b = b.task->task_id;
      c.production_a = pa != nullptr ? pa->name() : ops5::kNilSymbol;
      c.production_b = pb != nullptr ? pb->name() : ops5::kNilSymbol;
      c.detail = std::move(detail);
      report.conflicts.push_back(std::move(c));
    }
  };

  [[nodiscard]] std::string key_detail(const SlotMap& vals, ClassIndex cls) const {
    std::string out;
    const auto it = result_keys_.find(cls);
    if (it == result_keys_.end()) return out;
    const auto& attrs = prog_.wme_class(cls).attributes();
    for (const SlotIndex k : it->second) {
      if (!out.empty()) out += ' ';
      out += '^';
      out += prog_.symbols().name(attrs[k]);
      out += '=';
      const auto v = vals.find(k);
      out += v != vals.end() ? v->second.to_string(prog_.symbols()) : "(any)";
    }
    return out;
  }

  void detect_write_write(const std::vector<TaskEval>& evals, InterferenceReport& report) {
    ConflictSink sink{report, {}};

    for (const auto& [cls, keys] : result_keys_) {
      struct Rec {
        const TaskEval* te;
        const WriteRec* w;
      };
      std::vector<Rec> makes;
      std::vector<Rec> others;  // key-writing modifies + removes
      for (const auto& te : evals) {
        for (const auto& w : te.writes) {
          if (w.cls != cls) continue;
          if (w.op == WriteOp::Make) {
            makes.push_back({&te, &w});
          } else {
            const bool writes_key =
                w.op == WriteOp::Remove ||
                std::any_of(keys.begin(), keys.end(),
                            [&](SlotIndex k) { return w.vals.contains(k); });
            if (writes_key) others.push_back({&te, &w});
          }
        }
      }

      const auto check_make_pair = [&](const Rec& a, const Rec& b) {
        if (a.te == b.te || sink.full()) return;
        ++report.pairs_checked;
        if (a.w->prod != nullptr && a.w->prod == b.w->prod && a.w->guarded && b.w->guarded) {
          return;  // same guarded make: at most one WME per key, same content
        }
        for (const SlotIndex k : keys) {
          if (a.w->vals.at(k).provably_disjoint(b.w->vals.at(k))) return;
        }
        sink.add(ConflictKind::WriteWrite, cls, *a.te, *b.te, a.w->prod, b.w->prod,
                 "both create '" + class_name(cls) + "' with overlapping keys: " +
                     key_detail(a.w->vals, cls) + " vs " + key_detail(b.w->vals, cls));
      };

      // Bucket the makes on the key slot with the most distinct singleton
      // values; cross-bucket pairs are disjoint by construction. This keeps
      // Level-1 decompositions (thousands of tasks) near-linear.
      SlotIndex bucket_slot = ops5::kInvalidSlot;
      std::size_t best_distinct = 0;
      for (const SlotIndex k : keys) {
        std::set<std::size_t> distinct;
        bool all_singleton = true;
        for (const auto& rec : makes) {
          const auto sv = rec.w->vals.at(k).singleton();
          if (!sv) {
            all_singleton = false;
            break;
          }
          distinct.insert(sv->hash());
        }
        if (all_singleton && distinct.size() > best_distinct) {
          best_distinct = distinct.size();
          bucket_slot = k;
        }
      }
      if (bucket_slot != ops5::kInvalidSlot && best_distinct > 1) {
        std::unordered_map<Value, std::vector<std::size_t>, ops5::ValueHash> buckets;
        for (std::size_t i = 0; i < makes.size(); ++i) {
          buckets[*makes[i].w->vals.at(bucket_slot).singleton()].push_back(i);
        }
        for (const auto& [value, members] : buckets) {
          for (std::size_t i = 0; i < members.size(); ++i) {
            for (std::size_t j = i + 1; j < members.size(); ++j) {
              check_make_pair(makes[members[i]], makes[members[j]]);
            }
          }
        }
      } else {
        for (std::size_t i = 0; i < makes.size(); ++i) {
          for (std::size_t j = i + 1; j < makes.size(); ++j) {
            check_make_pair(makes[i], makes[j]);
          }
        }
      }

      // Key-writing modifies and removes are rare; check them against
      // everything.
      for (const auto& o : others) {
        for (const auto& m : makes) {
          if (o.te == m.te || sink.full()) continue;
          ++report.pairs_checked;
          if (patterns_disjoint(o.w->target, m.w->vals)) continue;
          const auto kind =
              o.w->op == WriteOp::Remove ? ConflictKind::RemoveWrite : ConflictKind::WriteWrite;
          sink.add(kind, cls, *o.te, *m.te, o.w->prod, m.w->prod,
                   std::string(o.w->op == WriteOp::Remove ? "removes" : "rewrites keys of") +
                       " '" + class_name(cls) + "' WMEs another task creates (" +
                       key_detail(m.w->vals, cls) + ")");
        }
        for (const auto& o2 : others) {
          if (o.te == o2.te || o.w == o2.w || sink.full()) continue;
          ++report.pairs_checked;
          if (patterns_disjoint(o.w->target, o2.w->target)) continue;
          sink.add(ConflictKind::WriteWrite, cls, *o.te, *o2.te, o.w->prod, o2.w->prod,
                   "both rewrite or remove the same '" + class_name(cls) + "' WMEs");
        }
      }
    }
  }

  void detect_read_write(const std::vector<TaskEval>& evals, InterferenceReport& report) {
    ConflictSink sink{report, {}};

    // Index all tracked writes by class.
    struct Rec {
      const TaskEval* te;
      const WriteRec* w;
    };
    std::map<ClassIndex, std::vector<Rec>> by_class;
    for (const auto& te : evals) {
      for (const auto& w : te.writes) by_class[w.cls].push_back({&te, &w});
    }

    // Per class: bucket writes by the slot with the most distinct singleton
    // written values, so reads with a finite pattern on that slot probe only
    // matching buckets.
    struct Index {
      SlotIndex slot = ops5::kInvalidSlot;
      std::unordered_map<Value, std::vector<std::size_t>, ops5::ValueHash> buckets;
      std::vector<std::size_t> spill;
    };
    std::map<ClassIndex, Index> indices;
    for (const auto& [cls, recs] : by_class) {
      Index idx;
      std::map<SlotIndex, std::set<std::size_t>> distinct;
      for (const auto& rec : recs) {
        for (const auto& [slot, v] : rec.w->vals) {
          if (const auto sv = v.singleton()) distinct[slot].insert(sv->hash());
        }
      }
      std::size_t best = 1;
      for (const auto& [slot, values] : distinct) {
        if (values.size() > best) {
          best = values.size();
          idx.slot = slot;
        }
      }
      for (std::size_t i = 0; i < recs.size(); ++i) {
        const WriteRec& w = *recs[i].w;
        // Bucket on written value for makes; modifies/removes change or drop
        // existing WMEs, so bucket on the target pattern when singular.
        const SlotMap& where = w.op == WriteOp::Make ? w.vals : w.target;
        const auto it = idx.slot != ops5::kInvalidSlot ? where.find(idx.slot) : where.end();
        const auto sv = it != where.end() ? it->second.singleton() : std::nullopt;
        if (sv) {
          idx.buckets[*sv].push_back(i);
        } else {
          idx.spill.push_back(i);
        }
      }
      indices.emplace(cls, std::move(idx));
    }

    const auto overlaps = [&](const ReadRec& r, const WriteRec& w) {
      switch (w.op) {
        case WriteOp::Make:
          return !patterns_disjoint(r.pattern, w.vals);
        case WriteOp::Modify: {
          SlotMap post = w.target;
          for (const auto& [slot, v] : w.vals) post[slot] = v;
          return !patterns_disjoint(r.pattern, w.target) ||
                 !patterns_disjoint(r.pattern, post);
        }
        case WriteOp::Remove:
          return !patterns_disjoint(r.pattern, w.target);
      }
      return true;
    };

    for (const auto& te : evals) {
      if (sink.full()) break;
      for (const auto& r : te.reads) {
        const auto recs_it = by_class.find(r.cls);
        if (recs_it == by_class.end()) continue;
        const auto& recs = recs_it->second;
        const Index& idx = indices.at(r.cls);
        const auto info_it = info_.find(r.prod);
        const bool reader_forgiven = info_it != info_.end() && info_it->second.forgiven;

        const auto check = [&](std::size_t i) {
          const Rec& rec = recs[i];
          if (rec.te == &te || sink.full()) return;
          ++report.pairs_checked;
          if (!overlaps(r, *rec.w)) return;
          if (reader_forgiven) {
            if (!r.negated && rec.w->op == WriteOp::Make &&
                (rec.w->guarded || rec.w->prod == r.prod)) {
              // Confluent: the reader's result writes are keyed and the
              // matched WME's content is itself keyed — a cross-task match
              // reproduces WMEs the owning task also produces.
              return;
            }
            if (r.negated && rec.w->prod == r.prod) {
              // The guard being satisfied early by the same production in
              // another task suppresses only an identical duplicate.
              return;
            }
          }
          std::string detail = r.negated ? "negated CE on '" : "matches '";
          detail += class_name(r.cls);
          detail += "' WMEs another task ";
          detail += rec.w->prod == nullptr
                        ? "injects"
                        : (rec.w->op == WriteOp::Make
                               ? "creates"
                               : (rec.w->op == WriteOp::Modify ? "modifies" : "removes"));
          sink.add(ConflictKind::ReadWrite, r.cls, te, *rec.te, r.prod, rec.w->prod,
                   std::move(detail));
        };

        const auto pattern_it =
            idx.slot != ops5::kInvalidSlot ? r.pattern.find(idx.slot) : r.pattern.end();
        if (pattern_it != r.pattern.end() && pattern_it->second.is_finite()) {
          for (const Value& v : pattern_it->second.values()) {
            const auto bucket = idx.buckets.find(v);
            if (bucket == idx.buckets.end()) continue;
            for (const std::size_t i : bucket->second) check(i);
          }
          for (const std::size_t i : idx.spill) check(i);
        } else {
          for (std::size_t i = 0; i < recs.size(); ++i) check(i);
        }
      }
    }
  }

  struct ProdInfo {
    bool taints = false;    ///< writes merged result WMEs (or their keys)
    bool forgiven = false;  ///< all result writes are guarded makes
  };

  const DecompositionSpec& spec_;
  const Program& prog_;
  std::set<ClassIndex> base_;
  std::set<ClassIndex> scratch_;
  std::map<ClassIndex, std::vector<SlotIndex>> result_keys_;
  std::map<std::pair<ClassIndex, SlotIndex>, std::vector<const DataFact*>> facts_;
  std::unordered_map<Symbol, char> ops_;

  std::set<ClassIndex> injected_classes_;
  std::map<SlotKey, AbstractVal> injection_join_;
  std::set<ClassIndex> global_avail_;
  std::map<SlotKey, AbstractVal> global_vals_;
  std::unordered_map<const Production*, ProdInfo> info_;
};

}  // namespace

std::string InterferenceReport::summary(const Program& program) const {
  std::string out = std::to_string(tasks.size()) + " tasks, " + std::to_string(pairs_checked) +
                    " access pairs checked: ";
  if (independent()) {
    out += "independent (no write-write or read-write conflicts)";
    return out;
  }
  out += std::to_string(conflicts.size());
  out += conflicts_truncated ? "+ conflicts" : " conflicts";
  for (const auto& c : conflicts) {
    out += "\n  [";
    out += conflict_kind_name(c.kind);
    out += "] class '";
    out += program.symbols().name(program.wme_class(c.cls).name());
    out += "' tasks ";
    out += std::to_string(c.task_a);
    out += "/";
    out += std::to_string(c.task_b);
    out += ": ";
    const auto prod_name = [&](Symbol s) {
      return s == ops5::kNilSymbol ? std::string("<task injection>")
                                   : program.symbols().name(s);
    };
    out += prod_name(c.production_a);
    out += " vs ";
    out += prod_name(c.production_b);
    out += " — ";
    out += c.detail;
  }
  return out;
}

InterferenceReport check_interference(const DecompositionSpec& spec) {
  if (spec.empty()) return {};
  return Checker(spec).run();
}

}  // namespace psmsys::analysis
