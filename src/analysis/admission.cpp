#include "analysis/admission.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <stdexcept>

#include "analysis/lint.hpp"

namespace psmsys::analysis {

using ops5::ClassIndex;
using ops5::Production;
using ops5::Program;
using ops5::SlotIndex;
using ops5::Symbol;
using ops5::Value;

namespace {

[[nodiscard]] std::string class_name(const Program& program, ClassIndex cls) {
  return program.symbols().name(program.wme_class(cls).name());
}

[[nodiscard]] std::string attr_name(const Program& program, ClassIndex cls,
                                    SlotIndex slot) {
  const auto attrs = program.wme_class(cls).attributes();
  if (slot >= attrs.size()) return "<slot" + std::to_string(slot) + ">";
  return program.symbols().name(attrs[slot]);
}

[[nodiscard]] std::string label_of(const PackInput& pack) {
  if (!pack.label.empty()) return pack.label;
  if (pack.program != nullptr && !pack.program->pack_name().empty()) {
    std::string s = pack.program->pack_name();
    if (!pack.program->pack_version().empty()) {
      s += '@';
      s += pack.program->pack_version();
    }
    return s;
  }
  return "pack";
}

[[nodiscard]] double round6(double v) {
  if (v == 0.0 || !std::isfinite(v)) return 0.0;
  const double mag = std::pow(10.0, 5 - std::floor(std::log10(std::fabs(v))));
  return std::round(v * mag) / mag;
}

[[nodiscard]] std::string fmt2(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

/// Resolve class names to indices, silently skipping names the program lacks
/// (removed classes surface through AN013, not a broken lint config).
[[nodiscard]] std::optional<std::vector<ClassIndex>> resolve_classes(
    const Program& program, const std::optional<std::vector<std::string>>& names) {
  if (!names.has_value()) return std::nullopt;
  std::vector<ClassIndex> out;
  for (const std::string& n : *names) {
    if (const auto sym = program.symbols().find(n)) {
      if (const auto cls = program.class_index(*sym)) out.push_back(*cls);
    }
  }
  return out;
}

[[nodiscard]] AdmissionDecision section_decision(std::size_t errors,
                                                 std::size_t warnings,
                                                 bool strict) {
  if (errors > 0) return AdmissionDecision::Reject;
  if (warnings > 0) {
    return strict ? AdmissionDecision::Reject : AdmissionDecision::Warn;
  }
  return AdmissionDecision::Pass;
}

void finalize_section(VerdictSection& s, const AdmissionOptions& options) {
  s.errors = 0;
  s.warnings = 0;
  for (const auto& f : s.findings) {
    if (f.severity == "error") {
      ++s.errors;
    } else if (f.severity == "warning") {
      ++s.warnings;
    }
  }
  if (s.findings.size() > options.max_findings) {
    s.findings.resize(options.max_findings);
    s.details.emplace_back("findings_truncated", obs::json::Value(true));
  }
  s.decision = section_decision(s.errors, s.warnings, options.strict);
}

void add_finding(VerdictSection& s, Code code, Severity severity,
                 std::string production, std::string message) {
  VerdictFinding f;
  f.code = code_name(code);
  f.severity = std::string(severity_name(severity));
  f.production = std::move(production);
  f.message = std::move(message);
  s.findings.push_back(std::move(f));
}

// ---------------------------------------------------------------------------
// Section: lint
// ---------------------------------------------------------------------------

[[nodiscard]] VerdictSection lint_section(const PackInput& pack,
                                          const AdmissionOptions& options) {
  VerdictSection s;
  s.analyzer = "lint";
  LintOptions lint;
  lint.seed_classes = resolve_classes(*pack.program, pack.seed_classes);
  lint.output_classes = resolve_classes(*pack.program, pack.output_classes);
  const std::vector<Diagnostic> diags = lint_program(*pack.program, lint);
  for (const Diagnostic& d : diags) {
    VerdictFinding f;
    f.code = code_name(d.code);
    f.severity = std::string(severity_name(d.severity));
    if (d.production != ops5::kNilSymbol) {
      f.production = pack.program->symbols().name(d.production);
    }
    f.message = d.message;
    s.findings.push_back(std::move(f));
  }
  s.details.emplace_back("productions",
                         obs::json::Value(pack.program->productions().size()));
  s.details.emplace_back("diagnostics", obs::json::Value(diags.size()));
  finalize_section(s, options);
  return s;
}

// ---------------------------------------------------------------------------
// Section: rete_static
// ---------------------------------------------------------------------------

[[nodiscard]] VerdictSection rete_section(const ReteStaticReport& report,
                                          const AdmissionOptions& options) {
  VerdictSection s;
  s.analyzer = "rete_static";
  double total_cost = 0.0;
  for (const auto& p : report.productions) total_cost += p.match_cost;
  s.details.emplace_back("productions", obs::json::Value(report.production_count));
  s.details.emplace_back("alpha_nodes", obs::json::Value(report.alpha_nodes));
  s.details.emplace_back("join_nodes", obs::json::Value(report.join_nodes));
  s.details.emplace_back("beta_memories", obs::json::Value(report.beta_memories));
  s.details.emplace_back("alpha_sharing",
                         obs::json::Value(round6(report.alpha_sharing())));
  s.details.emplace_back("join_sharing",
                         obs::json::Value(round6(report.join_sharing())));
  s.details.emplace_back("total_cost", obs::json::Value(round6(total_cost)));
  finalize_section(s, options);
  return s;
}

// ---------------------------------------------------------------------------
// Section: value_domains (abstract interpretation + specialization proof)
// ---------------------------------------------------------------------------

[[nodiscard]] VerdictSection value_domains_section(const PackInput& pack,
                                                   const AdmissionOptions& options) {
  VerdictSection s;
  s.analyzer = "value_domains";
  ValueDomainOptions vd = options.rete.value_domains;
  vd.seed_classes = resolve_classes(*pack.program, pack.seed_classes);
  vd.output_classes = resolve_classes(*pack.program, pack.output_classes);
  const ValueDomainReport report = analyze_value_domains(*pack.program, vd);
  for (const Diagnostic& d : report.diagnostics) {
    VerdictFinding f;
    f.code = code_name(d.code);
    f.severity = std::string(severity_name(d.severity));
    if (d.production != ops5::kNilSymbol) {
      f.production = pack.program->symbols().name(d.production);
    }
    f.message = d.message;
    s.findings.push_back(std::move(f));
  }
  // The specialization certificate must re-verify from the recorded domains
  // alone; a plan whose own proof fails is never admissible.
  const auto violations = verify_specialization(*pack.program, vd, report);
  for (const auto& v : violations) {
    add_finding(s, Code::CertificateInvalidation, Severity::Error, "",
                "specialization certificate: " + v);
  }
  s.details.emplace_back("converged", obs::json::Value(report.converged));
  s.details.emplace_back("iterations", obs::json::Value(report.iterations));
  s.details.emplace_back(
      "pruned_productions",
      obs::json::Value(report.plan ? report.plan->pruned_productions.size() : 0));
  s.details.emplace_back(
      "dead_tests", obs::json::Value(report.plan ? report.plan->dead_tests.size() : 0));
  s.details.emplace_back(
      "fold_tests", obs::json::Value(report.plan ? report.plan->fold_tests.size() : 0));
  s.details.emplace_back("certificate_verified", obs::json::Value(violations.empty()));
  finalize_section(s, options);
  return s;
}

// ---------------------------------------------------------------------------
// Section: interference (certificate recheck over the candidate)
// ---------------------------------------------------------------------------

[[nodiscard]] std::string conflict_key(const Program& program, const Conflict& c) {
  std::string key(conflict_kind_name(c.kind));
  key += '|';
  key += class_name(program, c.cls);
  key += '|';
  key += c.production_a == ops5::kNilSymbol ? std::string("<inject>")
                                            : program.symbols().name(c.production_a);
  key += '|';
  key += c.production_b == ops5::kNilSymbol ? std::string("<inject>")
                                            : program.symbols().name(c.production_b);
  return key;
}

[[nodiscard]] VerdictSection interference_section(const PackInput& live,
                                                  const PackInput& candidate,
                                                  const AdmissionOptions& options) {
  VerdictSection s;
  s.analyzer = "interference";
  if (live.spec == nullptr || live.spec->empty()) {
    s.details.emplace_back("certificate", obs::json::Value("none"));
    finalize_section(s, options);
    return s;
  }

  const InterferenceReport live_report = check_interference(*live.spec);

  std::string rebind_error;
  const std::optional<DecompositionSpec> rebound =
      rebind_spec(*live.spec, candidate.program, &rebind_error);
  if (!rebound.has_value()) {
    add_finding(s, Code::CertificateInvalidation, Severity::Error, "",
                "independence certificate cannot be re-established over the "
                "candidate: " + rebind_error);
    s.details.emplace_back("certificate", obs::json::Value("unbindable"));
    s.details.emplace_back("live_conflicts",
                           obs::json::Value(live_report.conflicts.size()));
    finalize_section(s, options);
    return s;
  }

  const InterferenceReport cand_report = check_interference(*rebound);

  std::set<std::string> live_keys;
  for (const Conflict& c : live_report.conflicts) {
    live_keys.insert(conflict_key(*live.spec->program, c));
  }
  std::size_t new_conflicts = 0;
  for (const Conflict& c : cand_report.conflicts) {
    if (live_keys.contains(conflict_key(*candidate.program, c))) continue;
    ++new_conflicts;
    const Program& prog = *candidate.program;
    std::string who = c.production_a == ops5::kNilSymbol
                          ? std::string()
                          : prog.symbols().name(c.production_a);
    std::string msg(conflict_kind_name(c.kind));
    msg += " conflict on class '" + class_name(prog, c.cls) + "' between task " +
           std::to_string(c.task_a) + " and task " + std::to_string(c.task_b) +
           ": " + c.detail;
    add_finding(s, Code::NewInterferenceEdge, Severity::Error, std::move(who),
                std::move(msg));
  }
  if (live_report.independent() && !cand_report.independent()) {
    add_finding(s, Code::CertificateInvalidation, Severity::Error, "",
                "independence certificate invalidated: live pack was "
                "conflict-free, candidate has " +
                    std::to_string(cand_report.conflicts.size()) + " conflict(s)");
  }

  s.details.emplace_back("certificate", obs::json::Value("checked"));
  s.details.emplace_back("tasks", obs::json::Value(cand_report.tasks.size()));
  s.details.emplace_back("pairs_checked",
                         obs::json::Value(cand_report.pairs_checked));
  s.details.emplace_back("live_conflicts",
                         obs::json::Value(live_report.conflicts.size()));
  s.details.emplace_back("candidate_conflicts",
                         obs::json::Value(cand_report.conflicts.size()));
  s.details.emplace_back("new_conflicts", obs::json::Value(new_conflicts));
  finalize_section(s, options);
  return s;
}

// ---------------------------------------------------------------------------
// Section: semantic_diff
// ---------------------------------------------------------------------------

[[nodiscard]] VerdictSection diff_section(const PackInput& live,
                                          const PackInput& candidate,
                                          const ReteStaticReport& live_rete,
                                          const ReteStaticReport& cand_rete,
                                          const AdmissionOptions& options) {
  VerdictSection s;
  s.analyzer = "semantic_diff";
  const Program& lp = *live.program;
  const Program& cp = *candidate.program;

  // --- production diff by name + canonical fingerprint ---
  std::map<std::string, const Production*> live_prods;
  std::map<std::string, const Production*> cand_prods;
  for (const auto& p : lp.productions()) {
    live_prods.emplace(lp.symbols().name(p.name()), &p);
  }
  for (const auto& p : cp.productions()) {
    cand_prods.emplace(cp.symbols().name(p.name()), &p);
  }
  std::vector<std::string> added;
  std::vector<std::string> removed;
  std::vector<std::string> modified;
  for (const auto& [name, p] : cand_prods) {
    if (!live_prods.contains(name)) added.push_back(name);
  }
  for (const auto& [name, p] : live_prods) {
    const auto it = cand_prods.find(name);
    if (it == cand_prods.end()) {
      removed.push_back(name);
    } else if (production_fingerprint(lp, *p) !=
               production_fingerprint(cp, *it->second)) {
      modified.push_back(name);
    }
  }

  // --- AN013: output/result class schema changes ---
  std::set<std::string> output_names;
  if (live.output_classes.has_value()) {
    output_names.insert(live.output_classes->begin(), live.output_classes->end());
  }
  if (live.spec != nullptr && live.spec->program != nullptr) {
    for (const auto& rc : live.spec->result_classes) {
      output_names.insert(class_name(*live.spec->program, rc.cls));
    }
  }
  std::size_t classes_removed = 0;
  std::size_t classes_changed = 0;
  for (ClassIndex cls = 0; cls < lp.class_count(); ++cls) {
    const std::string cname = class_name(lp, cls);
    const Severity sev =
        output_names.contains(cname) ? Severity::Error : Severity::Warning;
    const auto sym = cp.symbols().find(cname);
    const auto ccls = sym.has_value() ? cp.class_index(*sym) : std::nullopt;
    if (!ccls.has_value()) {
      ++classes_removed;
      add_finding(s, Code::OutputSchemaChange, sev, "",
                  "class '" + cname + "' removed by the candidate");
      continue;
    }
    std::string live_layout;
    std::string cand_layout;
    for (const Symbol a : lp.wme_class(cls).attributes()) {
      if (!live_layout.empty()) live_layout += ' ';
      live_layout += lp.symbols().name(a);
    }
    for (const Symbol a : cp.wme_class(*ccls).attributes()) {
      if (!cand_layout.empty()) cand_layout += ' ';
      cand_layout += cp.symbols().name(a);
    }
    if (live_layout != cand_layout) {
      ++classes_changed;
      add_finding(s, Code::OutputSchemaChange, sev, "",
                  "class '" + cname + "' layout changed: [" + live_layout +
                      "] -> [" + cand_layout + "]");
    }
  }

  // --- AN010: per-production static cost / beta-growth regressions ---
  std::map<std::string, const ProductionReport*> live_costs;
  std::map<std::string, const ProductionReport*> cand_costs;
  for (const auto& p : live_rete.productions) live_costs.emplace(p.name, &p);
  for (const auto& p : cand_rete.productions) cand_costs.emplace(p.name, &p);

  // Rescale measured work onto static cost units over the productions that
  // have both, so measured_costs can stand in for the live static estimate.
  std::map<std::string, double> measured;
  for (const auto& [name, m] : options.measured_costs) measured[name] = m;
  double static_sum = 0.0;
  double measured_sum = 0.0;
  for (const auto& [name, rep] : live_costs) {
    const auto it = measured.find(name);
    if (it != measured.end() && it->second > 0.0) {
      static_sum += rep->match_cost;
      measured_sum += it->second;
    }
  }
  const double scale = measured_sum > 0.0 ? static_sum / measured_sum : 0.0;

  for (const auto& [name, lrep] : live_costs) {
    const auto it = cand_costs.find(name);
    if (it == cand_costs.end()) continue;
    const ProductionReport& crep = *it->second;
    double live_cost = lrep->match_cost;
    bool empirical = false;
    if (const auto m = measured.find(name);
        m != measured.end() && m->second > 0.0 && scale > 0.0) {
      live_cost = m->second * scale;
      empirical = true;
    }
    if (live_cost > 0.0) {
      const double ratio = crep.match_cost / live_cost;
      if (ratio > options.cost_warn_ratio) {
        const Severity sev = ratio > options.cost_reject_ratio
                                 ? Severity::Error
                                 : Severity::Warning;
        add_finding(s, Code::CostRegression, sev, name,
                    "static match cost regression: " + fmt2(live_cost) +
                        (empirical ? " (measured-calibrated)" : "") + " -> " +
                        fmt2(crep.match_cost) + " (x" + fmt2(ratio) + ")");
      }
    }
    if (lrep->beta_bound > 0.0 &&
        crep.beta_bound / lrep->beta_bound > options.beta_reject_ratio) {
      add_finding(s, Code::CostRegression, Severity::Error, name,
                  "worst-case beta growth regression: bound " +
                      fmt2(lrep->beta_bound) + " -> " + fmt2(crep.beta_bound) +
                      " (degree " + std::to_string(lrep->beta_degree) + " -> " +
                      std::to_string(crep.beta_degree) + ")");
    } else if (crep.beta_degree > lrep->beta_degree) {
      add_finding(s, Code::CostRegression, Severity::Warning, name,
                  "beta growth degree increased: O(N^" +
                      std::to_string(lrep->beta_degree) + ") -> O(N^" +
                      std::to_string(crep.beta_degree) + ")");
    }
  }

  // --- dependency-edge churn (by name, cross-version comparable) ---
  const auto edge_keys = [](const Program& prog, const ReteStaticReport& rep) {
    std::set<std::string> keys;
    const auto prods = prog.productions();
    for (const auto& e : rep.edges) {
      std::string k = prog.symbols().name(prods[e.from].name());
      k += "->";
      k += prog.symbols().name(prods[e.to].name());
      k += ':';
      k += e.class_name;
      k += e.negated ? "!" : "";
      keys.insert(std::move(k));
    }
    return keys;
  };
  const std::set<std::string> live_edges = edge_keys(lp, live_rete);
  const std::set<std::string> cand_edges = edge_keys(cp, cand_rete);
  std::size_t edges_added = 0;
  std::size_t edges_removed = 0;
  for (const auto& k : cand_edges) {
    if (!live_edges.contains(k)) ++edges_added;
  }
  for (const auto& k : live_edges) {
    if (!cand_edges.contains(k)) ++edges_removed;
  }

  double live_total = 0.0;
  double cand_total = 0.0;
  for (const auto& p : live_rete.productions) live_total += p.match_cost;
  for (const auto& p : cand_rete.productions) cand_total += p.match_cost;

  const auto put_names = [&s](const char* key, const std::vector<std::string>& v) {
    obs::json::Array a;
    a.reserve(v.size());
    for (const auto& n : v) a.emplace_back(n);
    s.details.emplace_back(key, obs::json::Value(std::move(a)));
  };
  put_names("added", added);
  put_names("removed", removed);
  put_names("modified", modified);
  s.details.emplace_back("classes_removed", obs::json::Value(classes_removed));
  s.details.emplace_back("classes_changed", obs::json::Value(classes_changed));
  s.details.emplace_back("alpha_nodes_live", obs::json::Value(live_rete.alpha_nodes));
  s.details.emplace_back("alpha_nodes_candidate",
                         obs::json::Value(cand_rete.alpha_nodes));
  s.details.emplace_back("join_nodes_live", obs::json::Value(live_rete.join_nodes));
  s.details.emplace_back("join_nodes_candidate",
                         obs::json::Value(cand_rete.join_nodes));
  s.details.emplace_back("alpha_sharing_live",
                         obs::json::Value(round6(live_rete.alpha_sharing())));
  s.details.emplace_back("alpha_sharing_candidate",
                         obs::json::Value(round6(cand_rete.alpha_sharing())));
  s.details.emplace_back("join_sharing_live",
                         obs::json::Value(round6(live_rete.join_sharing())));
  s.details.emplace_back("join_sharing_candidate",
                         obs::json::Value(round6(cand_rete.join_sharing())));
  s.details.emplace_back("edges_added", obs::json::Value(edges_added));
  s.details.emplace_back("edges_removed", obs::json::Value(edges_removed));
  s.details.emplace_back("total_cost_live", obs::json::Value(round6(live_total)));
  s.details.emplace_back("total_cost_candidate",
                         obs::json::Value(round6(cand_total)));
  finalize_section(s, options);
  return s;
}

}  // namespace

// ---------------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------------

namespace {

void render_expr(const Program& program, const ops5::Expr& e, std::string& out);

void render_value(const Program& program, const Value& v, std::string& out) {
  out += v.to_string(program.symbols());
}

void render_expr(const Program& program, const ops5::Expr& e, std::string& out) {
  if (const auto* v = std::get_if<Value>(&e.node)) {
    render_value(program, *v, out);
  } else if (const auto* var = std::get_if<ops5::VarRef>(&e.node)) {
    out += '<';
    out += program.variable_name(var->var);
    out += '>';
  } else if (const auto* call = std::get_if<ops5::CallExpr>(&e.node)) {
    out += '(';
    out += program.symbols().name(call->function);
    for (const auto& a : call->args) {
      out += ' ';
      render_expr(program, a, out);
    }
    out += ')';
  }
}

void render_sets(const Program& program, ClassIndex cls,
                 const std::vector<std::pair<SlotIndex, ops5::Expr>>& sets,
                 std::string& out) {
  for (const auto& [slot, expr] : sets) {
    out += " ^";
    out += attr_name(program, cls, slot);
    out += '=';
    render_expr(program, expr, out);
  }
}

/// Class of the 1-based matchable (positive) CE `index`, or nullopt.
[[nodiscard]] std::optional<ClassIndex> positive_ce_class(
    const Production& production, std::uint32_t index) {
  std::uint32_t seen = 0;
  for (const auto& ce : production.lhs()) {
    if (ce.negated) continue;
    if (++seen == index) return ce.cls;
  }
  return std::nullopt;
}

}  // namespace

std::string production_fingerprint(const Program& program,
                                   const Production& production) {
  std::string out;
  for (const auto& ce : production.lhs()) {
    if (ce.negated) out += '-';
    out += program.symbols().name(ce.class_name);
    out += '(';
    bool first = true;
    for (const auto& t : ce.tests) {
      if (!first) out += ' ';
      first = false;
      out += '^';
      out += attr_name(program, ce.cls, t.slot);
      out += predicate_name(t.pred);
      if (t.is_disjunction()) {
        out += "<<";
        for (const auto& v : t.disjunction) {
          out += ' ';
          render_value(program, v, out);
        }
        out += " >>";
      } else if (t.is_variable) {
        out += '<';
        out += program.variable_name(t.var);
        out += '>';
      } else {
        render_value(program, t.constant, out);
      }
    }
    out += ')';
  }
  out += "-->";
  for (const auto& action : production.rhs()) {
    if (const auto* mk = std::get_if<ops5::MakeAction>(&action)) {
      out += "(make ";
      out += class_name(program, mk->cls);
      render_sets(program, mk->cls, mk->sets, out);
      out += ')';
    } else if (const auto* mod = std::get_if<ops5::ModifyAction>(&action)) {
      out += "(modify ";
      out += std::to_string(mod->ce_index);
      if (const auto cls = positive_ce_class(production, mod->ce_index)) {
        render_sets(program, *cls, mod->sets, out);
      }
      out += ')';
    } else if (const auto* rm = std::get_if<ops5::RemoveAction>(&action)) {
      out += "(remove ";
      out += std::to_string(rm->ce_index);
      out += ')';
    } else if (const auto* bind = std::get_if<ops5::BindAction>(&action)) {
      out += "(bind <";
      out += program.variable_name(bind->var);
      out += "> ";
      render_expr(program, bind->expr, out);
      out += ')';
    } else if (const auto* wr = std::get_if<ops5::WriteAction>(&action)) {
      out += "(write";
      for (const auto& e : wr->exprs) {
        out += ' ';
        render_expr(program, e, out);
      }
      out += ')';
    } else if (std::get_if<ops5::HaltAction>(&action) != nullptr) {
      out += "(halt)";
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Spec rebinding
// ---------------------------------------------------------------------------

namespace {

struct Rebinder {
  const Program& src;
  const Program& dst;
  std::string error;

  [[nodiscard]] std::optional<ClassIndex> map_class(ClassIndex cls) {
    const std::string name = class_name(src, cls);
    if (const auto sym = dst.symbols().find(name)) {
      if (const auto idx = dst.class_index(*sym)) return idx;
    }
    error = "class '" + name + "' does not exist in the candidate";
    return std::nullopt;
  }

  [[nodiscard]] std::optional<SlotIndex> map_slot(ClassIndex src_cls,
                                                  ClassIndex dst_cls,
                                                  SlotIndex slot) {
    const auto attrs = src.wme_class(src_cls).attributes();
    if (slot >= attrs.size()) {
      error = "slot " + std::to_string(slot) + " out of range for class '" +
              class_name(src, src_cls) + "'";
      return std::nullopt;
    }
    const std::string name = src.symbols().name(attrs[slot]);
    if (const auto sym = dst.symbols().find(name)) {
      const SlotIndex mapped = dst.wme_class(dst_cls).slot_of(*sym);
      if (mapped != ops5::kInvalidSlot) return mapped;
    }
    error = "attribute '^" + name + "' of class '" + class_name(src, src_cls) +
            "' does not exist in the candidate";
    return std::nullopt;
  }

  [[nodiscard]] std::optional<Value> map_value(const Value& v) {
    if (!v.is_symbol()) return v;
    const std::string name = src.symbols().name(v.symbol());
    if (const auto sym = dst.symbols().find(name)) return Value(*sym);
    error = "symbol '" + name + "' does not exist in the candidate";
    return std::nullopt;
  }

  [[nodiscard]] std::optional<AbstractVal> map_abstract(const AbstractVal& a) {
    if (!a.is_finite()) return a;
    std::vector<Value> values;
    values.reserve(a.values().size());
    for (const auto& v : a.values()) {
      const auto mapped = map_value(v);
      if (!mapped.has_value()) return std::nullopt;
      values.push_back(*mapped);
    }
    return AbstractVal::finite(std::move(values));
  }
};

}  // namespace

std::optional<DecompositionSpec> rebind_spec(
    const DecompositionSpec& spec, std::shared_ptr<const Program> target,
    std::string* error) {
  const auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  if (spec.program == nullptr || target == nullptr) {
    return fail("missing program");
  }
  Rebinder rb{*spec.program, *target, {}};

  DecompositionSpec out;
  out.program = std::move(target);
  out.pure_externals = spec.pure_externals;
  out.tasks.reserve(spec.tasks.size());

  for (const ClassIndex cls : spec.base_classes) {
    const auto mapped = rb.map_class(cls);
    if (!mapped.has_value()) return fail(rb.error);
    out.base_classes.push_back(*mapped);
  }
  for (const ClassIndex cls : spec.scratch_classes) {
    const auto mapped = rb.map_class(cls);
    if (!mapped.has_value()) return fail(rb.error);
    out.scratch_classes.push_back(*mapped);
  }
  for (const ResultClassSpec& rc : spec.result_classes) {
    ResultClassSpec mapped_rc;
    const auto cls = rb.map_class(rc.cls);
    if (!cls.has_value()) return fail(rb.error);
    mapped_rc.cls = *cls;
    for (const SlotIndex slot : rc.key_slots) {
      const auto mapped = rb.map_slot(rc.cls, *cls, slot);
      if (!mapped.has_value()) return fail(rb.error);
      mapped_rc.key_slots.push_back(*mapped);
    }
    out.result_classes.push_back(std::move(mapped_rc));
  }
  for (const DataFact& fact : spec.facts) {
    DataFact mapped_fact;
    const auto cls = rb.map_class(fact.cls);
    if (!cls.has_value()) return fail(rb.error);
    mapped_fact.cls = *cls;
    const auto guard = rb.map_slot(fact.cls, *cls, fact.guard_slot);
    if (!guard.has_value()) return fail(rb.error);
    mapped_fact.guard_slot = *guard;
    const auto guard_value = rb.map_value(fact.guard_value);
    if (!guard_value.has_value()) return fail(rb.error);
    mapped_fact.guard_value = *guard_value;
    for (const auto& [slot, aval] : fact.implied) {
      const auto mapped_slot = rb.map_slot(fact.cls, *cls, slot);
      if (!mapped_slot.has_value()) return fail(rb.error);
      const auto mapped_aval = rb.map_abstract(aval);
      if (!mapped_aval.has_value()) return fail(rb.error);
      mapped_fact.implied.emplace_back(*mapped_slot, *mapped_aval);
    }
    out.facts.push_back(std::move(mapped_fact));
  }
  for (const TaskSpec& task : spec.tasks) {
    TaskSpec mapped_task;
    mapped_task.task_id = task.task_id;
    mapped_task.label = task.label;
    for (const TaskWmeSpec& wme : task.wmes) {
      TaskWmeSpec mapped_wme;
      const auto cls = rb.map_class(wme.cls);
      if (!cls.has_value()) return fail(rb.error);
      mapped_wme.cls = *cls;
      for (const auto& [slot, value] : wme.slots) {
        const auto mapped_slot = rb.map_slot(wme.cls, *cls, slot);
        if (!mapped_slot.has_value()) return fail(rb.error);
        const auto mapped_value = rb.map_value(value);
        if (!mapped_value.has_value()) return fail(rb.error);
        mapped_wme.slots.emplace_back(*mapped_slot, *mapped_value);
      }
      mapped_task.wmes.push_back(std::move(mapped_wme));
    }
    out.tasks.push_back(std::move(mapped_task));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Verdict
// ---------------------------------------------------------------------------

std::string_view admission_decision_name(AdmissionDecision d) noexcept {
  switch (d) {
    case AdmissionDecision::Pass: return "pass";
    case AdmissionDecision::Warn: return "warn";
    case AdmissionDecision::Reject: return "reject";
  }
  return "unknown";
}

std::size_t AdmissionVerdict::errors() const noexcept {
  std::size_t n = 0;
  for (const auto& s : sections) n += s.errors;
  return n;
}

std::size_t AdmissionVerdict::warnings() const noexcept {
  std::size_t n = 0;
  for (const auto& s : sections) n += s.warnings;
  return n;
}

obs::json::Value AdmissionVerdict::to_json() const {
  using obs::json::Array;
  using obs::json::Object;
  using obs::json::Value;

  Array sections_json;
  for (const auto& s : sections) {
    Array findings_json;
    for (const auto& f : s.findings) {
      findings_json.push_back(Value(Object{{"code", Value(f.code)},
                                           {"severity", Value(f.severity)},
                                           {"production", Value(f.production)},
                                           {"message", Value(f.message)}}));
    }
    sections_json.push_back(Value(
        Object{{"analyzer", Value(s.analyzer)},
               {"decision", Value(admission_decision_name(s.decision))},
               {"errors", Value(s.errors)},
               {"warnings", Value(s.warnings)},
               {"findings", Value(std::move(findings_json))},
               {"details", Value(s.details)}}));
  }
  return Value(Object{{"schema", Value(kSchema)},
                      {"live", Value(live)},
                      {"candidate", Value(candidate)},
                      {"decision", Value(admission_decision_name(decision))},
                      {"errors", Value(errors())},
                      {"warnings", Value(warnings())},
                      {"sections", Value(std::move(sections_json))}});
}

// ---------------------------------------------------------------------------
// Pipeline
// ---------------------------------------------------------------------------

AdmissionVerdict AnalysisPipeline::admit(const PackInput* live,
                                         const PackInput& candidate) const {
  if (candidate.program == nullptr || !candidate.program->frozen()) {
    throw std::invalid_argument("admission requires a frozen candidate program");
  }
  if (live != nullptr && (live->program == nullptr || !live->program->frozen())) {
    throw std::invalid_argument("admission requires a frozen live program");
  }

  AdmissionVerdict verdict;
  verdict.candidate = label_of(candidate);
  if (live != nullptr) verdict.live = label_of(*live);

  verdict.sections.push_back(lint_section(candidate, options_));
  const ReteStaticReport cand_rete = analyze_rete(*candidate.program, options_.rete);
  verdict.sections.push_back(rete_section(cand_rete, options_));
  verdict.sections.push_back(value_domains_section(candidate, options_));
  if (live != nullptr) {
    const ReteStaticReport live_rete = analyze_rete(*live->program, options_.rete);
    verdict.sections.push_back(interference_section(*live, candidate, options_));
    verdict.sections.push_back(
        diff_section(*live, candidate, live_rete, cand_rete, options_));
  }

  for (const auto& s : verdict.sections) {
    verdict.decision = std::max(verdict.decision, s.decision);
  }
  return verdict;
}

}  // namespace psmsys::analysis
