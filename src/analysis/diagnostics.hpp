#pragma once

// Diagnostic model of the static analysis layer: stable codes, severities,
// and source locations. Codes are append-only wire format (`AN001`...):
// tests and tooling match on them, so existing numbers never change meaning.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ops5/production.hpp"

namespace psmsys::analysis {

enum class Severity : std::uint8_t { Note, Warning, Error };

[[nodiscard]] std::string_view severity_name(Severity s) noexcept;

enum class Code : std::uint16_t {
  UnboundRhsVariable = 1,      ///< AN001: RHS references a variable no positive CE binds
  UnusedBinding = 2,           ///< AN002: variable bound in a positive CE, used nowhere else
  UnreachableProduction = 3,   ///< AN003: positive CE class has no producer and is not seeded
  ContradictoryTests = 4,      ///< AN004: attribute tests within one CE can never all hold
  ModifyTargetsNegatedCe = 5,  ///< AN005: modify/remove index lands on a negated LHS element
  NonEqualityFirstUse = 6,     ///< AN006: variable's first occurrence uses a non-= predicate
  DuplicateAttributeSet = 7,   ///< AN007: same attribute assigned twice in one make/modify
  DeadProduction = 8,          ///< AN008: nothing it writes is consumed or output
  UnproducibleClass = 9,       ///< AN009: positive CE class transitively unproducible from seeds
  // Cross-version pack-diff rules (analysis/admission.hpp): findings about a
  // candidate rule pack RELATIVE to the live pack it would replace.
  CostRegression = 10,         ///< AN010: static match cost / beta growth regressed past bound
  NewInterferenceEdge = 11,    ///< AN011: candidate adds a task-interference conflict
  CertificateInvalidation = 12,///< AN012: live independence certificate no longer holds
  OutputSchemaChange = 13,     ///< AN013: result/output class removed or its layout changed
  // Value-domain rules (analysis/value_domain.hpp): findings proved against
  // the whole-rule-base abstract interpretation of attribute value domains.
  AttributeTypeMismatch = 14,  ///< AN014: test constant's type can never occur in the slot
  AlwaysFalseCondition = 15,   ///< AN015: test is value-disjoint with the inferred domain
  InfeasibleJoin = 16,         ///< AN016: binding-variable domains disjoint across CEs
  DeadWriteModify = 17,        ///< AN017: modify writes values no CE of the class can match
};

/// Count of defined codes; codes are 1..kCodeCount with no gaps (append-only).
inline constexpr std::uint16_t kCodeCount = 17;

/// "AN001" etc.
[[nodiscard]] std::string code_name(Code c);

[[nodiscard]] Severity default_severity(Code c) noexcept;

/// One-line rule description, the single source for `spam_lint --list-rules`
/// and its pinning test: a new Code without a description fails both.
[[nodiscard]] std::string_view code_description(Code c) noexcept;

struct Diagnostic {
  Code code = Code::UnboundRhsVariable;
  Severity severity = Severity::Error;
  ops5::Symbol production = ops5::kNilSymbol;  ///< kNilSymbol = program-level finding
  ops5::SourceLoc loc;
  std::string message;
};

/// One-line rendering: "AN001 error p-name:3:4: message".
[[nodiscard]] std::string format_diagnostic(const ops5::Program& program, const Diagnostic& d);

[[nodiscard]] std::size_t count_errors(const std::vector<Diagnostic>& diagnostics) noexcept;

}  // namespace psmsys::analysis
