#pragma once

// Static task-interference analysis — a machine-checked version of the
// paper's Section 5.1 independence claim ("tasks are independent OPS5 runs").
//
// A decomposition is described by a DecompositionSpec: the rule base, a
// classification of its WME classes (base = seeded read-only input; result =
// what the control process merges, with the key slots that give merged WMEs
// their identity; scratch = process-local intermediates that are never
// merged), per-class data facts mined from the actual scene, and the task
// WMEs each task injects.
//
// The checker abstractly interprets every production once globally (joining
// all task injections — the "any colocation" worst case, since task
// processes execute many tasks against one engine and WMEs persist between
// tasks) and once per task. Abstract values are finite value sets refined by
// constant tests, variable bindings, and data facts; binding sites on
// task-written classes use the *global* invariant, so cross-task leakage on
// a shared process is modeled, not assumed away. It then reports:
//
//   * write-write conflicts: two tasks can create/modify/remove result WMEs
//     whose key slots are not provably disjoint — the merge could see
//     schedule-dependent results;
//   * read-write conflicts: a production that writes results in task A
//     matches (positively or via a negation) WMEs another task writes — the
//     result content could depend on colocation.
//
// Guarded idempotent makes are forgiven: a make whose written class also
// appears as a negated CE keyed by the written slots produces at most one
// WME per key with content that is a pure function of the key (given
// pure_externals), so it is confluent across schedules.
//
// Independence is exactly the property that makes PR 1's per-attempt
// undo-log rollback sufficient for retry determinism: if no task reads
// another's writes, a rolled-back-and-retried task recomputes the same
// result WMEs on any process (DESIGN.md "Static analysis").

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ops5/production.hpp"

namespace psmsys::analysis {

// ---------------------------------------------------------------------------
// Abstract values
// ---------------------------------------------------------------------------

/// Over-approximation of the OPS5 values a slot or variable may hold:
/// Bottom (provably none — kills unsatisfiable productions), a finite value
/// set, or Top. Finite sets larger than kMaxFinite widen to Top.
class AbstractVal {
 public:
  enum class Kind : std::uint8_t { Bottom, Finite, Top };

  static constexpr std::size_t kMaxFinite = 4096;

  AbstractVal() : kind_(Kind::Top) {}

  [[nodiscard]] static AbstractVal top() { return AbstractVal(); }
  [[nodiscard]] static AbstractVal bottom();
  [[nodiscard]] static AbstractVal of(const ops5::Value& v);
  [[nodiscard]] static AbstractVal finite(std::vector<ops5::Value> values);

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_top() const noexcept { return kind_ == Kind::Top; }
  [[nodiscard]] bool is_bottom() const noexcept { return kind_ == Kind::Bottom; }
  [[nodiscard]] bool is_finite() const noexcept { return kind_ == Kind::Finite; }
  [[nodiscard]] const std::vector<ops5::Value>& values() const noexcept { return values_; }
  [[nodiscard]] std::optional<ops5::Value> singleton() const;
  [[nodiscard]] bool contains(const ops5::Value& v) const;

  [[nodiscard]] AbstractVal join(const AbstractVal& o) const;
  [[nodiscard]] AbstractVal meet(const AbstractVal& o) const;

  /// True when the two can share no concrete value (either is Bottom, or
  /// both are finite with empty intersection).
  [[nodiscard]] bool provably_disjoint(const AbstractVal& o) const;

  [[nodiscard]] bool operator==(const AbstractVal& o) const;

  [[nodiscard]] std::string to_string(const ops5::SymbolTable& symbols) const;

 private:
  Kind kind_;
  std::vector<ops5::Value> values_;  ///< sorted set when Finite
};

// ---------------------------------------------------------------------------
// Decomposition specification
// ---------------------------------------------------------------------------

/// One WME a task injects (unlisted slots are nil, as Engine::make_wme).
struct TaskWmeSpec {
  ops5::ClassIndex cls = 0;
  std::vector<std::pair<ops5::SlotIndex, ops5::Value>> slots;
};

struct TaskSpec {
  std::uint64_t task_id = 0;
  std::string label;
  std::vector<TaskWmeSpec> wmes;
};

/// A class the control process merges from task working memories. The key
/// slots give a merged WME its identity (what extract_* dedups/compares on).
struct ResultClassSpec {
  ops5::ClassIndex cls = 0;
  std::vector<ops5::SlotIndex> key_slots;
};

/// Scene-derived invariant: every WME of `cls` whose `guard_slot` equals
/// `guard_value` has each `implied` slot inside the given set. Example:
/// "regions with ^texture mixed have ^id in {7, 19, 44}".
struct DataFact {
  ops5::ClassIndex cls = 0;
  ops5::SlotIndex guard_slot = 0;
  ops5::Value guard_value;
  std::vector<std::pair<ops5::SlotIndex, AbstractVal>> implied;
};

struct DecompositionSpec {
  std::shared_ptr<const ops5::Program> program;
  std::vector<ops5::ClassIndex> base_classes;
  std::vector<ResultClassSpec> result_classes;
  std::vector<ops5::ClassIndex> scratch_classes;
  std::vector<DataFact> facts;
  std::vector<TaskSpec> tasks;
  /// Documented assumption: external functions are pure (SPAM's geometry
  /// externals are functions of the immutable scene + their arguments).
  bool pure_externals = true;

  [[nodiscard]] bool empty() const noexcept { return program == nullptr || tasks.empty(); }
};

// ---------------------------------------------------------------------------
// Interference report
// ---------------------------------------------------------------------------

enum class ConflictKind : std::uint8_t { WriteWrite, ReadWrite, RemoveWrite };

[[nodiscard]] std::string_view conflict_kind_name(ConflictKind k) noexcept;

struct Conflict {
  ConflictKind kind = ConflictKind::WriteWrite;
  ops5::ClassIndex cls = 0;
  std::uint64_t task_a = 0;
  std::uint64_t task_b = 0;
  ops5::Symbol production_a = ops5::kNilSymbol;  ///< kNilSymbol = task injection
  ops5::Symbol production_b = ops5::kNilSymbol;
  std::string detail;
};

struct TaskFootprintSummary {
  std::uint64_t task_id = 0;
  std::size_t activatable_productions = 0;
  std::size_t result_writes = 0;
  std::size_t tracked_reads = 0;
};

struct InterferenceReport {
  std::vector<Conflict> conflicts;
  bool conflicts_truncated = false;  ///< stopped collecting after kMaxConflicts
  std::vector<TaskFootprintSummary> tasks;
  std::size_t pairs_checked = 0;

  static constexpr std::size_t kMaxConflicts = 64;

  [[nodiscard]] bool independent() const noexcept { return conflicts.empty(); }
  [[nodiscard]] std::string summary(const ops5::Program& program) const;
};

/// Check a decomposition for task interference. Sound over-approximation:
/// an `independent()` report certifies that merged results are identical
/// for every assignment of tasks to processes; a conflict is a *possible*
/// interference, pinpointed to the productions involved.
[[nodiscard]] InterferenceReport check_interference(const DecompositionSpec& spec);

}  // namespace psmsys::analysis
