#include "analysis/rete_static.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <stdexcept>
#include <utility>

#include "analysis/footprint.hpp"
#include "util/counters.hpp"

namespace psmsys::analysis {

namespace {

using ops5::ClassIndex;
using ops5::Production;
using ops5::Program;
using rete::NetworkTopology;

/// The analyzer compiles throwaway networks: nothing listens, nothing is
/// charged to a caller-visible counter.
struct NullListener final : rete::MatchListener {
  void on_activate(const Production&, std::span<const ops5::Wme* const>) override {}
  void on_deactivate(const Production&, std::span<const ops5::Wme* const>) override {}
};

// --- selectivity estimates (DESIGN.md section 13) --------------------------
//
// Textbook per-test guesses, not measurements: an equality test against a
// constant keeps ~1/4 of WMEs, ordering/intra-CE/disjunction tests ~1/2.
// Joins keep ~1/4 of pairs per consistency test, 1.0 when unconstrained
// (cross product). Floors keep long chains from underflowing to "free".

constexpr double kConstSel = 0.25;
constexpr double kOtherSel = 0.5;
constexpr double kJoinSel = 0.25;
constexpr double kAlphaSelFloor = 1.0 / 256.0;
constexpr double kJoinSelFloor = 1.0 / 64.0;
constexpr double kLeftFloor = 1.0 / 16.0;

[[nodiscard]] double alpha_selectivity(const NetworkTopology::AlphaNode& a) {
  const double s = std::pow(kConstSel, a.const_tests) *
                   std::pow(kOtherSel, a.intra_tests + a.disj_tests);
  return std::max(s, kAlphaSelFloor);
}

[[nodiscard]] double join_selectivity(const NetworkTopology::JoinNode& j) {
  if (j.tests == 0) return 1.0;
  return std::max(std::pow(kJoinSel, j.tests), kJoinSelFloor);
}

[[nodiscard]] std::uint32_t alpha_tests(const NetworkTopology::AlphaNode& a) noexcept {
  return a.const_tests + a.intra_tests + a.disj_tests;
}

/// Mirror of the condition-count heuristic in rete/parallel.cpp
/// (production_weight): the PR 4 default the analyzer is judged against.
[[nodiscard]] std::uint64_t heuristic_weight(const Production& p) {
  std::uint64_t w = 1;
  for (const auto& ce : p.lhs()) w += 2 + ce.tests.size();
  return w;
}

/// Class fan-in: 1 (external seeding is always possible) + RHS write sites
/// across the rule base. A modify counts twice — it is a remove + add in
/// Rete traffic terms.
[[nodiscard]] std::vector<double> class_traffic(const Program& program,
                                                const std::vector<ProductionFootprint>& fps) {
  std::vector<double> traffic(program.class_count(), 1.0);
  for (const auto& fp : fps) {
    for (const auto& access : fp.accesses) {
      if (!is_write(access.kind)) continue;
      traffic[access.cls] += access.kind == AccessKind::Modify ? 2.0 : 1.0;
    }
  }
  return traffic;
}

[[nodiscard]] std::string class_name(const Program& program, ClassIndex cls) {
  return std::string(program.symbols().name(program.wme_class(cls).name()));
}

/// Round to 6 significant decimal digits so the JSON stays readable and the
/// golden file is insensitive to refactors that only reassociate arithmetic.
[[nodiscard]] double rounded(double v) {
  if (v == 0.0) return 0.0;
  const double mag = std::pow(10.0, 5 - std::floor(std::log10(std::fabs(v))));
  return std::round(v * mag) / mag;
}

struct CostResult {
  double cost = 1.0;
  std::uint32_t degree = 0;
  double peak_left = 1.0;
};

/// Static match-cost estimate for one production: walk its beta chain,
/// charging alpha tests and join probes weighted by class activity (dampened
/// fan-in) and by the estimated left-memory population at each join.
[[nodiscard]] CostResult production_cost(const NetworkTopology& topo,
                                         const NetworkTopology::ProductionPath& path,
                                         const std::vector<double>& activity,
                                         double nominal_wm) {
  CostResult r;
  double left = 1.0;  // estimated tokens in the current left memory
  for (const std::uint32_t node : path.nodes) {
    const auto& j = topo.joins[node];
    const auto& a = topo.alphas[j.alpha];
    const double act = activity[a.cls];
    // Alpha cost: every WME of the class runs the pattern's tests. The
    // 2 + tests base matches the heuristic so activity == 1 recovers it.
    r.cost += act * (2.0 + alpha_tests(a));
    // Right activation: a passing WME probes the left memory — all of it
    // when unindexed, one hash bucket (est. quarter) when indexed.
    const double probes = j.indexed ? 1.0 + kJoinSel * left : std::max(1.0, left);
    r.cost += act * probes * (1.0 + j.tests);
    if (!j.negated) {
      ++r.degree;
      const double amem = nominal_wm * alpha_selectivity(a);
      left = std::max(left * amem * join_selectivity(j), kLeftFloor);
      r.peak_left = std::max(r.peak_left, left);
    }
  }
  return r;
}

[[nodiscard]] std::vector<double> activity_of(const std::vector<double>& traffic,
                                              double fanin_exponent) {
  std::vector<double> activity(traffic.size(), 1.0);
  for (std::size_t i = 0; i < traffic.size(); ++i) {
    activity[i] = std::pow(traffic[i], fanin_exponent);
  }
  return activity;
}

}  // namespace

double ReteStaticReport::alpha_sharing() const noexcept {
  if (alpha_nodes == 0 || alpha_nodes_unshared == 0) return 0.0;
  return static_cast<double>(alpha_nodes_unshared) / static_cast<double>(alpha_nodes);
}

double ReteStaticReport::join_sharing() const noexcept {
  if (join_nodes == 0 || join_nodes_unshared == 0) return 0.0;
  return static_cast<double>(join_nodes_unshared) / static_cast<double>(join_nodes);
}

std::vector<double> ReteStaticReport::cost_vector() const {
  std::uint32_t max_id = 0;
  for (const auto& p : productions) max_id = std::max(max_id, p.id);
  std::vector<double> costs(productions.empty() ? 0 : max_id + 1, 0.0);
  for (const auto& p : productions) costs[p.id] = p.match_cost;
  return costs;
}

void ReteStaticReport::calibrate(const rete::NetworkTopology& topo,
                                 std::span<const std::uint64_t> alpha_activations,
                                 std::span<const std::uint64_t> join_activations) {
  calibration.clear();
  calibration.reserve(productions.size());
  const auto act = [](std::span<const std::uint64_t> v, std::size_t i) {
    return i < v.size() ? static_cast<double>(v[i]) : 0.0;
  };
  double static_total = 0.0;
  double measured_total = 0.0;
  for (const auto& p : productions) {
    CalibrationRow row;
    row.id = p.id;
    row.name = p.name;
    row.static_cost = p.match_cost;
    for (const auto& path : topo.productions) {
      if (path.production != p.id) continue;
      for (const std::uint32_t node : path.nodes) {
        row.measured += act(join_activations, node);
        if (node < topo.joins.size()) {
          row.measured += act(alpha_activations, topo.joins[node].alpha);
        }
      }
    }
    static_total += row.static_cost;
    measured_total += row.measured;
    calibration.push_back(std::move(row));
  }
  for (auto& row : calibration) {
    if (static_total > 0.0) row.static_share = row.static_cost / static_total;
    if (measured_total > 0.0) row.measured_share = row.measured / measured_total;
  }
}

double ReteStaticReport::calibration_correlation() const noexcept {
  const std::size_t n = calibration.size();
  if (n < 2) return 0.0;
  double mx = 0.0;
  double my = 0.0;
  for (const auto& r : calibration) {
    mx += r.static_share;
    my += r.measured_share;
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (const auto& r : calibration) {
    const double dx = r.static_share - mx;
    const double dy = r.measured_share - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

obs::json::Value ReteStaticReport::to_json() const {
  using obs::json::Array;
  using obs::json::Object;
  using obs::json::Value;

  Array alphas_json;
  for (const auto& a : alphas) {
    alphas_json.push_back(Value(Object{{"id", Value(a.id)},
                                       {"class", Value(a.cls)},
                                       {"tests", Value(a.tests)},
                                       {"users", Value(a.users)},
                                       {"selectivity", Value(rounded(a.selectivity))},
                                       {"traffic", Value(a.traffic)}}));
  }
  Array joins_json;
  for (const auto& j : joins) {
    joins_json.push_back(Value(Object{{"id", Value(j.id)},
                                      {"alpha", Value(j.alpha)},
                                      {"depth", Value(j.depth)},
                                      {"tests", Value(j.tests)},
                                      {"indexed", Value(j.indexed)},
                                      {"negated", Value(j.negated)},
                                      {"users", Value(j.users)},
                                      {"selectivity", Value(rounded(j.selectivity))},
                                      {"left_bound", Value(rounded(j.left_bound))}}));
  }
  Array costs_json;
  for (const auto& p : productions) {
    costs_json.push_back(Value(Object{{"id", Value(p.id)},
                                      {"name", Value(p.name)},
                                      {"cost", Value(rounded(p.match_cost))},
                                      {"heuristic", Value(p.heuristic_cost)},
                                      {"beta_degree", Value(p.beta_degree)},
                                      {"beta_bound", Value(rounded(p.beta_bound))}}));
  }
  Array edges_json;
  for (const auto& e : edges) {
    edges_json.push_back(Value(Object{{"from", Value(e.from)},
                                      {"to", Value(e.to)},
                                      {"class", Value(e.class_name)},
                                      {"negated", Value(e.negated)}}));
  }

  Object out{{"schema", Value("rete-static-v1")},
             {"program", Value(program)},
             {"productions", Value(production_count)},
             {"alpha_nodes", Value(alpha_nodes)},
             {"alpha_nodes_unshared", Value(alpha_nodes_unshared)},
             {"join_nodes", Value(join_nodes)},
             {"join_nodes_unshared", Value(join_nodes_unshared)},
             {"beta_memories", Value(beta_memories)},
             {"alpha_sharing", Value(rounded(alpha_sharing()))},
             {"join_sharing", Value(rounded(join_sharing()))},
             {"nominal_wm", Value(nominal_wm)},
             {"fanin_exponent", Value(fanin_exponent)},
             {"alphas", Value(std::move(alphas_json))},
             {"joins", Value(std::move(joins_json))},
             {"costs", Value(std::move(costs_json))},
             {"edges", Value(std::move(edges_json))}};
  if (!calibration.empty()) {
    Array cal_json;
    for (const auto& r : calibration) {
      cal_json.push_back(
          Value(Object{{"id", Value(r.id)},
                       {"name", Value(r.name)},
                       {"static_cost", Value(rounded(r.static_cost))},
                       {"measured", Value(rounded(r.measured))},
                       {"static_share", Value(rounded(r.static_share))},
                       {"measured_share", Value(rounded(r.measured_share))}}));
    }
    out.emplace_back("calibration", Value(std::move(cal_json)));
    out.emplace_back("calibration_correlation",
                     Value(rounded(calibration_correlation())));
  }
  if (specialization.has_value()) {
    out.emplace_back("specialization", *specialization);
  }
  return Value(std::move(out));
}

std::vector<DependencyEdge> dependency_edges(const Program& program) {
  const auto fps = program_footprints(program);

  struct Reader {
    std::uint32_t production;
    bool negated;
  };
  std::vector<std::vector<Reader>> readers(program.class_count());
  for (const auto& fp : fps) {
    for (const auto& access : fp.accesses) {
      if (access.kind == AccessKind::Read) {
        readers[access.cls].push_back({fp.production->id(), false});
      } else if (access.kind == AccessKind::NegatedRead) {
        readers[access.cls].push_back({fp.production->id(), true});
      }
    }
  }

  std::vector<DependencyEdge> edges;
  for (const auto& fp : fps) {
    std::vector<ClassIndex> written;
    for (const auto& access : fp.accesses) {
      if (is_write(access.kind)) written.push_back(access.cls);
    }
    std::sort(written.begin(), written.end());
    written.erase(std::unique(written.begin(), written.end()), written.end());
    for (const ClassIndex cls : written) {
      for (const Reader& r : readers[cls]) {
        DependencyEdge e;
        e.from = fp.production->id();
        e.to = r.production;
        e.cls = cls;
        e.class_name = class_name(program, cls);
        e.negated = r.negated;
        edges.push_back(std::move(e));
      }
    }
  }
  std::sort(edges.begin(), edges.end(), [](const DependencyEdge& a, const DependencyEdge& b) {
    if (a.from != b.from) return a.from < b.from;
    if (a.to != b.to) return a.to < b.to;
    if (a.cls != b.cls) return a.cls < b.cls;
    return a.negated < b.negated;
  });
  edges.erase(std::unique(edges.begin(), edges.end(),
                          [](const DependencyEdge& a, const DependencyEdge& b) {
                            return a.from == b.from && a.to == b.to && a.cls == b.cls &&
                                   a.negated == b.negated;
                          }),
              edges.end());
  return edges;
}

ReteStaticReport analyze_rete(const Program& program, const ReteStaticOptions& options) {
  if (!program.frozen()) throw std::invalid_argument("analyze_rete requires a frozen Program");
  if (!options.network.production_filter.empty()) {
    throw std::invalid_argument("analyze_rete analyzes the whole rule base: no filter");
  }

  NullListener listener;
  util::WorkCounters scratch;
  rete::NetworkOptions net = options.network;
  net.record_chunks = false;

  // Value-domain specialization: derive the proof-carrying plan first, and
  // compile the analyzed network with it only if the certificate re-verifies.
  std::optional<obs::json::Value> specialization;
  if (options.specialize) {
    const ValueDomainReport vd = analyze_value_domains(program, options.value_domains);
    const auto violations = verify_specialization(program, options.value_domains, vd);
    const bool verified = violations.empty();
    net.specialize = verified && vd.converged && !vd.plan->empty();
    net.plan = vd.plan;
    obs::json::Value spec = vd.to_json(program);
    spec.set("verified", obs::json::Value(verified));
    spec.set("applied", obs::json::Value(net.specialize));
    obs::json::Array viol_json;
    for (const auto& v : violations) viol_json.emplace_back(v);
    spec.set("violations", obs::json::Value(std::move(viol_json)));
    specialization = std::move(spec);
  }

  const rete::Network network(program, listener, scratch, {}, net);
  const NetworkTopology topo = network.topology();
  const rete::NetworkStats stats = network.stats();

  ReteStaticReport report;
  report.specialization = std::move(specialization);
  report.production_count = program.productions().size();
  report.alpha_nodes = stats.alpha_patterns;
  report.join_nodes = stats.join_nodes + stats.negative_nodes;
  report.beta_memories = stats.beta_memories;
  report.nominal_wm = options.nominal_wm;
  report.fanin_exponent = options.fanin_exponent;

  if (options.compute_unshared) {
    rete::NetworkOptions raw = net;
    raw.node_sharing = false;
    const rete::Network unshared(program, listener, scratch, {}, raw);
    const rete::NetworkStats u = unshared.stats();
    report.alpha_nodes_unshared = u.alpha_patterns;
    report.join_nodes_unshared = u.join_nodes + u.negative_nodes;
  }

  const auto fps = program_footprints(program);
  const auto traffic = class_traffic(program, fps);
  const auto activity = activity_of(traffic, options.fanin_exponent);

  report.alphas.reserve(topo.alphas.size());
  for (const auto& a : topo.alphas) {
    AlphaNodeReport out;
    out.id = a.id;
    out.cls = class_name(program, a.cls);
    out.tests = alpha_tests(a);
    out.users = static_cast<std::uint32_t>(a.users.size());
    out.selectivity = alpha_selectivity(a);
    out.traffic = traffic[a.cls];
    report.alphas.push_back(std::move(out));
  }

  // Per-join left-memory bound: the maximum over the sharing productions of
  // the estimated left population when their chain reaches this node.
  std::vector<double> left_bound(topo.joins.size(), 1.0);
  for (const auto& path : topo.productions) {
    double left = 1.0;
    for (const std::uint32_t node : path.nodes) {
      const auto& j = topo.joins[node];
      left_bound[node] = std::max(left_bound[node], left);
      if (!j.negated) {
        const auto& a = topo.alphas[j.alpha];
        left = std::max(left * options.nominal_wm * alpha_selectivity(a) * join_selectivity(j),
                        kLeftFloor);
      }
    }
  }

  report.joins.reserve(topo.joins.size());
  for (const auto& j : topo.joins) {
    JoinNodeReport out;
    out.id = j.id;
    out.alpha = j.alpha;
    out.depth = j.depth;
    out.tests = j.tests;
    out.indexed = j.indexed;
    out.negated = j.negated;
    out.users = static_cast<std::uint32_t>(j.users.size());
    out.selectivity = join_selectivity(j);
    out.left_bound = left_bound[j.id];
    report.joins.push_back(std::move(out));
  }

  const auto prods = program.productions();
  report.productions.reserve(topo.productions.size());
  for (const auto& path : topo.productions) {
    const CostResult r = production_cost(topo, path, activity, options.nominal_wm);
    ProductionReport out;
    out.id = path.production;
    out.name = std::string(program.symbols().name(prods[path.production].name()));
    out.match_cost = r.cost;
    out.heuristic_cost = heuristic_weight(prods[path.production]);
    out.beta_degree = r.degree;
    out.beta_bound = r.peak_left;
    report.productions.push_back(std::move(out));
  }
  std::sort(report.productions.begin(), report.productions.end(),
            [](const ProductionReport& a, const ProductionReport& b) { return a.id < b.id; });

  report.edges = dependency_edges(program);
  return report;
}

std::vector<double> static_match_costs(const Program& program,
                                       const rete::NetworkOptions& network) {
  NullListener listener;
  util::WorkCounters scratch;
  rete::NetworkOptions net = network;
  net.record_chunks = false;
  net.production_filter.clear();
  const rete::Network compiled(program, listener, scratch, {}, net);
  const NetworkTopology topo = compiled.topology();

  const auto fps = program_footprints(program);
  const ReteStaticOptions defaults;
  const auto activity = activity_of(class_traffic(program, fps), defaults.fanin_exponent);

  std::vector<double> costs(program.productions().size(), 0.0);
  for (const auto& path : topo.productions) {
    costs[path.production] =
        production_cost(topo, path, activity, defaults.nominal_wm).cost;
  }
  return costs;
}

}  // namespace psmsys::analysis
