#include "analysis/diagnostics.hpp"

namespace psmsys::analysis {

std::string_view severity_name(Severity s) noexcept {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "unknown";
}

std::string code_name(Code c) {
  const auto n = static_cast<std::uint16_t>(c);
  std::string out = "AN";
  out += static_cast<char>('0' + n / 100 % 10);
  out += static_cast<char>('0' + n / 10 % 10);
  out += static_cast<char>('0' + n % 10);
  return out;
}

Severity default_severity(Code c) noexcept {
  switch (c) {
    case Code::UnboundRhsVariable: return Severity::Error;
    case Code::UnusedBinding: return Severity::Warning;
    case Code::UnreachableProduction: return Severity::Warning;
    case Code::ContradictoryTests: return Severity::Error;
    case Code::ModifyTargetsNegatedCe: return Severity::Warning;
    case Code::NonEqualityFirstUse: return Severity::Error;
    case Code::DuplicateAttributeSet: return Severity::Warning;
    case Code::DeadProduction: return Severity::Warning;
    case Code::UnproducibleClass: return Severity::Warning;
    case Code::CostRegression: return Severity::Warning;
    case Code::NewInterferenceEdge: return Severity::Error;
    case Code::CertificateInvalidation: return Severity::Error;
    case Code::OutputSchemaChange: return Severity::Error;
  }
  return Severity::Warning;
}

std::string format_diagnostic(const ops5::Program& program, const Diagnostic& d) {
  std::string out = code_name(d.code);
  out += ' ';
  out += severity_name(d.severity);
  out += ' ';
  if (d.production != ops5::kNilSymbol) {
    out += program.symbols().name(d.production);
  } else {
    out += "<program>";
  }
  if (d.loc.known()) {
    out += ':';
    out += std::to_string(d.loc.line);
    out += ':';
    out += std::to_string(d.loc.column);
  }
  out += ": ";
  out += d.message;
  return out;
}

std::size_t count_errors(const std::vector<Diagnostic>& diagnostics) noexcept {
  std::size_t n = 0;
  for (const auto& d : diagnostics) {
    if (d.severity == Severity::Error) ++n;
  }
  return n;
}

}  // namespace psmsys::analysis
