#include "analysis/diagnostics.hpp"

namespace psmsys::analysis {

std::string_view severity_name(Severity s) noexcept {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "unknown";
}

std::string code_name(Code c) {
  const auto n = static_cast<std::uint16_t>(c);
  std::string out = "AN";
  out += static_cast<char>('0' + n / 100 % 10);
  out += static_cast<char>('0' + n / 10 % 10);
  out += static_cast<char>('0' + n % 10);
  return out;
}

Severity default_severity(Code c) noexcept {
  switch (c) {
    case Code::UnboundRhsVariable: return Severity::Error;
    case Code::UnusedBinding: return Severity::Warning;
    case Code::UnreachableProduction: return Severity::Warning;
    case Code::ContradictoryTests: return Severity::Error;
    case Code::ModifyTargetsNegatedCe: return Severity::Warning;
    case Code::NonEqualityFirstUse: return Severity::Error;
    case Code::DuplicateAttributeSet: return Severity::Warning;
    case Code::DeadProduction: return Severity::Warning;
    case Code::UnproducibleClass: return Severity::Warning;
    case Code::CostRegression: return Severity::Warning;
    case Code::NewInterferenceEdge: return Severity::Error;
    case Code::CertificateInvalidation: return Severity::Error;
    case Code::OutputSchemaChange: return Severity::Error;
    case Code::AttributeTypeMismatch: return Severity::Error;
    case Code::AlwaysFalseCondition: return Severity::Warning;
    case Code::InfeasibleJoin: return Severity::Warning;
    case Code::DeadWriteModify: return Severity::Warning;
  }
  return Severity::Warning;
}

std::string_view code_description(Code c) noexcept {
  switch (c) {
    case Code::UnboundRhsVariable:
      return "RHS references a variable no positive CE binds";
    case Code::UnusedBinding:
      return "variable bound in a positive CE but never used";
    case Code::UnreachableProduction:
      return "positive CE class has no producer and is not seeded";
    case Code::ContradictoryTests:
      return "attribute tests within one CE can never all hold";
    case Code::ModifyTargetsNegatedCe:
      return "modify/remove index lands on a negated LHS element";
    case Code::NonEqualityFirstUse:
      return "variable's first occurrence uses a non-equality predicate";
    case Code::DuplicateAttributeSet:
      return "same attribute assigned twice in one make/modify";
    case Code::DeadProduction:
      return "nothing the production writes is consumed or a declared output";
    case Code::UnproducibleClass:
      return "positive CE class transitively unproducible from the seeds";
    case Code::CostRegression:
      return "static match cost or beta growth regressed past the bound";
    case Code::NewInterferenceEdge:
      return "candidate adds a task-interference conflict";
    case Code::CertificateInvalidation:
      return "live independence certificate no longer holds";
    case Code::OutputSchemaChange:
      return "result/output class removed or its layout changed";
    case Code::AttributeTypeMismatch:
      return "test constant's type can never occur in the attribute's domain";
    case Code::AlwaysFalseCondition:
      return "condition is value-disjoint with the inferred attribute domain";
    case Code::InfeasibleJoin:
      return "binding-variable domains are disjoint across condition elements";
    case Code::DeadWriteModify:
      return "modify writes values no condition on the class can ever match";
  }
  return "";
}

std::string format_diagnostic(const ops5::Program& program, const Diagnostic& d) {
  std::string out = code_name(d.code);
  out += ' ';
  out += severity_name(d.severity);
  out += ' ';
  if (d.production != ops5::kNilSymbol) {
    out += program.symbols().name(d.production);
  } else {
    out += "<program>";
  }
  if (d.loc.known()) {
    out += ':';
    out += std::to_string(d.loc.line);
    out += ':';
    out += std::to_string(d.loc.column);
  }
  out += ": ";
  out += d.message;
  return out;
}

std::size_t count_errors(const std::vector<Diagnostic>& diagnostics) noexcept {
  std::size_t n = 0;
  for (const auto& d : diagnostics) {
    if (d.severity == Severity::Error) ++n;
  }
  return n;
}

}  // namespace psmsys::analysis
