#pragma once

// Static admission pipeline for versioned rule packs (ISSUE 7 tentpole).
//
// AnalysisPipeline bundles every analyzer in src/analysis — the linter
// (AN001–AN009), the rete_static cost model, the value-domain abstract
// interpreter (AN014–AN017 plus the specialization certificate re-check),
// and the task-interference checker — into one gate that judges a
// *candidate* rule pack, optionally
// against the *live* pack it would replace, and emits a single
// byte-deterministic, schema-versioned AdmissionVerdict
// ("admission-verdict-v1": pass/warn/reject with per-analyzer sections).
//
// The centerpiece is the cross-version semantic diff: added / removed /
// modified productions (by canonical structural fingerprint), per-production
// static cost deltas and worst-case beta-growth regressions beyond
// configurable bounds, output-class schema changes, and topology/sharing
// churn — surfaced as lint rules AN010–AN013:
//
//   AN010 warning/error  static match cost or beta bound regressed past the
//                        configured ratio (error past the reject ratio)
//   AN011 error          the candidate adds a task-interference conflict the
//                        live pack's certificate did not have
//   AN012 error          the live independence certificate cannot be
//                        re-established over the candidate at all
//   AN013 warning/error  a class was removed or its attribute layout changed
//                        (error when it is a declared output class)
//
// The interference recheck never trusts indices across programs: the live
// DecompositionSpec is *rebound by name* (classes, slots, symbols) onto the
// candidate program first, and any name that fails to resolve is itself an
// AN012 — a certificate that cannot even be restated is not in force.
//
// src/serve wires this in as the hot-reload gate (Server::load_pack); the
// spam_lint --gate CLI and CI run the same pipeline offline.

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/interference.hpp"
#include "analysis/rete_static.hpp"
#include "obs/json.hpp"
#include "ops5/production.hpp"

namespace psmsys::analysis {

/// One side of an admission check. Class references are by *name* — the only
/// identity stable across program versions; names that do not resolve in the
/// pack's program are skipped (a removed class surfaces through AN013, not
/// through a misconfigured gate).
struct PackInput {
  /// Display label; when empty the pipeline derives "name@version" from the
  /// program's pack metadata, falling back to "pack".
  std::string label;
  std::shared_ptr<const ops5::Program> program;
  /// Seed / output class names for the linter (see LintOptions); outputs
  /// also decide AN013 severity. Unset disables the dependent lint rules.
  std::optional<std::vector<std::string>> seed_classes;
  std::optional<std::vector<std::string>> output_classes;
  /// The independence certificate in force for the live pack (ignored on the
  /// candidate side). Must outlive the admit() call.
  const DecompositionSpec* spec = nullptr;
};

struct AdmissionOptions {
  /// Cost-model knobs applied to both sides' rete_static passes.
  ReteStaticOptions rete;
  /// AN010 fires as a warning when candidate_cost / live_cost exceeds
  /// cost_warn_ratio, as an error beyond cost_reject_ratio.
  double cost_warn_ratio = 2.0;
  double cost_reject_ratio = 8.0;
  /// AN010 error when the estimated beta bound grows by more than this
  /// factor; a mere beta_degree increase is a warning.
  double beta_reject_ratio = 8.0;
  /// Measured per-production work (e.g. summed node activations from a
  /// calibrated run; see ReteStaticReport::calibrate). When present, the
  /// live side of AN010 ratios uses measured values rescaled to static
  /// units, making the thresholds empirical instead of purely modeled.
  std::vector<std::pair<std::string, double>> measured_costs;
  /// Findings kept per section; the rest are dropped and the section's
  /// details carry "findings_truncated": true. Counts stay exact.
  std::size_t max_findings = 64;
  /// Treat warnings as rejecting.
  bool strict = false;
};

enum class AdmissionDecision : std::uint8_t { Pass, Warn, Reject };

[[nodiscard]] std::string_view admission_decision_name(AdmissionDecision d) noexcept;

struct VerdictFinding {
  std::string code;        ///< "AN001"... wire code
  std::string severity;    ///< "warning" | "error"
  std::string production;  ///< empty for pack-level findings
  std::string message;
};

struct VerdictSection {
  std::string analyzer;  ///< "lint" | "rete_static" | "value_domains" | "interference" | "semantic_diff"
  AdmissionDecision decision = AdmissionDecision::Pass;
  std::size_t errors = 0;    ///< exact count, even when findings are truncated
  std::size_t warnings = 0;
  std::vector<VerdictFinding> findings;
  obs::json::Object details;  ///< analyzer-specific deterministic metrics
};

struct AdmissionVerdict {
  static constexpr std::string_view kSchema = "admission-verdict-v1";

  std::string live;       ///< live pack label, empty for a candidate-only check
  std::string candidate;
  AdmissionDecision decision = AdmissionDecision::Pass;
  std::vector<VerdictSection> sections;

  [[nodiscard]] bool accepted() const noexcept {
    return decision != AdmissionDecision::Reject;
  }
  [[nodiscard]] std::size_t errors() const noexcept;
  [[nodiscard]] std::size_t warnings() const noexcept;

  /// Deterministic JSON: fixed key order, sorted lists, 6-significant-digit
  /// rounding — byte-identical across runs for identical inputs.
  [[nodiscard]] obs::json::Value to_json() const;
};

/// Translate a decomposition spec onto another program by name: classes,
/// slots, and symbol values are looked up in `target` via the names they
/// carry in spec.program. Returns nullopt (and a reason in *error) when any
/// referenced class / attribute / symbol does not exist in the target — the
/// AN012 condition.
[[nodiscard]] std::optional<DecompositionSpec> rebind_spec(
    const DecompositionSpec& spec,
    std::shared_ptr<const ops5::Program> target, std::string* error = nullptr);

/// Canonical structural rendering of a production (classes, attributes,
/// variables and externals by name; constants as literals). Two productions
/// with equal fingerprints behave identically; the semantic diff classifies
/// same-name productions with differing fingerprints as "modified".
[[nodiscard]] std::string production_fingerprint(const ops5::Program& program,
                                                 const ops5::Production& production);

class AnalysisPipeline {
 public:
  explicit AnalysisPipeline(AdmissionOptions options = {})
      : options_(std::move(options)) {}

  /// Judge `candidate`, optionally against `live` (nullptr = boot-time
  /// candidate-only check: lint + rete_static, no cross-version sections).
  [[nodiscard]] AdmissionVerdict admit(const PackInput* live,
                                       const PackInput& candidate) const;

 private:
  AdmissionOptions options_;
};

}  // namespace psmsys::analysis
