#pragma once

// Whole-rule-base Rete dataflow analyzer (ISSUE 5 tentpole).
//
// Everything else in src/analysis reasons about productions one at a time;
// this pass compiles the production set to the real Rete network
// (rete::Network::topology()) and analyzes the *compiled* shape as a whole:
//
//   - node sharing: how many alpha/join nodes the shared network has versus
//     the unshared compilation (Gupta's classic sharing factor);
//   - static join selectivity estimates from attribute-test structure, and
//     worst-case beta-memory growth bounds per production;
//   - class fan-in ("traffic"): how many RHS actions across the rule base
//     write each class, a static proxy for WME traffic per class;
//   - per-production static match-cost estimates combining the three, used
//     as the default LPT partitioning weight of rete::ParallelMatcher
//     (ops5::EngineOptions::match_cost_source);
//   - the production dependency graph (RHS-writes -> LHS-reads edges over
//     footprint.hpp), which also powers the AN008/AN009 whole-program lint
//     rules in lint.hpp.
//
// The report is deterministic for a fixed frozen program: node ids are Rete
// creation-order indices, every list is ordered by id, and to_json() emits
// insertion-ordered objects — so golden-file tests can compare bytes.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include <optional>

#include "analysis/value_domain.hpp"
#include "obs/json.hpp"
#include "ops5/production.hpp"
#include "rete/network.hpp"

namespace psmsys::analysis {

struct ReteStaticOptions {
  /// Network build options the deployment actually uses (sharing/indexing);
  /// production_filter must stay empty — the whole rule base is the subject.
  rete::NetworkOptions network;
  /// Assumed live WMEs per class for the beta-memory growth bounds. The
  /// bounds scale polynomially in this, so it is a unit, not a prediction.
  double nominal_wm = 8.0;
  /// Exponent applied to class fan-in when weighting per-production cost:
  /// 0 ignores traffic entirely (the condition-count heuristic's implicit
  /// assumption), 1 takes the write-site count at face value. The default
  /// dampens skew: write sites are a proxy for traffic, not a measurement.
  double fanin_exponent = 0.5;
  /// Also compile the node_sharing=false network to report sharing factors.
  /// Engine cost extraction turns this off — it needs only the cost vector.
  bool compute_unshared = true;
  /// Run the value-domain abstract interpreter first and compile the analyzed
  /// network with its proof-carrying SpecializationPlan. The plan is applied
  /// only if verify_specialization re-checks its certificate clean; the
  /// report gains a "specialization" JSON section either way.
  bool specialize = false;
  /// Seed/output classes and lattice caps for the value-domain pass; only
  /// consulted when `specialize` is set.
  ValueDomainOptions value_domains;
};

/// One alpha pattern of the shared network.
struct AlphaNodeReport {
  std::uint32_t id = 0;
  std::string cls;               ///< class name
  std::uint32_t tests = 0;       ///< constant + intra-CE + disjunction tests
  std::uint32_t users = 0;       ///< productions with a CE compiling here
  double selectivity = 1.0;      ///< est. fraction of class WMEs passing
  double traffic = 1.0;          ///< class fan-in: 1 + RHS write sites
};

/// One beta-level two-input node (positive join or negative node).
struct JoinNodeReport {
  std::uint32_t id = 0;
  std::uint32_t alpha = 0;       ///< AlphaNodeReport id on the right input
  std::uint32_t depth = 0;       ///< CEs resolved before this node
  std::uint32_t tests = 0;       ///< variable consistency tests
  bool indexed = false;          ///< hashed-memory equality index in effect
  bool negated = false;
  std::uint32_t users = 0;       ///< productions sharing this node
  double selectivity = 1.0;      ///< est. fraction of (token, wme) pairs passing
  double left_bound = 1.0;       ///< est. tokens in the left memory (nominal_wm)
};

/// Per-production static match cost and growth bound.
struct ProductionReport {
  std::uint32_t id = 0;
  std::string name;
  double match_cost = 0.0;         ///< analyzer LPT weight (work units, est.)
  std::uint64_t heuristic_cost = 0;///< condition-count weight (PR 4 default)
  std::uint32_t beta_degree = 0;   ///< worst-case beta growth is O(N^degree)
  double beta_bound = 0.0;         ///< est. peak tokens at N = nominal_wm
};

/// RHS-writes -> LHS-reads edge: production `from` writes class `cls`, which
/// production `to` reads (positively or under negation). Self-edges are kept
/// (a production feeding itself is a loop worth seeing); deduplicated per
/// (from, to, cls).
struct DependencyEdge {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  ops5::ClassIndex cls = 0;
  std::string class_name;
  bool negated = false;  ///< the read side is a negated CE
};

/// Static cost vs measured per-node activations for one production (ROADMAP
/// item 2 stretch goal: calibrating the analyzer against real traffic).
/// Shares are each production's fraction of the rule-base total, so the two
/// columns are directly comparable even though their units differ.
struct CalibrationRow {
  std::uint32_t id = 0;
  std::string name;
  double static_cost = 0.0;    ///< the analyzer's match_cost estimate
  double measured = 0.0;       ///< summed activations over the production's path
  double static_share = 0.0;
  double measured_share = 0.0;
};

struct ReteStaticReport {
  std::string program;                 ///< program name tag (caller-supplied)
  std::size_t production_count = 0;
  std::size_t alpha_nodes = 0;         ///< shared compilation
  std::size_t alpha_nodes_unshared = 0;///< 0 when compute_unshared is off
  std::size_t join_nodes = 0;          ///< joins + negative nodes, shared
  std::size_t join_nodes_unshared = 0;
  std::size_t beta_memories = 0;
  double nominal_wm = 8.0;
  double fanin_exponent = 0.5;

  std::vector<AlphaNodeReport> alphas;      ///< ordered by id
  std::vector<JoinNodeReport> joins;        ///< ordered by id
  std::vector<ProductionReport> productions;///< ordered by production id
  std::vector<DependencyEdge> edges;        ///< ordered by (from, to, cls)
  std::vector<CalibrationRow> calibration;  ///< empty until calibrate() runs
  /// Value-domain specialization summary (JSON key "specialization"), present
  /// only when ReteStaticOptions::specialize ran: the value-domain report's
  /// JSON plus "verified" (certificate re-check result) and "applied"
  /// (whether the analyzed network was actually compiled with the plan).
  std::optional<obs::json::Value> specialization;

  /// Alpha sharing factor: unshared / shared node counts (1.0 = no sharing
  /// benefit). 0 when the unshared compilation was skipped.
  [[nodiscard]] double alpha_sharing() const noexcept;
  [[nodiscard]] double join_sharing() const noexcept;

  /// LPT weight vector for rete::ParallelMatcherOptions::production_costs,
  /// indexed by production id.
  [[nodiscard]] std::vector<double> cost_vector() const;

  /// Join measured per-node activation counts (rete::Matcher::
  /// node_activations(), same topology id space as `topo`) onto the report's
  /// productions: each production is charged every node on its compiled path
  /// (shared nodes charged to every user, matching the static-cost
  /// convention). Fills `calibration`, ordered by production id.
  void calibrate(const rete::NetworkTopology& topo,
                 std::span<const std::uint64_t> alpha_activations,
                 std::span<const std::uint64_t> join_activations);

  /// Pearson correlation between static and measured cost shares across
  /// calibration rows; 0 when fewer than two rows or degenerate variance.
  [[nodiscard]] double calibration_correlation() const noexcept;

  /// Deterministic JSON rendering of the whole report. The calibration table
  /// (keys "calibration" and "calibration_correlation") is appended only when
  /// calibrate() ran, and "specialization" only when the specialization pass
  /// ran, so pre-existing golden files are byte-stable.
  [[nodiscard]] obs::json::Value to_json() const;
};

/// Run the full pass. The program must be frozen.
[[nodiscard]] ReteStaticReport analyze_rete(const ops5::Program& program,
                                            const ReteStaticOptions& options = {});

/// Cost vector only (one shared-network compilation, no unshared pass, no
/// JSON) — what Engine::build_matcher calls per matcher rebuild.
[[nodiscard]] std::vector<double> static_match_costs(
    const ops5::Program& program, const rete::NetworkOptions& network = {});

/// The dependency graph alone (footprints only, no network build); also the
/// substrate of lint rules AN008/AN009.
[[nodiscard]] std::vector<DependencyEdge> dependency_edges(const ops5::Program& program);

}  // namespace psmsys::analysis
