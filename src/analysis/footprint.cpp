#include "analysis/footprint.hpp"

#include <algorithm>
#include <set>

namespace psmsys::analysis {

namespace {

using ops5::Action;
using ops5::BindAction;
using ops5::ClassIndex;
using ops5::ConditionElement;
using ops5::Expr;
using ops5::HaltAction;
using ops5::MakeAction;
using ops5::ModifyAction;
using ops5::Predicate;
using ops5::Production;
using ops5::RemoveAction;
using ops5::SlotIndex;
using ops5::VariableId;
using ops5::WriteAction;

void sort_unique(std::vector<SlotIndex>& slots) {
  std::sort(slots.begin(), slots.end());
  slots.erase(std::unique(slots.begin(), slots.end()), slots.end());
}

}  // namespace

std::string_view access_kind_name(AccessKind k) noexcept {
  switch (k) {
    case AccessKind::Read: return "read";
    case AccessKind::NegatedRead: return "negated-read";
    case AccessKind::Make: return "make";
    case AccessKind::Modify: return "modify";
    case AccessKind::Remove: return "remove";
  }
  return "unknown";
}

bool ProductionFootprint::writes_class(ClassIndex cls) const noexcept {
  for (const auto& a : accesses) {
    if (a.cls == cls && is_write(a.kind)) return true;
  }
  return false;
}

bool ProductionFootprint::reads_class(ClassIndex cls) const noexcept {
  for (const auto& a : accesses) {
    if (a.cls == cls && !is_write(a.kind)) return true;
  }
  return false;
}

void collect_expr_variables(const Expr& expr, std::vector<VariableId>& out) {
  if (const auto* var = std::get_if<ops5::VarRef>(&expr.node)) {
    out.push_back(var->var);
  } else if (const auto* call = std::get_if<ops5::CallExpr>(&expr.node)) {
    for (const auto& arg : call->args) collect_expr_variables(arg, out);
  }
}

const ConditionElement* positive_ce(const Production& production, std::uint32_t index) {
  std::uint32_t seen = 0;
  for (const auto& ce : production.lhs()) {
    if (ce.negated) continue;
    if (++seen == index) return &ce;
  }
  return nullptr;
}

ProductionFootprint footprint_of(const ops5::Program& program, const Production& production) {
  (void)program;  // layouts already baked into CE/action slot indices
  ProductionFootprint fp;
  fp.production = &production;

  // --- LHS: reads + the binding map (first equality occurrence in a
  // positive CE binds; everything else tests).
  std::uint32_t ce_index = 0;
  for (const auto& ce : production.lhs()) {
    ClassAccess access;
    access.cls = ce.cls;
    access.kind = ce.negated ? AccessKind::NegatedRead : AccessKind::Read;
    access.position = ce_index;
    for (const auto& test : ce.tests) {
      access.slots.push_back(test.slot);
      if (!ce.negated && test.is_variable && test.pred == Predicate::Eq &&
          !fp.bindings.contains(test.var)) {
        fp.bindings.emplace(test.var, VarBinding{ce_index, ce.cls, test.slot});
      }
    }
    sort_unique(access.slots);
    fp.accesses.push_back(std::move(access));
    ++ce_index;
  }

  // --- RHS: writes + may-bind flow. Bind actions extend the flow origins
  // transitively: after (bind <y> (compute <x> + 1)), <y> carries <x>'s
  // binding sites.
  std::unordered_map<VariableId, std::vector<VarBinding>> origins;
  for (const auto& [var, site] : fp.bindings) origins[var] = {site};

  const auto flow_into = [&](std::uint32_t action, ClassIndex to_cls, SlotIndex to_slot,
                             const Expr& expr) {
    std::vector<VariableId> vars;
    collect_expr_variables(expr, vars);
    std::set<std::pair<ClassIndex, SlotIndex>> seen;
    for (const VariableId v : vars) {
      const auto it = origins.find(v);
      if (it == origins.end()) continue;
      for (const auto& site : it->second) {
        if (!seen.insert({site.cls, site.slot}).second) continue;
        fp.flows.push_back(VarFlow{v, site.cls, site.slot, to_cls, to_slot, action});
      }
    }
  };

  std::uint32_t action_index = 0;
  for (const auto& action : production.rhs()) {
    if (const auto* make = std::get_if<MakeAction>(&action)) {
      ClassAccess access;
      access.cls = make->cls;
      access.kind = AccessKind::Make;
      access.position = action_index;
      for (const auto& [slot, expr] : make->sets) {
        access.slots.push_back(slot);
        flow_into(action_index, make->cls, slot, expr);
      }
      sort_unique(access.slots);
      fp.accesses.push_back(std::move(access));
    } else if (const auto* mod = std::get_if<ModifyAction>(&action)) {
      const ConditionElement* target = positive_ce(production, mod->ce_index);
      if (target != nullptr) {
        ClassAccess access;
        access.cls = target->cls;
        access.kind = AccessKind::Modify;
        access.position = action_index;
        for (const auto& [slot, expr] : mod->sets) {
          access.slots.push_back(slot);
          flow_into(action_index, target->cls, slot, expr);
        }
        sort_unique(access.slots);
        fp.accesses.push_back(std::move(access));
      }
    } else if (const auto* rem = std::get_if<RemoveAction>(&action)) {
      const ConditionElement* target = positive_ce(production, rem->ce_index);
      if (target != nullptr) {
        fp.accesses.push_back(ClassAccess{target->cls, AccessKind::Remove, action_index, {}});
      }
    } else if (const auto* bind = std::get_if<BindAction>(&action)) {
      std::vector<VariableId> vars;
      collect_expr_variables(bind->expr, vars);
      std::vector<VarBinding> merged;
      for (const VariableId v : vars) {
        const auto it = origins.find(v);
        if (it == origins.end()) continue;
        merged.insert(merged.end(), it->second.begin(), it->second.end());
      }
      origins[bind->var] = std::move(merged);
    }
    ++action_index;
  }

  return fp;
}

std::vector<ProductionFootprint> program_footprints(const ops5::Program& program) {
  std::vector<ProductionFootprint> out;
  out.reserve(program.productions().size());
  for (const auto& p : program.productions()) out.push_back(footprint_of(program, p));
  return out;
}

}  // namespace psmsys::analysis
