#pragma once

// OPS5 rule-base linter. Diagnoses the rule-authoring mistakes that the
// engine either rejects at load time with a bare exception (AN001/AN006 via
// analyze_bindings) or silently tolerates (everything else), each with a
// stable code, severity, and the source location the parser recorded.
//
//   AN001 error    unbound RHS variable (incl. bound only inside a negation)
//   AN002 warning  variable bound in a positive CE but never used
//   AN003 warning  positive CE class with no producer and not seeded
//   AN004 error    contradictory attribute tests within one CE
//   AN005 warning  modify/remove index lands on a negated LHS element
//                  (OPS5 numbers only matchable CEs — likely off-by-one)
//   AN006 error    variable's first occurrence uses a non-equality predicate
//   AN007 warning  same attribute assigned twice in one make/modify
//
// Two whole-program rules ride on the production dependency graph (ISSUE 5):
//
//   AN008 warning  dead production: nothing it writes is read by any other
//                  production or declared a phase output, and it has no
//                  externally visible action (write/halt)
//   AN009 warning  unreachable production: a positive CE class is
//                  *transitively* unproducible from the declared seeds —
//                  it has producers, but no producer chain starts at a seed
//                  (AN003 covers the no-producer-at-all case)

#include <optional>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "ops5/production.hpp"

namespace psmsys::analysis {

struct LintOptions {
  /// WME classes seeded from outside the rule base (the control process's
  /// make_wme calls). Unset disables AN003 and AN009 — without knowing the
  /// seeds, "no producer" and "unreachable" prove nothing.
  std::optional<std::vector<ops5::ClassIndex>> seed_classes;
  /// WME classes the control process extracts after quiescence (the phase's
  /// results). Unset disables AN008 — without knowing the outputs, "nobody
  /// consumes it" proves nothing.
  std::optional<std::vector<ops5::ClassIndex>> output_classes;
};

/// Lint a whole program. Diagnostics are ordered by production, then by
/// check order within a production.
[[nodiscard]] std::vector<Diagnostic> lint_program(const ops5::Program& program,
                                                   const LintOptions& options = {});

/// Lint one production. The production need not be registered with `program`
/// (useful for indices Program::add_production would reject); AN003 resolves
/// producers against `program`'s production list.
[[nodiscard]] std::vector<Diagnostic> lint_production(const ops5::Program& program,
                                                      const ops5::Production& production,
                                                      const LintOptions& options = {});

}  // namespace psmsys::analysis
