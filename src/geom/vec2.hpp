#pragma once

// Minimal 2-D vector algebra for the scene-interpretation geometry.

#include <cmath>
#include <compare>

namespace psmsys::geom {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) noexcept { return {a.x + b.x, a.y + b.y}; }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) noexcept { return {a.x - b.x, a.y - b.y}; }
  friend constexpr Vec2 operator*(Vec2 a, double s) noexcept { return {a.x * s, a.y * s}; }
  friend constexpr Vec2 operator*(double s, Vec2 a) noexcept { return a * s; }
  friend constexpr Vec2 operator/(Vec2 a, double s) noexcept { return {a.x / s, a.y / s}; }
  friend constexpr bool operator==(Vec2 a, Vec2 b) noexcept = default;
};

[[nodiscard]] constexpr double dot(Vec2 a, Vec2 b) noexcept { return a.x * b.x + a.y * b.y; }

/// z-component of the 3-D cross product; sign gives turn direction.
[[nodiscard]] constexpr double cross(Vec2 a, Vec2 b) noexcept { return a.x * b.y - a.y * b.x; }

[[nodiscard]] inline double length(Vec2 a) noexcept { return std::sqrt(dot(a, a)); }

[[nodiscard]] constexpr double length_sq(Vec2 a) noexcept { return dot(a, a); }

[[nodiscard]] inline double distance(Vec2 a, Vec2 b) noexcept { return length(b - a); }

[[nodiscard]] inline Vec2 normalized(Vec2 a) noexcept {
  const double len = length(a);
  return len > 0.0 ? a / len : Vec2{};
}

/// Rotate a vector counter-clockwise by `radians`.
[[nodiscard]] inline Vec2 rotated(Vec2 a, double radians) noexcept {
  const double c = std::cos(radians);
  const double s = std::sin(radians);
  return {a.x * c - a.y * s, a.x * s + a.y * c};
}

/// Orientation of the triple (a, b, c): >0 counter-clockwise, <0 clockwise,
/// 0 collinear (within eps).
[[nodiscard]] constexpr int orientation(Vec2 a, Vec2 b, Vec2 c, double eps = 1e-12) noexcept {
  const double v = cross(b - a, c - a);
  if (v > eps) return 1;
  if (v < -eps) return -1;
  return 0;
}

}  // namespace psmsys::geom
