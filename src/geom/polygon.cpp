#include "geom/polygon.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

namespace psmsys::geom {

namespace {

constexpr double kEps = 1e-12;

[[nodiscard]] bool on_segment(Vec2 p, const Segment& s) noexcept {
  if (orientation(s.a, s.b, p) != 0) return false;
  return p.x >= std::min(s.a.x, s.b.x) - kEps && p.x <= std::max(s.a.x, s.b.x) + kEps &&
         p.y >= std::min(s.a.y, s.b.y) - kEps && p.y <= std::max(s.a.y, s.b.y) + kEps;
}

}  // namespace

bool segments_intersect(const Segment& s, const Segment& t) noexcept {
  const int o1 = orientation(s.a, s.b, t.a);
  const int o2 = orientation(s.a, s.b, t.b);
  const int o3 = orientation(t.a, t.b, s.a);
  const int o4 = orientation(t.a, t.b, s.b);
  if (o1 != o2 && o3 != o4) return true;
  if (o1 == 0 && on_segment(t.a, s)) return true;
  if (o2 == 0 && on_segment(t.b, s)) return true;
  if (o3 == 0 && on_segment(s.a, t)) return true;
  if (o4 == 0 && on_segment(s.b, t)) return true;
  return false;
}

double point_segment_distance(Vec2 p, const Segment& s) noexcept {
  const Vec2 d = s.b - s.a;
  const double len2 = length_sq(d);
  if (len2 < kEps) return distance(p, s.a);
  const double t = std::clamp(dot(p - s.a, d) / len2, 0.0, 1.0);
  return distance(p, s.a + d * t);
}

double segment_segment_distance(const Segment& s, const Segment& t) noexcept {
  if (segments_intersect(s, t)) return 0.0;
  return std::min({point_segment_distance(s.a, t), point_segment_distance(s.b, t),
                   point_segment_distance(t.a, s), point_segment_distance(t.b, s)});
}

Polygon::Polygon(std::vector<Vec2> vertices) : vertices_(std::move(vertices)) {
  if (vertices_.size() < 3) throw std::invalid_argument("polygon needs >= 3 vertices");
}

Polygon Polygon::rectangle(Vec2 lo, Vec2 hi) {
  return Polygon({{lo.x, lo.y}, {hi.x, lo.y}, {hi.x, hi.y}, {lo.x, hi.y}});
}

Polygon Polygon::oriented_rectangle(Vec2 center, double length, double width, double angle) {
  const Vec2 u = rotated({length * 0.5, 0.0}, angle);
  const Vec2 v = rotated({0.0, width * 0.5}, angle);
  return Polygon({center - u - v, center + u - v, center + u + v, center - u + v});
}

Polygon Polygon::regular(Vec2 center, double radius, int sides, double phase) {
  if (sides < 3) throw std::invalid_argument("regular polygon needs >= 3 sides");
  std::vector<Vec2> vs;
  vs.reserve(static_cast<std::size_t>(sides));
  for (int i = 0; i < sides; ++i) {
    const double a = phase + 2.0 * std::numbers::pi * i / sides;
    vs.push_back(center + Vec2{radius * std::cos(a), radius * std::sin(a)});
  }
  return Polygon(std::move(vs));
}

Segment Polygon::edge(std::size_t i) const noexcept {
  return {vertices_[i], vertices_[(i + 1) % vertices_.size()]};
}

double Polygon::signed_area() const noexcept {
  double a = 0.0;
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    const auto [p, q] = edge(i);
    a += cross(p, q);
  }
  return a * 0.5;
}

double Polygon::area() const noexcept { return std::abs(signed_area()); }

double Polygon::perimeter() const noexcept {
  double p = 0.0;
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    const auto [a, b] = edge(i);
    p += distance(a, b);
  }
  return p;
}

Vec2 Polygon::centroid() const noexcept {
  // Area-weighted centroid; falls back to vertex mean for degenerate area.
  double a = 0.0;
  Vec2 c{};
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    const auto [p, q] = edge(i);
    const double w = cross(p, q);
    a += w;
    c = c + (p + q) * w;
  }
  if (std::abs(a) < kEps) {
    Vec2 m{};
    for (auto v : vertices_) m = m + v;
    return m / static_cast<double>(vertices_.size());
  }
  return c / (3.0 * a);
}

BoundingBox Polygon::bounds() const noexcept {
  BoundingBox bb{{std::numeric_limits<double>::infinity(), std::numeric_limits<double>::infinity()},
                 {-std::numeric_limits<double>::infinity(), -std::numeric_limits<double>::infinity()}};
  for (auto v : vertices_) {
    bb.lo.x = std::min(bb.lo.x, v.x);
    bb.lo.y = std::min(bb.lo.y, v.y);
    bb.hi.x = std::max(bb.hi.x, v.x);
    bb.hi.y = std::max(bb.hi.y, v.y);
  }
  return bb;
}

double Polygon::elongation() const noexcept {
  // Measure along the longest edge's axis rather than the AABB so rotated
  // runways report the same elongation as axis-aligned ones.
  const double angle = orientation_angle();
  double lo_u = std::numeric_limits<double>::infinity(), hi_u = -lo_u;
  double lo_v = lo_u, hi_v = -lo_u;
  for (auto p : vertices_) {
    const Vec2 r = rotated(p, -angle);
    lo_u = std::min(lo_u, r.x);
    hi_u = std::max(hi_u, r.x);
    lo_v = std::min(lo_v, r.y);
    hi_v = std::max(hi_v, r.y);
  }
  const double du = hi_u - lo_u;
  const double dv = hi_v - lo_v;
  const double longside = std::max(du, dv);
  const double shortside = std::max(std::min(du, dv), kEps);
  return longside / shortside;
}

double Polygon::orientation_angle() const noexcept {
  double best_len = -1.0;
  double best_angle = 0.0;
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    const auto [a, b] = edge(i);
    const double len = length_sq(b - a);
    if (len > best_len) {
      best_len = len;
      best_angle = std::atan2(b.y - a.y, b.x - a.x);
    }
  }
  // Normalize to [0, pi): an edge and its reverse have the same orientation.
  if (best_angle < 0.0) best_angle += std::numbers::pi;
  if (best_angle >= std::numbers::pi) best_angle -= std::numbers::pi;
  return best_angle;
}

bool Polygon::contains(Vec2 p) const noexcept {
  // Ray casting with boundary counted as inside.
  bool inside = false;
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    const auto [a, b] = edge(i);
    if (on_segment(p, {a, b})) return true;
    const bool crosses = (a.y > p.y) != (b.y > p.y);
    if (crosses) {
      const double x = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
      if (x > p.x) inside = !inside;
    }
  }
  return inside;
}

bool polygons_intersect(const Polygon& p, const Polygon& q) noexcept {
  if (!p.bounds().overlaps(q.bounds())) return false;
  for (std::size_t i = 0; i < p.size(); ++i) {
    for (std::size_t j = 0; j < q.size(); ++j) {
      if (segments_intersect(p.edge(i), q.edge(j))) return true;
    }
  }
  // No edge crossings: one may contain the other entirely.
  return p.contains(q.vertices()[0]) || q.contains(p.vertices()[0]);
}

double polygon_distance(const Polygon& p, const Polygon& q) noexcept {
  if (polygons_intersect(p, q)) return 0.0;
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < p.size(); ++i) {
    for (std::size_t j = 0; j < q.size(); ++j) {
      best = std::min(best, segment_segment_distance(p.edge(i), q.edge(j)));
    }
  }
  return best;
}

bool polygon_contains(const Polygon& outer, const Polygon& inner) noexcept {
  for (auto v : inner.vertices()) {
    if (!outer.contains(v)) return false;
  }
  for (std::size_t i = 0; i < inner.size(); ++i) {
    for (std::size_t j = 0; j < outer.size(); ++j) {
      // Shared boundary points are fine; proper crossings are not. Proper
      // crossings imply some inner vertex is outside for the simple shapes we
      // generate, so the vertex test above suffices; keep the edge test for
      // concave outers where a crossing can occur with all vertices inside.
      const Segment ei = inner.edge(i);
      const Segment eo = outer.edge(j);
      if (segments_intersect(ei, eo)) {
        const Vec2 mid = (ei.a + ei.b) * 0.5;
        if (!outer.contains(mid)) return false;
      }
    }
  }
  return true;
}

}  // namespace psmsys::geom
