#pragma once

// Simple polygons (convex or concave, non-self-intersecting) representing
// image regions in the synthetic SPAM scenes. All the spatial reasoning SPAM
// performs in its RHS external computations (Section 2.2) bottoms out here.

#include <span>
#include <vector>

#include "geom/vec2.hpp"

namespace psmsys::geom {

struct Segment {
  Vec2 a;
  Vec2 b;
};

/// Do two closed segments intersect (including touching)?
[[nodiscard]] bool segments_intersect(const Segment& s, const Segment& t) noexcept;

/// Euclidean distance from point p to the closed segment s.
[[nodiscard]] double point_segment_distance(Vec2 p, const Segment& s) noexcept;

/// Minimum distance between two closed segments (0 if they intersect).
[[nodiscard]] double segment_segment_distance(const Segment& s, const Segment& t) noexcept;

struct BoundingBox {
  Vec2 lo;
  Vec2 hi;
  [[nodiscard]] constexpr bool overlaps(const BoundingBox& o) const noexcept {
    return lo.x <= o.hi.x && o.lo.x <= hi.x && lo.y <= o.hi.y && o.lo.y <= hi.y;
  }
  [[nodiscard]] constexpr Vec2 center() const noexcept { return (lo + hi) * 0.5; }
};

class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<Vec2> vertices);

  /// Axis-aligned rectangle.
  [[nodiscard]] static Polygon rectangle(Vec2 lo, Vec2 hi);

  /// Rectangle of given width/length centred at `center`, rotated by `angle`.
  [[nodiscard]] static Polygon oriented_rectangle(Vec2 center, double length, double width,
                                                  double angle);

  /// Regular n-gon; used to approximate blobby regions (grass, tarmac).
  [[nodiscard]] static Polygon regular(Vec2 center, double radius, int sides, double phase = 0.0);

  [[nodiscard]] std::span<const Vec2> vertices() const noexcept { return vertices_; }
  [[nodiscard]] std::size_t size() const noexcept { return vertices_.size(); }
  [[nodiscard]] Segment edge(std::size_t i) const noexcept;

  /// Signed area (positive if counter-clockwise).
  [[nodiscard]] double signed_area() const noexcept;
  [[nodiscard]] double area() const noexcept;
  [[nodiscard]] double perimeter() const noexcept;
  [[nodiscard]] Vec2 centroid() const noexcept;
  [[nodiscard]] BoundingBox bounds() const noexcept;

  /// Length of the longest edge and its direction; SPAM uses elongation and
  /// orientation as classification features in the RTF phase.
  [[nodiscard]] double elongation() const noexcept;  ///< bbox long side / short side
  [[nodiscard]] double orientation_angle() const noexcept;  ///< radians of longest edge

  [[nodiscard]] bool contains(Vec2 p) const noexcept;

 private:
  std::vector<Vec2> vertices_;
};

/// Do two polygon boundaries/interiors intersect (share any point)?
[[nodiscard]] bool polygons_intersect(const Polygon& p, const Polygon& q) noexcept;

/// Minimum distance between two polygons (0 if they intersect).
[[nodiscard]] double polygon_distance(const Polygon& p, const Polygon& q) noexcept;

/// Is every vertex of `inner` inside `outer` (and no boundary crossing)?
[[nodiscard]] bool polygon_contains(const Polygon& outer, const Polygon& inner) noexcept;

}  // namespace psmsys::geom
