#include "geom/predicates.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace psmsys::geom {

namespace {

// Flop accounting: each segment pair test is ~12 arithmetic ops; each
// point-in-polygon crossing test ~6; distances ~14. Weights only need to be
// proportional to real work so that large regions cost more to check.
[[nodiscard]] std::uint64_t pairwise(const Polygon& a, const Polygon& b,
                                     std::uint64_t per_pair) noexcept {
  return static_cast<std::uint64_t>(a.size()) * b.size() * per_pair;
}

}  // namespace

PredicateResult intersects(const Polygon& a, const Polygon& b) noexcept {
  const bool bb = a.bounds().overlaps(b.bounds());
  if (!bb) return {false, 8};
  return {polygons_intersect(a, b), 8 + pairwise(a, b, 12)};
}

PredicateResult adjacent_to(const Polygon& a, const Polygon& b, double gap) noexcept {
  const auto inter = intersects(a, b);
  if (inter.value) return {false, inter.flops};
  const double d = polygon_distance(a, b);
  return {d <= gap, inter.flops + pairwise(a, b, 14)};
}

PredicateResult contains_region(const Polygon& a, const Polygon& b) noexcept {
  return {polygon_contains(a, b),
          static_cast<std::uint64_t>(b.size()) * a.size() * 6 + pairwise(a, b, 12)};
}

PredicateResult near(const Polygon& a, const Polygon& b, double radius) noexcept {
  const double d = distance(a.centroid(), b.centroid());
  return {d <= radius, 4 * (a.size() + b.size()) + 6};
}

namespace {

[[nodiscard]] double axis_angle_delta(const Polygon& a, const Polygon& b) noexcept {
  double d = std::abs(a.orientation_angle() - b.orientation_angle());
  if (d > std::numbers::pi / 2.0) d = std::numbers::pi - d;
  return d;
}

}  // namespace

PredicateResult aligned_with(const Polygon& a, const Polygon& b, double tolerance) noexcept {
  return {axis_angle_delta(a, b) <= tolerance, 10 * (a.size() + b.size())};
}

PredicateResult perpendicular_to(const Polygon& a, const Polygon& b, double tolerance) noexcept {
  const double d = axis_angle_delta(a, b);
  return {std::abs(d - std::numbers::pi / 2.0) <= tolerance, 10 * (a.size() + b.size())};
}

PredicateResult leads_to(const Polygon& a, const Polygon& b, double reach) noexcept {
  const Vec2 c = a.centroid();
  const double angle = a.orientation_angle();
  const Vec2 dir = {std::cos(angle), std::sin(angle)};
  const Segment forward{c, c + dir * reach};
  const Segment backward{c, c - dir * reach};
  std::uint64_t flops = 10 * a.size();
  for (std::size_t i = 0; i < b.size(); ++i) {
    flops += 24;
    if (segments_intersect(forward, b.edge(i)) || segments_intersect(backward, b.edge(i))) {
      return {true, flops};
    }
  }
  // The probe ray may terminate inside b without crossing an edge.
  flops += 6 * b.size();
  return {b.contains(forward.b) || b.contains(backward.b), flops};
}

PredicateResult flanked_by(const Polygon& a, const Polygon& b, double gap) noexcept {
  const Vec2 c = a.centroid();
  const double angle = a.orientation_angle();
  const Vec2 side = {-std::sin(angle), std::cos(angle)};
  const Vec2 bc = b.centroid();
  std::uint64_t flops = 10 * (a.size() + b.size());
  // b's centroid must project mostly to the side of a's axis, within gap.
  const Vec2 rel = bc - c;
  const double lateral = std::abs(dot(rel, side));
  const double axial = std::abs(dot(rel, {std::cos(angle), std::sin(angle)}));
  const double d = polygon_distance(a, b);
  flops += pairwise(a, b, 14);
  return {lateral >= axial * 0.5 && d <= gap, flops};
}

}  // namespace psmsys::geom
