#pragma once

// Named spatial predicates — the geometric consistency knowledge of SPAM's
// LCC phase (Section 2.2: "runways intersect taxiways", "terminal buildings
// are adjacent to parking apron", "access roads lead to terminal buildings").
//
// Each predicate reports both its truth value and the number of elementary
// geometry operations ("flops") it performed. The OPS5 engine charges these
// flops to RHS cost, which is how the paper's large non-match computation
// (50-70% of LCC time outside match) arises in our reproduction.

#include <cstdint>

#include "geom/polygon.hpp"

namespace psmsys::geom {

struct PredicateResult {
  bool value = false;
  std::uint64_t flops = 0;
};

/// Regions share at least one boundary/interior point.
[[nodiscard]] PredicateResult intersects(const Polygon& a, const Polygon& b) noexcept;

/// Regions are within `gap` of each other but do not overlap.
[[nodiscard]] PredicateResult adjacent_to(const Polygon& a, const Polygon& b,
                                          double gap) noexcept;

/// Region `a` wholly contains region `b`.
[[nodiscard]] PredicateResult contains_region(const Polygon& a, const Polygon& b) noexcept;

/// Centroids within `radius`.
[[nodiscard]] PredicateResult near(const Polygon& a, const Polygon& b, double radius) noexcept;

/// Long axes within `tolerance` radians of parallel (mod pi).
[[nodiscard]] PredicateResult aligned_with(const Polygon& a, const Polygon& b,
                                           double tolerance) noexcept;

/// Long axes within `tolerance` of perpendicular.
[[nodiscard]] PredicateResult perpendicular_to(const Polygon& a, const Polygon& b,
                                               double tolerance) noexcept;

/// Extending `a` along its long axis (both ways, up to `reach`) hits `b`:
/// the "access roads lead to terminal buildings" relation.
[[nodiscard]] PredicateResult leads_to(const Polygon& a, const Polygon& b,
                                       double reach) noexcept;

/// `a` is flanked by `b`: b lies to the side of a's long axis within `gap`.
[[nodiscard]] PredicateResult flanked_by(const Polygon& a, const Polygon& b,
                                         double gap) noexcept;

}  // namespace psmsys::geom
