#pragma once

// Matcher abstraction: the engine drives any matcher (Rete, the parallel
// Rete, or the naive oracle) through this interface, and the matcher reports
// conflict-set changes through MatchListener.
//
// Beyond the three WM-delta entry points, the interface carries the
// instrumentation surface the engine and executors consume: compiled network
// shape, per-cascade match chunks, the live-token gauge, and the binding
// analysis RHS evaluation needs. Matchers that do not compile a network
// (the naive oracle) inherit the empty defaults.

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "ops5/bindings.hpp"
#include "ops5/production.hpp"
#include "ops5/wme.hpp"
#include "util/counters.hpp"

namespace psmsys::rete {

/// Receives conflict-set deltas from a matcher.
class MatchListener {
 public:
  virtual ~MatchListener() = default;

  /// A production became satisfied by `wmes` (positive CEs, in order).
  virtual void on_activate(const ops5::Production& production,
                           std::span<const ops5::Wme* const> wmes) = 0;

  /// A previously reported match is no longer satisfied.
  virtual void on_deactivate(const ops5::Production& production,
                             std::span<const ops5::Wme* const> wmes) = 0;
};

/// Cumulative per-node activation counts, indexed by the creation-order node
/// ids NetworkTopology exports (alpha: WMEs passing the pattern on add; join:
/// left + right activations, negative nodes included in the join id space).
/// Counts are lifetime gauges — clear() retains them — so static analyzer
/// costs can be calibrated against a whole run's measured traffic.
struct NodeActivations {
  std::vector<std::uint64_t> alpha;
  std::vector<std::uint64_t> join;

  [[nodiscard]] bool empty() const noexcept {
    return alpha.empty() && join.empty();
  }
};

/// Summary of the compiled network shape (for tests and DESIGN docs). A
/// partitioned matcher reports the sum over its partition networks.
struct NetworkStats {
  std::size_t alpha_patterns = 0;
  std::size_t alpha_memories = 0;
  std::size_t beta_memories = 0;
  std::size_t join_nodes = 0;
  std::size_t negative_nodes = 0;
  std::size_t production_nodes = 0;
};

class Matcher {
 public:
  virtual ~Matcher() = default;

  /// Incorporate a new WME. The WME must outlive its presence in the matcher.
  virtual void add_wme(const ops5::Wme& wme) = 0;

  /// Retract a WME previously added.
  virtual void remove_wme(const ops5::Wme& wme) = 0;

  /// Forget all WMEs (between PSM tasks); the network structure is retained.
  virtual void clear() = 0;

  /// Compiled network shape; zeros for matchers without a network.
  [[nodiscard]] virtual NetworkStats stats() const noexcept { return {}; }

  /// Match chunks recorded since the last take_chunks() call. Each entry is
  /// the work-unit cost of one independent alpha-pattern cascade.
  [[nodiscard]] virtual std::vector<util::WorkUnits> take_chunks() { return {}; }

  /// Peak number of simultaneously-live beta-memory tokens over the matcher's
  /// lifetime (the working-set gauge behind the paper's memory-contention
  /// discussion). Always 0 when built with PSMSYS_OBS=0.
  [[nodiscard]] virtual std::uint64_t peak_live_tokens() const noexcept { return 0; }

  /// Currently-live beta-memory tokens — the resident match state a streaming
  /// session accumulates as WM deltas arrive. Unlike the peak gauge this is an
  /// instantaneous reading, so per-tick samples trace working-set growth.
  /// Always 0 when built with PSMSYS_OBS=0.
  [[nodiscard]] virtual std::uint64_t live_tokens() const noexcept { return 0; }

  /// Per-node activation counters for matchers compiling a single network
  /// with a stable topology id space. Empty for matchers without one (the
  /// naive oracle; the partitioned matcher, whose per-partition id spaces do
  /// not compose) and when built with PSMSYS_OBS=0.
  [[nodiscard]] virtual NodeActivations node_activations() const { return {}; }

  /// Binding analysis computed during compilation, exposed for RHS
  /// evaluation. Throws for matchers that do not compile productions.
  [[nodiscard]] virtual const ops5::BindingAnalysis& bindings(const ops5::Production&) const {
    throw std::logic_error("matcher has no binding analysis");
  }

  /// Structural self-check for differential tests: implementation-defined
  /// descriptions of violated internal invariants, empty when consistent.
  /// Matchers without internal match state (the naive oracle) inherit the
  /// always-clean default.
  [[nodiscard]] virtual std::vector<std::string> check_invariants() const { return {}; }
};

}  // namespace psmsys::rete
