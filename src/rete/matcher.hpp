#pragma once

// Matcher abstraction: the engine drives any matcher (Rete or the naive
// oracle) through this interface, and the matcher reports conflict-set
// changes through MatchListener.

#include <span>

#include "ops5/production.hpp"
#include "ops5/wme.hpp"

namespace psmsys::rete {

/// Receives conflict-set deltas from a matcher.
class MatchListener {
 public:
  virtual ~MatchListener() = default;

  /// A production became satisfied by `wmes` (positive CEs, in order).
  virtual void on_activate(const ops5::Production& production,
                           std::span<const ops5::Wme* const> wmes) = 0;

  /// A previously reported match is no longer satisfied.
  virtual void on_deactivate(const ops5::Production& production,
                             std::span<const ops5::Wme* const> wmes) = 0;
};

class Matcher {
 public:
  virtual ~Matcher() = default;

  /// Incorporate a new WME. The WME must outlive its presence in the matcher.
  virtual void add_wme(const ops5::Wme& wme) = 0;

  /// Retract a WME previously added.
  virtual void remove_wme(const ops5::Wme& wme) = 0;

  /// Forget all WMEs (between PSM tasks); the network structure is retained.
  virtual void clear() = 0;
};

}  // namespace psmsys::rete
