#pragma once

// ParallelMatcher: measured intra-task match parallelism.
//
// ParaOPS5 distributes match work over dedicated match processes
// (Section 3.1); until this matcher, our Table 9 reproduction obtained its
// match factor purely from the bin-packing cost model in psm/sim.hpp. This
// class makes the factor measurable: the production set is split into
// deterministic, disjoint partitions (greedy LPT over static production
// weight), each partition compiled into its own Rete sub-network, and every
// WME add/remove is executed against all partitions concurrently by a
// per-matcher worker pool.
//
// Determinism contract: after the per-operation barrier, the partitions'
// conflict-set deltas are merged, transient activate/deactivate pairs of the
// same instantiation are cancelled (intra-network propagation order — which
// varies with the partition layout — can transiently activate a production
// whose negated condition the same WME also satisfies; only the *net* delta
// is layout-invariant), and the nets are forwarded to the engine's listener
// in *canonical order* — sorted by (production id, matched timetags,
// add-before-remove) — so the listener-visible sequence is byte-identical
// for any thread count and any thread schedule. Since conflict-resolution
// ties ultimately break on conflict-set insertion sequence, this is what
// makes firing logs reproducible across `match_threads` ∈ {1,2,4}
// (tests/match_determinism_test.cpp) and lets the differential oracle
// (tests/match_oracle_test.cpp) compare conflict sets exactly.
//
// The partitions repeat alpha tests that node sharing would have merged —
// the classic cost of production-level partitioning (Gupta) — so summed work
// counters can exceed the serial network's; wall clock is what the split
// buys.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ops5/production.hpp"
#include "rete/matcher.hpp"
#include "rete/network.hpp"
#include "util/counters.hpp"

namespace psmsys::rete {

/// Match-thread utilization gauges, surfaced through obs::RunMetrics.
/// busy/wall are recorded only when built with PSMSYS_OBS (0 otherwise);
/// `ops` always counts dispatched WME operations.
struct MatchThreadStats {
  std::uint64_t threads = 0;   ///< configured match workers (partition count)
  std::uint64_t ops = 0;       ///< WME add/remove operations dispatched
  std::uint64_t busy_ns = 0;   ///< per-partition match time, summed over workers
  std::uint64_t wall_ns = 0;   ///< caller-side dispatch-to-barrier wall time

  /// Mean busy fraction of the match workers while a dispatch is in flight.
  [[nodiscard]] double utilization() const noexcept {
    return (wall_ns == 0 || threads == 0)
               ? 0.0
               : static_cast<double>(busy_ns) /
                     (static_cast<double>(wall_ns) * static_cast<double>(threads));
  }
};

struct ParallelMatcherOptions {
  /// Match workers (= production partitions). 1 is the degenerate pool: the
  /// calling thread does everything, but deltas still flow through the
  /// canonical merge so results are identical to any other thread count.
  std::size_t threads = 2;
  /// Options applied to every partition network. production_filter is
  /// overwritten per partition.
  NetworkOptions network;
  /// Static per-production match-cost estimates indexed by production id,
  /// used as the LPT partitioning weight. Empty falls back to the built-in
  /// condition-count heuristic. Costs only steer balance — the partitioning
  /// stays deterministic for a fixed cost vector, and correctness (canonical
  /// merge) never depends on the values.
  std::vector<double> production_costs;
};

class ParallelMatcher final : public Matcher {
 public:
  /// Compiles one sub-network per partition. The program must be frozen and
  /// must outlive the matcher; merged costs are charged to `counters` (from
  /// the calling thread only — workers charge partition-local counters that
  /// are folded after each barrier).
  ParallelMatcher(const ops5::Program& program, MatchListener& listener,
                  util::WorkCounters& counters, const util::CostModel& costs = {},
                  const ParallelMatcherOptions& options = {});
  ~ParallelMatcher() override;

  ParallelMatcher(const ParallelMatcher&) = delete;
  ParallelMatcher& operator=(const ParallelMatcher&) = delete;

  void add_wme(const ops5::Wme& wme) override;
  void remove_wme(const ops5::Wme& wme) override;
  void clear() override;

  /// Aggregated shape of all partition networks.
  [[nodiscard]] NetworkStats stats() const noexcept override;

  /// Merged chunks (partition order within each operation).
  [[nodiscard]] std::vector<util::WorkUnits> take_chunks() override;

  /// Sum of the partition peaks — an upper bound on the true simultaneous
  /// peak (partitions peak at different times).
  [[nodiscard]] std::uint64_t peak_live_tokens() const noexcept override;
  [[nodiscard]] std::uint64_t live_tokens() const noexcept override;

  [[nodiscard]] const ops5::BindingAnalysis& bindings(const ops5::Production& p) const override;

  /// Union of the partition networks' structural self-checks, each violation
  /// prefixed with its partition index.
  [[nodiscard]] std::vector<std::string> check_invariants() const override;

  /// Configured worker count (== partition count actually built).
  [[nodiscard]] std::size_t threads() const noexcept;

  /// Which partition owns production `id` (for tests of the deterministic
  /// partitioning).
  [[nodiscard]] std::size_t partition_of(std::uint32_t production_id) const;

  [[nodiscard]] MatchThreadStats thread_stats() const noexcept;

  /// Measured per-partition match work (util::WorkCounters::match_cost work
  /// units, folded at the last barrier) — the ground truth the static
  /// partitioning cost model is judged against. Deterministic: work units are
  /// counted, not timed.
  [[nodiscard]] std::vector<std::uint64_t> partition_match_costs() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace psmsys::rete
