#include "rete/network.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/obs_config.hpp"

// Hot-path layout (this file's three structural commitments):
//
//  * O(1) retraction — every membership (alpha-memory item, beta-store token,
//    index-bucket entry, token-tree child, negative join result) carries its
//    position in the owning vector, and removal is swap-with-back at that
//    position with a back-pointer fix-up of the element that moved. This is
//    the same swap erase_one() performed after its linear find, so container
//    orders — and therefore listener callback orders — are unchanged; only
//    the per-retract O(n) scans are gone.
//
//  * Left/right node unlinking (Doorenbos) — a join whose beta store is empty
//    skips right activations, a join whose alpha memory is empty skips left
//    activations. Successor lists stay in compile order and carry flags
//    (splicing the lists would reorder activations); the item/token lists are
//    always maintained, so a flag flips exactly on an empty<->nonempty
//    transition of the opposite input and no both-unlinked deadlock exists.
//    Hash indexes live on the *memories*, not the joins — one right index per
//    distinct key slot on each alpha memory, one left index per distinct
//    (levels_up, token_slot) key spec on each beta store — and are always
//    maintained incrementally, so same-keyed successors share upkeep, a link
//    transition is a flag flip (no index rebuild to thrash on empty<->nonempty
//    oscillation), and bucket orders — hence candidate orders and firing
//    logs — are bit-equal whether unlinking is on or off. An unlinked
//    successor skips its activations and its index-upkeep *charges*; the
//    shared physical insert still happens, amortized across all users of the
//    slot. Negative nodes only right-unlink — an empty alpha memory means the
//    absence test holds and left activations must still create tokens.
//
//  * Arena/SoA memory — WME slot values are copied into per-class column
//    vectors addressed by a generation-checked slot-map row, so match tests
//    read unchecked contiguous storage instead of bounds-checked Wme slots,
//    and each add/remove performs a single pointer->record hash lookup (the
//    record is threaded through propagation). Tokens, negative join results,
//    records, and index buckets recycle through capacity-preserving pools.

namespace psmsys::rete {

namespace {

using ops5::ClassIndex;
using ops5::Predicate;
using ops5::SlotIndex;
using ops5::Value;
using ops5::Wme;

// ---------------------------------------------------------------------------
// Network data structures
// ---------------------------------------------------------------------------

struct AlphaMemory;
struct JoinNode;
struct BetaNode;
struct WmeRecord;
struct Token;

struct NegJoinResult {
  Token* owner = nullptr;
  WmeRecord* wrec = nullptr;
  std::uint32_t pos_in_owner = 0;  ///< position in owner->join_results
  std::uint32_t pos_in_wrec = 0;   ///< position in wrec->neg_results
};

struct Token {
  Token* parent = nullptr;
  const Wme* wme = nullptr;  // null for the dummy token and neg-after-neg tokens
  WmeRecord* wrec = nullptr;  // record of `wme`, null iff wme is null
  BetaNode* node = nullptr;
  std::vector<Token*> children;
  std::vector<NegJoinResult*> join_results;  // only for tokens owned by negative nodes
  std::uint32_t pos_in_node = 0;    ///< position in node->tokens
  std::uint32_t pos_in_parent = 0;  ///< position in parent->children
  std::uint32_t pos_in_wrec = 0;    ///< position in wrec->tokens
  /// Left-index bucket positions: one slot per shared left index of the
  /// owning memory node ([0] for a negative node's own left index).
  std::vector<std::uint32_t> left_pos;
};

/// Side record per live WME: the SoA value row plus every membership the WME
/// holds, with enough position state to undo all of them in O(1) each.
struct WmeRecord {
  const Wme* wme = nullptr;
  Value* const* cols = nullptr;  ///< class-store column base pointers (borrowed)
  std::uint32_t row = 0;         ///< slot-map row within the class store
  std::uint32_t nslots = 0;
  ClassIndex cls = 0;
  std::uint32_t gen = 0;  ///< recycling epoch of this record/row pairing
  struct AmRef {
    AlphaMemory* am = nullptr;
    std::uint32_t item_pos = 0;    ///< position in am->items
    std::uint32_t right_base = 0;  ///< start of this membership's right_pos span
  };
  std::vector<AmRef> alpha_mems;
  /// Right-index bucket positions: per alpha-memory membership, one slot per
  /// shared right index of that memory (at alpha_mems[i].right_base + the
  /// index ordinal).
  std::vector<std::uint32_t> right_pos;
  std::vector<Token*> tokens;
  std::vector<NegJoinResult*> neg_results;
};

[[nodiscard]] inline const Value& rec_slot(const WmeRecord& r, SlotIndex i) noexcept {
  assert(i < r.nslots);
  return r.cols[i][r.row];
}

/// One constant test in the alpha network.
struct ConstTest {
  SlotIndex slot = 0;
  Predicate pred = Predicate::Eq;
  Value value;
  [[nodiscard]] bool operator==(const ConstTest&) const = default;
};

/// Intra-CE variable test: wme.slot PRED wme.other_slot.
struct IntraTest {
  SlotIndex slot = 0;
  Predicate pred = Predicate::Eq;
  SlotIndex other_slot = 0;
  [[nodiscard]] bool operator==(const IntraTest&) const = default;
};

/// OPS5 value disjunction: wme.slot must equal one of `values`.
struct DisjTest {
  SlotIndex slot = 0;
  std::vector<Value> values;
  [[nodiscard]] bool operator==(const DisjTest&) const = default;
};

/// Join test: wme.wme_slot PRED chain-wme(levels_up).token_slot.
struct JoinTest {
  SlotIndex wme_slot = 0;
  Predicate pred = Predicate::Eq;
  std::uint32_t levels_up = 0;
  SlotIndex token_slot = 0;
  [[nodiscard]] bool operator==(const JoinTest&) const = default;
};

struct AmItem {
  WmeRecord* rec = nullptr;
  std::uint32_t am_slot = 0;  ///< index of this membership in rec->alpha_mems
};

struct RightEntry {
  WmeRecord* rec = nullptr;
  std::uint32_t pos_slot = 0;  ///< absolute index into rec->right_pos
};

using RightIndex = std::unordered_map<Value, std::vector<RightEntry>, ops5::ValueHash>;
using LeftIndex = std::unordered_map<Value, std::vector<Token*>, ops5::ValueHash>;

struct AlphaMemory {
  std::vector<AmItem> items;
  std::vector<JoinNode*> join_successors;
  std::vector<BetaNode*> negative_successors;
  /// Shared right indexes, one per distinct WME key slot among the indexed
  /// successors (finalize_links). Always maintained; right_pos spans are
  /// index_slots.size() wide.
  std::vector<SlotIndex> index_slots;
  std::vector<RightIndex> right_indexes;
};

struct AlphaPattern {
  ClassIndex cls = 0;
  std::vector<ConstTest> const_tests;
  std::vector<IntraTest> intra_tests;
  std::vector<DisjTest> disj_tests;
  /// Specialization (NetworkOptions::plan): parallel to const_tests, nonzero
  /// marks a test proven always-true and skipped at match time. Empty when
  /// nothing folds. The full const_tests list stays the sharing identity, so
  /// folding never merges patterns (which could reorder activations).
  std::vector<std::uint8_t> const_skip;
  /// Specialization: a constant test is proven never-true, so the pattern is
  /// left out of patterns_by_class dispatch. The memory still exists (and
  /// stays empty forever), which is exactly what negated CEs need.
  bool dead = false;
  AlphaMemory* memory = nullptr;
  // Topology export (analysis/rete_static): creation-order id and the
  // productions whose CEs compiled into this pattern.
  std::uint32_t topo_id = 0;
  std::vector<std::uint32_t> users;
};

enum class BetaKind : std::uint8_t { Memory, Negative, Production };

struct BetaNode {
  BetaKind kind = BetaKind::Memory;
  std::vector<Token*> tokens;

  // Negative nodes only:
  AlphaMemory* amem = nullptr;
  std::vector<JoinTest> tests;
  // Hashed memories for negative nodes, symmetric with JoinNode. The right
  // side probes the amem's shared index at right_ord; the left index over the
  // node's own tokens stays private (nothing else keys them).
  int index_test = -1;
  LeftIndex left_index;
  /// Negative nodes right-unlink while they hold no tokens (no left unlink:
  /// absence semantics require left activations even with an empty amem).
  bool right_linked = true;
  std::uint32_t right_ord = 0;  ///< amem shared-index ordinal (index_slots)

  // Token stores (Memory / Negative): downstream consumers.
  std::vector<JoinNode*> join_children;
  std::vector<BetaNode*> left_children;  // NEG->NEG, NEG->P chains
  /// Shared left indexes over this store's tokens, one per distinct
  /// (levels_up, token_slot) key spec among indexed join children
  /// (finalize_links). Always maintained; member tokens' left_pos spans are
  /// left_specs.size() wide.
  struct LeftSpec {
    std::uint32_t levels_up = 0;
    SlotIndex token_slot = 0;
  };
  std::vector<LeftSpec> left_specs;
  std::vector<LeftIndex> left_indexes;

  // Production nodes only:
  const ops5::Production* production = nullptr;

  // Topology export, Negative kind only: shared id space with JoinNode.
  std::uint32_t topo_id = 0;
  std::uint32_t topo_alpha = 0;
  std::uint32_t topo_depth = 0;
  std::vector<std::uint32_t> users;
};

struct JoinNode {
  BetaNode* parent = nullptr;  // token store
  AlphaMemory* amem = nullptr;
  std::vector<JoinTest> tests;
  std::vector<BetaNode*> children;

  // Hashed-memory optimization (ParaOPS5): when the join has an equality
  // test and its parent is a plain memory, both sides are indexed by that
  // test's value so an activation probes only matching candidates. The
  // physical indexes are shared on the memories; this node holds ordinals.
  int index_test = -1;  // -1: unindexed (scan)

  /// Unlink flags: right_linked mirrors parent->tokens non-emptiness,
  /// left_linked mirrors amem->items non-emptiness (always true with
  /// NetworkOptions::unlinking off). Flags gate activations and index-upkeep
  /// charges only — the shared indexes are maintained regardless.
  bool right_linked = true;
  bool left_linked = true;
  std::uint32_t right_ord = 0;  ///< amem shared-index ordinal (index_slots)
  std::uint32_t left_ord = 0;   ///< parent shared-index ordinal (left_specs)

  // Topology export: shared id space with negative BetaNodes.
  std::uint32_t topo_id = 0;
  std::uint32_t topo_alpha = 0;
  std::uint32_t topo_depth = 0;
  std::vector<std::uint32_t> users;
};

/// Swap-with-back removal at a known position; `reposition` receives the
/// element that moved into `pos` (a no-op self-assignment when `pos` was the
/// back). Exactly the container mutation erase_one() used to perform, minus
/// its linear find.
template <typename T, typename Reposition>
void swap_erase(std::vector<T>& v, std::uint32_t pos, Reposition reposition) {
  assert(pos < v.size());
  v[pos] = v.back();
  reposition(v[pos], pos);
  v.pop_back();
}

[[nodiscard]] const WmeRecord* wme_up(const Token* t, std::uint32_t levels_up) noexcept {
  const Token* cur = t;
  for (std::uint32_t i = 0; i < levels_up; ++i) cur = cur->parent;
  return cur->wrec;
}

}  // namespace

// ---------------------------------------------------------------------------
// Impl
// ---------------------------------------------------------------------------

struct Network::Impl {
  const ops5::Program& program;
  MatchListener& listener;
  util::WorkCounters& counters;
  util::CostModel costs;
  NetworkOptions options;

  /// Specialization plan in force, or null (options.specialize off / no plan).
  [[nodiscard]] const SpecializationPlan* spec_plan() const noexcept {
    return options.specialize ? options.plan.get() : nullptr;
  }

  // Ownership pools. Nodes are created at compile time and never destroyed
  // until the network dies; tokens, records, and join results churn at match
  // time and recycle through the free lists below with their vector
  // capacities intact (the deques are the arenas — stable addresses).
  std::deque<AlphaPattern> patterns;
  std::deque<AlphaMemory> alpha_memories;
  std::deque<BetaNode> beta_nodes;
  std::deque<JoinNode> join_nodes;

  std::vector<Token*> token_free_list;
  std::deque<Token> token_pool;
  std::vector<NegJoinResult*> jr_free_list;
  std::deque<NegJoinResult> jr_pool;
  std::vector<WmeRecord*> rec_free_list;
  std::deque<WmeRecord> rec_pool;

  // Index-bucket pools: emptied buckets keep their heap blocks and are handed
  // back out when an index gains a fresh key (or is rebuilt after a relink).
  std::vector<std::vector<RightEntry>> right_bucket_pool;
  std::vector<std::vector<Token*>> left_bucket_pool;

  /// Per-class SoA value storage: cols[slot][row] for the record at `row` of
  /// the slot map `rows`. col_ptrs is sized once (arity) so its data() stays
  /// valid; entries are refreshed whenever a column reallocates.
  struct ClassStore {
    std::int64_t arity = -1;  // set by the first WME of the class
    std::vector<std::vector<Value>> cols;
    std::vector<Value*> col_ptrs;
    std::vector<WmeRecord*> rows;  // slot map: null = free row
    std::vector<std::uint32_t> free_rows;
  };
  std::vector<ClassStore> class_stores;

  /// Alpha patterns indexed by WME class for O(per-class) dispatch.
  std::vector<std::vector<AlphaPattern*>> patterns_by_class;

  /// The single pointer->record lookup per add/remove; all interior paths
  /// thread WmeRecord* instead of re-hashing the Wme pointer.
  std::unordered_map<const Wme*, WmeRecord*> wme_map;

  BetaNode* dummy_store = nullptr;
  Token* dummy_token = nullptr;

  /// Deferred-mutation guard: activations iterate memories and index buckets
  /// by reference, which is sound because propagation never re-enters the WM
  /// delta entry points. This flag turns an accidental re-entry (a listener
  /// calling back into add/remove/clear) into an immediate logic_error
  /// instead of silent iterator invalidation.
  bool in_delta = false;

  BindingTable bindings;

  // Topology export: creation-order id counter shared by joins and negative
  // nodes, plus the per-production beta chain recorded during compile().
  std::uint32_t next_join_id = 0;
  std::vector<NetworkTopology::ProductionPath> paths;

  std::vector<util::WorkUnits> chunks;

  // Live/peak token gauge (PSMSYS_OBS only): tokens_created/deleted count
  // churn, this tracks the instantaneous working set.
  std::uint64_t live_tokens = 0;
  std::uint64_t peak_live_tokens = 0;

  // Per-node activation counters (PSMSYS_OBS only), indexed by the topology
  // ids. Lifetime gauges like the peak above: clear() retains them so a whole
  // run's measured traffic can calibrate the static cost model. With
  // unlinking on, activations skipped at unlinked nodes are not counted —
  // quiescent productions legitimately read zero.
  std::vector<std::uint64_t> alpha_acts;
  std::vector<std::uint64_t> join_acts;

  Impl(const ops5::Program& prog, MatchListener& lst, util::WorkCounters& ctr,
       const util::CostModel& cm, const NetworkOptions& opt)
      : program(prog), listener(lst), counters(ctr), costs(cm), options(opt) {}

  struct DeltaGuard {
    bool& flag;
    explicit DeltaGuard(bool& f) : flag(f) {
      if (flag) throw std::logic_error("re-entrant WME mutation during match propagation");
      flag = true;
    }
    ~DeltaGuard() { flag = false; }
    DeltaGuard(const DeltaGuard&) = delete;
    DeltaGuard& operator=(const DeltaGuard&) = delete;
  };

  // ------------------------------- allocation -----------------------------

  Token* new_token(Token* parent, const Wme* wme, WmeRecord* wrec, BetaNode* node) {
    Token* t = nullptr;
    if (!token_free_list.empty()) {
      t = token_free_list.back();
      token_free_list.pop_back();
      t->children.clear();      // clear, don't reassign: keep capacity
      t->join_results.clear();
      t->left_pos.clear();
    } else {
      t = &token_pool.emplace_back();
    }
    t->parent = parent;
    t->wme = wme;
    t->wrec = wrec;
    t->node = node;
    if (parent != nullptr) {
      t->pos_in_parent = static_cast<std::uint32_t>(parent->children.size());
      parent->children.push_back(t);
    }
    if (wrec != nullptr) {
      t->pos_in_wrec = static_cast<std::uint32_t>(wrec->tokens.size());
      wrec->tokens.push_back(t);
    }
    ++counters.tokens_created;
    counters.match_cost += costs.token_op;
#if PSMSYS_OBS
    if (++live_tokens > peak_live_tokens) peak_live_tokens = live_tokens;
#endif
    return t;
  }

  void free_token(Token* t) {
    ++counters.tokens_deleted;
    counters.match_cost += costs.token_op;
#if PSMSYS_OBS
    --live_tokens;
#endif
    token_free_list.push_back(t);
  }

  /// Allocates a join result and registers it with both its owner token and
  /// the blocking WME's record (positions recorded for O(1) unlink).
  NegJoinResult* new_jr(Token* owner, WmeRecord* wrec) {
    NegJoinResult* jr = nullptr;
    if (!jr_free_list.empty()) {
      jr = jr_free_list.back();
      jr_free_list.pop_back();
    } else {
      jr = &jr_pool.emplace_back();
    }
    jr->owner = owner;
    jr->wrec = wrec;
    jr->pos_in_owner = static_cast<std::uint32_t>(owner->join_results.size());
    owner->join_results.push_back(jr);
    jr->pos_in_wrec = static_cast<std::uint32_t>(wrec->neg_results.size());
    wrec->neg_results.push_back(jr);
    counters.match_cost += costs.negative_op;
    return jr;
  }

  void free_jr(NegJoinResult* jr) {
    counters.match_cost += costs.negative_op;
    jr_free_list.push_back(jr);
  }

  WmeRecord* make_record(const Wme& w) {
    const ClassIndex cls = w.class_index();
    if (cls >= class_stores.size()) class_stores.resize(cls + 1);
    ClassStore& cs = class_stores[cls];
    const std::span<const Value> vals = w.slots();
    if (cs.arity < 0) {
      cs.arity = static_cast<std::int64_t>(vals.size());
      cs.cols.resize(vals.size());
      cs.col_ptrs.assign(vals.size(), nullptr);
    }
    if (static_cast<std::size_t>(cs.arity) != vals.size()) {
      throw std::logic_error("WME arity differs within class");
    }
    std::uint32_t row = 0;
    if (!cs.free_rows.empty()) {
      row = cs.free_rows.back();
      cs.free_rows.pop_back();
      for (std::size_t i = 0; i < vals.size(); ++i) cs.cols[i][row] = vals[i];
    } else {
      row = static_cast<std::uint32_t>(cs.rows.size());
      cs.rows.push_back(nullptr);
      for (std::size_t i = 0; i < vals.size(); ++i) {
        cs.cols[i].push_back(vals[i]);
        cs.col_ptrs[i] = cs.cols[i].data();
      }
    }
    WmeRecord* rec = nullptr;
    if (!rec_free_list.empty()) {
      rec = rec_free_list.back();
      rec_free_list.pop_back();
    } else {
      rec = &rec_pool.emplace_back();
    }
    rec->wme = &w;
    rec->cols = cs.col_ptrs.data();
    rec->row = row;
    rec->nslots = static_cast<std::uint32_t>(vals.size());
    rec->cls = cls;
    cs.rows[row] = rec;
    return rec;
  }

  void recycle_record(WmeRecord* rec) {
    ClassStore& cs = class_stores[rec->cls];
    cs.rows[rec->row] = nullptr;
    cs.free_rows.push_back(rec->row);
    ++rec->gen;  // row handle epoch: anything still naming the old pairing is stale
    rec->wme = nullptr;
    rec->cols = nullptr;
    rec->alpha_mems.clear();
    rec->right_pos.clear();
    rec->tokens.clear();
    rec->neg_results.clear();
    rec_free_list.push_back(rec);
  }

  // -------------------------- index bucket pooling ------------------------

  template <typename Map, typename Pool>
  [[nodiscard]] auto& bucket_of(Map& index, Pool& pool, const Value& key) {
    const auto [it, inserted] = index.try_emplace(key);
    if (inserted && !pool.empty()) {
      it->second = std::move(pool.back());
      pool.pop_back();
    }
    return it->second;
  }

  void release_index(RightIndex& index) {
    for (auto& entry : index) {
      entry.second.clear();
      right_bucket_pool.push_back(std::move(entry.second));
    }
    index.clear();
  }

  void release_index(LeftIndex& index) {
    for (auto& entry : index) {
      entry.second.clear();
      left_bucket_pool.push_back(std::move(entry.second));
    }
    index.clear();
  }

  // ------------------------------- matching -------------------------------

  [[nodiscard]] bool alpha_passes(const AlphaPattern& p, const WmeRecord& w) {
    for (std::size_t i = 0; i < p.const_tests.size(); ++i) {
      if (!p.const_skip.empty() && p.const_skip[i] != 0) continue;  // folded: provably true
      const ConstTest& t = p.const_tests[i];
      ++counters.alpha_tests;
      counters.match_cost += costs.alpha_test;
      if (!apply_predicate(t.pred, rec_slot(w, t.slot), t.value)) return false;
    }
    for (const auto& t : p.intra_tests) {
      ++counters.alpha_tests;
      counters.match_cost += costs.alpha_test;
      if (!apply_predicate(t.pred, rec_slot(w, t.slot), rec_slot(w, t.other_slot))) return false;
    }
    for (const auto& t : p.disj_tests) {
      ++counters.alpha_tests;
      counters.match_cost += costs.alpha_test * static_cast<util::WorkUnits>(t.values.size());
      bool any = false;
      for (const auto& v : t.values) {
        if (rec_slot(w, t.slot) == v) {
          any = true;
          break;
        }
      }
      if (!any) return false;
    }
    return true;
  }

  [[nodiscard]] bool join_passes(std::span<const JoinTest> tests, const Token* t,
                                 const WmeRecord& w) {
    ++counters.join_probes;
    counters.match_cost += costs.join_probe +
                           costs.join_test * static_cast<util::WorkUnits>(tests.size());
    for (const auto& test : tests) {
      const WmeRecord* bound = wme_up(t, test.levels_up);
      assert(bound != nullptr);
      if (!apply_predicate(test.pred, rec_slot(w, test.wme_slot),
                           rec_slot(*bound, test.token_slot))) {
        return false;
      }
    }
    return true;
  }

  // ------------------------- hashed join memories -------------------------

  [[nodiscard]] static const Value& token_key(const JoinNode& j, const Token* t) {
    const JoinTest& test = j.tests[static_cast<std::size_t>(j.index_test)];
    return rec_slot(*wme_up(t, test.levels_up), test.token_slot);
  }

  [[nodiscard]] static const Value& wme_key(const JoinNode& j, const WmeRecord& w) {
    const JoinTest& test = j.tests[static_cast<std::size_t>(j.index_test)];
    return rec_slot(w, test.wme_slot);
  }

  [[nodiscard]] static const Value& neg_left_key(const BetaNode& neg, const Token* t) {
    const JoinTest& key = neg.tests[static_cast<std::size_t>(neg.index_test)];
    return rec_slot(*wme_up(t, key.levels_up), key.token_slot);
  }

  /// Physical upkeep of a store's shared left indexes (uncharged: the
  /// per-successor join_test charges are levied by the caller per *linked*
  /// indexed child, preserving the cost model's per-successor accounting).
  void index_token(BetaNode& store, Token* t) {
    for (std::uint32_t ord = 0; ord < store.left_specs.size(); ++ord) {
      const BetaNode::LeftSpec& spec = store.left_specs[ord];
      auto& bucket = bucket_of(store.left_indexes[ord], left_bucket_pool,
                               rec_slot(*wme_up(t, spec.levels_up), spec.token_slot));
      t->left_pos[ord] = static_cast<std::uint32_t>(bucket.size());
      bucket.push_back(t);
    }
  }

  void unindex_token(BetaNode& store, Token* t) {
    for (std::uint32_t ord = 0; ord < store.left_specs.size(); ++ord) {
      const BetaNode::LeftSpec& spec = store.left_specs[ord];
      swap_erase(store.left_indexes[ord].at(
                     rec_slot(*wme_up(t, spec.levels_up), spec.token_slot)),
                 t->left_pos[ord],
                 [ord](Token* moved, std::uint32_t p) { moved->left_pos[ord] = p; });
    }
  }

  // ------------------------- unlink transitions ---------------------------
  //
  // Pure flag flips: the shared indexes are always maintained, so a link
  // transition costs O(successors) pointer writes — oscillating a memory
  // between empty and nonempty (streaming retraction churn) never rebuilds
  // anything.

  /// amem just went empty -> nonempty: successor joins resume left
  /// activations (negatives never left-unlink).
  static void left_relink_successors(AlphaMemory& am) {
    for (JoinNode* j : am.join_successors) j->left_linked = true;
  }

  /// amem just went nonempty -> empty: successor joins stop left activations.
  static void left_unlink_successors(AlphaMemory& am) {
    for (JoinNode* j : am.join_successors) j->left_linked = false;
  }

  /// `store` just gained its first token: child joins (and the store itself,
  /// when negative) resume right activations.
  static void right_relink_children(BetaNode& store) {
    for (JoinNode* j : store.join_children) j->right_linked = true;
    if (store.kind == BetaKind::Negative) store.right_linked = true;
  }

  /// `store` just lost its last token: child joins (and the store itself,
  /// when negative) stop right activations.
  static void right_unlink_children(BetaNode& store) {
    for (JoinNode* j : store.join_children) j->right_linked = false;
    if (store.kind == BetaKind::Negative) store.right_linked = false;
  }

  // ------------------------------ activation ------------------------------

  void left_activate(BetaNode& node, Token* parent, const Wme* wme, WmeRecord* wrec) {
    switch (node.kind) {
      case BetaKind::Memory: {
        Token* t = new_token(parent, wme, wrec, &node);
        t->left_pos.resize(node.left_specs.size());
        t->pos_in_node = static_cast<std::uint32_t>(node.tokens.size());
        node.tokens.push_back(t);
        if (options.unlinking && node.tokens.size() == 1) right_relink_children(node);
        index_token(node, t);
        for (JoinNode* j : node.join_children) {
          if (j->index_test >= 0 && (!options.unlinking || j->left_linked)) {
            counters.match_cost += costs.join_test;  // per-successor index upkeep
          }
        }
        for (JoinNode* j : node.join_children) {
          if (!options.unlinking || j->left_linked) join_left_activate(*j, t);
        }
        break;
      }
      case BetaKind::Negative: {
#if PSMSYS_OBS
        ++join_acts[node.topo_id];
#endif
        Token* t = new_token(parent, wme, wrec, &node);
        t->pos_in_node = static_cast<std::uint32_t>(node.tokens.size());
        node.tokens.push_back(t);
        if (options.unlinking && node.tokens.size() == 1) right_relink_children(node);
        // Compute blockers against the negative CE's alpha memory. Indexed
        // candidates come straight from the shared right-index bucket — no
        // snapshot copy: propagation cannot mutate the bucket (see the
        // in_delta guard).
        if (node.index_test >= 0) {
          counters.match_cost += costs.join_test;
          auto& left_bucket = bucket_of(node.left_index, left_bucket_pool, neg_left_key(node, t));
          t->left_pos.assign(1, static_cast<std::uint32_t>(left_bucket.size()));
          left_bucket.push_back(t);
          const RightIndex& right = node.amem->right_indexes[node.right_ord];
          const auto it = right.find(neg_left_key(node, t));
          if (it != right.end()) {
            for (const RightEntry& e : it->second) {
              if (join_passes(node.tests, t, *e.rec)) new_jr(t, e.rec);
            }
          }
        } else {
          for (const AmItem& e : node.amem->items) {
            if (join_passes(node.tests, t, *e.rec)) new_jr(t, e.rec);
          }
        }
        if (t->join_results.empty()) emit_from_store(node, t);
        break;
      }
      case BetaKind::Production: {
        Token* t = new_token(parent, wme, wrec, &node);
        t->pos_in_node = static_cast<std::uint32_t>(node.tokens.size());
        node.tokens.push_back(t);
        counters.match_cost += costs.conflict_set_op;
        listener.on_activate(*node.production, wmes_of(t));
        break;
      }
    }
  }

  /// Propagate a store token downstream (new BM token is handled inside
  /// Memory's case; this is for negative-node unblocking and NEG chains).
  void emit_from_store(BetaNode& store, Token* t) {
    for (JoinNode* j : store.join_children) {
      if (!options.unlinking || j->left_linked) join_left_activate(*j, t);
    }
    for (BetaNode* c : store.left_children) left_activate(*c, t, nullptr, nullptr);
  }

  void join_left_activate(JoinNode& j, Token* t) {
#if PSMSYS_OBS
    ++join_acts[j.topo_id];
#endif
    if (j.index_test >= 0) {
      counters.match_cost += costs.join_test;  // hash lookup
      const RightIndex& right = j.amem->right_indexes[j.right_ord];
      const auto it = right.find(token_key(j, t));
      if (it == right.end()) return;
      for (const RightEntry& e : it->second) {
        if (join_passes(j.tests, t, *e.rec)) {
          for (BetaNode* c : j.children) left_activate(*c, t, e.rec->wme, e.rec);
        }
      }
      return;
    }
    for (const AmItem& e : j.amem->items) {
      if (join_passes(j.tests, t, *e.rec)) {
        for (BetaNode* c : j.children) left_activate(*c, t, e.rec->wme, e.rec);
      }
    }
  }

  void join_right_activate(JoinNode& j, WmeRecord& w) {
#if PSMSYS_OBS
    ++join_acts[j.topo_id];
#endif
    if (j.index_test >= 0) {
      counters.match_cost += costs.join_test;  // hash lookup
      const LeftIndex& left = j.parent->left_indexes[j.left_ord];
      const auto it = left.find(wme_key(j, w));
      if (it == left.end()) return;
      for (Token* t : it->second) {
        if (join_passes(j.tests, t, w)) {
          for (BetaNode* c : j.children) left_activate(*c, t, w.wme, &w);
        }
      }
      return;
    }
    for (Token* t : j.parent->tokens) {
      // A negative store's blocked tokens are not in the active set.
      if (j.parent->kind == BetaKind::Negative && !t->join_results.empty()) continue;
      if (join_passes(j.tests, t, w)) {
        for (BetaNode* c : j.children) left_activate(*c, t, w.wme, &w);
      }
    }
  }

  void negative_right_activate(BetaNode& neg, WmeRecord& w) {
#if PSMSYS_OBS
    ++join_acts[neg.topo_id];
#endif
    if (neg.index_test >= 0) {
      counters.match_cost += costs.join_test;
      const JoinTest& key = neg.tests[static_cast<std::size_t>(neg.index_test)];
      const auto it = neg.left_index.find(rec_slot(w, key.wme_slot));
      if (it == neg.left_index.end()) return;
      for (Token* t : it->second) negative_block(neg, t, w);
      return;
    }
    for (Token* t : neg.tokens) negative_block(neg, t, w);
  }

  void negative_block(BetaNode& neg, Token* t, WmeRecord& w) {
    if (join_passes(neg.tests, t, w)) {
      if (t->join_results.empty()) delete_descendents(t);  // now blocked
      new_jr(t, &w);
    }
  }

  [[nodiscard]] std::vector<const Wme*> wmes_of(const Token* t) const {
    std::vector<const Wme*> out;
    for (const Token* cur = t; cur != nullptr; cur = cur->parent) {
      if (cur->wme != nullptr) out.push_back(cur->wme);
    }
    std::reverse(out.begin(), out.end());
    return out;
  }

  void delete_descendents(Token* t) {
    while (!t->children.empty()) delete_token_and_descendents(t->children.back());
  }

  void delete_token_and_descendents(Token* t) {
    delete_descendents(t);
    BetaNode& node = *t->node;
    if (node.kind == BetaKind::Memory) {
      unindex_token(node, t);
      for (JoinNode* j : node.join_children) {
        if (j->index_test >= 0 && (!options.unlinking || j->left_linked)) {
          counters.match_cost += costs.join_test;  // per-successor index upkeep
        }
      }
    }
    if (node.kind == BetaKind::Production) {
      counters.match_cost += costs.conflict_set_op;
      listener.on_deactivate(*node.production, wmes_of(t));
    }
    if (node.kind == BetaKind::Negative) {
      for (NegJoinResult* jr : t->join_results) {
        swap_erase(jr->wrec->neg_results, jr->pos_in_wrec,
                   [](NegJoinResult* moved, std::uint32_t p) { moved->pos_in_wrec = p; });
        free_jr(jr);
      }
      t->join_results.clear();
      if (node.index_test >= 0) {
        counters.match_cost += costs.join_test;
        swap_erase(node.left_index.at(neg_left_key(node, t)), t->left_pos[0],
                   [](Token* moved, std::uint32_t p) { moved->left_pos[0] = p; });
      }
    }
    swap_erase(node.tokens, t->pos_in_node,
               [](Token* moved, std::uint32_t p) { moved->pos_in_node = p; });
    if (options.unlinking && node.tokens.empty()) right_unlink_children(node);
    if (t->wrec != nullptr) {
      swap_erase(t->wrec->tokens, t->pos_in_wrec,
                 [](Token* moved, std::uint32_t p) { moved->pos_in_wrec = p; });
    }
    if (t->parent != nullptr) {
      swap_erase(t->parent->children, t->pos_in_parent,
                 [](Token* moved, std::uint32_t p) { moved->pos_in_parent = p; });
    }
    free_token(t);
  }

  void add_wme(const Wme& w) {
    const auto [map_it, inserted] = wme_map.try_emplace(&w, nullptr);
    if (!inserted) throw std::logic_error("WME added twice to Rete network");
    DeltaGuard guard(in_delta);
    WmeRecord* rec = make_record(w);
    map_it->second = rec;
    if (w.class_index() >= patterns_by_class.size()) return;
    for (AlphaPattern* p : patterns_by_class[w.class_index()]) {
      const util::WorkUnits before = counters.match_cost;
      if (alpha_passes(*p, *rec)) {
        ++counters.alpha_activations;
#if PSMSYS_OBS
        ++alpha_acts[p->topo_id];
#endif
        counters.match_cost += costs.alpha_mem_insert;
        AlphaMemory& am = *p->memory;
        const bool was_empty = am.items.empty();
        const auto am_slot = static_cast<std::uint32_t>(rec->alpha_mems.size());
        const auto right_base = static_cast<std::uint32_t>(rec->right_pos.size());
        rec->alpha_mems.push_back(
            {&am, static_cast<std::uint32_t>(am.items.size()), right_base});
        am.items.push_back({rec, am_slot});
        rec->right_pos.resize(right_base + am.index_slots.size());
        if (options.unlinking && was_empty) left_relink_successors(am);
        // Physical upkeep of the shared right indexes (uncharged), then the
        // per-successor upkeep charges for linked indexed successors.
        for (std::uint32_t ord = 0; ord < am.index_slots.size(); ++ord) {
          auto& bucket = bucket_of(am.right_indexes[ord], right_bucket_pool,
                                   rec_slot(*rec, am.index_slots[ord]));
          const std::uint32_t ps = right_base + ord;
          rec->right_pos[ps] = static_cast<std::uint32_t>(bucket.size());
          bucket.push_back({rec, ps});
        }
        for (const JoinNode* j : am.join_successors) {
          if (j->index_test >= 0 && (!options.unlinking || j->right_linked)) {
            counters.match_cost += costs.join_test;
          }
        }
        for (const BetaNode* neg : am.negative_successors) {
          if (neg->index_test >= 0 && (!options.unlinking || neg->right_linked)) {
            counters.match_cost += costs.join_test;
          }
        }
        for (BetaNode* neg : am.negative_successors) {
          if (!options.unlinking || neg->right_linked) negative_right_activate(*neg, *rec);
        }
        for (JoinNode* j : am.join_successors) {
          if (!options.unlinking || j->right_linked) join_right_activate(*j, *rec);
        }
      }
      if (options.record_chunks) chunks.push_back(counters.match_cost - before);
    }
  }

  void remove_wme(const Wme& w) {
    const auto map_it = wme_map.find(&w);
    if (map_it == wme_map.end()) throw std::logic_error("removing WME not in Rete network");
    DeltaGuard guard(in_delta);
    WmeRecord* rec = map_it->second;

    const util::WorkUnits before = counters.match_cost;
    for (const WmeRecord::AmRef& ref : rec->alpha_mems) {
      counters.match_cost += costs.alpha_mem_insert;
      AlphaMemory& am = *ref.am;
      swap_erase(am.items, ref.item_pos, [](const AmItem& moved, std::uint32_t p) {
        moved.rec->alpha_mems[moved.am_slot].item_pos = p;
      });
      for (std::uint32_t ord = 0; ord < am.index_slots.size(); ++ord) {
        swap_erase(am.right_indexes[ord].at(rec_slot(*rec, am.index_slots[ord])),
                   rec->right_pos[ref.right_base + ord],
                   [](const RightEntry& moved, std::uint32_t p) {
                     moved.rec->right_pos[moved.pos_slot] = p;
                   });
      }
      for (const JoinNode* j : am.join_successors) {
        if (j->index_test >= 0 && (!options.unlinking || j->right_linked)) {
          counters.match_cost += costs.join_test;
        }
      }
      for (const BetaNode* neg : am.negative_successors) {
        if (neg->index_test >= 0 && (!options.unlinking || neg->right_linked)) {
          counters.match_cost += costs.join_test;
        }
      }
      if (options.unlinking && am.items.empty()) left_unlink_successors(am);
    }
    rec->alpha_mems.clear();
    rec->right_pos.clear();

    while (!rec->tokens.empty()) delete_token_and_descendents(rec->tokens.back());

    while (!rec->neg_results.empty()) {
      NegJoinResult* jr = rec->neg_results.back();
      rec->neg_results.pop_back();
      Token* owner = jr->owner;
      swap_erase(owner->join_results, jr->pos_in_owner,
                 [](NegJoinResult* moved, std::uint32_t p) { moved->pos_in_owner = p; });
      free_jr(jr);
      if (owner->join_results.empty()) emit_from_store(*owner->node, owner);  // unblocked
    }

    wme_map.erase(map_it);
    recycle_record(rec);
    if (options.record_chunks) chunks.push_back(counters.match_cost - before);
  }

  void clear() {
    if (in_delta) throw std::logic_error("re-entrant WME mutation during match propagation");
    // Structural teardown of all match state; no listener callbacks (the
    // engine resets its conflict set alongside). Buckets, tokens, records,
    // and join results all return to their pools with capacity intact.
    std::size_t dummy_pos = 0;
    for (auto& node : beta_nodes) {
      for (Token* t : node.tokens) {
        t->join_results.clear();
        if (t == dummy_token) dummy_pos = token_free_list.size();
        free_token(t);
      }
      node.tokens.clear();
      release_index(node.left_index);
      for (auto& li : node.left_indexes) release_index(li);
    }
    for (auto& am : alpha_memories) {
      am.items.clear();
      for (auto& ri : am.right_indexes) release_index(ri);
    }
    for (auto& entry : wme_map) recycle_record(entry.second);
    wme_map.clear();
    jr_free_list.clear();
    jr_free_list.reserve(jr_pool.size());
    for (auto& jr : jr_pool) jr_free_list.push_back(&jr);
    // Restore the dummy token (freed above for counter symmetry, as before).
    dummy_store->tokens.push_back(dummy_token);
    dummy_token->pos_in_node = 0;
    dummy_token->children.clear();
    token_free_list[dummy_pos] = token_free_list.back();
    token_free_list.pop_back();
    chunks.clear();
    reset_links();
#if PSMSYS_OBS
    // Back to the post-construction state: only the dummy token is alive and
    // it is not gauge-counted (it was allocated outside new_token). The peak
    // deliberately survives clear() — it is a lifetime high-water mark.
    live_tokens = 0;
#endif
  }

  // ------------------------------- compilation ----------------------------

  AlphaPattern* build_or_share_alpha(ClassIndex cls, std::vector<ConstTest> const_tests,
                                     std::vector<IntraTest> intra_tests,
                                     std::vector<DisjTest> disj_tests) {
    // Canonical order for sharing.
    std::sort(const_tests.begin(), const_tests.end(), [](const ConstTest& a, const ConstTest& b) {
      if (a.slot != b.slot) return a.slot < b.slot;
      return static_cast<int>(a.pred) < static_cast<int>(b.pred);
    });
    std::sort(intra_tests.begin(), intra_tests.end(), [](const IntraTest& a, const IntraTest& b) {
      if (a.slot != b.slot) return a.slot < b.slot;
      return a.other_slot < b.other_slot;
    });
    std::sort(disj_tests.begin(), disj_tests.end(),
              [](const DisjTest& a, const DisjTest& b) { return a.slot < b.slot; });
    if (options.node_sharing) {
      // Over the full pattern arena, not patterns_by_class: dead-specialized
      // patterns are absent from the dispatch lists but still shareable.
      for (AlphaPattern& p : patterns) {
        if (p.cls == cls && p.const_tests == const_tests && p.intra_tests == intra_tests &&
            p.disj_tests == disj_tests) {
          return &p;
        }
      }
    }
    AlphaPattern& p = patterns.emplace_back();
    p.cls = cls;
    p.const_tests = std::move(const_tests);
    p.intra_tests = std::move(intra_tests);
    p.disj_tests = std::move(disj_tests);
    p.memory = &alpha_memories.emplace_back();
    p.topo_id = static_cast<std::uint32_t>(patterns.size() - 1);
    // Specialization: flags depend only on (class, test), so shared lookups
    // comparing tests alone still find patterns with identical flags.
    if (const SpecializationPlan* plan = spec_plan()) {
      const auto has = [&](const std::vector<SpecializationPlan::TestKey>& keys,
                           const ConstTest& t) {
        const SpecializationPlan::TestKey key{cls, t.slot, t.pred, t.value};
        return std::find(keys.begin(), keys.end(), key) != keys.end();
      };
      bool any_fold = false;
      std::vector<std::uint8_t> skip(p.const_tests.size(), 0);
      for (std::size_t i = 0; i < p.const_tests.size(); ++i) {
        if (has(plan->dead_tests, p.const_tests[i])) p.dead = true;
        if (has(plan->fold_tests, p.const_tests[i])) {
          skip[i] = 1;
          any_fold = true;
        }
      }
      if (any_fold) p.const_skip = std::move(skip);
    }
    if (!p.dead) patterns_by_class[cls].push_back(&p);
    return &p;
  }

  BetaNode* build_or_share_memory(JoinNode& parent) {
    // Shared or not, a join has at most one memory child.
    for (BetaNode* c : parent.children) {
      if (c->kind == BetaKind::Memory) return c;
    }
    BetaNode& bm = beta_nodes.emplace_back();
    bm.kind = BetaKind::Memory;
    parent.children.push_back(&bm);
    return &bm;
  }

  JoinNode* build_or_share_join(BetaNode& store, const AlphaPattern& alpha,
                                std::vector<JoinTest> tests, std::uint32_t depth) {
    AlphaMemory& amem = *alpha.memory;
    if (options.node_sharing) {
      for (JoinNode* j : store.join_children) {
        if (j->amem == &amem && j->tests == tests) return j;
      }
    }
    JoinNode& j = join_nodes.emplace_back();
    j.parent = &store;
    j.amem = &amem;
    j.tests = std::move(tests);
    j.topo_id = next_join_id++;
    j.topo_alpha = alpha.topo_id;
    j.topo_depth = depth;
    if (options.indexed_joins && store.kind == BetaKind::Memory) {
      for (std::size_t i = 0; i < j.tests.size(); ++i) {
        if (j.tests[i].pred == Predicate::Eq) {
          j.index_test = static_cast<int>(i);
          break;
        }
      }
    }
    store.join_children.push_back(&j);
    amem.join_successors.push_back(&j);
    return &j;
  }

  BetaNode* build_negative(JoinNode* join_parent, BetaNode* store_parent,
                           const AlphaPattern& alpha, std::vector<JoinTest> tests,
                           std::uint32_t depth) {
    AlphaMemory& amem = *alpha.memory;
    if (options.node_sharing) {
      const auto match = [&](BetaNode* c) {
        return c->kind == BetaKind::Negative && c->amem == &amem && c->tests == tests;
      };
      if (join_parent != nullptr) {
        for (BetaNode* c : join_parent->children) {
          if (match(c)) return c;
        }
      } else {
        for (BetaNode* c : store_parent->left_children) {
          if (match(c)) return c;
        }
      }
    }
    BetaNode& neg = beta_nodes.emplace_back();
    neg.kind = BetaKind::Negative;
    neg.amem = &amem;
    neg.tests = std::move(tests);
    neg.topo_id = next_join_id++;
    neg.topo_alpha = alpha.topo_id;
    neg.topo_depth = depth;
    if (options.indexed_joins) {
      for (std::size_t i = 0; i < neg.tests.size(); ++i) {
        if (neg.tests[i].pred == Predicate::Eq) {
          neg.index_test = static_cast<int>(i);
          break;
        }
      }
    }
    if (join_parent != nullptr) {
      join_parent->children.push_back(&neg);
    } else {
      store_parent->left_children.push_back(&neg);
    }
    amem.negative_successors.push_back(&neg);
    return &neg;
  }

  void compile(const ops5::Production& production, NetworkStats& stats) {
    if (options.shared_bindings == nullptr || !options.shared_bindings->contains(&production)) {
      bindings.emplace(&production, ops5::analyze_bindings(production));
    }

    struct BoundVar {
      std::uint32_t depth;  // chain depth of the token carrying the binding
      SlotIndex slot;
    };
    std::unordered_map<ops5::VariableId, BoundVar> bound;

    BetaNode* current_store = dummy_store;
    JoinNode* pending_join = nullptr;
    std::uint32_t chain_depth = 0;
    NetworkTopology::ProductionPath& path = paths.emplace_back();
    path.production = production.id();

    for (const auto& ce : production.lhs()) {
      // Split this CE's tests into alpha-level and join-level tests.
      std::vector<ConstTest> const_tests;
      std::vector<IntraTest> intra_tests;
      std::vector<DisjTest> disj_tests;
      std::unordered_map<ops5::VariableId, SlotIndex> ce_local;
      struct PendingJoinTest {
        SlotIndex wme_slot;
        Predicate pred;
        std::uint32_t binding_depth;
        SlotIndex token_slot;
      };
      std::vector<PendingJoinTest> join_tests_raw;

      for (const auto& test : ce.tests) {
        if (test.is_disjunction()) {
          disj_tests.push_back({test.slot, test.disjunction});
          continue;
        }
        if (!test.is_variable) {
          const_tests.push_back({test.slot, test.pred, test.constant});
          continue;
        }
        if (const auto it = bound.find(test.var); it != bound.end()) {
          join_tests_raw.push_back({test.slot, test.pred, it->second.depth, it->second.slot});
        } else if (const auto lc = ce_local.find(test.var); lc != ce_local.end()) {
          intra_tests.push_back({test.slot, test.pred, lc->second});
        } else {
          ce_local.emplace(test.var, test.slot);  // binding occurrence
        }
      }

      AlphaPattern* alpha = build_or_share_alpha(ce.cls, std::move(const_tests),
                                                 std::move(intra_tests), std::move(disj_tests));
      alpha->users.push_back(production.id());

      if (!ce.negated) {
        if (pending_join != nullptr) {
          current_store = build_or_share_memory(*pending_join);
          ++chain_depth;
          pending_join = nullptr;
        }
        // Candidate tokens at this join have depth == chain_depth.
        std::vector<JoinTest> tests;
        tests.reserve(join_tests_raw.size());
        for (const auto& r : join_tests_raw) {
          tests.push_back({r.wme_slot, r.pred, chain_depth - r.binding_depth, r.token_slot});
        }
        pending_join = build_or_share_join(*current_store, *alpha, std::move(tests), chain_depth);
        pending_join->users.push_back(production.id());
        path.nodes.push_back(pending_join->topo_id);
        // This CE's wme lands in the next token-creating node: depth+1.
        for (const auto& [var, slot] : ce_local) {
          bound.emplace(var, BoundVar{chain_depth + 1, slot});
        }
      } else {
        // Negative node tokens have depth chain_depth + 1.
        std::vector<JoinTest> tests;
        tests.reserve(join_tests_raw.size());
        for (const auto& r : join_tests_raw) {
          tests.push_back({r.wme_slot, r.pred, chain_depth + 1 - r.binding_depth, r.token_slot});
        }
        BetaNode* neg = build_negative(pending_join, current_store, *alpha, std::move(tests),
                                       chain_depth);
        neg->users.push_back(production.id());
        path.nodes.push_back(neg->topo_id);
        pending_join = nullptr;
        current_store = neg;
        ++chain_depth;
      }
    }

    BetaNode& pnode = beta_nodes.emplace_back();
    pnode.kind = BetaKind::Production;
    pnode.production = &production;
    if (pending_join != nullptr) {
      pending_join->children.push_back(&pnode);
    } else {
      current_store->left_children.push_back(&pnode);
    }
    ++stats.production_nodes;
  }

  /// Post-compile pass (sharing can extend successor lists mid-compile, so
  /// the shared-index layout is only stable once all productions are in):
  /// dedupes each alpha memory's indexed successors by WME key slot and each
  /// store's indexed join children by (levels_up, token_slot) key spec, hands
  /// every successor the ordinal of its shared index, then sets the initial
  /// link flags.
  void finalize_links() {
    for (auto& am : alpha_memories) {
      const auto slot_ord = [&am](SlotIndex slot) {
        for (std::uint32_t k = 0; k < am.index_slots.size(); ++k) {
          if (am.index_slots[k] == slot) return k;
        }
        am.index_slots.push_back(slot);
        return static_cast<std::uint32_t>(am.index_slots.size() - 1);
      };
      for (JoinNode* j : am.join_successors) {
        if (j->index_test >= 0) {
          j->right_ord = slot_ord(j->tests[static_cast<std::size_t>(j->index_test)].wme_slot);
        }
      }
      for (BetaNode* neg : am.negative_successors) {
        if (neg->index_test >= 0) {
          neg->right_ord =
              slot_ord(neg->tests[static_cast<std::size_t>(neg->index_test)].wme_slot);
        }
      }
      am.right_indexes.resize(am.index_slots.size());
    }
    for (auto& node : beta_nodes) {
      for (JoinNode* j : node.join_children) {
        if (j->index_test < 0) continue;
        const JoinTest& test = j->tests[static_cast<std::size_t>(j->index_test)];
        std::uint32_t k = 0;
        for (; k < node.left_specs.size(); ++k) {
          if (node.left_specs[k].levels_up == test.levels_up &&
              node.left_specs[k].token_slot == test.token_slot) {
            break;
          }
        }
        if (k == node.left_specs.size()) {
          node.left_specs.push_back({test.levels_up, test.token_slot});
        }
        j->left_ord = k;
      }
      node.left_indexes.resize(node.left_specs.size());
    }
    reset_links();
  }

  /// Link flags for the current (empty or post-clear) memory contents. The
  /// dummy store always holds the dummy token, so depth-0 joins stay
  /// right-linked for the network's whole life.
  void reset_links() {
    for (auto& j : join_nodes) {
      j.right_linked = !options.unlinking || !j.parent->tokens.empty();
      j.left_linked = !options.unlinking || !j.amem->items.empty();
    }
    for (auto& node : beta_nodes) {
      if (node.kind == BetaKind::Negative) {
        node.right_linked = !options.unlinking || !node.tokens.empty();
      }
    }
  }

  // ------------------------------ invariants ------------------------------

  [[nodiscard]] std::vector<std::string> check_invariants() const {
    std::vector<std::string> out;
    const auto fail = [&out](std::string msg) { out.push_back(std::move(msg)); };

    // Token trees, position back-pointers, and join-result cross-links.
    std::size_t node_idx = 0;
    std::uint64_t total_tokens = 0;
    for (const auto& node : beta_nodes) {
      const std::string where = "beta node " + std::to_string(node_idx);
      for (std::uint32_t i = 0; i < node.tokens.size(); ++i) {
        const Token* t = node.tokens[i];
        ++total_tokens;
        if (t->pos_in_node != i || t->node != &node) fail(where + ": token position desync");
        if ((t->wme == nullptr) != (t->wrec == nullptr)) fail(where + ": wme/wrec pairing");
        if (t->wrec != nullptr) {
          if (t->wrec->wme != t->wme) fail(where + ": token wrec names wrong WME");
          if (t->pos_in_wrec >= t->wrec->tokens.size() ||
              t->wrec->tokens[t->pos_in_wrec] != t) {
            fail(where + ": token wrec position desync");
          }
        }
        if (t->parent != nullptr &&
            (t->pos_in_parent >= t->parent->children.size() ||
             t->parent->children[t->pos_in_parent] != t)) {
          fail(where + ": token parent position desync");
        }
        for (std::uint32_t c = 0; c < t->children.size(); ++c) {
          if (t->children[c]->parent != t || t->children[c]->pos_in_parent != c) {
            fail(where + ": child back-pointer desync");
          }
        }
        if (node.kind != BetaKind::Negative && !t->join_results.empty()) {
          fail(where + ": join results on non-negative token");
        }
        for (std::uint32_t r = 0; r < t->join_results.size(); ++r) {
          const NegJoinResult* jr = t->join_results[r];
          if (jr->owner != t || jr->pos_in_owner != r) fail(where + ": join-result owner desync");
          if (jr->wrec == nullptr || jr->pos_in_wrec >= jr->wrec->neg_results.size() ||
              jr->wrec->neg_results[jr->pos_in_wrec] != jr) {
            fail(where + ": join-result record desync");
          }
        }
      }
      ++node_idx;
    }

    // Slot-map rows and alpha-memory membership.
    for (const auto& entry : wme_map) {
      const WmeRecord* rec = entry.second;
      if (rec->wme != entry.first) fail("record names wrong WME");
      if (rec->cls >= class_stores.size() || rec->row >= class_stores[rec->cls].rows.size() ||
          class_stores[rec->cls].rows[rec->row] != rec) {
        fail("record slot-map row desync");
      }
      for (std::uint32_t i = 0; i < rec->alpha_mems.size(); ++i) {
        const WmeRecord::AmRef& ref = rec->alpha_mems[i];
        if (ref.item_pos >= ref.am->items.size() || ref.am->items[ref.item_pos].rec != rec ||
            ref.am->items[ref.item_pos].am_slot != i) {
          fail("alpha-memory item position desync");
        }
      }
    }

    // Shared-index mirrors: always maintained, independent of link state.
    std::size_t am_idx = 0;
    for (const auto& am : alpha_memories) {
      const std::string who = "alpha memory " + std::to_string(am_idx);
      if (am.right_indexes.size() != am.index_slots.size()) {
        fail(who + ": shared right index layout desync");
      }
      for (std::uint32_t ord = 0; ord < am.index_slots.size(); ++ord) {
        std::size_t entries = 0;
        for (const auto& [key, bucket] : am.right_indexes[ord]) {
          for (std::uint32_t i = 0; i < bucket.size(); ++i) {
            ++entries;
            const RightEntry& e = bucket[i];
            if (!(rec_slot(*e.rec, am.index_slots[ord]) == key)) {
              fail(who + ": right entry under wrong key");
            }
            if (e.pos_slot >= e.rec->right_pos.size() || e.rec->right_pos[e.pos_slot] != i) {
              fail(who + ": right entry position desync");
            }
          }
        }
        if (entries != am.items.size()) fail(who + ": right index does not mirror items");
      }
      ++am_idx;
    }
    node_idx = 0;
    for (const auto& node : beta_nodes) {
      const std::string who = "beta node " + std::to_string(node_idx);
      if (node.left_indexes.size() != node.left_specs.size()) {
        fail(who + ": shared left index layout desync");
      }
      for (std::uint32_t ord = 0; ord < node.left_specs.size(); ++ord) {
        const BetaNode::LeftSpec& spec = node.left_specs[ord];
        std::size_t entries = 0;
        for (const auto& [key, bucket] : node.left_indexes[ord]) {
          for (std::uint32_t i = 0; i < bucket.size(); ++i) {
            ++entries;
            Token* t = bucket[i];
            if (t->node != &node) fail(who + ": left entry from foreign store");
            if (!(rec_slot(*wme_up(t, spec.levels_up), spec.token_slot) == key)) {
              fail(who + ": left entry under wrong key");
            }
            if (ord >= t->left_pos.size() || t->left_pos[ord] != i) {
              fail(who + ": left entry position desync");
            }
          }
        }
        if (entries != node.tokens.size()) fail(who + ": left index does not mirror tokens");
      }
      if (node.kind == BetaKind::Negative && node.index_test >= 0) {
        std::size_t entries = 0;
        for (const auto& [key, bucket] : node.left_index) {
          for (std::uint32_t i = 0; i < bucket.size(); ++i) {
            ++entries;
            Token* t = bucket[i];
            if (t->node != &node) fail(who + ": negative left entry from foreign store");
            if (!(neg_left_key(node, t) == key)) {
              fail(who + ": negative left entry under wrong key");
            }
            if (t->left_pos.empty() || t->left_pos[0] != i) {
              fail(who + ": negative left entry position desync");
            }
          }
        }
        if (entries != node.tokens.size()) {
          fail(who + ": negative left index does not mirror tokens");
        }
      }
      ++node_idx;
    }

    // Link flags mirror the opposite memory's emptiness (unlinking on) or are
    // all set (unlinking off).
    for (const auto& j : join_nodes) {
      const std::string who = "join " + std::to_string(j.topo_id);
      if (options.unlinking) {
        if (j.right_linked != !j.parent->tokens.empty()) fail(who + ": right link flag desync");
        if (j.left_linked != !j.amem->items.empty()) fail(who + ": left link flag desync");
      } else if (!j.right_linked || !j.left_linked) {
        fail(who + ": unlink flag set with unlinking disabled");
      }
    }
    for (const auto& node : beta_nodes) {
      if (node.kind != BetaKind::Negative) continue;
      const std::string who = "negative node " + std::to_string(node.topo_id);
      if (options.unlinking) {
        if (node.right_linked != !node.tokens.empty()) fail(who + ": right link flag desync");
      } else if (!node.right_linked) {
        fail(who + ": unlink flag set with unlinking disabled");
      }
    }

#if PSMSYS_OBS
    const bool dummy_alive =
        !dummy_store->tokens.empty() && dummy_store->tokens.front() == dummy_token;
    if (live_tokens != total_tokens - (dummy_alive ? 1 : 0)) {
      fail("live token gauge desync");
    }
#endif
    return out;
  }
};

// ---------------------------------------------------------------------------
// Public interface
// ---------------------------------------------------------------------------

Network::Network(const ops5::Program& program, MatchListener& listener,
                 util::WorkCounters& counters, const util::CostModel& costs,
                 const NetworkOptions& options)
    : impl_(std::make_unique<Impl>(program, listener, counters, costs, options)) {
  if (!program.frozen()) throw std::invalid_argument("Rete requires a frozen Program");
  impl_->patterns_by_class.resize(program.class_count());

  // Dummy top store with its dummy token.
  impl_->dummy_store = &impl_->beta_nodes.emplace_back();
  impl_->dummy_store->kind = BetaKind::Memory;
  impl_->dummy_token = &impl_->token_pool.emplace_back();
  impl_->dummy_token->node = impl_->dummy_store;
  impl_->dummy_store->tokens.push_back(impl_->dummy_token);

  const auto& filter = options.production_filter;
  const SpecializationPlan* plan = impl_->spec_plan();
  for (const auto& p : program.productions()) {
    if (!filter.empty() && !std::binary_search(filter.begin(), filter.end(), p.id())) continue;
    // A pruned production can never fire (some positive CE or join is
    // provably unsatisfiable), so skipping its whole chain is invisible to
    // the listener; only the work disappears.
    if (plan != nullptr && plan->prunes(p.id())) continue;
    impl_->compile(p, stats_);
  }

  stats_.alpha_patterns = impl_->patterns.size();
  stats_.alpha_memories = impl_->alpha_memories.size();
  stats_.join_nodes = impl_->join_nodes.size();
  std::size_t memories = 0;
  std::size_t negatives = 0;
  for (const auto& n : impl_->beta_nodes) {
    if (n.kind == BetaKind::Memory) ++memories;
    if (n.kind == BetaKind::Negative) ++negatives;
  }
  stats_.beta_memories = memories - 1;  // exclude the dummy store
  stats_.negative_nodes = negatives;

  impl_->alpha_acts.assign(impl_->patterns.size(), 0);
  impl_->join_acts.assign(impl_->next_join_id, 0);
  impl_->finalize_links();
}

Network::~Network() = default;

void Network::add_wme(const ops5::Wme& wme) { impl_->add_wme(wme); }

void Network::remove_wme(const ops5::Wme& wme) { impl_->remove_wme(wme); }

void Network::clear() { impl_->clear(); }

std::vector<util::WorkUnits> Network::take_chunks() {
  return std::exchange(impl_->chunks, {});
}

std::uint64_t Network::peak_live_tokens() const noexcept {
  return impl_->peak_live_tokens;
}

std::uint64_t Network::live_tokens() const noexcept { return impl_->live_tokens; }

NodeActivations Network::node_activations() const {
#if PSMSYS_OBS
  return {impl_->alpha_acts, impl_->join_acts};
#else
  return {};
#endif
}

const ops5::BindingAnalysis& Network::bindings(const ops5::Production& p) const {
  if (const BindingTable* shared = impl_->options.shared_bindings) {
    if (auto it = shared->find(&p); it != shared->end()) return it->second;
  }
  return impl_->bindings.at(&p);
}

std::vector<std::string> Network::check_invariants() const {
  return impl_->check_invariants();
}

NetworkTopology Network::topology() const {
  const auto sorted_unique = [](std::vector<std::uint32_t> v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    return v;
  };

  NetworkTopology topo;
  topo.alphas.reserve(impl_->patterns.size());
  for (const auto& p : impl_->patterns) {
    NetworkTopology::AlphaNode a;
    a.id = p.topo_id;
    a.cls = p.cls;
    a.const_tests = static_cast<std::uint32_t>(p.const_tests.size());
    a.intra_tests = static_cast<std::uint32_t>(p.intra_tests.size());
    a.disj_tests = static_cast<std::uint32_t>(p.disj_tests.size());
    a.users = sorted_unique(p.users);
    topo.alphas.push_back(std::move(a));
  }

  topo.joins.resize(impl_->next_join_id);
  for (const auto& j : impl_->join_nodes) {
    NetworkTopology::JoinNode& out = topo.joins[j.topo_id];
    out.id = j.topo_id;
    out.alpha = j.topo_alpha;
    out.depth = j.topo_depth;
    out.tests = static_cast<std::uint32_t>(j.tests.size());
    out.indexed = j.index_test >= 0;
    out.negated = false;
    out.users = sorted_unique(j.users);
  }
  for (const auto& n : impl_->beta_nodes) {
    if (n.kind != BetaKind::Negative) continue;
    NetworkTopology::JoinNode& out = topo.joins[n.topo_id];
    out.id = n.topo_id;
    out.alpha = n.topo_alpha;
    out.depth = n.topo_depth;
    out.tests = static_cast<std::uint32_t>(n.tests.size());
    out.indexed = n.index_test >= 0;
    out.negated = true;
    out.users = sorted_unique(n.users);
  }

  topo.productions = impl_->paths;
  return topo;
}

BindingTable analyze_all_bindings(const ops5::Program& program) {
  BindingTable table;
  table.reserve(program.productions().size());
  for (const auto& p : program.productions()) {
    table.emplace(&p, ops5::analyze_bindings(p));
  }
  return table;
}

}  // namespace psmsys::rete
