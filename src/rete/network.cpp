#include "rete/network.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/obs_config.hpp"

namespace psmsys::rete {

namespace {

using ops5::ClassIndex;
using ops5::Predicate;
using ops5::SlotIndex;
using ops5::Value;
using ops5::Wme;

// ---------------------------------------------------------------------------
// Network data structures
// ---------------------------------------------------------------------------

struct AlphaMemory;
struct JoinNode;
struct BetaNode;

struct NegJoinResult {
  struct Token* owner = nullptr;
  const Wme* wme = nullptr;
};

struct Token {
  Token* parent = nullptr;
  const Wme* wme = nullptr;  // null for the dummy token and neg-after-neg tokens
  BetaNode* node = nullptr;
  std::vector<Token*> children;
  std::vector<NegJoinResult*> join_results;  // only for tokens owned by negative nodes
};

/// One constant test in the alpha network.
struct ConstTest {
  SlotIndex slot = 0;
  Predicate pred = Predicate::Eq;
  Value value;
  [[nodiscard]] bool operator==(const ConstTest&) const = default;
};

/// Intra-CE variable test: wme.slot PRED wme.other_slot.
struct IntraTest {
  SlotIndex slot = 0;
  Predicate pred = Predicate::Eq;
  SlotIndex other_slot = 0;
  [[nodiscard]] bool operator==(const IntraTest&) const = default;
};

/// OPS5 value disjunction: wme.slot must equal one of `values`.
struct DisjTest {
  SlotIndex slot = 0;
  std::vector<Value> values;
  [[nodiscard]] bool operator==(const DisjTest&) const = default;
};

/// Join test: wme.wme_slot PRED chain-wme(levels_up).token_slot.
struct JoinTest {
  SlotIndex wme_slot = 0;
  Predicate pred = Predicate::Eq;
  std::uint32_t levels_up = 0;
  SlotIndex token_slot = 0;
  [[nodiscard]] bool operator==(const JoinTest&) const = default;
};

struct AlphaMemory {
  std::vector<const Wme*> items;
  std::vector<JoinNode*> join_successors;
  std::vector<BetaNode*> negative_successors;
};

struct AlphaPattern {
  ClassIndex cls = 0;
  std::vector<ConstTest> const_tests;
  std::vector<IntraTest> intra_tests;
  std::vector<DisjTest> disj_tests;
  AlphaMemory* memory = nullptr;
  // Topology export (analysis/rete_static): creation-order id and the
  // productions whose CEs compiled into this pattern.
  std::uint32_t topo_id = 0;
  std::vector<std::uint32_t> users;
};

enum class BetaKind : std::uint8_t { Memory, Negative, Production };

struct BetaNode {
  BetaKind kind = BetaKind::Memory;
  std::vector<Token*> tokens;

  // Negative nodes only:
  AlphaMemory* amem = nullptr;
  std::vector<JoinTest> tests;
  // Hashed memories for negative nodes, symmetric with JoinNode.
  int index_test = -1;
  std::unordered_map<Value, std::vector<const Wme*>, ops5::ValueHash> right_index;
  std::unordered_map<Value, std::vector<Token*>, ops5::ValueHash> left_index;

  // Token stores (Memory / Negative): downstream consumers.
  std::vector<JoinNode*> join_children;
  std::vector<BetaNode*> left_children;  // NEG->NEG, NEG->P chains

  // Production nodes only:
  const ops5::Production* production = nullptr;

  // Topology export, Negative kind only: shared id space with JoinNode.
  std::uint32_t topo_id = 0;
  std::uint32_t topo_alpha = 0;
  std::uint32_t topo_depth = 0;
  std::vector<std::uint32_t> users;
};

struct JoinNode {
  BetaNode* parent = nullptr;  // token store
  AlphaMemory* amem = nullptr;
  std::vector<JoinTest> tests;
  std::vector<BetaNode*> children;

  // Hashed-memory optimization (ParaOPS5): when the join has an equality
  // test and its parent is a plain memory, both sides are indexed by that
  // test's value so an activation probes only matching candidates.
  int index_test = -1;  // -1: unindexed (scan)
  std::unordered_map<Value, std::vector<const Wme*>, ops5::ValueHash> right_index;
  std::unordered_map<Value, std::vector<Token*>, ops5::ValueHash> left_index;

  // Topology export: shared id space with negative BetaNodes.
  std::uint32_t topo_id = 0;
  std::uint32_t topo_alpha = 0;
  std::uint32_t topo_depth = 0;
  std::vector<std::uint32_t> users;
};

template <typename T>
void erase_one(std::vector<T>& v, const T& x) {
  const auto it = std::find(v.begin(), v.end(), x);
  if (it == v.end()) throw std::logic_error("rete invariant violated: element not found");
  *it = v.back();
  v.pop_back();
}

[[nodiscard]] const Wme* wme_up(const Token* t, std::uint32_t levels_up) noexcept {
  const Token* cur = t;
  for (std::uint32_t i = 0; i < levels_up; ++i) cur = cur->parent;
  return cur->wme;
}

}  // namespace

// ---------------------------------------------------------------------------
// Impl
// ---------------------------------------------------------------------------

struct Network::Impl {
  const ops5::Program& program;
  MatchListener& listener;
  util::WorkCounters& counters;
  util::CostModel costs;
  NetworkOptions options;

  // Ownership pools. Nodes are created at compile time and never destroyed
  // until the network dies; tokens and join results churn at match time.
  std::deque<AlphaPattern> patterns;
  std::deque<AlphaMemory> alpha_memories;
  std::deque<BetaNode> beta_nodes;
  std::deque<JoinNode> join_nodes;

  std::vector<Token*> token_free_list;
  std::deque<Token> token_pool;
  std::vector<NegJoinResult*> jr_free_list;
  std::deque<NegJoinResult> jr_pool;

  /// Alpha patterns indexed by WME class for O(per-class) dispatch.
  std::vector<std::vector<AlphaPattern*>> patterns_by_class;

  /// Side data per live WME.
  struct WmeData {
    std::vector<AlphaMemory*> alpha_mems;
    std::vector<Token*> tokens;
    std::vector<NegJoinResult*> neg_results;
  };
  std::unordered_map<const Wme*, WmeData> wme_data;

  BetaNode* dummy_store = nullptr;
  Token* dummy_token = nullptr;

  BindingTable bindings;

  // Topology export: creation-order id counter shared by joins and negative
  // nodes, plus the per-production beta chain recorded during compile().
  std::uint32_t next_join_id = 0;
  std::vector<NetworkTopology::ProductionPath> paths;

  std::vector<util::WorkUnits> chunks;

  // Live/peak token gauge (PSMSYS_OBS only): tokens_created/deleted count
  // churn, this tracks the instantaneous working set.
  std::uint64_t live_tokens = 0;
  std::uint64_t peak_live_tokens = 0;

  // Per-node activation counters (PSMSYS_OBS only), indexed by the topology
  // ids. Lifetime gauges like the peak above: clear() retains them so a whole
  // run's measured traffic can calibrate the static cost model.
  std::vector<std::uint64_t> alpha_acts;
  std::vector<std::uint64_t> join_acts;

  Impl(const ops5::Program& prog, MatchListener& lst, util::WorkCounters& ctr,
       const util::CostModel& cm, const NetworkOptions& opt)
      : program(prog), listener(lst), counters(ctr), costs(cm), options(opt) {}

  // ------------------------------- allocation -----------------------------

  Token* new_token(Token* parent, const Wme* wme, BetaNode* node) {
    Token* t = nullptr;
    if (!token_free_list.empty()) {
      t = token_free_list.back();
      token_free_list.pop_back();
      *t = Token{};
    } else {
      t = &token_pool.emplace_back();
    }
    t->parent = parent;
    t->wme = wme;
    t->node = node;
    if (parent != nullptr) parent->children.push_back(t);
    if (wme != nullptr) wme_data.at(wme).tokens.push_back(t);
    ++counters.tokens_created;
    counters.match_cost += costs.token_op;
#if PSMSYS_OBS
    if (++live_tokens > peak_live_tokens) peak_live_tokens = live_tokens;
#endif
    return t;
  }

  void free_token(Token* t) {
    ++counters.tokens_deleted;
    counters.match_cost += costs.token_op;
#if PSMSYS_OBS
    --live_tokens;
#endif
    token_free_list.push_back(t);
  }

  NegJoinResult* new_jr(Token* owner, const Wme* wme) {
    NegJoinResult* jr = nullptr;
    if (!jr_free_list.empty()) {
      jr = jr_free_list.back();
      jr_free_list.pop_back();
    } else {
      jr = &jr_pool.emplace_back();
    }
    jr->owner = owner;
    jr->wme = wme;
    counters.match_cost += costs.negative_op;
    return jr;
  }

  void free_jr(NegJoinResult* jr) {
    counters.match_cost += costs.negative_op;
    jr_free_list.push_back(jr);
  }

  // ------------------------------- matching -------------------------------

  [[nodiscard]] bool alpha_passes(const AlphaPattern& p, const Wme& w) {
    for (const auto& t : p.const_tests) {
      ++counters.alpha_tests;
      counters.match_cost += costs.alpha_test;
      if (!apply_predicate(t.pred, w.slot(t.slot), t.value)) return false;
    }
    for (const auto& t : p.intra_tests) {
      ++counters.alpha_tests;
      counters.match_cost += costs.alpha_test;
      if (!apply_predicate(t.pred, w.slot(t.slot), w.slot(t.other_slot))) return false;
    }
    for (const auto& t : p.disj_tests) {
      ++counters.alpha_tests;
      counters.match_cost += costs.alpha_test * static_cast<util::WorkUnits>(t.values.size());
      bool any = false;
      for (const auto& v : t.values) {
        if (w.slot(t.slot) == v) {
          any = true;
          break;
        }
      }
      if (!any) return false;
    }
    return true;
  }

  [[nodiscard]] bool join_passes(std::span<const JoinTest> tests, const Token* t, const Wme& w) {
    ++counters.join_probes;
    counters.match_cost += costs.join_probe +
                           costs.join_test * static_cast<util::WorkUnits>(tests.size());
    for (const auto& test : tests) {
      const Wme* bound = wme_up(t, test.levels_up);
      assert(bound != nullptr);
      if (!apply_predicate(test.pred, w.slot(test.wme_slot), bound->slot(test.token_slot))) {
        return false;
      }
    }
    return true;
  }

  template <typename Fn>
  void for_each_active_token(BetaNode& store, Fn&& fn) {
    // Iterate over a snapshot: activations may append to the store.
    const std::vector<Token*> snapshot = store.tokens;
    for (Token* t : snapshot) {
      if (store.kind == BetaKind::Negative && !t->join_results.empty()) continue;
      fn(t);
    }
  }

  // ------------------------- hashed join memories -------------------------

  [[nodiscard]] static Value token_key(const JoinNode& j, const Token* t) {
    const JoinTest& test = j.tests[static_cast<std::size_t>(j.index_test)];
    return wme_up(t, test.levels_up)->slot(test.token_slot);
  }

  [[nodiscard]] static Value wme_key(const JoinNode& j, const Wme& w) {
    const JoinTest& test = j.tests[static_cast<std::size_t>(j.index_test)];
    return w.slot(test.wme_slot);
  }

  void index_token(JoinNode& j, Token* t) {
    counters.match_cost += costs.join_test;
    j.left_index[token_key(j, t)].push_back(t);
  }

  void unindex_token(JoinNode& j, Token* t) {
    counters.match_cost += costs.join_test;
    erase_one(j.left_index.at(token_key(j, t)), t);
  }

  void left_activate(BetaNode& node, Token* parent, const Wme* wme) {
    switch (node.kind) {
      case BetaKind::Memory: {
        Token* t = new_token(parent, wme, &node);
        node.tokens.push_back(t);
        for (JoinNode* j : node.join_children) {
          if (j->index_test >= 0) index_token(*j, t);
        }
        for (JoinNode* j : node.join_children) join_left_activate(*j, t);
        break;
      }
      case BetaKind::Negative: {
#if PSMSYS_OBS
        ++join_acts[node.topo_id];
#endif
        Token* t = new_token(parent, wme, &node);
        node.tokens.push_back(t);
        // Compute blockers against the negative CE's alpha memory.
        std::vector<const Wme*> candidates;
        if (node.index_test >= 0) {
          counters.match_cost += costs.join_test;
          const JoinTest& key = node.tests[static_cast<std::size_t>(node.index_test)];
          node.left_index[wme_up(t, key.levels_up)->slot(key.token_slot)].push_back(t);
          const auto it = node.right_index.find(wme_up(t, key.levels_up)->slot(key.token_slot));
          if (it != node.right_index.end()) candidates = it->second;
        } else {
          candidates = node.amem->items;
        }
        for (const Wme* w2 : candidates) {
          if (join_passes(node.tests, t, *w2)) {
            NegJoinResult* jr = new_jr(t, w2);
            t->join_results.push_back(jr);
            wme_data.at(w2).neg_results.push_back(jr);
          }
        }
        if (t->join_results.empty()) emit_from_store(node, t);
        break;
      }
      case BetaKind::Production: {
        Token* t = new_token(parent, wme, &node);
        node.tokens.push_back(t);
        counters.match_cost += costs.conflict_set_op;
        listener.on_activate(*node.production, wmes_of(t));
        break;
      }
    }
  }

  /// Propagate a store token downstream (new BM token is handled inside
  /// Memory's case; this is for negative-node unblocking and NEG chains).
  void emit_from_store(BetaNode& store, Token* t) {
    for (JoinNode* j : store.join_children) join_left_activate(*j, t);
    for (BetaNode* c : store.left_children) left_activate(*c, t, nullptr);
  }

  void join_left_activate(JoinNode& j, Token* t) {
#if PSMSYS_OBS
    ++join_acts[j.topo_id];
#endif
    // Snapshot: children activations can insert WMEs only via the engine
    // (never re-entrant here), but keep iteration stable anyway.
    std::vector<const Wme*> items;
    if (j.index_test >= 0) {
      counters.match_cost += costs.join_test;  // hash lookup
      const auto it = j.right_index.find(token_key(j, t));
      if (it != j.right_index.end()) items = it->second;
    } else {
      items = j.amem->items;
    }
    for (const Wme* w : items) {
      if (join_passes(j.tests, t, *w)) {
        for (BetaNode* c : j.children) left_activate(*c, t, w);
      }
    }
  }

  void join_right_activate(JoinNode& j, const Wme& w) {
#if PSMSYS_OBS
    ++join_acts[j.topo_id];
#endif
    if (j.index_test >= 0) {
      counters.match_cost += costs.join_test;  // hash lookup
      const auto it = j.left_index.find(wme_key(j, w));
      if (it == j.left_index.end()) return;
      const std::vector<Token*> snapshot = it->second;
      for (Token* t : snapshot) {
        if (join_passes(j.tests, t, w)) {
          for (BetaNode* c : j.children) left_activate(*c, t, &w);
        }
      }
      return;
    }
    for_each_active_token(*j.parent, [&](Token* t) {
      if (join_passes(j.tests, t, w)) {
        for (BetaNode* c : j.children) left_activate(*c, t, &w);
      }
    });
  }

  void negative_right_activate(BetaNode& neg, const Wme& w) {
#if PSMSYS_OBS
    ++join_acts[neg.topo_id];
#endif
    std::vector<Token*> snapshot;
    if (neg.index_test >= 0) {
      counters.match_cost += costs.join_test;
      const JoinTest& key = neg.tests[static_cast<std::size_t>(neg.index_test)];
      const auto it = neg.left_index.find(w.slot(key.wme_slot));
      if (it != neg.left_index.end()) snapshot = it->second;
    } else {
      snapshot = neg.tokens;
    }
    for (Token* t : snapshot) {
      if (join_passes(neg.tests, t, w)) {
        if (t->join_results.empty()) delete_descendents(t);  // now blocked
        NegJoinResult* jr = new_jr(t, &w);
        t->join_results.push_back(jr);
        wme_data.at(&w).neg_results.push_back(jr);
      }
    }
  }

  [[nodiscard]] std::vector<const Wme*> wmes_of(const Token* t) const {
    std::vector<const Wme*> out;
    for (const Token* cur = t; cur != nullptr; cur = cur->parent) {
      if (cur->wme != nullptr) out.push_back(cur->wme);
    }
    std::reverse(out.begin(), out.end());
    return out;
  }

  void delete_descendents(Token* t) {
    while (!t->children.empty()) delete_token_and_descendents(t->children.back());
  }

  void delete_token_and_descendents(Token* t) {
    delete_descendents(t);
    BetaNode& node = *t->node;
    if (node.kind == BetaKind::Memory) {
      for (JoinNode* j : node.join_children) {
        if (j->index_test >= 0) unindex_token(*j, t);
      }
    }
    if (node.kind == BetaKind::Production) {
      counters.match_cost += costs.conflict_set_op;
      listener.on_deactivate(*node.production, wmes_of(t));
    }
    if (node.kind == BetaKind::Negative) {
      for (NegJoinResult* jr : t->join_results) {
        erase_one(wme_data.at(jr->wme).neg_results, jr);
        free_jr(jr);
      }
      t->join_results.clear();
      if (node.index_test >= 0) {
        counters.match_cost += costs.join_test;
        const JoinTest& key = node.tests[static_cast<std::size_t>(node.index_test)];
        erase_one(node.left_index.at(wme_up(t, key.levels_up)->slot(key.token_slot)), t);
      }
    }
    erase_one(node.tokens, t);
    if (t->wme != nullptr) erase_one(wme_data.at(t->wme).tokens, t);
    if (t->parent != nullptr) erase_one(t->parent->children, t);
    free_token(t);
  }

  void add_wme(const Wme& w) {
    const auto [it, inserted] = wme_data.try_emplace(&w);
    if (!inserted) throw std::logic_error("WME added twice to Rete network");
    if (w.class_index() >= patterns_by_class.size()) return;
    for (AlphaPattern* p : patterns_by_class[w.class_index()]) {
      const util::WorkUnits before = counters.match_cost;
      if (alpha_passes(*p, w)) {
        ++counters.alpha_activations;
#if PSMSYS_OBS
        ++alpha_acts[p->topo_id];
#endif
        counters.match_cost += costs.alpha_mem_insert;
        p->memory->items.push_back(&w);
        it->second.alpha_mems.push_back(p->memory);
        for (JoinNode* j : p->memory->join_successors) {
          if (j->index_test >= 0) {
            counters.match_cost += costs.join_test;
            j->right_index[wme_key(*j, w)].push_back(&w);
          }
        }
        for (BetaNode* neg : p->memory->negative_successors) {
          if (neg->index_test >= 0) {
            counters.match_cost += costs.join_test;
            const JoinTest& key = neg->tests[static_cast<std::size_t>(neg->index_test)];
            neg->right_index[w.slot(key.wme_slot)].push_back(&w);
          }
        }
        for (BetaNode* neg : p->memory->negative_successors) negative_right_activate(*neg, w);
        for (JoinNode* j : p->memory->join_successors) join_right_activate(*j, w);
      }
      if (options.record_chunks) chunks.push_back(counters.match_cost - before);
    }
  }

  void remove_wme(const Wme& w) {
    const auto it = wme_data.find(&w);
    if (it == wme_data.end()) throw std::logic_error("removing WME not in Rete network");
    WmeData& data = it->second;

    const util::WorkUnits before = counters.match_cost;
    for (AlphaMemory* am : data.alpha_mems) {
      counters.match_cost += costs.alpha_mem_insert;
      erase_one(am->items, &w);
      for (JoinNode* j : am->join_successors) {
        if (j->index_test >= 0) {
          counters.match_cost += costs.join_test;
          erase_one(j->right_index.at(wme_key(*j, w)), &w);
        }
      }
      for (BetaNode* neg : am->negative_successors) {
        if (neg->index_test >= 0) {
          counters.match_cost += costs.join_test;
          const JoinTest& key = neg->tests[static_cast<std::size_t>(neg->index_test)];
          erase_one(neg->right_index.at(w.slot(key.wme_slot)), &w);
        }
      }
    }
    data.alpha_mems.clear();

    while (!data.tokens.empty()) delete_token_and_descendents(data.tokens.back());

    while (!data.neg_results.empty()) {
      NegJoinResult* jr = data.neg_results.back();
      data.neg_results.pop_back();
      Token* owner = jr->owner;
      erase_one(owner->join_results, jr);
      free_jr(jr);
      if (owner->join_results.empty()) emit_from_store(*owner->node, owner);  // unblocked
    }

    wme_data.erase(it);
    if (options.record_chunks) chunks.push_back(counters.match_cost - before);
  }

  void clear() {
    // Structural teardown of all match state; no listener callbacks (the
    // engine resets its conflict set alongside).
    for (auto& node : beta_nodes) {
      for (Token* t : node.tokens) {
        t->join_results.clear();
        free_token(t);
      }
      node.tokens.clear();
      node.left_index.clear();
      node.right_index.clear();
    }
    for (auto& am : alpha_memories) am.items.clear();
    for (auto& j : join_nodes) {
      j.left_index.clear();
      j.right_index.clear();
    }
    wme_data.clear();
    jr_free_list.clear();
    jr_pool.clear();
    // Restore the dummy token.
    dummy_store->tokens.push_back(dummy_token);
    dummy_token->children.clear();
    erase_one(token_free_list, dummy_token);
    chunks.clear();
#if PSMSYS_OBS
    // Back to the post-construction state: only the dummy token is alive and
    // it is not gauge-counted (it was allocated outside new_token). The peak
    // deliberately survives clear() — it is a lifetime high-water mark.
    live_tokens = 0;
#endif
  }

  // ------------------------------- compilation ----------------------------

  AlphaPattern* build_or_share_alpha(ClassIndex cls, std::vector<ConstTest> const_tests,
                                     std::vector<IntraTest> intra_tests,
                                     std::vector<DisjTest> disj_tests) {
    // Canonical order for sharing.
    std::sort(const_tests.begin(), const_tests.end(), [](const ConstTest& a, const ConstTest& b) {
      if (a.slot != b.slot) return a.slot < b.slot;
      return static_cast<int>(a.pred) < static_cast<int>(b.pred);
    });
    std::sort(intra_tests.begin(), intra_tests.end(), [](const IntraTest& a, const IntraTest& b) {
      if (a.slot != b.slot) return a.slot < b.slot;
      return a.other_slot < b.other_slot;
    });
    std::sort(disj_tests.begin(), disj_tests.end(),
              [](const DisjTest& a, const DisjTest& b) { return a.slot < b.slot; });
    if (options.node_sharing) {
      for (AlphaPattern* p : patterns_by_class[cls]) {
        if (p->const_tests == const_tests && p->intra_tests == intra_tests &&
            p->disj_tests == disj_tests) {
          return p;
        }
      }
    }
    AlphaPattern& p = patterns.emplace_back();
    p.cls = cls;
    p.const_tests = std::move(const_tests);
    p.intra_tests = std::move(intra_tests);
    p.disj_tests = std::move(disj_tests);
    p.memory = &alpha_memories.emplace_back();
    p.topo_id = static_cast<std::uint32_t>(patterns.size() - 1);
    patterns_by_class[cls].push_back(&p);
    return &p;
  }

  BetaNode* build_or_share_memory(JoinNode& parent) {
    if (options.node_sharing) {
      for (BetaNode* c : parent.children) {
        if (c->kind == BetaKind::Memory) return c;
      }
    } else {
      // Even without sharing, a join has at most one memory child.
      for (BetaNode* c : parent.children) {
        if (c->kind == BetaKind::Memory) return c;
      }
    }
    BetaNode& bm = beta_nodes.emplace_back();
    bm.kind = BetaKind::Memory;
    parent.children.push_back(&bm);
    return &bm;
  }

  JoinNode* build_or_share_join(BetaNode& store, const AlphaPattern& alpha,
                                std::vector<JoinTest> tests, std::uint32_t depth) {
    AlphaMemory& amem = *alpha.memory;
    if (options.node_sharing) {
      for (JoinNode* j : store.join_children) {
        if (j->amem == &amem && j->tests == tests) return j;
      }
    }
    JoinNode& j = join_nodes.emplace_back();
    j.parent = &store;
    j.amem = &amem;
    j.tests = std::move(tests);
    j.topo_id = next_join_id++;
    j.topo_alpha = alpha.topo_id;
    j.topo_depth = depth;
    if (options.indexed_joins && store.kind == BetaKind::Memory) {
      for (std::size_t i = 0; i < j.tests.size(); ++i) {
        if (j.tests[i].pred == Predicate::Eq) {
          j.index_test = static_cast<int>(i);
          break;
        }
      }
    }
    store.join_children.push_back(&j);
    amem.join_successors.push_back(&j);
    return &j;
  }

  BetaNode* build_negative(JoinNode* join_parent, BetaNode* store_parent,
                           const AlphaPattern& alpha, std::vector<JoinTest> tests,
                           std::uint32_t depth) {
    AlphaMemory& amem = *alpha.memory;
    if (options.node_sharing) {
      const auto match = [&](BetaNode* c) {
        return c->kind == BetaKind::Negative && c->amem == &amem && c->tests == tests;
      };
      if (join_parent != nullptr) {
        for (BetaNode* c : join_parent->children) {
          if (match(c)) return c;
        }
      } else {
        for (BetaNode* c : store_parent->left_children) {
          if (match(c)) return c;
        }
      }
    }
    BetaNode& neg = beta_nodes.emplace_back();
    neg.kind = BetaKind::Negative;
    neg.amem = &amem;
    neg.tests = std::move(tests);
    neg.topo_id = next_join_id++;
    neg.topo_alpha = alpha.topo_id;
    neg.topo_depth = depth;
    if (options.indexed_joins) {
      for (std::size_t i = 0; i < neg.tests.size(); ++i) {
        if (neg.tests[i].pred == Predicate::Eq) {
          neg.index_test = static_cast<int>(i);
          break;
        }
      }
    }
    if (join_parent != nullptr) {
      join_parent->children.push_back(&neg);
    } else {
      store_parent->left_children.push_back(&neg);
    }
    amem.negative_successors.push_back(&neg);
    return &neg;
  }

  void compile(const ops5::Production& production, NetworkStats& stats) {
    if (options.shared_bindings == nullptr || !options.shared_bindings->contains(&production)) {
      bindings.emplace(&production, ops5::analyze_bindings(production));
    }

    struct BoundVar {
      std::uint32_t depth;  // chain depth of the token carrying the binding
      SlotIndex slot;
    };
    std::unordered_map<ops5::VariableId, BoundVar> bound;

    BetaNode* current_store = dummy_store;
    JoinNode* pending_join = nullptr;
    std::uint32_t chain_depth = 0;
    NetworkTopology::ProductionPath& path = paths.emplace_back();
    path.production = production.id();

    for (const auto& ce : production.lhs()) {
      // Split this CE's tests into alpha-level and join-level tests.
      std::vector<ConstTest> const_tests;
      std::vector<IntraTest> intra_tests;
      std::vector<DisjTest> disj_tests;
      std::unordered_map<ops5::VariableId, SlotIndex> ce_local;
      struct PendingJoinTest {
        SlotIndex wme_slot;
        Predicate pred;
        std::uint32_t binding_depth;
        SlotIndex token_slot;
      };
      std::vector<PendingJoinTest> join_tests_raw;

      for (const auto& test : ce.tests) {
        if (test.is_disjunction()) {
          disj_tests.push_back({test.slot, test.disjunction});
          continue;
        }
        if (!test.is_variable) {
          const_tests.push_back({test.slot, test.pred, test.constant});
          continue;
        }
        if (const auto it = bound.find(test.var); it != bound.end()) {
          join_tests_raw.push_back({test.slot, test.pred, it->second.depth, it->second.slot});
        } else if (const auto lc = ce_local.find(test.var); lc != ce_local.end()) {
          intra_tests.push_back({test.slot, test.pred, lc->second});
        } else {
          ce_local.emplace(test.var, test.slot);  // binding occurrence
        }
      }

      AlphaPattern* alpha = build_or_share_alpha(ce.cls, std::move(const_tests),
                                                 std::move(intra_tests), std::move(disj_tests));
      alpha->users.push_back(production.id());

      if (!ce.negated) {
        if (pending_join != nullptr) {
          current_store = build_or_share_memory(*pending_join);
          ++chain_depth;
          pending_join = nullptr;
        }
        // Candidate tokens at this join have depth == chain_depth.
        std::vector<JoinTest> tests;
        tests.reserve(join_tests_raw.size());
        for (const auto& r : join_tests_raw) {
          tests.push_back({r.wme_slot, r.pred, chain_depth - r.binding_depth, r.token_slot});
        }
        pending_join = build_or_share_join(*current_store, *alpha, std::move(tests), chain_depth);
        pending_join->users.push_back(production.id());
        path.nodes.push_back(pending_join->topo_id);
        // This CE's wme lands in the next token-creating node: depth+1.
        for (const auto& [var, slot] : ce_local) {
          bound.emplace(var, BoundVar{chain_depth + 1, slot});
        }
      } else {
        // Negative node tokens have depth chain_depth + 1.
        std::vector<JoinTest> tests;
        tests.reserve(join_tests_raw.size());
        for (const auto& r : join_tests_raw) {
          tests.push_back({r.wme_slot, r.pred, chain_depth + 1 - r.binding_depth, r.token_slot});
        }
        BetaNode* neg = build_negative(pending_join, current_store, *alpha, std::move(tests),
                                       chain_depth);
        neg->users.push_back(production.id());
        path.nodes.push_back(neg->topo_id);
        pending_join = nullptr;
        current_store = neg;
        ++chain_depth;
      }
    }

    BetaNode& pnode = beta_nodes.emplace_back();
    pnode.kind = BetaKind::Production;
    pnode.production = &production;
    if (pending_join != nullptr) {
      pending_join->children.push_back(&pnode);
    } else {
      current_store->left_children.push_back(&pnode);
    }
    ++stats.production_nodes;
  }
};

// ---------------------------------------------------------------------------
// Public interface
// ---------------------------------------------------------------------------

Network::Network(const ops5::Program& program, MatchListener& listener,
                 util::WorkCounters& counters, const util::CostModel& costs,
                 const NetworkOptions& options)
    : impl_(std::make_unique<Impl>(program, listener, counters, costs, options)) {
  if (!program.frozen()) throw std::invalid_argument("Rete requires a frozen Program");
  impl_->patterns_by_class.resize(program.class_count());

  // Dummy top store with its dummy token.
  impl_->dummy_store = &impl_->beta_nodes.emplace_back();
  impl_->dummy_store->kind = BetaKind::Memory;
  impl_->dummy_token = &impl_->token_pool.emplace_back();
  impl_->dummy_token->node = impl_->dummy_store;
  impl_->dummy_store->tokens.push_back(impl_->dummy_token);

  const auto& filter = options.production_filter;
  for (const auto& p : program.productions()) {
    if (!filter.empty() && !std::binary_search(filter.begin(), filter.end(), p.id())) continue;
    impl_->compile(p, stats_);
  }

  stats_.alpha_patterns = impl_->patterns.size();
  stats_.alpha_memories = impl_->alpha_memories.size();
  stats_.join_nodes = impl_->join_nodes.size();
  std::size_t memories = 0;
  std::size_t negatives = 0;
  for (const auto& n : impl_->beta_nodes) {
    if (n.kind == BetaKind::Memory) ++memories;
    if (n.kind == BetaKind::Negative) ++negatives;
  }
  stats_.beta_memories = memories - 1;  // exclude the dummy store
  stats_.negative_nodes = negatives;

  impl_->alpha_acts.assign(impl_->patterns.size(), 0);
  impl_->join_acts.assign(impl_->next_join_id, 0);
}

Network::~Network() = default;

void Network::add_wme(const ops5::Wme& wme) { impl_->add_wme(wme); }

void Network::remove_wme(const ops5::Wme& wme) { impl_->remove_wme(wme); }

void Network::clear() { impl_->clear(); }

std::vector<util::WorkUnits> Network::take_chunks() {
  return std::exchange(impl_->chunks, {});
}

std::uint64_t Network::peak_live_tokens() const noexcept {
  return impl_->peak_live_tokens;
}

std::uint64_t Network::live_tokens() const noexcept { return impl_->live_tokens; }

NodeActivations Network::node_activations() const {
#if PSMSYS_OBS
  return {impl_->alpha_acts, impl_->join_acts};
#else
  return {};
#endif
}

const ops5::BindingAnalysis& Network::bindings(const ops5::Production& p) const {
  if (const BindingTable* shared = impl_->options.shared_bindings) {
    if (auto it = shared->find(&p); it != shared->end()) return it->second;
  }
  return impl_->bindings.at(&p);
}

NetworkTopology Network::topology() const {
  const auto sorted_unique = [](std::vector<std::uint32_t> v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    return v;
  };

  NetworkTopology topo;
  topo.alphas.reserve(impl_->patterns.size());
  for (const auto& p : impl_->patterns) {
    NetworkTopology::AlphaNode a;
    a.id = p.topo_id;
    a.cls = p.cls;
    a.const_tests = static_cast<std::uint32_t>(p.const_tests.size());
    a.intra_tests = static_cast<std::uint32_t>(p.intra_tests.size());
    a.disj_tests = static_cast<std::uint32_t>(p.disj_tests.size());
    a.users = sorted_unique(p.users);
    topo.alphas.push_back(std::move(a));
  }

  topo.joins.resize(impl_->next_join_id);
  for (const auto& j : impl_->join_nodes) {
    NetworkTopology::JoinNode& out = topo.joins[j.topo_id];
    out.id = j.topo_id;
    out.alpha = j.topo_alpha;
    out.depth = j.topo_depth;
    out.tests = static_cast<std::uint32_t>(j.tests.size());
    out.indexed = j.index_test >= 0;
    out.negated = false;
    out.users = sorted_unique(j.users);
  }
  for (const auto& n : impl_->beta_nodes) {
    if (n.kind != BetaKind::Negative) continue;
    NetworkTopology::JoinNode& out = topo.joins[n.topo_id];
    out.id = n.topo_id;
    out.alpha = n.topo_alpha;
    out.depth = n.topo_depth;
    out.tests = static_cast<std::uint32_t>(n.tests.size());
    out.indexed = n.index_test >= 0;
    out.negated = true;
    out.users = sorted_unique(n.users);
  }

  topo.productions = impl_->paths;
  return topo;
}

BindingTable analyze_all_bindings(const ops5::Program& program) {
  BindingTable table;
  table.reserve(program.productions().size());
  for (const auto& p : program.productions()) {
    table.emplace(&p, ops5::analyze_bindings(p));
  }
  return table;
}

}  // namespace psmsys::rete
