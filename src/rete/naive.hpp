#pragma once

// Naive (stateless) matcher: recomputes the complete set of satisfied
// productions from scratch after every working-memory change.
//
// Two purposes:
//  1. Test oracle — after any add/remove sequence its match set must equal
//     the Rete network's conflict set exactly (property-tested).
//  2. Baseline analog — the paper's original SPAM ran on an "unoptimized
//     Lisp-based OPS5"; porting to ParaOPS5 (Rete, C) gave a 10-20x speedup
//     (Section 6). bench_rete_vs_naive reproduces that ratio as
//     naive-match-cost / rete-match-cost on the same workload.

#include <memory>
#include <vector>

#include "ops5/production.hpp"
#include "rete/matcher.hpp"
#include "util/counters.hpp"

namespace psmsys::rete {

class NaiveMatcher final : public Matcher {
 public:
  NaiveMatcher(const ops5::Program& program, MatchListener& listener,
               util::WorkCounters& counters, const util::CostModel& costs = {});
  ~NaiveMatcher() override;

  void add_wme(const ops5::Wme& wme) override;
  void remove_wme(const ops5::Wme& wme) override;
  void clear() override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace psmsys::rete
