#pragma once

// A from-scratch Rete match network (Forgy 1982, in the style of Doorenbos'
// "Production Matching for Large Learning Systems"), the algorithm ParaOPS5
// parallelizes (Section 3.1 of the paper).
//
// Structure:
//   alpha network — per-class list of AlphaPatterns (constant tests plus
//     intra-CE variable-equality tests) feeding AlphaMemories;
//   beta network — BetaMemory / JoinNode / NegativeNode / ProductionNode
//     chains with token-tree removal and optional node sharing.
//
// Instrumentation: every elementary operation charges the engine's
// WorkCounters via the CostModel, and each (WME-change × alpha-pattern)
// cascade is recorded as one *match chunk*. Chunks are the unit ParaOPS5
// distributes over dedicated match processes (its subtasks "execute only
// about 100 instructions"), so the psm match-parallelism model bin-packs
// exactly these chunk costs.

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "ops5/bindings.hpp"
#include "ops5/production.hpp"
#include "ops5/wme.hpp"
#include "rete/matcher.hpp"
#include "util/counters.hpp"

namespace psmsys::rete {

/// Compile-time shape of the network, exported for the whole-rule-base static
/// analyzer (analysis/rete_static). Node ids are creation-order indices, so
/// for a fixed frozen program the topology is byte-deterministic. `users`
/// lists are sorted ascending and deduplicated.
struct NetworkTopology {
  struct AlphaNode {
    std::uint32_t id = 0;
    ops5::ClassIndex cls = 0;
    std::uint32_t const_tests = 0;
    std::uint32_t intra_tests = 0;
    std::uint32_t disj_tests = 0;
    std::vector<std::uint32_t> users;  ///< production ids testing this pattern
  };
  /// One beta-level two-input node: a positive join or a negative node.
  struct JoinNode {
    std::uint32_t id = 0;
    std::uint32_t alpha = 0;    ///< AlphaNode id feeding the right input
    std::uint32_t depth = 0;    ///< CEs resolved before this node (0-based)
    std::uint32_t tests = 0;    ///< variable consistency tests at this node
    bool indexed = false;       ///< hashed-memory equality index in effect
    bool negated = false;
    std::vector<std::uint32_t> users;  ///< production ids sharing this node
  };
  /// Per-production chain through the beta network, one node id per LHS CE
  /// in source order. Entries index into `joins`.
  struct ProductionPath {
    std::uint32_t production = 0;
    std::vector<std::uint32_t> nodes;
  };
  std::vector<AlphaNode> alphas;
  std::vector<JoinNode> joins;
  std::vector<ProductionPath> productions;
};

/// Per-production binding analyses keyed by production identity — the
/// compile-time artifact a multi-session server shares across every network
/// built over one frozen program (the analyses depend only on the production
/// source, never on working memory).
using BindingTable = std::unordered_map<const ops5::Production*, ops5::BindingAnalysis>;

/// Analyze every production of a frozen program once, for use as
/// NetworkOptions::shared_bindings by all networks compiled over it.
[[nodiscard]] BindingTable analyze_all_bindings(const ops5::Program& program);

/// Compile-time network specialization plan, produced by the value-domain
/// abstract interpreter (analysis/value_domain) and consumed here. Pure data:
/// the network trusts the plan blindly, soundness is the producer's proof
/// obligation (every plan ships with a machine-checkable
/// SpecializationCertificate on the analysis side).
///
/// Three transformation kinds, all firing-log invisible by construction:
///   - pruned productions are never compiled (their production node could
///     never activate, so the listener never hears from them either way);
///   - dead constant tests mark their whole alpha pattern dead: the pattern
///     and its memory are still built (negated CEs may reference them — an
///     empty alpha memory means the absence test holds), but the pattern is
///     dropped from the per-class dispatch list, so WM traffic never charges
///     its tests;
///   - foldable constant tests (provably true for every WME the rule base
///     can produce) are skipped during alpha evaluation. The folded test
///     stays part of the pattern's sharing identity, so specialization never
///     merges patterns and cannot perturb activation order.
struct SpecializationPlan {
  /// One constant alpha-level test, identified structurally. A key applies to
  /// every alpha pattern of `cls` containing this exact test, which is sound
  /// because the justifying domains are per-(class, slot), never per-CE.
  struct TestKey {
    ops5::ClassIndex cls = 0;
    ops5::SlotIndex slot = 0;
    ops5::Predicate pred = ops5::Predicate::Eq;
    ops5::Value value;
    [[nodiscard]] bool operator==(const TestKey& o) const noexcept {
      return cls == o.cls && slot == o.slot && pred == o.pred && value == o.value;
    }
  };
  /// Production ids that can never fire (dead positive CE or infeasible
  /// join), sorted ascending.
  std::vector<std::uint32_t> pruned_productions;
  /// Constant tests no WME of their class can ever pass.
  std::vector<TestKey> dead_tests;
  /// Constant tests every WME of their class is guaranteed to pass.
  std::vector<TestKey> fold_tests;

  [[nodiscard]] bool prunes(std::uint32_t production_id) const noexcept {
    return std::binary_search(pruned_productions.begin(), pruned_productions.end(),
                              production_id);
  }
  [[nodiscard]] bool empty() const noexcept {
    return pruned_productions.empty() && dead_tests.empty() && fold_tests.empty();
  }
};

struct NetworkOptions {
  /// Share alpha memories and beta-level nodes between productions with
  /// common prefixes (standard Rete sharing; disable for the ablation bench).
  bool node_sharing = true;
  /// Record per-chunk match costs (needed by the match-parallelism model).
  bool record_chunks = true;
  /// Hash-index join memories on their first equality test (ParaOPS5's
  /// hashed-memory optimization): a join activation probes only candidates
  /// whose key matches instead of scanning the whole opposite memory.
  /// Disable for the ablation bench.
  bool indexed_joins = true;
  /// Doorenbos-style left/right node unlinking: a join whose beta-memory
  /// input is empty detaches from its alpha memory's activation fan-out
  /// (right unlinking), and a join whose alpha memory is empty detaches from
  /// token propagation (left unlinking), so WM traffic through quiescent
  /// productions costs ~nothing. Negative nodes only right-unlink — an empty
  /// alpha memory means the absence test holds and tokens must still be
  /// created. The hash indexes live on the memories (one per distinct key
  /// slot) and are always maintained, so a link transition is a pure flag
  /// flip and unlinking cannot perturb candidate order: match results,
  /// firing logs, and conflict-set deltas are bit-identical either way.
  /// Per-node activation counts and match-cost charges drop for unlinked
  /// nodes, which is the measurable point. Disable for the ablation bench.
  bool unlinking = true;
  /// Compile only the productions with these ids (sorted ascending); empty =
  /// all of them. The partition networks of rete::ParallelMatcher use this to
  /// split one frozen program into disjoint sub-networks.
  std::vector<std::uint32_t> production_filter;
  /// Precomputed binding analyses for (a superset of) the program's
  /// productions. Not owned: the table must outlive the network. When set,
  /// compilation reuses these entries instead of re-running analyze_bindings
  /// per production per network — the compile-once half of the serve-time
  /// split between the shared rule base and per-session match state.
  const BindingTable* shared_bindings = nullptr;
  /// Apply `plan` at compile time: skip pruned productions, drop dead alpha
  /// patterns from dispatch, skip folded constant tests. No-op when false or
  /// when `plan` is null/empty. Match results and delta logs are identical
  /// with specialization on or off (the rete_fuzz_test / match_oracle_test
  /// spec axis enforces byte-equality) — only the work shrinks.
  bool specialize = false;
  /// The proof-carrying plan; shared so reconfigure()/ParallelMatcher option
  /// copies never dangle. Ignored unless `specialize` is set.
  std::shared_ptr<const SpecializationPlan> plan;
};

class Network final : public Matcher {
 public:
  /// Compiles the network for all productions in `program`. The program must
  /// be frozen and must outlive the network. Costs are charged to `counters`.
  Network(const ops5::Program& program, MatchListener& listener,
          util::WorkCounters& counters, const util::CostModel& costs = {},
          const NetworkOptions& options = {});
  ~Network() override;

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  void add_wme(const ops5::Wme& wme) override;
  void remove_wme(const ops5::Wme& wme) override;
  void clear() override;

  [[nodiscard]] NetworkStats stats() const noexcept override { return stats_; }

  /// Match chunks recorded since the last take_chunks() call. Each entry is
  /// the work-unit cost of one independent alpha-pattern cascade.
  [[nodiscard]] std::vector<util::WorkUnits> take_chunks() override;

  /// Peak number of simultaneously-live beta-memory tokens over the network's
  /// lifetime — the working-set gauge behind the paper's memory-contention
  /// discussion. Always 0 when built with PSMSYS_OBS=0.
  [[nodiscard]] std::uint64_t peak_live_tokens() const noexcept override;

  /// Currently-live beta-memory tokens (instantaneous working-set reading).
  /// Always 0 when built with PSMSYS_OBS=0.
  [[nodiscard]] std::uint64_t live_tokens() const noexcept override;

  /// Lifetime per-node activation counts indexed by the topology() node ids.
  /// Empty when built with PSMSYS_OBS=0.
  [[nodiscard]] NodeActivations node_activations() const override;

  /// Binding analysis computed during compilation, exposed for RHS evaluation.
  [[nodiscard]] const ops5::BindingAnalysis& bindings(const ops5::Production& p) const override;

  /// Structural self-check for the differential tests: every position
  /// back-pointer, index/memory mirror, slot-map row, and (when unlinking is
  /// on) link flag is validated against the authoritative lists. Returns
  /// human-readable violation descriptions, empty when consistent.
  [[nodiscard]] std::vector<std::string> check_invariants() const override;

  /// Compile-time network shape with per-node sharing (user) information.
  /// Deterministic for a fixed frozen program and options.
  [[nodiscard]] NetworkTopology topology() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  NetworkStats stats_;
};

}  // namespace psmsys::rete
