#include "rete/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <iterator>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

#include "obs/obs_config.hpp"

namespace psmsys::rete {

namespace {

/// Static per-production match weight for the LPT partitioner: a crude but
/// deterministic proxy for per-WME cascade cost (tests to run + joins to
/// probe). Exact values only steer balance; correctness never depends on them.
std::uint64_t production_weight(const ops5::Production& p) {
  std::uint64_t w = 1;
  for (const auto& ce : p.lhs()) w += 2 + ce.tests.size();
  return w;
}

util::WorkCounters counters_diff(const util::WorkCounters& after,
                                 const util::WorkCounters& before) noexcept {
  util::WorkCounters d;
  d.match_cost = after.match_cost - before.match_cost;
  d.alpha_tests = after.alpha_tests - before.alpha_tests;
  d.alpha_activations = after.alpha_activations - before.alpha_activations;
  d.join_probes = after.join_probes - before.join_probes;
  d.tokens_created = after.tokens_created - before.tokens_created;
  d.tokens_deleted = after.tokens_deleted - before.tokens_deleted;
  d.resolve_cost = after.resolve_cost - before.resolve_cost;
  d.rhs_cost = after.rhs_cost - before.rhs_cost;
  d.firings = after.firings - before.firings;
  d.rhs_actions = after.rhs_actions - before.rhs_actions;
  d.wmes_added = after.wmes_added - before.wmes_added;
  d.wmes_removed = after.wmes_removed - before.wmes_removed;
  d.cycles = after.cycles - before.cycles;
  return d;
}

/// One buffered conflict-set delta. WMEs are kept by pointer (they are owned
/// by the engine's working memory) but ordered by timetag so the canonical
/// merge is independent of allocation addresses.
struct Delta {
  const ops5::Production* production = nullptr;
  std::vector<const ops5::Wme*> wmes;
  bool activate = false;
};

bool delta_less(const Delta& a, const Delta& b) {
  if (a.production->id() != b.production->id()) return a.production->id() < b.production->id();
  const std::size_t n = std::min(a.wmes.size(), b.wmes.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a.wmes[i]->timetag() != b.wmes[i]->timetag())
      return a.wmes[i]->timetag() < b.wmes[i]->timetag();
  }
  if (a.wmes.size() != b.wmes.size()) return a.wmes.size() < b.wmes.size();
  return a.activate && !b.activate;  // activations before deactivations
}

/// Same instantiation key: production plus matched timetags (timetags are
/// unique per WME, so timetag equality implies WME identity).
bool delta_same_key(const Delta& a, const Delta& b) {
  if (a.production->id() != b.production->id()) return false;
  if (a.wmes.size() != b.wmes.size()) return false;
  for (std::size_t i = 0; i < a.wmes.size(); ++i) {
    if (a.wmes[i]->timetag() != b.wmes[i]->timetag()) return false;
  }
  return true;
}

/// Buffers a partition network's deltas until the barrier.
struct DeltaBuffer final : MatchListener {
  std::vector<Delta> deltas;

  void on_activate(const ops5::Production& production,
                   std::span<const ops5::Wme* const> wmes) override {
    deltas.push_back({&production, {wmes.begin(), wmes.end()}, true});
  }
  void on_deactivate(const ops5::Production& production,
                     std::span<const ops5::Wme* const> wmes) override {
    deltas.push_back({&production, {wmes.begin(), wmes.end()}, false});
  }
};

}  // namespace

struct ParallelMatcher::Impl {
  struct Partition {
    DeltaBuffer buffer;
    util::WorkCounters counters;       // charged by the owning worker only
    util::WorkCounters folded;         // snapshot already folded into shared
    std::unique_ptr<Network> network;  // compiled over this partition's ids
    std::uint64_t busy_ns = 0;         // written by owner, read after barrier
  };

  MatchListener& listener;
  util::WorkCounters& shared_counters;
  std::vector<Partition> partitions;
  std::unordered_map<std::uint32_t, std::size_t> owner_of;  // production id
  std::vector<util::WorkUnits> merged_chunks;
  std::vector<Delta> merged;
  std::vector<Delta> net_merged;
  MatchThreadStats stats;

  // --- pool state (epoch barrier over partitions.size() - 1 workers) ---
  enum class Op : std::uint8_t { Add, Remove };
  std::mutex mutex;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  std::atomic<std::uint64_t> epoch{0};
  std::atomic<std::size_t> remaining{0};
  std::atomic<bool> stop{false};
  Op pending_op = Op::Add;                 // published by the epoch store
  const ops5::Wme* pending_wme = nullptr;  // published by the epoch store
  std::vector<std::exception_ptr> errors;  // slot per partition, owner-written
  std::vector<std::thread> workers;

  explicit Impl(MatchListener& l, util::WorkCounters& c) : listener(l), shared_counters(c) {}

  /// Run one WME operation against partition `k` on the calling thread,
  /// capturing any exception into the partition's error slot.
  void run_partition(std::size_t k) {
    try {
#if PSMSYS_OBS
      const auto t0 = std::chrono::steady_clock::now();
#endif
      Partition& part = partitions[k];
      if (pending_op == Op::Add) {
        part.network->add_wme(*pending_wme);
      } else {
        part.network->remove_wme(*pending_wme);
      }
#if PSMSYS_OBS
      part.busy_ns += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                               t0)
              .count());
#endif
    } catch (...) {
      errors[k] = std::current_exception();
    }
  }

  void worker_loop(std::size_t k) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::uint64_t target = seen + 1;
      // Bounded spin keeps dispatch latency low when cores are free; the cv
      // fallback keeps the pool correct (and schedulable) on loaded or
      // single-core hosts.
      for (int i = 0; i < 4096 && epoch.load(std::memory_order_acquire) < target; ++i) {
        std::this_thread::yield();
      }
      if (epoch.load(std::memory_order_acquire) < target) {
        std::unique_lock lock(mutex);
        work_cv.wait(lock, [&] {
          return stop.load(std::memory_order_acquire) ||
                 epoch.load(std::memory_order_acquire) >= target;
        });
      }
      if (stop.load(std::memory_order_acquire)) return;
      seen = target;
      run_partition(k);
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Pair the final decrement with the dispatcher's cv wait (see
        // dispatch() for why the empty critical section is required).
        { std::lock_guard lock(mutex); }
        done_cv.notify_one();
      }
    }
  }

  /// Run `op` on every partition (workers take partitions 1..N-1, the caller
  /// takes partition 0), wait for the barrier, then merge deltas in canonical
  /// order and forward them to the engine's listener.
  void dispatch(Op op, const ops5::Wme& wme) {
    ++stats.ops;
#if PSMSYS_OBS
    const auto t0 = std::chrono::steady_clock::now();
#endif
    pending_op = op;
    pending_wme = &wme;
    if (!workers.empty()) {
      remaining.store(workers.size(), std::memory_order_relaxed);
      epoch.fetch_add(1, std::memory_order_release);
      // Empty critical section: a worker that evaluated the wait predicate
      // just before the epoch bump cannot block until we release the mutex,
      // so the notify below can never be lost.
      { std::lock_guard lock(mutex); }
      work_cv.notify_all();
    }
    run_partition(0);
    if (!workers.empty()) {
      for (int i = 0; i < 4096 && remaining.load(std::memory_order_acquire) > 0; ++i) {
        std::this_thread::yield();
      }
      if (remaining.load(std::memory_order_acquire) > 0) {
        std::unique_lock lock(mutex);
        done_cv.wait(lock, [&] { return remaining.load(std::memory_order_acquire) == 0; });
      }
    }
#if PSMSYS_OBS
    stats.wall_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() - t0)
            .count());
#endif
    for (std::size_t k = 0; k < partitions.size(); ++k) {
      if (errors[k]) {
        auto err = std::exchange(errors[k], nullptr);
        discard_pending();
        std::rethrow_exception(err);
      }
    }
    fold();
    merge_and_forward();
  }

  /// Fold each partition's counter growth and chunk list into the shared
  /// engine counters / merged chunk list (partition order, so the result is
  /// deterministic).
  void fold() {
    for (Partition& part : partitions) {
#if PSMSYS_OBS
      stats.busy_ns += part.busy_ns;
      part.busy_ns = 0;
#endif
      shared_counters += counters_diff(part.counters, part.folded);
      part.folded = part.counters;
      auto chunks = part.network->take_chunks();
      merged_chunks.insert(merged_chunks.end(), chunks.begin(), chunks.end());
    }
  }

  /// Canonical merge: sort the operation's deltas by (production id,
  /// timetags, add-first), then cancel transient activate/deactivate pairs of
  /// the same instantiation. The raw delta multiset is NOT layout-invariant —
  /// a WME matching both a positive and a negated condition of one production
  /// can transiently activate it or not depending on intra-network
  /// propagation order, which differs between partition layouts. The *net*
  /// delta per (production, timetags) key is a pure function of the
  /// production's before/after match state, so forwarding nets in sorted
  /// order yields the identical listener sequence for every thread count.
  void merge_and_forward() {
    merged.clear();
    for (Partition& part : partitions) {
      merged.insert(merged.end(), std::make_move_iterator(part.buffer.deltas.begin()),
                    std::make_move_iterator(part.buffer.deltas.end()));
      part.buffer.deltas.clear();
    }
    std::sort(merged.begin(), merged.end(), delta_less);
    net_merged.clear();
    for (std::size_t i = 0; i < merged.size();) {
      std::size_t j = i;
      std::ptrdiff_t net = 0;
      while (j < merged.size() && delta_same_key(merged[i], merged[j])) {
        net += merged[j].activate ? 1 : -1;
        ++j;
      }
      // The sort puts the group's activations first, so the first `net`
      // entries (net > 0) or the last `-net` entries (net < 0) have the
      // surviving polarity.
      for (std::ptrdiff_t k = 0; k < net; ++k) net_merged.push_back(std::move(merged[i + k]));
      for (std::ptrdiff_t k = net; k < 0; ++k) net_merged.push_back(std::move(merged[j + k]));
      i = j;
    }
    merged.clear();
    for (const Delta& d : net_merged) {
      if (d.activate) {
        listener.on_activate(*d.production, d.wmes);
      } else {
        listener.on_deactivate(*d.production, d.wmes);
      }
    }
    net_merged.clear();
  }

  /// After a partition threw, drop whatever the other partitions buffered so
  /// a later operation does not replay half of the failed one. The engine
  /// treats matcher exceptions as fatal for the task (undo-log rollback), so
  /// no listener call may escape a failed dispatch.
  void discard_pending() {
    for (Partition& part : partitions) {
      part.buffer.deltas.clear();
#if PSMSYS_OBS
      stats.busy_ns += part.busy_ns;
      part.busy_ns = 0;
#endif
      shared_counters += counters_diff(part.counters, part.folded);
      part.folded = part.counters;
      auto chunks = part.network->take_chunks();
      merged_chunks.insert(merged_chunks.end(), chunks.begin(), chunks.end());
    }
  }

  void shutdown() {
    if (workers.empty()) return;
    {
      std::lock_guard lock(mutex);
      stop.store(true, std::memory_order_release);
    }
    work_cv.notify_all();
    for (auto& w : workers) w.join();
    workers.clear();
  }
};

ParallelMatcher::ParallelMatcher(const ops5::Program& program, MatchListener& listener,
                                 util::WorkCounters& counters, const util::CostModel& costs,
                                 const ParallelMatcherOptions& options)
    : impl_(std::make_unique<Impl>(listener, counters)) {
  if (options.threads == 0) {
    throw std::invalid_argument("ParallelMatcher: threads must be >= 1");
  }
  const auto productions = program.productions();
  const std::size_t want = std::max<std::size_t>(1, std::min(options.threads, productions.size()));

  // Deterministic greedy LPT: heaviest production first, into the lightest
  // partition (lowest index on ties). Depends only on the frozen program and
  // the (optional) analyzer-supplied cost vector.
  const auto weight_of = [&](std::uint32_t idx) -> double {
    const std::uint32_t id = productions[idx].id();
    if (id < options.production_costs.size() && options.production_costs[id] > 0.0) {
      return options.production_costs[id];
    }
    return static_cast<double>(production_weight(productions[idx]));
  };
  std::vector<std::uint32_t> order(productions.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<std::uint32_t>(i);
  std::stable_sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return weight_of(a) > weight_of(b);
  });
  std::vector<double> load(want, 0.0);
  std::vector<std::vector<std::uint32_t>> members(want);
  for (const std::uint32_t idx : order) {
    const std::size_t k = static_cast<std::size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    load[k] += weight_of(idx);
    members[k].push_back(productions[idx].id());
    impl_->owner_of.emplace(productions[idx].id(), k);
  }

  impl_->partitions = std::vector<Impl::Partition>(want);
  impl_->errors.resize(want);
  impl_->stats.threads = want;
  for (std::size_t k = 0; k < want; ++k) {
    NetworkOptions net = options.network;
    net.production_filter = members[k];
    std::sort(net.production_filter.begin(), net.production_filter.end());
    // A partition with an empty filter would compile *every* production
    // (empty means "all"); `want` <= production count prevents that, except
    // for the degenerate empty program, where compiling "all" is still none.
    impl_->partitions[k].network = std::make_unique<Network>(
        program, impl_->partitions[k].buffer, impl_->partitions[k].counters, costs, net);
  }
  // Compilation charged partition-local counters; surface it immediately so
  // the engine's view matches the serial network's timing of those costs.
  impl_->fold();

  impl_->workers.reserve(want - 1);
  for (std::size_t k = 1; k < want; ++k) {
    impl_->workers.emplace_back([impl = impl_.get(), k] { impl->worker_loop(k); });
  }
}

ParallelMatcher::~ParallelMatcher() { impl_->shutdown(); }

void ParallelMatcher::add_wme(const ops5::Wme& wme) { impl_->dispatch(Impl::Op::Add, wme); }

void ParallelMatcher::remove_wme(const ops5::Wme& wme) { impl_->dispatch(Impl::Op::Remove, wme); }

void ParallelMatcher::clear() {
  // Serial: clear() runs between tasks, never on the match hot path. The
  // preceding barrier makes the partitions safe to touch from this thread.
  for (auto& part : impl_->partitions) part.network->clear();
  impl_->fold();
  impl_->merged_chunks.clear();
}

NetworkStats ParallelMatcher::stats() const noexcept {
  NetworkStats total;
  for (const auto& part : impl_->partitions) {
    const NetworkStats s = part.network->stats();
    total.alpha_patterns += s.alpha_patterns;
    total.alpha_memories += s.alpha_memories;
    total.beta_memories += s.beta_memories;
    total.join_nodes += s.join_nodes;
    total.negative_nodes += s.negative_nodes;
    total.production_nodes += s.production_nodes;
  }
  return total;
}

std::vector<util::WorkUnits> ParallelMatcher::take_chunks() {
  return std::exchange(impl_->merged_chunks, {});
}

std::uint64_t ParallelMatcher::peak_live_tokens() const noexcept {
  std::uint64_t total = 0;
  for (const auto& part : impl_->partitions) total += part.network->peak_live_tokens();
  return total;
}

std::uint64_t ParallelMatcher::live_tokens() const noexcept {
  std::uint64_t total = 0;
  for (const auto& part : impl_->partitions) total += part.network->live_tokens();
  return total;
}

const ops5::BindingAnalysis& ParallelMatcher::bindings(const ops5::Production& p) const {
  const auto it = impl_->owner_of.find(p.id());
  if (it == impl_->owner_of.end()) {
    throw std::logic_error("ParallelMatcher: production not compiled");
  }
  return impl_->partitions[it->second].network->bindings(p);
}

std::vector<std::string> ParallelMatcher::check_invariants() const {
  std::vector<std::string> out;
  std::size_t k = 0;
  for (const auto& part : impl_->partitions) {
    for (auto& v : part.network->check_invariants()) {
      out.push_back("partition " + std::to_string(k) + ": " + std::move(v));
    }
    ++k;
  }
  return out;
}

std::size_t ParallelMatcher::threads() const noexcept { return impl_->partitions.size(); }

std::size_t ParallelMatcher::partition_of(std::uint32_t production_id) const {
  const auto it = impl_->owner_of.find(production_id);
  if (it == impl_->owner_of.end()) {
    throw std::out_of_range("ParallelMatcher: unknown production id");
  }
  return it->second;
}

MatchThreadStats ParallelMatcher::thread_stats() const noexcept { return impl_->stats; }

std::vector<std::uint64_t> ParallelMatcher::partition_match_costs() const {
  std::vector<std::uint64_t> out;
  out.reserve(impl_->partitions.size());
  for (const auto& part : impl_->partitions) out.push_back(part.folded.match_cost);
  return out;
}

}  // namespace psmsys::rete
