#include "rete/naive.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "ops5/bindings.hpp"

namespace psmsys::rete {

namespace {

using ops5::Predicate;
using ops5::Value;
using ops5::VariableId;
using ops5::Wme;

struct MatchKey {
  std::uint32_t production_id = 0;
  std::vector<const Wme*> wmes;
  [[nodiscard]] bool operator==(const MatchKey&) const = default;
};

struct MatchKeyHash {
  [[nodiscard]] std::size_t operator()(const MatchKey& k) const noexcept {
    std::size_t h = k.production_id * 0x9e3779b97f4a7c15ULL;
    for (const auto* w : k.wmes) {
      h ^= reinterpret_cast<std::size_t>(w) + 0x9e3779b9 + (h << 6) + (h >> 2);
    }
    return h;
  }
};

}  // namespace

struct NaiveMatcher::Impl {
  const ops5::Program& program;
  MatchListener& listener;
  util::WorkCounters& counters;
  util::CostModel costs;

  /// Live WMEs grouped by class.
  std::vector<std::vector<const Wme*>> wm_by_class;

  /// Current match set (mirror of what has been reported to the listener).
  std::unordered_set<MatchKey, MatchKeyHash> current;

  Impl(const ops5::Program& prog, MatchListener& lst, util::WorkCounters& ctr,
       const util::CostModel& cm)
      : program(prog), listener(lst), counters(ctr), costs(cm) {
    wm_by_class.resize(program.class_count());
  }

  [[nodiscard]] bool test_passes(const ops5::AttrTest& test, const Wme& w,
                                 const std::unordered_map<VariableId, Value>& env) {
    ++counters.alpha_tests;
    counters.match_cost += costs.alpha_test;
    if (!test.is_variable) {
      return ops5::constant_test_passes(test, w.slot(test.slot));
    }
    const auto it = env.find(test.var);
    if (it == env.end()) return true;  // binding occurrence; caller records it
    return apply_predicate(test.pred, w.slot(test.slot), it->second);
  }

  /// Does `w` satisfy `ce` under (and extending) `env`? On success with
  /// `bind`, first occurrences are added to env.
  [[nodiscard]] bool ce_matches(const ops5::ConditionElement& ce, const Wme& w,
                                std::unordered_map<VariableId, Value>& env, bool bind) {
    ++counters.join_probes;
    counters.match_cost += costs.join_probe;
    std::unordered_map<VariableId, Value> local;
    for (const auto& test : ce.tests) {
      if (test.is_variable && !env.contains(test.var)) {
        // Within-CE repeated variables must agree.
        ++counters.alpha_tests;
        counters.match_cost += costs.alpha_test;
        const auto it = local.find(test.var);
        if (it == local.end()) {
          local.emplace(test.var, w.slot(test.slot));
          continue;
        }
        if (!apply_predicate(test.pred, w.slot(test.slot), it->second)) return false;
        continue;
      }
      if (!test_passes(test, w, env)) return false;
    }
    if (bind) {
      for (auto& [var, value] : local) env.emplace(var, value);
    }
    return true;
  }

  void enumerate(const ops5::Production& production, std::size_t ce_pos,
                 std::unordered_map<VariableId, Value>& env, std::vector<const Wme*>& partial,
                 std::unordered_set<MatchKey, MatchKeyHash>& out) {
    const auto lhs = production.lhs();
    if (ce_pos == lhs.size()) {
      out.insert(MatchKey{production.id(), partial});
      counters.match_cost += costs.conflict_set_op;
      return;
    }
    const auto& ce = lhs[ce_pos];
    const auto& candidates = wm_by_class[ce.cls];
    if (ce.negated) {
      for (const Wme* w : candidates) {
        auto probe_env = env;
        if (ce_matches(ce, *w, probe_env, /*bind=*/false)) return;  // blocked
      }
      enumerate(production, ce_pos + 1, env, partial, out);
      return;
    }
    for (const Wme* w : candidates) {
      auto child_env = env;
      if (!ce_matches(ce, *w, child_env, /*bind=*/true)) continue;
      partial.push_back(w);
      enumerate(production, ce_pos + 1, child_env, partial, out);
      partial.pop_back();
    }
  }

  void recompute() {
    std::unordered_set<MatchKey, MatchKeyHash> next;
    for (const auto& production : program.productions()) {
      std::unordered_map<VariableId, Value> env;
      std::vector<const Wme*> partial;
      enumerate(production, 0, env, partial, next);
    }
    // Emit deltas relative to the previous match set.
    for (const auto& key : current) {
      if (!next.contains(key)) {
        listener.on_deactivate(program.productions()[key.production_id], key.wmes);
      }
    }
    for (const auto& key : next) {
      if (!current.contains(key)) {
        listener.on_activate(program.productions()[key.production_id], key.wmes);
      }
    }
    current = std::move(next);
  }
};

NaiveMatcher::NaiveMatcher(const ops5::Program& program, MatchListener& listener,
                           util::WorkCounters& counters, const util::CostModel& costs)
    : impl_(std::make_unique<Impl>(program, listener, counters, costs)) {
  if (!program.frozen()) throw std::invalid_argument("NaiveMatcher requires a frozen Program");
}

NaiveMatcher::~NaiveMatcher() = default;

void NaiveMatcher::add_wme(const ops5::Wme& wme) {
  auto& bucket = impl_->wm_by_class.at(wme.class_index());
  if (std::find(bucket.begin(), bucket.end(), &wme) != bucket.end()) {
    throw std::logic_error("WME added twice to NaiveMatcher");
  }
  bucket.push_back(&wme);
  impl_->recompute();
}

void NaiveMatcher::remove_wme(const ops5::Wme& wme) {
  auto& bucket = impl_->wm_by_class.at(wme.class_index());
  const auto it = std::find(bucket.begin(), bucket.end(), &wme);
  if (it == bucket.end()) throw std::logic_error("removing WME not in NaiveMatcher");
  bucket.erase(it);
  impl_->recompute();
}

void NaiveMatcher::clear() {
  for (auto& bucket : impl_->wm_by_class) bucket.clear();
  impl_->current.clear();
}

}  // namespace psmsys::rete
