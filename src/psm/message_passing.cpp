#include "psm/message_passing.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "util/rng.hpp"

namespace psmsys::psm {

namespace {

/// Deterministic message-loss process: whether the `index`th one-way message
/// of the run is lost is a pure function of (seed, index), so a loss
/// schedule replays identically regardless of scheduling order.
class LossProcess {
 public:
  explicit LossProcess(const MessagePassingConfig& config) : config_(config) {}

  [[nodiscard]] bool lost(std::uint64_t index) const noexcept {
    if (config_.loss_rate <= 0.0) return false;
    std::uint64_t state = config_.fault_seed;
    (void)util::splitmix64(state);
    state ^= index * 0x9e3779b97f4a7c15ULL;
    const std::uint64_t x = util::splitmix64(state);
    return static_cast<double>(x >> 11) * 0x1.0p-53 < config_.loss_rate;
  }

  /// Send one one-way message, retransmitting on loss. Returns the stall
  /// (wu) beyond a clean send, updates counters, and advances the global
  /// message index.
  [[nodiscard]] util::WorkUnits send(MessagePassingResult& result) {
    util::WorkUnits stall = 0;
    double timeout = static_cast<double>(config_.retransmit_timeout);
    std::size_t resends = 0;
    while (lost(next_index_++)) {
      ++result.lost_messages;
      stall += static_cast<util::WorkUnits>(timeout);
      if (++resends > config_.max_retransmits) break;  // peer declared unreachable
      ++result.retransmits;
      ++result.messages;
      timeout *= std::max(config_.retransmit_backoff, 1.0);
    }
    ++result.messages;
    result.retransmit_stall += stall;
    return stall;
  }

 private:
  const MessagePassingConfig& config_;
  std::uint64_t next_index_ = 0;
};

}  // namespace

double MessagePassingResult::utilization() const noexcept {
  if (makespan == 0 || busy.empty()) return 0.0;
  double total = 0.0;
  for (auto b : busy) total += static_cast<double>(b);
  return total / (static_cast<double>(makespan) * static_cast<double>(busy.size()));
}

MessagePassingResult simulate_message_passing(std::span<const util::WorkUnits> task_costs,
                                              const MessagePassingConfig& config) {
  if (config.workers == 0) throw std::invalid_argument("need >= 1 worker");

  MessagePassingResult result;
  result.busy.assign(config.workers, 0);
  LossProcess loss(config);

  // Per-task fixed messaging work seen by the worker (marshal always; flight
  // time only when results are synchronous).
  const util::WorkUnits result_flight = config.async_results ? 0 : config.message_latency;

  if (config.distribution == Distribution::Static) {
    // Round-robin pre-assignment: one bulk task-list message per worker up
    // front (latency paid once, overlapped across workers), then each node
    // runs its share and sends results. A lost assignment message delays
    // that node's whole share; a lost (async) result message costs its
    // sender the retransmit stall when the timeout fires.
    std::vector<util::WorkUnits> finish(config.workers, 0);
    for (std::size_t w = 0; w < config.workers; ++w) {
      finish[w] = config.message_latency + config.marshal_cost + loss.send(result);
    }
    for (std::size_t i = 0; i < task_costs.size(); ++i) {
      const std::size_t w = i % config.workers;
      const util::WorkUnits send_stall = loss.send(result);
      const util::WorkUnits task_time =
          task_costs[i] + config.marshal_cost + result_flight + send_stall;
      finish[w] += task_time;
      result.busy[w] += task_costs[i] + config.marshal_cost;
      result.network_stall += result_flight + send_stall;
    }
    for (const auto f : finish) result.makespan = std::max(result.makespan, f);
    return result;
  }

  // Dynamic: a request/reply round trip fetches each task from the control
  // node. The worker stalls for 2 x latency + marshalling per fetch, plus
  // any loss-recovery timeouts on either leg, plus loss recovery on its
  // result send.
  using Slot = std::pair<util::WorkUnits, std::size_t>;
  std::priority_queue<Slot, std::vector<Slot>, std::greater<>> free_at;
  for (std::size_t w = 0; w < config.workers; ++w) free_at.emplace(0, w);

  for (const util::WorkUnits cost : task_costs) {
    auto [t, w] = free_at.top();
    free_at.pop();
    const util::WorkUnits request_stall = loss.send(result);  // request leg
    const util::WorkUnits reply_stall = loss.send(result);    // reply leg
    const util::WorkUnits result_stall = loss.send(result);   // result message
    const util::WorkUnits fetch_stall =
        2 * config.message_latency + 2 * config.marshal_cost + request_stall + reply_stall;
    const util::WorkUnits send_time =
        config.marshal_cost + result_flight + result_stall;
    result.busy[w] += cost + config.marshal_cost;
    result.network_stall += fetch_stall + result_flight + result_stall;
    free_at.emplace(t + fetch_stall + cost + send_time, w);
  }
  while (!free_at.empty()) {
    result.makespan = std::max(result.makespan, free_at.top().first);
    free_at.pop();
  }
  return result;
}

}  // namespace psmsys::psm
