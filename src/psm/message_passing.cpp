#include "psm/message_passing.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace psmsys::psm {

double MessagePassingResult::utilization() const noexcept {
  if (makespan == 0 || busy.empty()) return 0.0;
  double total = 0.0;
  for (auto b : busy) total += static_cast<double>(b);
  return total / (static_cast<double>(makespan) * static_cast<double>(busy.size()));
}

MessagePassingResult simulate_message_passing(std::span<const util::WorkUnits> task_costs,
                                              const MessagePassingConfig& config) {
  if (config.workers == 0) throw std::invalid_argument("need >= 1 worker");

  MessagePassingResult result;
  result.busy.assign(config.workers, 0);

  // Per-task fixed messaging work seen by the worker.
  const util::WorkUnits result_send =
      config.marshal_cost + (config.async_results ? 0 : config.message_latency);

  if (config.distribution == Distribution::Static) {
    // Round-robin pre-assignment: one bulk task-list message per worker up
    // front (latency paid once, overlapped across workers), then each node
    // runs its share and sends results.
    std::vector<util::WorkUnits> finish(config.workers, config.message_latency +
                                                            config.marshal_cost);
    for (std::size_t i = 0; i < task_costs.size(); ++i) {
      const std::size_t w = i % config.workers;
      finish[w] += task_costs[i] + result_send;
      result.busy[w] += task_costs[i] + result_send;
      ++result.messages;
    }
    result.messages += config.workers;  // the initial assignment messages
    for (const auto f : finish) result.makespan = std::max(result.makespan, f);
    return result;
  }

  // Dynamic: a request/reply round trip fetches each task from the control
  // node. The worker stalls for 2 x latency + marshalling per fetch.
  const util::WorkUnits fetch_stall =
      2 * config.message_latency + 2 * config.marshal_cost;
  using Slot = std::pair<util::WorkUnits, std::size_t>;
  std::priority_queue<Slot, std::vector<Slot>, std::greater<>> free_at;
  for (std::size_t w = 0; w < config.workers; ++w) free_at.emplace(0, w);

  for (const util::WorkUnits cost : task_costs) {
    auto [t, w] = free_at.top();
    free_at.pop();
    result.busy[w] += cost + result_send;
    result.network_stall += fetch_stall;
    result.messages += config.async_results ? 3 : 3;  // request, reply, result
    free_at.emplace(t + fetch_stall + cost + result_send, w);
  }
  while (!free_at.empty()) {
    result.makespan = std::max(result.makespan, free_at.top().first);
    free_at.pop();
  }
  return result;
}

}  // namespace psmsys::psm
