#pragma once

// The unified PSM executor surface.
//
// One entry point — psm::run(factory, tasks, options) — replaced the old
// run_threaded / run_robust pair (PR 3; the deprecated shims are gone now
// that every caller goes through here). Strict mode is sugar over the
// robust core: a single attempt per task, the worker stops at its first
// failure, and the run throws instead of degrading. Every run returns a
// RunResult carrying the full RunReport, an obs::RunMetrics snapshot
// (aggregated engine counters + executor accounting + the OBS-only peak
// gauges), and the host wall-clock. Attaching an obs::Tracer yields a Chrome
// trace_event timeline: one always-recorded span per task attempt on the
// executing worker's lane, plus sampled per-cycle engine spans.
//
// simulate_tlp(costs, options) adopts the same options struct, so a measured
// run and its virtual-time replay are configured by one object.

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <exception>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "psm/faults.hpp"
#include "psm/sim.hpp"
#include "psm/task.hpp"

namespace psmsys::obs {
class Tracer;
}

namespace psmsys::psm {

/// Called once per task process after the queue is drained, from that
/// worker's thread, so the control process can collect results from the
/// process's working memory (Section 5.1: the control process "collects
/// from them the results"). Must synchronize its own sink.
using CollectFn = std::function<void(std::size_t process, ops5::Engine& engine)>;

/// Thrown by strict-mode runs when workers fail: carries *every* worker's
/// error, not just the first, so multi-worker failures are diagnosable.
class WorkerFailure : public std::runtime_error {
 public:
  explicit WorkerFailure(std::vector<std::exception_ptr> worker_errors);

  std::vector<std::exception_ptr> errors;
};

struct RobustnessPolicy {
  /// Attempts per task before it is quarantined (>= 1).
  std::size_t max_attempts = 3;
  /// Sleep before retry k (1-based) is backoff_base * backoff_multiplier^(k-1),
  /// capped at backoff_cap. Zero base disables sleeping (tests).
  std::chrono::microseconds backoff_base{0};
  double backoff_multiplier = 2.0;
  std::chrono::microseconds backoff_cap{100'000};
  /// Per-attempt recognize-act cycle budget (0 = unlimited): the deadline
  /// that cuts off livelocked tasks via the engine's cycle-limit machinery.
  std::uint64_t cycle_deadline = 0;
  /// The deadline grows by this factor per retry, so a task that was merely
  /// slow (not livelocked) can still complete before quarantine.
  double deadline_growth = 2.0;
};

/// Why a task attempt ended.
enum class AttemptResult : std::uint8_t {
  Completed,         ///< ran to quiescence; measurement recorded
  Fault,             ///< the attempt threw (injected or real); rolled back
  DeadlineExceeded,  ///< cut off by the cycle deadline; rolled back
  WorkerDied,        ///< the executing process died; results lost, task requeued
};

struct TaskAttempt {
  std::size_t process = 0;
  std::uint32_t number = 0;  ///< 1-based attempt number
  AttemptResult result = AttemptResult::Completed;
  std::string error;  ///< what() for Fault / DeadlineExceeded
};

/// Terminal disposition of a task in a run.
enum class TaskStatus : std::uint8_t {
  Completed,    ///< measurement + collected WM are valid
  Quarantined,  ///< failed max_attempts times; reported, not lost
  Abandoned,    ///< every worker died before it could run (no survivors)
};

/// Graceful degradation: what a robust run produced instead of an
/// all-or-nothing result. Every task id appears exactly once in
/// completed_ids ∪ quarantined_ids ∪ abandoned_ids.
struct RunReport {
  // Partial results (valid for completed tasks).
  std::vector<TaskMeasurement> measurements;   ///< by task id; final attempt's
  std::vector<std::size_t> executed_by;        ///< process of the final completion
  std::vector<std::size_t> tasks_per_process;  ///< surviving results per process
  std::chrono::nanoseconds wall{};

  // Accounting.
  std::vector<TaskStatus> status;                 ///< by task id
  std::vector<std::vector<TaskAttempt>> attempts; ///< by task id, in order
  std::vector<std::uint64_t> completed_ids;
  std::vector<std::uint64_t> quarantined_ids;
  std::vector<std::uint64_t> abandoned_ids;
  std::vector<std::size_t> dead_workers;       ///< processes that died mid-run
  std::uint64_t retries = 0;                   ///< attempts beyond each task's first
  std::uint64_t requeues = 0;                  ///< strandings recovered from dead workers
  std::uint64_t backoff_sleeps = 0;
  /// Errors from quarantined tasks' final attempts (diagnosable, aggregated).
  std::vector<std::exception_ptr> errors;

  [[nodiscard]] bool complete() const noexcept {
    return quarantined_ids.empty() && abandoned_ids.empty();
  }
  [[nodiscard]] bool degraded() const noexcept {
    return !complete() || !dead_workers.empty();
  }
};

/// Options for psm::run (and, via the overload below, simulate_tlp).
struct RunOptions {
  std::size_t task_processes = 1;

  /// Strict mode: one attempt per task, the failing worker stops, and run()
  /// throws (the single error with its original type, or a WorkerFailure
  /// aggregating several). Fault injection is ignored in strict mode.
  /// Robust mode (default) never throws for task/worker failures — the
  /// degradation is reported in RunResult::report.
  bool strict = false;

  RobustnessPolicy robustness{};

  /// Deterministic fault injection (robust mode only); may be null. Not
  /// owned; must outlive the run.
  const FaultInjector* injector = nullptr;

  /// Post-drain result collection, per worker.
  CollectFn collect{};

  /// Span sink: one "task" span per attempt plus sampled engine "cycle"
  /// spans (see obs::Tracer::set_sample_every). Null = no tracing. Not
  /// owned; must outlive the run.
  obs::Tracer* tracer = nullptr;

  // --- intra-task match parallelism ---

  /// Match workers inside each task-process engine (rete::ParallelMatcher).
  /// 0 = leave the factory's engine configuration untouched; N >= 1 rebuilds
  /// every task-process engine with N match threads before base init, so the
  /// run composes K TLP workers × M match threads.
  std::size_t match_threads = 0;

  /// Cap on total match threads across all task processes (0 = uncapped).
  /// The per-process count is clamped to max(1, budget / task_processes) so
  /// K × M never oversubscribes a host that cannot carry it — the explicit
  /// analog of the paper's "more processes than processors" caveat. The cap
  /// is a policy knob, not hardware detection: determinism tests on small
  /// hosts deliberately run more threads than cores.
  std::size_t match_thread_budget = 0;

  /// How per-production partition weights are estimated when match_threads
  /// rebuilds engines with a parallel matcher: the Rete static analyzer's
  /// join-cost model (default) or the legacy condition-count heuristic.
  /// Ignored when match_threads == 0 (the factory's engine config rules).
  ops5::MatchCostSource match_cost_source = ops5::MatchCostSource::Analyzer;

  /// match_threads after applying match_thread_budget.
  [[nodiscard]] std::size_t effective_match_threads() const noexcept {
    if (match_threads == 0) return 0;
    if (match_thread_budget == 0) return match_threads;
    const std::size_t per_process =
        match_thread_budget / (task_processes == 0 ? 1 : task_processes);
    return std::max<std::size_t>(1, std::min(match_threads, per_process));
  }

  // --- virtual-time replay (simulate_tlp overload) ---
  SchedulePolicy policy = SchedulePolicy::Fifo;
  util::WorkUnits queue_overhead_per_task = 40;

  /// The TlpConfig this options object denotes.
  [[nodiscard]] TlpConfig tlp() const noexcept {
    return TlpConfig{task_processes, queue_overhead_per_task, policy};
  }
};

/// Everything a run produced: the per-task report, the aggregated metrics
/// snapshot, and the host wall-clock (same value as report.wall).
struct RunResult {
  RunReport report;
  obs::RunMetrics metrics;
  std::chrono::nanoseconds elapsed{};

  // Forwarding accessors for the common fields.
  [[nodiscard]] const std::vector<TaskMeasurement>& measurements() const noexcept {
    return report.measurements;
  }
  [[nodiscard]] const std::vector<std::size_t>& executed_by() const noexcept {
    return report.executed_by;
  }
  [[nodiscard]] const std::vector<std::size_t>& tasks_per_process() const noexcept {
    return report.tasks_per_process;
  }
  [[nodiscard]] bool complete() const noexcept { return report.complete(); }
  [[nodiscard]] bool degraded() const noexcept { return report.degraded(); }
};

/// Execute a task decomposition on real threads. See RunOptions for the
/// strict/robust contract. Task ids must be dense 0..n-1.
[[nodiscard]] RunResult run(const TaskProcessFactory& factory, std::vector<Task> tasks,
                            const RunOptions& options = {});

/// Aggregate a report into a metrics snapshot (sums completed tasks'
/// counters; executor accounting; no OBS gauges — run() fills those from the
/// live engines).
[[nodiscard]] obs::RunMetrics metrics_from(const RunReport& report,
                                           std::size_t task_processes);

/// Virtual-time replay configured by the same options object as the real
/// run: schedules measured task costs over options.task_processes processes
/// under options.policy / options.queue_overhead_per_task.
[[nodiscard]] TlpSimResult simulate_tlp(std::span<const util::WorkUnits> task_costs,
                                        const RunOptions& options);

}  // namespace psmsys::psm
