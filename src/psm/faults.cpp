#include "psm/faults.hpp"

#include "util/rng.hpp"

namespace psmsys::psm {

double FaultInjector::draw(std::uint64_t task_id, std::uint32_t attempt, Kind kind) const noexcept {
  // Chain SplitMix64 over the decision coordinates; each stage scrambles the
  // running state, so nearby (task, attempt) pairs decorrelate fully.
  std::uint64_t state = config_.seed;
  (void)util::splitmix64(state);
  state ^= task_id * 0x9e3779b97f4a7c15ULL;
  (void)util::splitmix64(state);
  state ^= (static_cast<std::uint64_t>(attempt) << 32) | static_cast<std::uint64_t>(kind);
  const std::uint64_t x = util::splitmix64(state);
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace psmsys::psm
