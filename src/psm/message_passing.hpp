#pragma once

// Message-passing execution model — the paper's Section 9 future work:
// "we are currently investigating implementations on message-passing
// computers [Acharya & Tambe 1989]".
//
// On a message-passing machine there is no central shared task queue. Two
// distribution strategies are modeled, both scheduling the same measured
// task costs the shared-memory models use:
//
//  * STATIC: the control node pre-assigns tasks round-robin; workers never
//    talk to the controller again until the final result message. No
//    per-task latency, but no load balancing — the outlier tasks (tail-end
//    effect) hurt whichever node drew them.
//  * DYNAMIC: workers request tasks one at a time (request + reply = one
//    round trip per task) and ship results back. Load balances like the
//    shared queue, but every task pays the network round trip — the
//    granularity question of Section 4 returns with a bigger overhead
//    constant.
//
// The crossover between the two as a function of message latency and task
// granularity is the design space of the cited follow-up work.

#include <cstddef>
#include <span>
#include <vector>

#include "psm/task.hpp"
#include "util/work_units.hpp"

namespace psmsys::psm {

enum class Distribution : std::uint8_t { Static, Dynamic };

struct MessagePassingConfig {
  std::size_t workers = 14;
  Distribution distribution = Distribution::Dynamic;
  /// One-way message latency (wu). The paper's SVM reports ~50 ms faults;
  /// message-passing machines of the era were an order of magnitude better
  /// per (small) message.
  util::WorkUnits message_latency = 120;
  /// Cost of serializing a task description / result, charged per message.
  util::WorkUnits marshal_cost = 20;
  /// The result message per task is sent asynchronously; only its sending
  /// cost stalls the worker, not the flight time.
  bool async_results = true;
};

struct MessagePassingResult {
  util::WorkUnits makespan = 0;
  std::vector<util::WorkUnits> busy;   ///< per worker, excluding stalls
  std::uint64_t messages = 0;
  util::WorkUnits network_stall = 0;   ///< total worker time spent waiting

  [[nodiscard]] double utilization() const noexcept;
};

/// Schedule measured task costs over `workers` message-passing nodes.
[[nodiscard]] MessagePassingResult simulate_message_passing(
    std::span<const util::WorkUnits> task_costs, const MessagePassingConfig& config);

}  // namespace psmsys::psm
