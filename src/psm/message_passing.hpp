#pragma once

// Message-passing execution model — the paper's Section 9 future work:
// "we are currently investigating implementations on message-passing
// computers [Acharya & Tambe 1989]".
//
// On a message-passing machine there is no central shared task queue. Two
// distribution strategies are modeled, both scheduling the same measured
// task costs the shared-memory models use:
//
//  * STATIC: the control node pre-assigns tasks round-robin; workers never
//    talk to the controller again until the final result message. No
//    per-task latency, but no load balancing — the outlier tasks (tail-end
//    effect) hurt whichever node drew them.
//  * DYNAMIC: workers request tasks one at a time (request + reply = one
//    round trip per task) and ship results back. Load balances like the
//    shared queue, but every task pays the network round trip — the
//    granularity question of Section 4 returns with a bigger overhead
//    constant.
//
// The crossover between the two as a function of message latency and task
// granularity is the design space of the cited follow-up work.
//
// Unlike the Encore's shared bus, a network drops messages. The model
// includes a deterministic, seeded loss process: each one-way message is
// lost with probability `loss_rate`; the sender notices after a timeout and
// retransmits, with the timeout doubling per consecutive loss (exponential
// backoff). Loss economics let the speedup-vs-loss-rate curves of
// bench_fault_tolerance show how much degradation the task granularity can
// absorb before the TLP argument collapses.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "psm/task.hpp"
#include "util/work_units.hpp"

namespace psmsys::psm {

enum class Distribution : std::uint8_t { Static, Dynamic };

struct MessagePassingConfig {
  std::size_t workers = 14;
  Distribution distribution = Distribution::Dynamic;
  /// One-way message latency (wu). The paper's SVM reports ~50 ms faults;
  /// message-passing machines of the era were an order of magnitude better
  /// per (small) message.
  util::WorkUnits message_latency = 120;
  /// Cost of serializing a task description / result, charged per message.
  util::WorkUnits marshal_cost = 20;
  /// The result message per task is sent asynchronously; only its sending
  /// cost stalls the worker, not the flight time.
  bool async_results = true;

  // ---- fault model (defaults reproduce the perfect-network behaviour) ----

  /// Probability a one-way message is lost in flight. Deterministic given
  /// `fault_seed`: the nth message of the run is lost iff its seeded draw
  /// falls below this rate.
  double loss_rate = 0.0;
  std::uint64_t fault_seed = 0x5eed5eedULL;
  /// Sender-side retransmit timeout (wu) after a lost message.
  util::WorkUnits retransmit_timeout = 400;
  /// The timeout multiplies by this per consecutive loss of one message.
  double retransmit_backoff = 2.0;
  /// A message lost this many times in a row is abandoned and charged one
  /// final timeout (the peer is declared unreachable; scheduling proceeds).
  std::size_t max_retransmits = 16;
};

struct MessagePassingResult {
  util::WorkUnits makespan = 0;
  std::vector<util::WorkUnits> busy;   ///< per worker, excluding stalls
  std::uint64_t messages = 0;
  util::WorkUnits network_stall = 0;   ///< total worker time spent waiting
  std::uint64_t lost_messages = 0;     ///< messages the seeded loss process dropped
  std::uint64_t retransmits = 0;       ///< resends after timeout
  util::WorkUnits retransmit_stall = 0;  ///< stall attributable to loss recovery

  [[nodiscard]] double utilization() const noexcept;
};

/// Schedule measured task costs over `workers` message-passing nodes.
[[nodiscard]] MessagePassingResult simulate_message_passing(
    std::span<const util::WorkUnits> task_costs, const MessagePassingConfig& config);

}  // namespace psmsys::psm
