#pragma once

// Deterministic fault injection for the PSM execution path.
//
// The paper's own cluster experience (Section 7: page faulting "brought our
// system to a halt just during the initialization") is a reminder that at
// scale the binding constraint on task-level parallelism is failure
// handling, not scheduling. This module makes every failure mode
// *reproducible*: whether a given (task, attempt) throws, runs away past
// its cycle deadline, or a given worker dies at its Nth queue pop is a pure
// function of a seed — never of thread timing — so fault-tolerance tests
// are exact and the robust executor (psm::run) can be driven through
// identical fault schedules on any host.
//
// Failure taxonomy:
//  * transient fault  — an attempt throws; a later attempt of the same task
//    succeeds (lost message, evicted page, resource blip);
//  * poison task      — every attempt of the task fails (a genuine bug in
//    the task's rules or data); the robust executor quarantines it;
//  * overrun          — the attempt exceeds its cycle deadline (livelocked
//    rule base), surfaced through the engine's cycle-budget machinery;
//  * worker kill      — a whole task process dies at a chosen pop, taking
//    its uncollected working memory with it (node crash).

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace psmsys::psm {

inline constexpr std::size_t kNoWorker = std::numeric_limits<std::size_t>::max();

struct FaultConfig {
  std::uint64_t seed = 0x5eed5eedULL;
  /// Probability that a given (task, attempt) throws a transient fault.
  double transient_rate = 0.0;
  /// Probability that a task is poison: *every* attempt fails.
  double poison_rate = 0.0;
  /// Probability that a given (task, attempt) livelocks and must be cut off
  /// by its cycle deadline.
  double overrun_rate = 0.0;
  /// Worker (task process index) to kill, or kNoWorker.
  std::size_t kill_worker = kNoWorker;
  /// The victim dies at its Nth pop (1-based), while holding that task.
  std::uint64_t kill_at_pop = 1;
};

/// Thrown by the robust executor on behalf of the injector when a task
/// attempt is chosen to fail.
class InjectedTaskFault : public std::runtime_error {
 public:
  InjectedTaskFault(std::uint64_t task_id, std::uint32_t attempt)
      : std::runtime_error("injected fault: task " + std::to_string(task_id) + " attempt " +
                           std::to_string(attempt)),
        task_id(task_id),
        attempt(attempt) {}

  std::uint64_t task_id;
  std::uint32_t attempt;
};

/// Pure decision functions over (seed, task, attempt): schedule-independent,
/// so a fault plan replays identically for any task-process count.
class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config) : config_(config) {}

  [[nodiscard]] const FaultConfig& config() const noexcept { return config_; }

  /// Does this task fail on every attempt?
  [[nodiscard]] bool poisoned(std::uint64_t task_id) const noexcept {
    return draw(task_id, 0, Kind::Poison) < config_.poison_rate;
  }

  /// Does this (task, attempt) throw? Poison implies yes.
  [[nodiscard]] bool fails(std::uint64_t task_id, std::uint32_t attempt) const noexcept {
    if (poisoned(task_id)) return true;
    return draw(task_id, attempt, Kind::Transient) < config_.transient_rate;
  }

  /// Does this (task, attempt) livelock past its cycle deadline?
  [[nodiscard]] bool overruns(std::uint64_t task_id, std::uint32_t attempt) const noexcept {
    return draw(task_id, attempt, Kind::Overrun) < config_.overrun_rate;
  }

  /// Does worker `process` die at its `pop`th pop (1-based)?
  [[nodiscard]] bool kills(std::size_t process, std::uint64_t pop) const noexcept {
    return process == config_.kill_worker && pop == config_.kill_at_pop;
  }

 private:
  enum class Kind : std::uint64_t { Transient = 1, Poison = 2, Overrun = 3 };

  /// Uniform [0,1) from (seed, task, attempt, kind) via SplitMix64 chaining.
  [[nodiscard]] double draw(std::uint64_t task_id, std::uint32_t attempt,
                            Kind kind) const noexcept;

  FaultConfig config_;
};

}  // namespace psmsys::psm
