#pragma once

// Virtual-time multiprocessor models.
//
// The benchmark host has a single core, so speedup curves cannot be measured
// as wall-clock time. Instead, tasks are *really executed* (task.hpp) to
// obtain their true work-unit costs and per-cycle match profiles, and these
// models schedule those measured costs over P virtual processors — the same
// modelling the paper itself uses for its predicted speedups (Table 9's
// parenthesized numbers). All phenomena the paper reports emerge from
// measured inputs: near-linear TLP speedups, the tail-end effect from
// outlier tasks, Amdahl-limited match parallelism from per-cycle chunk
// profiles, and multiplicative composition of the two.
//
// Model of a task process with M dedicated match processes (Section 5.1):
// per recognize-act cycle,
//
//   cycle_time(0) = resolve + rhs + sum(chunks)              (inline match)
//   cycle_time(M) = resolve + rhs + max(0, par_match(M) - overlap * rhs)
//   par_match(M)  = max(min(largest_chunk, granularity), sum(chunks) / M)
//                 + sync
//
// The cycle's measured match chunks distribute ideally over M match
// processes (sum/M), floored by the largest indivisible activation piece
// (large cascades split into ParaOPS5's ~100-instruction subtasks, hence the
// granularity cap). `sync` is the per-cycle resolve-phase barrier (the
// paper's limit 1: synchronization each cycle), and `overlap` models the
// pipelining of dedicated match processes with the act phase (the reason
// the paper measures speedup > 1 even with a single dedicated match
// process, Table 9 row 1). Saturation arises from the barrier, the floor,
// and the limited match effort per cycle (limit 2).

#include <cstdint>
#include <span>
#include <vector>

#include "ops5/engine.hpp"
#include "psm/task.hpp"
#include "util/work_units.hpp"

namespace psmsys::psm {

// ---------------------------------------------------------------------------
// Task-level parallelism: list scheduling over a central queue
// ---------------------------------------------------------------------------

enum class SchedulePolicy : std::uint8_t {
  /// Queue order (the paper's implementation).
  Fifo,
  /// Largest tasks first — the separate-queue-for-large-tasks fix the paper
  /// proposes for the tail-end effect (Section 6.2).
  LargestFirst,
};

struct TlpConfig {
  std::size_t task_processes = 1;
  /// Queue pop + task initialization cost, charged per task to the popping
  /// process. Measured "very low: ... less than .1% of the processing time"
  /// (Section 6.2); default matches that order.
  util::WorkUnits queue_overhead_per_task = 40;
  SchedulePolicy policy = SchedulePolicy::Fifo;
};

struct TlpSimResult {
  util::WorkUnits makespan = 0;
  std::vector<util::WorkUnits> busy;  ///< per-process busy time (incl. queue overhead)
  util::WorkUnits queue_overhead_total = 0;

  /// Mean busy fraction of the processors over the makespan.
  [[nodiscard]] double utilization() const noexcept;
};

/// Schedule `task_costs` (queue order) over P processes: each process takes
/// the next task when free — list scheduling, the exact semantics of the
/// central task queue.
[[nodiscard]] TlpSimResult simulate_tlp(std::span<const util::WorkUnits> task_costs,
                                        const TlpConfig& config);

[[nodiscard]] inline double speedup(util::WorkUnits baseline, util::WorkUnits parallel) noexcept {
  return parallel == 0 ? 0.0 : static_cast<double>(baseline) / static_cast<double>(parallel);
}

// ---------------------------------------------------------------------------
// Match parallelism: per-cycle chunk distribution
// ---------------------------------------------------------------------------

struct MatchModel {
  /// Dedicated match processes per task process; 0 = task process matches
  /// inline (the BASELINE configuration).
  std::size_t match_processes = 0;
  /// Per-cycle synchronization cost of the resolve barrier.
  util::WorkUnits sync_per_cycle = 10;
  /// Fraction of the act phase that dedicated match processes overlap with.
  double act_overlap = 0.5;
  /// ParaOPS5 "exploits parallelism at a fine granularity: subtasks execute
  /// only about 100 instructions" — recorded cascade chunks are split into
  /// pieces of at most this many work units before bin packing...
  util::WorkUnits chunk_granularity = 64;
  /// ...each piece paying this much queueing overhead, so fine granularity
  /// is not free.
  util::WorkUnits per_chunk_overhead = 1;
  /// Shared-bus contention: each additional *active* match process (one that
  /// actually receives work this cycle) inflates everyone's memory traffic
  /// by this fraction. This is what bends Figure 3's Rubik curve below
  /// linear on the Encore.
  double bus_factor = 0.04;
};

/// Longest-processing-time bin packing: makespan of `chunks` on `bins`.
[[nodiscard]] util::WorkUnits lpt_makespan(std::span<const util::WorkUnits> chunks,
                                           std::size_t bins);

/// Virtual duration of one recognize-act cycle under the model.
[[nodiscard]] util::WorkUnits cycle_cost(const ops5::CycleRecord& cycle, const MatchModel& model);

/// Virtual duration of a whole task (sum over its cycles). The measurement
/// must have been taken with EngineOptions::record_cycles = true when
/// match_processes > 0.
[[nodiscard]] util::WorkUnits task_cost_with_match(const TaskMeasurement& task,
                                                   const MatchModel& model);

/// Cost list for the TLP simulator. With a null model, costs are the plain
/// measured totals (match inline).
[[nodiscard]] std::vector<util::WorkUnits> task_costs(std::span<const TaskMeasurement> tasks,
                                                      const MatchModel* model = nullptr);

/// The paper's dotted "theoretical speed-up limit" (Figures 7-8): Amdahl's
/// bound from the measured match fraction, total / (total - match).
[[nodiscard]] double match_speedup_limit(std::span<const TaskMeasurement> tasks);

}  // namespace psmsys::psm
