#pragma once

// SPAM/PSM task abstraction (Section 5.1).
//
// A task "is just a working memory element, which initializes the production
// system of the process": here, an inject function that adds the task WME(s)
// to a task process's engine. A task process is an Engine plus the base
// working memory copied from the control process; it executes tasks one
// after another, measuring each task's work-unit cost and per-cycle records.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "ops5/engine.hpp"
#include "util/counters.hpp"

namespace psmsys::psm {

struct Task {
  std::uint64_t id = 0;        ///< dense index; also the FIFO queue position
  std::string label;
  std::function<void(ops5::Engine&)> inject;
};

/// What executing one task cost (deltas over the task process's engine).
struct TaskMeasurement {
  std::uint64_t task_id = 0;
  util::WorkCounters counters;                ///< cost/ops delta for this task
  std::vector<ops5::CycleRecord> cycles;      ///< per-cycle records (if enabled)

  [[nodiscard]] util::WorkUnits cost() const noexcept { return counters.total_cost(); }
};

[[nodiscard]] util::WorkCounters counters_delta(const util::WorkCounters& before,
                                                const util::WorkCounters& after) noexcept;

/// Builds engines for task processes. The engine must come preconfigured
/// (program, externals, user data); `base_init` loads the control process's
/// initial working memory. Both run at task-process startup — the paper's
/// measurement interval starts only after "all the task processes have
/// performed their initializations" (Section 5.2), and ours does too.
struct TaskProcessFactory {
  std::function<std::unique_ptr<ops5::Engine>()> make_engine;
  std::function<void(ops5::Engine&)> base_init;
};

/// Thrown by TaskRunner::run_guarded when an attempt exceeds its cycle
/// deadline. The attempt's working-memory effects have already been rolled
/// back when this escapes.
class TaskDeadlineExceeded : public std::runtime_error {
 public:
  TaskDeadlineExceeded(std::uint64_t task_id, std::uint64_t cycle_deadline)
      : std::runtime_error("task " + std::to_string(task_id) + " exceeded its deadline of " +
                           std::to_string(cycle_deadline) + " cycles"),
        task_id(task_id),
        cycle_deadline(cycle_deadline) {}

  std::uint64_t task_id;
  std::uint64_t cycle_deadline;
};

/// Thrown by TaskRunner::run_guarded / run_isolated when the caller's
/// cancellation predicate turns true between execution slices (the serve
/// watchdog's wall-clock abort). The attempt's working-memory effects have
/// already been rolled back when this escapes.
class TaskAborted : public std::runtime_error {
 public:
  explicit TaskAborted(std::uint64_t task_id)
      : std::runtime_error("task " + std::to_string(task_id) + " aborted"), task_id(task_id) {}

  std::uint64_t task_id;
};

/// One task process: engine + base WM, executing tasks sequentially.
class TaskRunner {
 public:
  /// `match_threads`: when set, the engine is rebuilt with that many match
  /// workers (0 = serial) *before* base_init loads the base working memory —
  /// the only point where the matcher can still be swapped. nullopt leaves
  /// the factory's engine configuration untouched. `match_cost_source`, when
  /// set, selects how partition weights are estimated (static analyzer vs.
  /// condition-count heuristic) and is applied before the matcher rebuild.
  explicit TaskRunner(const TaskProcessFactory& factory,
                      std::optional<std::size_t> match_threads = std::nullopt,
                      std::optional<ops5::MatchCostSource> match_cost_source = std::nullopt);

  /// Inject the task, run to quiescence, and return the measured deltas.
  TaskMeasurement run(const Task& task);

  /// Fault-tolerant attempt: journaled execution under a per-attempt cycle
  /// deadline (0 = unlimited). If the deadline cuts the run off, or the
  /// task's inject/rules throw, the engine is rolled back bit-identically
  /// to its pre-attempt state (working memory, timetags, recency) and the
  /// error propagates (TaskDeadlineExceeded for deadline cuts). On success
  /// the measurement is exactly what run() would have produced.
  ///
  /// When both `cancelled` and `cancel_check_every` are set, execution runs
  /// in slices of `cancel_check_every` cycles and polls `cancelled` between
  /// slices; a true result rolls back and throws TaskAborted. Slicing changes
  /// neither firing order nor measurements — the conflict set carries over
  /// between run() calls untouched.
  TaskMeasurement run_guarded(const Task& task, std::uint64_t cycle_deadline = 0,
                              const std::function<bool()>& cancelled = {},
                              std::uint64_t cancel_check_every = 0);

  /// Session-style attempt: like run_guarded, but the attempt's WM effects
  /// are ALWAYS rolled back — after `collect` (if given) has read results out
  /// of working memory. The engine therefore returns to its base state
  /// bit-identically (WMEs, timetags, recency) whether the task succeeded,
  /// overran, or threw, which is what lets one resident engine serve an
  /// arbitrary scene sequence with per-scene output independent of ordering.
  /// A throwing `collect` also rolls back, then rethrows.
  TaskMeasurement run_isolated(const Task& task, std::uint64_t cycle_deadline = 0,
                               const std::function<bool()>& cancelled = {},
                               std::uint64_t cancel_check_every = 0,
                               const std::function<void(ops5::Engine&)>& collect = {});

  /// Fault-simulation helper: start the task for real, execute at most
  /// `cycles` recognize-act cycles, then abort and roll back — the mid-task
  /// crash the injector uses to prove recovery leaves no partial state.
  void abort_after(const Task& task, std::uint64_t cycles);

  // ------------------------------ streaming -------------------------------
  //
  // A stream holds the undo log open across many ticks: begin_stream() opens
  // the journal, each run_tick() snapshots a checkpoint and keeps its WM
  // effects on success (rolling back only its own tail on failure), and
  // end_stream() rolls the whole journal back so the engine returns to its
  // base state bit-identically — the same recovery contract run_isolated()
  // gives a single scene, stretched over a tick sequence.

  /// Open the stream journal. Throws if a stream (or any undo log) is
  /// already active.
  void begin_stream();

  /// Execute one tick inside an open stream: checkpoint, inject, run to
  /// quiescence under the same deadline/cancellation discipline as
  /// run_isolated, then `collect` (if given) reads results out of WM. On
  /// success the tick's WM effects STAY (that is the point of a stream); on
  /// deadline cut, cancellation, or any throw the engine is rolled back to
  /// the tick's checkpoint — earlier ticks' effects survive — and the error
  /// propagates (TaskDeadlineExceeded / TaskAborted / original exception).
  TaskMeasurement run_tick(const Task& task, std::uint64_t cycle_deadline = 0,
                           const std::function<bool()>& cancelled = {},
                           std::uint64_t cancel_check_every = 0,
                           const std::function<void(ops5::Engine&)>& collect = {});

  /// Fault-simulation helper for streams: like abort_after, but scoped to a
  /// tick checkpoint inside the open stream journal instead of opening its
  /// own undo log.
  void abort_tick_after(const Task& task, std::uint64_t cycles);

  /// Close the stream: roll back every tick's effects so the engine is
  /// bit-identical to its pre-begin_stream() state.
  void end_stream();

  [[nodiscard]] bool stream_active() const noexcept;

  [[nodiscard]] ops5::Engine& engine() noexcept { return *engine_; }
  [[nodiscard]] const ops5::Engine& engine() const noexcept { return *engine_; }

 private:
  TaskMeasurement measure_from(const Task& task, const util::WorkCounters& before);
  bool run_sliced(std::uint64_t cycle_deadline, const std::function<bool()>& cancelled,
                  std::uint64_t cancel_check_every, std::uint64_t task_id);
  void rollback();

  std::unique_ptr<ops5::Engine> engine_;
  std::size_t cycle_offset_ = 0;
  bool stream_active_ = false;
};

}  // namespace psmsys::psm
