#pragma once

// DEPRECATED executor entry points — superseded by psm::run (run.hpp).
//
// run_threaded / run_robust were the original strict / fault-tolerant pair;
// psm::run unifies them behind RunOptions (strict=true reproduces
// run_threaded's abort-on-failure contract exactly; the default is the
// robust path). The shims below forward to psm::run and stay for one PR so
// out-of-tree callers get a deprecation warning instead of a hard break.
// The shared executor vocabulary (CollectFn, WorkerFailure, RobustnessPolicy,
// RunReport, ...) now lives in run.hpp and is re-exported from here.

#include <chrono>
#include <cstddef>
#include <vector>

#include "psm/run.hpp"

namespace psmsys::psm {

struct ThreadedRunResult {
  /// Measurement for every task, indexed by task id.
  std::vector<TaskMeasurement> measurements;
  /// Which task process executed each task (by task id).
  std::vector<std::size_t> executed_by;
  /// Tasks executed per process.
  std::vector<std::size_t> tasks_per_process;
  std::chrono::nanoseconds wall{};
};

/// Fork `task_processes` workers over a FIFO queue of `tasks`. Each worker
/// builds its own engine via `factory` (initialization, untimed), then
/// drains the queue. If exactly one worker throws, that exception is
/// rethrown; if several throw, a WorkerFailure aggregating all of them is
/// thrown instead.
[[deprecated("use psm::run with RunOptions{.strict = true}")]]
[[nodiscard]] ThreadedRunResult run_threaded(const TaskProcessFactory& factory,
                                             std::vector<Task> tasks,
                                             std::size_t task_processes,
                                             const CollectFn& collect = {});

/// Fault-tolerant variant of run_threaded. Never throws for task or worker
/// failures — degradation is reported in the RunReport. `injector` (may be
/// null) drives deterministic fault injection; with a null injector and
/// healthy tasks the completed results are identical to run_threaded's.
[[deprecated("use psm::run (robust is the default mode)")]]
[[nodiscard]] RunReport run_robust(const TaskProcessFactory& factory, std::vector<Task> tasks,
                                   std::size_t task_processes, const RobustnessPolicy& policy = {},
                                   const FaultInjector* injector = nullptr,
                                   const CollectFn& collect = {});

}  // namespace psmsys::psm
