#pragma once

// Real multithreaded execution of a PSM task decomposition.
//
// This is the correctness side of the reproduction: each task process is an
// independent engine (asynchronous production firing, WME distribution) fed
// from the shared task queue, exactly the paper's architecture. Tests verify
// that results are identical for any number of task processes — the property
// that makes the decomposition legal. Wall-clock speedups are NOT measured
// here (the benchmark host has one core); the virtual-time models in
// sim.hpp produce the speedup curves from the measured task costs.
//
// Two executors share the worker loop:
//  * run_threaded — the strict mode: any worker error aborts the run (all
//    worker errors are aggregated into the thrown WorkerFailure, not just
//    the first).
//  * run_robust — fault-tolerant mode: per-task cycle deadlines, bounded
//    retries with exponential backoff, re-enqueue of work stranded by dead
//    workers, quarantine of poison tasks, and graceful degradation — a
//    RunReport accounting for every task id instead of a lost run. Because
//    tasks are independent OPS5 runs handed out from a central queue (the
//    very property the paper's TLP argument rests on), any single task is
//    restartable: a failed attempt is rolled back bit-identically
//    (TaskRunner::run_guarded), so a retry — even on another process —
//    produces exactly the result a fault-free run would have.

#include <chrono>
#include <cstddef>
#include <exception>
#include <string>
#include <vector>

#include "psm/faults.hpp"
#include "psm/task.hpp"

namespace psmsys::psm {

struct ThreadedRunResult {
  /// Measurement for every task, indexed by task id.
  std::vector<TaskMeasurement> measurements;
  /// Which task process executed each task (by task id).
  std::vector<std::size_t> executed_by;
  /// Tasks executed per process.
  std::vector<std::size_t> tasks_per_process;
  std::chrono::nanoseconds wall{};
};

/// Called once per task process after the queue is drained, from that
/// worker's thread, so the control process can collect results from the
/// process's working memory (Section 5.1: the control process "collects
/// from them the results"). Must synchronize its own sink.
using CollectFn = std::function<void(std::size_t process, ops5::Engine& engine)>;

/// Thrown by run_threaded when workers fail: carries *every* worker's
/// error, not just the first, so multi-worker failures are diagnosable.
class WorkerFailure : public std::runtime_error {
 public:
  explicit WorkerFailure(std::vector<std::exception_ptr> worker_errors);

  std::vector<std::exception_ptr> errors;
};

/// Fork `task_processes` workers over a FIFO queue of `tasks`. Each worker
/// builds its own engine via `factory` (initialization, untimed), then
/// drains the queue. If exactly one worker throws, that exception is
/// rethrown; if several throw, a WorkerFailure aggregating all of them is
/// thrown instead.
[[nodiscard]] ThreadedRunResult run_threaded(const TaskProcessFactory& factory,
                                             std::vector<Task> tasks,
                                             std::size_t task_processes,
                                             const CollectFn& collect = {});

// ---------------------------------------------------------------------------
// Fault-tolerant execution
// ---------------------------------------------------------------------------

struct RobustnessPolicy {
  /// Attempts per task before it is quarantined (>= 1).
  std::size_t max_attempts = 3;
  /// Sleep before retry k (1-based) is backoff_base * backoff_multiplier^(k-1),
  /// capped at backoff_cap. Zero base disables sleeping (tests).
  std::chrono::microseconds backoff_base{0};
  double backoff_multiplier = 2.0;
  std::chrono::microseconds backoff_cap{100'000};
  /// Per-attempt recognize-act cycle budget (0 = unlimited): the deadline
  /// that cuts off livelocked tasks via the engine's cycle-limit machinery.
  std::uint64_t cycle_deadline = 0;
  /// The deadline grows by this factor per retry, so a task that was merely
  /// slow (not livelocked) can still complete before quarantine.
  double deadline_growth = 2.0;
};

/// Why a task attempt ended.
enum class AttemptResult : std::uint8_t {
  Completed,         ///< ran to quiescence; measurement recorded
  Fault,             ///< the attempt threw (injected or real); rolled back
  DeadlineExceeded,  ///< cut off by the cycle deadline; rolled back
  WorkerDied,        ///< the executing process died; results lost, task requeued
};

struct TaskAttempt {
  std::size_t process = 0;
  std::uint32_t number = 0;  ///< 1-based attempt number
  AttemptResult result = AttemptResult::Completed;
  std::string error;  ///< what() for Fault / DeadlineExceeded
};

/// Terminal disposition of a task in a robust run.
enum class TaskStatus : std::uint8_t {
  Completed,    ///< measurement + collected WM are valid
  Quarantined,  ///< failed max_attempts times; reported, not lost
  Abandoned,    ///< every worker died before it could run (no survivors)
};

/// Graceful degradation: what a robust run produced instead of an
/// all-or-nothing result. Every task id appears exactly once in
/// completed_ids ∪ quarantined_ids ∪ abandoned_ids.
struct RunReport {
  // Partial results (valid for completed tasks).
  std::vector<TaskMeasurement> measurements;   ///< by task id; final attempt's
  std::vector<std::size_t> executed_by;        ///< process of the final completion
  std::vector<std::size_t> tasks_per_process;  ///< surviving results per process
  std::chrono::nanoseconds wall{};

  // Accounting.
  std::vector<TaskStatus> status;                 ///< by task id
  std::vector<std::vector<TaskAttempt>> attempts; ///< by task id, in order
  std::vector<std::uint64_t> completed_ids;
  std::vector<std::uint64_t> quarantined_ids;
  std::vector<std::uint64_t> abandoned_ids;
  std::vector<std::size_t> dead_workers;       ///< processes that died mid-run
  std::uint64_t retries = 0;                   ///< attempts beyond each task's first
  std::uint64_t requeues = 0;                  ///< strandings recovered from dead workers
  std::uint64_t backoff_sleeps = 0;
  /// Errors from quarantined tasks' final attempts (diagnosable, aggregated).
  std::vector<std::exception_ptr> errors;

  [[nodiscard]] bool complete() const noexcept {
    return quarantined_ids.empty() && abandoned_ids.empty();
  }
  [[nodiscard]] bool degraded() const noexcept {
    return !complete() || !dead_workers.empty();
  }
};

/// Fault-tolerant variant of run_threaded. Never throws for task or worker
/// failures — degradation is reported in the RunReport. `injector` (may be
/// null) drives deterministic fault injection; with a null injector and
/// healthy tasks the completed results are identical to run_threaded's.
[[nodiscard]] RunReport run_robust(const TaskProcessFactory& factory, std::vector<Task> tasks,
                                   std::size_t task_processes, const RobustnessPolicy& policy = {},
                                   const FaultInjector* injector = nullptr,
                                   const CollectFn& collect = {});

}  // namespace psmsys::psm
