#pragma once

// Real multithreaded execution of a PSM task decomposition.
//
// This is the correctness side of the reproduction: each task process is an
// independent engine (asynchronous production firing, WME distribution) fed
// from the shared task queue, exactly the paper's architecture. Tests verify
// that results are identical for any number of task processes — the property
// that makes the decomposition legal. Wall-clock speedups are NOT measured
// here (the benchmark host has one core); the virtual-time models in
// sim.hpp produce the speedup curves from the measured task costs.

#include <chrono>
#include <cstddef>
#include <vector>

#include "psm/task.hpp"

namespace psmsys::psm {

struct ThreadedRunResult {
  /// Measurement for every task, indexed by task id.
  std::vector<TaskMeasurement> measurements;
  /// Which task process executed each task (by task id).
  std::vector<std::size_t> executed_by;
  /// Tasks executed per process.
  std::vector<std::size_t> tasks_per_process;
  std::chrono::nanoseconds wall{};
};

/// Called once per task process after the queue is drained, from that
/// worker's thread, so the control process can collect results from the
/// process's working memory (Section 5.1: the control process "collects
/// from them the results"). Must synchronize its own sink.
using CollectFn = std::function<void(std::size_t process, ops5::Engine& engine)>;

/// Fork `task_processes` workers over a FIFO queue of `tasks`. Each worker
/// builds its own engine via `factory` (initialization, untimed), then
/// drains the queue. Throws if any worker throws.
[[nodiscard]] ThreadedRunResult run_threaded(const TaskProcessFactory& factory,
                                             std::vector<Task> tasks,
                                             std::size_t task_processes,
                                             const CollectFn& collect = {});

}  // namespace psmsys::psm
