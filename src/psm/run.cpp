#include "psm/run.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "obs/trace.hpp"

namespace psmsys::psm {

namespace {

[[nodiscard]] std::string describe_errors(const std::vector<std::exception_ptr>& errors) {
  std::string msg = std::to_string(errors.size()) + " worker(s) failed:";
  for (const auto& e : errors) {
    try {
      std::rethrow_exception(e);
    } catch (const std::exception& ex) {
      msg += std::string(" [") + ex.what() + "]";
    } catch (...) {
      msg += " [non-standard exception]";
    }
  }
  return msg;
}

void validate_tasks(const std::vector<Task>& tasks, std::size_t task_processes) {
  if (task_processes == 0) throw std::invalid_argument("need at least one task process");
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (tasks[i].id != i) throw std::invalid_argument("task ids must be dense 0..n-1");
  }
}

/// Blocking work coordinator. Unlike TaskQueue's non-blocking pop, a robust
/// worker must not exit while another worker still holds a task: if that
/// worker dies, its task is requeued and somebody has to be around to drain
/// it. pop() therefore blocks while work is in flight and returns nullptr
/// only when every task is resolved (or no live worker can ever resolve the
/// remainder).
class Coordinator {
 public:
  Coordinator(const std::vector<Task>& tasks, std::size_t workers)
      : tasks_(tasks), live_workers_(workers) {}

  /// Next task to execute, or nullptr when all work is provably done.
  [[nodiscard]] const Task* pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
      if (next_ < tasks_.size()) {
        ++in_flight_;
        return &tasks_[next_++];
      }
      if (!requeued_.empty()) {
        const std::uint64_t id = requeued_.front();
        requeued_.pop_front();
        ++in_flight_;
        return &tasks_[id];
      }
      if (in_flight_ == 0 || live_workers_ == 0) return nullptr;
      cv_.wait(lock);
    }
  }

  /// The held task is resolved (completed or quarantined), or — if
  /// `requeue_it` — stranded by the caller's death and back on the queue.
  void finish(std::uint64_t id, bool requeue_it) {
    const std::lock_guard<std::mutex> lock(mutex_);
    --in_flight_;
    if (requeue_it) requeued_.push_back(id);
    cv_.notify_all();
  }

  /// Results lost with a dead worker's WM: schedule re-execution.
  void requeue_lost(const std::vector<std::uint64_t>& ids) {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto id : ids) requeued_.push_back(id);
    cv_.notify_all();
  }

  void worker_exited() {
    const std::lock_guard<std::mutex> lock(mutex_);
    --live_workers_;
    cv_.notify_all();
  }

 private:
  const std::vector<Task>& tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t next_ = 0;
  std::deque<std::uint64_t> requeued_;
  std::size_t in_flight_ = 0;
  std::size_t live_workers_ = 0;
};

enum class Disposition : std::uint8_t { Pending, Completed, Quarantined };

[[nodiscard]] std::uint64_t grown_deadline(const RobustnessPolicy& policy,
                                           std::uint32_t attempt) {
  if (policy.cycle_deadline == 0) return 0;
  const double grown = static_cast<double>(policy.cycle_deadline) *
                       std::pow(std::max(policy.deadline_growth, 1.0),
                                static_cast<double>(attempt - 1));
  return static_cast<std::uint64_t>(grown);
}

[[nodiscard]] std::chrono::microseconds backoff_delay(const RobustnessPolicy& policy,
                                                      std::uint32_t retry) {
  if (policy.backoff_base.count() <= 0) return std::chrono::microseconds{0};
  const double us = static_cast<double>(policy.backoff_base.count()) *
                    std::pow(std::max(policy.backoff_multiplier, 1.0),
                             static_cast<double>(retry - 1));
  const auto capped =
      std::min(us, static_cast<double>(policy.backoff_cap.count()));
  return std::chrono::microseconds{static_cast<std::int64_t>(capped)};
}

/// Cycles an injected mid-task crash executes before dying: enough to leave
/// partial working-memory state behind, so recovery genuinely depends on
/// the engine's rollback.
constexpr std::uint64_t kCrashAfterCycles = 2;

const char* attempt_result_name(AttemptResult r) {
  switch (r) {
    case AttemptResult::Completed: return "completed";
    case AttemptResult::Fault: return "fault";
    case AttemptResult::DeadlineExceeded: return "deadline_exceeded";
    case AttemptResult::WorkerDied: return "worker_died";
  }
  return "unknown";
}

}  // namespace

WorkerFailure::WorkerFailure(std::vector<std::exception_ptr> worker_errors)
    : std::runtime_error(describe_errors(worker_errors)), errors(std::move(worker_errors)) {}

obs::RunMetrics metrics_from(const RunReport& report, std::size_t task_processes) {
  obs::RunMetrics m;
  m.task_processes = task_processes;
  for (const auto id : report.completed_ids) {
    m.add_counters(report.measurements[id].counters);
  }
  m.tasks = report.completed_ids.size();
  m.retries = report.retries;
  m.requeues = report.requeues;
  m.quarantined = report.quarantined_ids.size();
  m.abandoned = report.abandoned_ids.size();
  m.dead_workers = report.dead_workers.size();
  m.wall_ns = report.wall.count();
  return m;
}

TlpSimResult simulate_tlp(std::span<const util::WorkUnits> task_costs,
                          const RunOptions& options) {
  return simulate_tlp(task_costs, options.tlp());
}

RunResult run(const TaskProcessFactory& factory, std::vector<Task> tasks,
              const RunOptions& options) {
  const std::size_t task_processes = options.task_processes;
  validate_tasks(tasks, task_processes);
  const std::size_t n_tasks = tasks.size();
  const bool strict = options.strict;
  const RobustnessPolicy& policy = options.robustness;
  // Fault injection models recoverable faults; strict mode has no recovery.
  const FaultInjector* injector = strict ? nullptr : options.injector;
  obs::Tracer* tracer = options.tracer;
  const std::size_t max_attempts =
      strict ? 1 : std::max<std::size_t>(policy.max_attempts, 1);
  // K TLP workers × M match threads, with M clamped by the thread budget so
  // the composition never oversubscribes beyond what the caller allowed.
  const std::size_t match_threads = options.effective_match_threads();
  const std::optional<std::size_t> match_override =
      match_threads > 0 ? std::optional<std::size_t>(match_threads) : std::nullopt;
  const std::optional<ops5::MatchCostSource> cost_source_override =
      match_threads > 0 ? std::optional<ops5::MatchCostSource>(options.match_cost_source)
                        : std::nullopt;

  RunResult result;
  RunReport& report = result.report;
  report.measurements.resize(n_tasks);
  report.executed_by.assign(n_tasks, 0);
  report.tasks_per_process.assign(task_processes, 0);
  report.attempts.assign(n_tasks, {});

  std::vector<Disposition> state(n_tasks, Disposition::Pending);
  std::vector<std::uint32_t> attempt_count(n_tasks, 0);
  std::mutex report_mutex;  // guards report bookkeeping + state + attempt_count
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> requeues{0};
  std::atomic<std::uint64_t> backoff_sleeps{0};
  // Run-wide maxima of the per-engine OBS gauges (0 when compiled out).
  std::atomic<std::uint64_t> peak_conflict_set{0};
  std::atomic<std::uint64_t> peak_live_tokens{0};
  // Match-thread utilization, summed over workers at drain time.
  std::atomic<std::uint64_t> match_pool_threads{0};
  std::atomic<std::uint64_t> match_parallel_ops{0};
  std::atomic<std::uint64_t> match_busy_ns{0};
  std::atomic<std::uint64_t> match_wall_ns{0};
  // Partition-balance work units, folded over every engine at drain time.
  std::atomic<std::uint64_t> match_partitions{0};
  std::atomic<std::uint64_t> match_partition_cost_sum{0};
  std::atomic<std::uint64_t> match_partition_cost_max{0};

  [[maybe_unused]] const auto fold_peak = [](std::atomic<std::uint64_t>& peak,
                                             std::uint64_t v) {
    std::uint64_t cur = peak.load(std::memory_order_relaxed);
    while (v > cur &&
           !peak.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  };

  Coordinator coordinator(tasks, task_processes);

  const auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::jthread> workers;
    workers.reserve(task_processes);
    for (std::size_t p = 0; p < task_processes; ++p) {
      workers.emplace_back([&, p] {
        std::uint64_t my_pops = 0;
        std::vector<std::uint64_t> my_results;  // ids whose results live in this WM
        bool died = false;
        bool strict_failed = false;

        std::unique_ptr<TaskRunner> runner;
        try {
          runner = std::make_unique<TaskRunner>(factory, match_override,
                                                cost_source_override);
        } catch (...) {
          // A task process that cannot even initialize is a dead worker.
          const std::lock_guard<std::mutex> lock(report_mutex);
          report.dead_workers.push_back(p);
          report.errors.push_back(std::current_exception());
          coordinator.worker_exited();
          return;
        }
        if (tracer != nullptr) {
          runner->engine().set_tracer(tracer, static_cast<std::uint32_t>(p));
        }

        while (const Task* task = coordinator.pop()) {
          const std::uint64_t id = task->id;
          ++my_pops;

          if (injector != nullptr && injector->kills(p, my_pops)) {
            // The process dies holding `id`: the held task plus every result
            // in this WM are stranded. Requeue them all for re-execution.
            {
              const std::lock_guard<std::mutex> lock(report_mutex);
              report.dead_workers.push_back(p);
              report.attempts[id].push_back(
                  {p, attempt_count[id], AttemptResult::WorkerDied, "worker killed"});
              for (const auto lost : my_results) {
                state[lost] = Disposition::Pending;
                --report.tasks_per_process[p];
                report.attempts[lost].push_back(
                    {p, attempt_count[lost], AttemptResult::WorkerDied,
                     "result lost with worker"});
              }
            }
            requeues.fetch_add(1 + my_results.size(), std::memory_order_relaxed);
            coordinator.requeue_lost(my_results);
            coordinator.finish(id, /*requeue_it=*/true);
            died = true;
            break;
          }

          // Attempt loop: local retries with backoff until completion or
          // quarantine. Every failed attempt is rolled back, so the engine
          // state a successful attempt sees is bit-identical to a fault-free
          // run's.
          while (true) {
            std::uint32_t attempt = 0;
            {
              const std::lock_guard<std::mutex> lock(report_mutex);
              attempt = ++attempt_count[id];
            }

            TaskAttempt record{p, attempt, AttemptResult::Completed, {}};
            bool ok = false;
            std::exception_ptr error;
            const auto attempt_begin = tracer != nullptr
                                           ? obs::Tracer::Clock::now()
                                           : obs::Tracer::Clock::time_point{};
            std::uint64_t attempt_cost = 0;
            std::uint64_t attempt_cycles = 0;
            try {
              if (injector != nullptr && injector->fails(id, attempt)) {
                // Mid-task crash: really execute a couple of cycles, roll
                // back, then fail.
                runner->abort_after(*task, kCrashAfterCycles);
                throw InjectedTaskFault(id, attempt);
              }
              const std::uint64_t deadline =
                  (injector != nullptr && injector->overruns(id, attempt))
                      ? 1  // livelock: the budget machinery must cut it off
                      : grown_deadline(policy, attempt);
              TaskMeasurement m = runner->run_guarded(*task, deadline);
              attempt_cost = m.counters.total_cost();
              attempt_cycles = m.counters.cycles;
              {
                const std::lock_guard<std::mutex> lock(report_mutex);
                report.measurements[id] = std::move(m);
                report.executed_by[id] = p;
                ++report.tasks_per_process[p];
                state[id] = Disposition::Completed;
                report.attempts[id].push_back(record);
              }
              my_results.push_back(id);
              ok = true;
            } catch (const TaskDeadlineExceeded& e) {
              record.result = AttemptResult::DeadlineExceeded;
              record.error = e.what();
              error = std::current_exception();
            } catch (const std::exception& e) {
              record.result = AttemptResult::Fault;
              record.error = e.what();
              error = std::current_exception();
            } catch (...) {
              record.result = AttemptResult::Fault;
              record.error = "non-standard exception";
              error = std::current_exception();
            }

            if (tracer != nullptr) {
              // One span per attempt, on the worker's lane, whatever the
              // outcome — the per-worker timeline is the point of the trace.
              obs::json::Object args;
              args.emplace_back("task", obs::json::Value(id));
              if (!task->label.empty()) {
                args.emplace_back("label", obs::json::Value(task->label));
              }
              args.emplace_back("attempt", obs::json::Value(attempt));
              args.emplace_back("result",
                                obs::json::Value(attempt_result_name(record.result)));
              args.emplace_back("cost_wu", obs::json::Value(attempt_cost));
              args.emplace_back("cycles", obs::json::Value(attempt_cycles));
              tracer->record_span(
                  task->label.empty() ? ("task " + std::to_string(id)) : task->label,
                  "task", attempt_begin, obs::Tracer::Clock::now(),
                  static_cast<std::uint32_t>(p), std::move(args));
            }
#if PSMSYS_OBS
            // Engine gauges reset per task (peak_conflict_set) or survive
            // (rete token peak); sampling after every attempt keeps the
            // run-wide maxima exact either way.
            fold_peak(peak_conflict_set, runner->engine().peak_conflict_set());
            fold_peak(peak_live_tokens,
                      runner->engine().network().peak_live_tokens());
#endif
            if (ok) break;

            bool quarantined = false;
            {
              const std::lock_guard<std::mutex> lock(report_mutex);
              report.attempts[id].push_back(record);
              if (attempt >= max_attempts) {
                state[id] = Disposition::Quarantined;
                report.errors.push_back(error);
                quarantined = true;
              }
            }
            if (quarantined) {
              strict_failed = strict;
              break;
            }

            retries.fetch_add(1, std::memory_order_relaxed);
            const auto delay = backoff_delay(policy, attempt);
            if (delay.count() > 0) {
              backoff_sleeps.fetch_add(1, std::memory_order_relaxed);
              std::this_thread::sleep_for(delay);
            }
          }

          coordinator.finish(id, /*requeue_it=*/false);
          // Strict contract: a worker stops at its first failure (the error
          // is aggregated and thrown after the join).
          if (strict_failed) break;
        }

        coordinator.worker_exited();
        {
          const rete::MatchThreadStats ms = runner->engine().match_thread_stats();
          fold_peak(match_pool_threads, ms.threads);
          match_parallel_ops.fetch_add(ms.ops, std::memory_order_relaxed);
          match_busy_ns.fetch_add(ms.busy_ns, std::memory_order_relaxed);
          match_wall_ns.fetch_add(ms.wall_ns, std::memory_order_relaxed);
          for (const std::uint64_t cost : runner->engine().match_partition_costs()) {
            match_partitions.fetch_add(1, std::memory_order_relaxed);
            match_partition_cost_sum.fetch_add(cost, std::memory_order_relaxed);
            fold_peak(match_partition_cost_max, cost);
          }
        }
        if (!died && !strict_failed && options.collect) {
          try {
            options.collect(p, runner->engine());
          } catch (...) {
            const std::lock_guard<std::mutex> lock(report_mutex);
            report.errors.push_back(std::current_exception());
          }
        }
      });
    }
  }  // jthreads join here
  report.wall = std::chrono::steady_clock::now() - start;

  report.retries = retries.load();
  report.requeues = requeues.load();
  report.backoff_sleeps = backoff_sleeps.load();
  report.status.resize(n_tasks);
  for (std::size_t i = 0; i < n_tasks; ++i) {
    switch (state[i]) {
      case Disposition::Completed:
        report.status[i] = TaskStatus::Completed;
        report.completed_ids.push_back(i);
        break;
      case Disposition::Quarantined:
        report.status[i] = TaskStatus::Quarantined;
        report.quarantined_ids.push_back(i);
        break;
      case Disposition::Pending:
        report.status[i] = TaskStatus::Abandoned;  // every worker died first
        report.abandoned_ids.push_back(i);
        break;
    }
  }

  if (strict && !report.errors.empty()) {
    if (report.errors.size() == 1) std::rethrow_exception(report.errors.front());
    throw WorkerFailure(std::move(report.errors));
  }

  result.elapsed = report.wall;
  result.metrics = metrics_from(report, task_processes);
  result.metrics.peak_conflict_set = peak_conflict_set.load();
  result.metrics.peak_live_tokens = peak_live_tokens.load();
  result.metrics.match_threads = match_pool_threads.load();
  result.metrics.match_parallel_ops = match_parallel_ops.load();
  result.metrics.match_busy_ns = match_busy_ns.load();
  result.metrics.match_wall_ns = match_wall_ns.load();
  result.metrics.match_partitions = match_partitions.load();
  result.metrics.match_partition_cost_sum = match_partition_cost_sum.load();
  result.metrics.match_partition_cost_max = match_partition_cost_max.load();
  return result;
}

}  // namespace psmsys::psm
