#include "psm/threaded.hpp"

#include <utility>

// Definitions of the deprecated shims. (Defining a [[deprecated]] function
// does not warn; calling it does.)

namespace psmsys::psm {

ThreadedRunResult run_threaded(const TaskProcessFactory& factory, std::vector<Task> tasks,
                               std::size_t task_processes, const CollectFn& collect) {
  RunOptions options;
  options.task_processes = task_processes;
  options.strict = true;
  options.collect = collect;
  RunResult result = run(factory, std::move(tasks), options);
  return ThreadedRunResult{
      std::move(result.report.measurements),
      std::move(result.report.executed_by),
      std::move(result.report.tasks_per_process),
      result.report.wall,
  };
}

RunReport run_robust(const TaskProcessFactory& factory, std::vector<Task> tasks,
                     std::size_t task_processes, const RobustnessPolicy& policy,
                     const FaultInjector* injector, const CollectFn& collect) {
  RunOptions options;
  options.task_processes = task_processes;
  options.robustness = policy;
  options.injector = injector;
  options.collect = collect;
  return std::move(run(factory, std::move(tasks), options).report);
}

}  // namespace psmsys::psm
