#include "psm/threaded.hpp"

#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "psm/queue.hpp"

namespace psmsys::psm {

ThreadedRunResult run_threaded(const TaskProcessFactory& factory, std::vector<Task> tasks,
                               std::size_t task_processes, const CollectFn& collect) {
  if (task_processes == 0) throw std::invalid_argument("need at least one task process");
  const std::size_t n_tasks = tasks.size();
  for (std::size_t i = 0; i < n_tasks; ++i) {
    if (tasks[i].id != i) throw std::invalid_argument("task ids must be dense 0..n-1");
  }

  ThreadedRunResult result;
  result.measurements.resize(n_tasks);
  result.executed_by.assign(n_tasks, 0);
  result.tasks_per_process.assign(task_processes, 0);

  TaskQueue queue(std::move(tasks));
  std::mutex error_mutex;
  std::exception_ptr first_error;

  const auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::jthread> workers;
    workers.reserve(task_processes);
    for (std::size_t p = 0; p < task_processes; ++p) {
      workers.emplace_back([&, p] {
        try {
          TaskRunner runner(factory);  // initialization: untimed, per process
          while (auto task = queue.pop()) {
            const std::uint64_t id = task->id;
            TaskMeasurement m = runner.run(*task);
            // Distinct slots per task: no lock needed.
            result.measurements[id] = std::move(m);
            result.executed_by[id] = p;
            ++result.tasks_per_process[p];
          }
          if (collect) collect(p, runner.engine());
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      });
    }
  }  // jthreads join here
  result.wall = std::chrono::steady_clock::now() - start;

  if (first_error) std::rethrow_exception(first_error);
  return result;
}

}  // namespace psmsys::psm
