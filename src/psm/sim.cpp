#include "psm/sim.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace psmsys::psm {

double TlpSimResult::utilization() const noexcept {
  if (makespan == 0 || busy.empty()) return 0.0;
  double total = 0.0;
  for (auto b : busy) total += static_cast<double>(b);
  return total / (static_cast<double>(makespan) * static_cast<double>(busy.size()));
}

TlpSimResult simulate_tlp(std::span<const util::WorkUnits> task_costs, const TlpConfig& config) {
  if (config.task_processes == 0) throw std::invalid_argument("need >= 1 task process");

  std::vector<util::WorkUnits> order(task_costs.begin(), task_costs.end());
  if (config.policy == SchedulePolicy::LargestFirst) {
    std::stable_sort(order.begin(), order.end(), std::greater<>());
  }

  TlpSimResult result;
  result.busy.assign(config.task_processes, 0);

  // Min-heap of (free-time, process). List scheduling: the process that
  // frees first takes the next task from the queue.
  using Slot = std::pair<util::WorkUnits, std::size_t>;
  std::priority_queue<Slot, std::vector<Slot>, std::greater<>> free_at;
  for (std::size_t p = 0; p < config.task_processes; ++p) free_at.emplace(0, p);

  for (const util::WorkUnits cost : order) {
    auto [t, p] = free_at.top();
    free_at.pop();
    const util::WorkUnits duration = config.queue_overhead_per_task + cost;
    result.busy[p] += duration;
    result.queue_overhead_total += config.queue_overhead_per_task;
    free_at.emplace(t + duration, p);
  }
  while (!free_at.empty()) {
    result.makespan = std::max(result.makespan, free_at.top().first);
    free_at.pop();
  }
  return result;
}

util::WorkUnits lpt_makespan(std::span<const util::WorkUnits> chunks, std::size_t bins) {
  if (bins == 0) throw std::invalid_argument("need >= 1 bin");
  if (chunks.empty()) return 0;
  std::vector<util::WorkUnits> sorted(chunks.begin(), chunks.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());

  std::priority_queue<util::WorkUnits, std::vector<util::WorkUnits>, std::greater<>> loads;
  for (std::size_t b = 0; b < bins; ++b) loads.push(0);
  for (const auto c : sorted) {
    const util::WorkUnits lightest = loads.top();
    loads.pop();
    loads.push(lightest + c);
  }
  util::WorkUnits makespan = 0;
  while (!loads.empty()) {
    makespan = std::max(makespan, loads.top());
    loads.pop();
  }
  return makespan;
}

util::WorkUnits cycle_cost(const ops5::CycleRecord& cycle, const MatchModel& model) {
  const util::WorkUnits base = cycle.resolve_cost + cycle.rhs_cost;
  if (model.match_processes == 0) {
    return base + cycle.match_cost();
  }
  // Parallel match time for the cycle: ideal distribution X/M, floored by
  // the largest indivisible activation piece. Large cascades split into
  // ParaOPS5-sized subtasks (~"100 instructions"), so the floor is the
  // granularity cap; tiny activations coalesce into shared queue batches.
  const util::WorkUnits gran = std::max<util::WorkUnits>(model.chunk_granularity, 1);
  util::WorkUnits total = 0;
  util::WorkUnits largest = 0;
  for (const util::WorkUnits c : cycle.match_chunks) {
    total += c;
    largest = std::max(largest, c);
  }
  const util::WorkUnits floor_piece = std::min(largest, gran) + model.per_chunk_overhead;
  const util::WorkUnits ideal =
      (total + model.match_processes - 1) / model.match_processes;
  // Bus contention scales with the processes that actually get work.
  const std::size_t active = static_cast<std::size_t>(
      std::min<util::WorkUnits>(model.match_processes, total / gran + 1));
  const auto inflated = static_cast<util::WorkUnits>(
      static_cast<double>(ideal) *
      (1.0 + model.bus_factor * static_cast<double>(active - 1)));
  const util::WorkUnits parallel_match =
      std::max(floor_piece, inflated) + model.sync_per_cycle;
  const auto overlap = static_cast<util::WorkUnits>(
      model.act_overlap * static_cast<double>(cycle.rhs_cost));
  const util::WorkUnits exposed = parallel_match > overlap ? parallel_match - overlap : 0;
  return base + exposed;
}

util::WorkUnits task_cost_with_match(const TaskMeasurement& task, const MatchModel& model) {
  if (model.match_processes == 0) return task.cost();
  if (task.cycles.empty() && task.counters.cycles > 0) {
    throw std::invalid_argument(
        "match model needs per-cycle records; run with record_cycles=true");
  }
  util::WorkUnits total = 0;
  for (const auto& cycle : task.cycles) total += cycle_cost(cycle, model);
  return total;
}

std::vector<util::WorkUnits> task_costs(std::span<const TaskMeasurement> tasks,
                                        const MatchModel* model) {
  std::vector<util::WorkUnits> costs;
  costs.reserve(tasks.size());
  for (const auto& t : tasks) {
    costs.push_back(model != nullptr ? task_cost_with_match(t, *model) : t.cost());
  }
  return costs;
}

double match_speedup_limit(std::span<const TaskMeasurement> tasks) {
  util::WorkUnits total = 0;
  util::WorkUnits match = 0;
  for (const auto& t : tasks) {
    total += t.counters.total_cost();
    match += t.counters.match_cost;
  }
  const util::WorkUnits rest = total - match;
  return rest == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(rest);
}

}  // namespace psmsys::psm
