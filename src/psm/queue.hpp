#pragma once

// The central task queue of SPAM/PSM (Figure 5). One producer (the control
// process, which enqueues everything up front) and N consumer task
// processes. Contention on this queue was measured to be "minimal"
// (Section 7, observation 4); the queue also counts pops so the benchmarks
// can report queue-management overhead.
//
// Tasks are handed out by pointer into the preloaded list — a pop must not
// copy the Task (its std::function inject closure allocates), or the copy
// shows up in the queue-management overhead the benchmarks charge.
// Requeueing (fault recovery: a task stranded by a dead worker goes back on
// the queue) re-hands-out indices and never grows the list, so pointers
// stay valid for the queue's lifetime.

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "psm/task.hpp"

namespace psmsys::psm {

class TaskQueue {
 public:
  /// Load the full task list (control process, before forking workers).
  explicit TaskQueue(std::vector<Task> tasks) : tasks_(std::move(tasks)) {}

  /// Pop the next task, or nullptr when the queue is exhausted. Thread-safe;
  /// fresh tasks are handed out in queue order, then requeued tasks in
  /// requeue order. The pointer stays valid for the queue's lifetime.
  [[nodiscard]] const Task* pop() {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i < tasks_.size()) {
      pops_.fetch_add(1, std::memory_order_relaxed);
      return &tasks_[i];
    }
    const std::lock_guard<std::mutex> lock(requeue_mutex_);
    if (requeued_.empty()) return nullptr;
    const std::size_t r = requeued_.front();
    requeued_.pop_front();
    pops_.fetch_add(1, std::memory_order_relaxed);
    return &tasks_[r];
  }

  /// Put a task back on the queue (strand recovery after a worker death).
  void requeue(std::uint64_t task_id) {
    if (task_id >= tasks_.size()) throw std::out_of_range("requeue: unknown task id");
    const std::lock_guard<std::mutex> lock(requeue_mutex_);
    requeued_.push_back(static_cast<std::size_t>(task_id));
  }

  [[nodiscard]] std::size_t size() const noexcept { return tasks_.size(); }
  [[nodiscard]] std::uint64_t pops() const noexcept { return pops_.load(); }

 private:
  std::vector<Task> tasks_;
  std::atomic<std::size_t> next_{0};
  std::atomic<std::uint64_t> pops_{0};
  std::mutex requeue_mutex_;
  std::deque<std::size_t> requeued_;
};

}  // namespace psmsys::psm
