#pragma once

// The central task queue of SPAM/PSM (Figure 5). One producer (the control
// process, which enqueues everything up front) and N consumer task
// processes. Contention on this queue was measured to be "minimal"
// (Section 7, observation 4); the queue also counts pops so the benchmarks
// can report queue-management overhead.
//
// Tasks are handed out by pointer into the preloaded list — a pop must not
// copy the Task (its std::function inject closure allocates), or the copy
// shows up in the queue-management overhead the benchmarks charge.
// Requeueing (fault recovery: a task stranded by a dead worker goes back on
// the queue) re-hands-out indices and never grows the list, so pointers
// stay valid for the queue's lifetime. Requeued tasks are drained before
// fresh ones: a stranded task already waited a full scheduling round, so it
// must not queue again behind every untouched task.

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "psm/task.hpp"

namespace psmsys::psm {

class TaskQueue {
 public:
  /// Load the full task list (control process, before forking workers).
  explicit TaskQueue(std::vector<Task> tasks) : tasks_(std::move(tasks)) {}

  /// Pop the next task, or nullptr when the queue is exhausted. Thread-safe;
  /// requeued tasks are handed out first (in requeue order), then fresh
  /// tasks in queue order. The pointer stays valid for the queue's lifetime.
  /// The fast path stays lock-free: the requeue check is one relaxed load of
  /// a counter that is zero for the whole run unless a worker died.
  [[nodiscard]] const Task* pop() {
    if (const Task* t = pop_requeued()) return t;
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i < tasks_.size()) {
      pops_.fetch_add(1, std::memory_order_relaxed);
      return &tasks_[i];
    }
    // A requeue may have landed after the check above; never report an empty
    // queue while a stranded task is still waiting.
    return pop_requeued();
  }

  /// Put a task back on the queue (strand recovery after a worker death).
  void requeue(std::uint64_t task_id) {
    if (task_id >= tasks_.size()) throw std::out_of_range("requeue: unknown task id");
    const std::lock_guard<std::mutex> lock(requeue_mutex_);
    requeued_.push_back(static_cast<std::size_t>(task_id));
    requeue_pending_.fetch_add(1, std::memory_order_release);
  }

  [[nodiscard]] std::size_t size() const noexcept { return tasks_.size(); }
  [[nodiscard]] std::uint64_t pops() const noexcept { return pops_.load(); }

 private:
  [[nodiscard]] const Task* pop_requeued() {
    if (requeue_pending_.load(std::memory_order_acquire) == 0) return nullptr;
    const std::lock_guard<std::mutex> lock(requeue_mutex_);
    if (requeued_.empty()) return nullptr;
    const std::size_t r = requeued_.front();
    requeued_.pop_front();
    requeue_pending_.fetch_sub(1, std::memory_order_release);
    pops_.fetch_add(1, std::memory_order_relaxed);
    return &tasks_[r];
  }

  std::vector<Task> tasks_;
  std::atomic<std::size_t> next_{0};
  std::atomic<std::uint64_t> pops_{0};
  std::atomic<std::size_t> requeue_pending_{0};
  std::mutex requeue_mutex_;
  std::deque<std::size_t> requeued_;
};

}  // namespace psmsys::psm
