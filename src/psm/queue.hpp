#pragma once

// The central task queue of SPAM/PSM (Figure 5). One producer (the control
// process, which enqueues everything up front) and N consumer task
// processes. Contention on this queue was measured to be "minimal"
// (Section 7, observation 4); the queue also counts pops so the benchmarks
// can report queue-management overhead.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "psm/task.hpp"

namespace psmsys::psm {

class TaskQueue {
 public:
  /// Load the full task list (control process, before forking workers).
  explicit TaskQueue(std::vector<Task> tasks) : tasks_(std::move(tasks)) {}

  /// Pop the next task, or nullopt when the queue is exhausted.
  /// Thread-safe; tasks are handed out in queue order.
  [[nodiscard]] std::optional<Task> pop() {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= tasks_.size()) return std::nullopt;
    ++pops_;
    return tasks_[i];
  }

  [[nodiscard]] std::size_t size() const noexcept { return tasks_.size(); }
  [[nodiscard]] std::uint64_t pops() const noexcept { return pops_.load(); }

 private:
  std::vector<Task> tasks_;
  std::atomic<std::size_t> next_{0};
  std::atomic<std::uint64_t> pops_{0};
};

}  // namespace psmsys::psm
