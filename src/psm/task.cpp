#include "psm/task.hpp"

#include <stdexcept>

namespace psmsys::psm {

util::WorkCounters counters_delta(const util::WorkCounters& before,
                                  const util::WorkCounters& after) noexcept {
  util::WorkCounters d;
  d.match_cost = after.match_cost - before.match_cost;
  d.alpha_tests = after.alpha_tests - before.alpha_tests;
  d.alpha_activations = after.alpha_activations - before.alpha_activations;
  d.join_probes = after.join_probes - before.join_probes;
  d.tokens_created = after.tokens_created - before.tokens_created;
  d.tokens_deleted = after.tokens_deleted - before.tokens_deleted;
  d.resolve_cost = after.resolve_cost - before.resolve_cost;
  d.rhs_cost = after.rhs_cost - before.rhs_cost;
  d.firings = after.firings - before.firings;
  d.rhs_actions = after.rhs_actions - before.rhs_actions;
  d.wmes_added = after.wmes_added - before.wmes_added;
  d.wmes_removed = after.wmes_removed - before.wmes_removed;
  d.cycles = after.cycles - before.cycles;
  return d;
}

TaskRunner::TaskRunner(const TaskProcessFactory& factory,
                       std::optional<std::size_t> match_threads,
                       std::optional<ops5::MatchCostSource> match_cost_source) {
  if (!factory.make_engine) throw std::invalid_argument("factory needs make_engine");
  engine_ = factory.make_engine();
  if (match_cost_source) engine_->set_match_cost_source(*match_cost_source);
  if (match_threads) engine_->set_match_threads(*match_threads);
  if (factory.base_init) factory.base_init(*engine_);
  // Base-WM loading is initialization, not task work; its cycle records (none
  // should exist, the engine has not run) and counters are excluded by the
  // per-task delta measurement.
  cycle_offset_ = engine_->cycle_records().size();
}

TaskMeasurement TaskRunner::measure_from(const Task& task, const util::WorkCounters& before) {
  TaskMeasurement m;
  m.task_id = task.id;
  m.counters = counters_delta(before, engine_->counters());
  const auto records = engine_->cycle_records();
  m.cycles.assign(records.begin() + static_cast<std::ptrdiff_t>(cycle_offset_), records.end());
  cycle_offset_ = records.size();
  return m;
}

TaskMeasurement TaskRunner::run(const Task& task) {
  const util::WorkCounters before = engine_->counters();
  task.inject(*engine_);
  (void)engine_->run();
  return measure_from(task, before);
}

TaskMeasurement TaskRunner::run_guarded(const Task& task, std::uint64_t cycle_deadline) {
  const util::WorkCounters before = engine_->counters();
  engine_->begin_undo_log();
  ops5::RunResult result;
  try {
    task.inject(*engine_);
    result = engine_->run(cycle_deadline);
  } catch (...) {
    engine_->rollback_undo_log();
    cycle_offset_ = engine_->cycle_records().size();
    throw;
  }
  if (result.cycle_limited) {
    engine_->rollback_undo_log();
    cycle_offset_ = engine_->cycle_records().size();
    throw TaskDeadlineExceeded(task.id, cycle_deadline);
  }
  engine_->commit_undo_log();
  return measure_from(task, before);
}

void TaskRunner::abort_after(const Task& task, std::uint64_t cycles) {
  engine_->begin_undo_log();
  try {
    task.inject(*engine_);
    (void)engine_->run(cycles == 0 ? 1 : cycles);
  } catch (...) {
    engine_->rollback_undo_log();
    cycle_offset_ = engine_->cycle_records().size();
    throw;
  }
  engine_->rollback_undo_log();
  cycle_offset_ = engine_->cycle_records().size();
}

}  // namespace psmsys::psm
