#include "psm/task.hpp"

#include <algorithm>
#include <stdexcept>

namespace psmsys::psm {

util::WorkCounters counters_delta(const util::WorkCounters& before,
                                  const util::WorkCounters& after) noexcept {
  util::WorkCounters d;
  d.match_cost = after.match_cost - before.match_cost;
  d.alpha_tests = after.alpha_tests - before.alpha_tests;
  d.alpha_activations = after.alpha_activations - before.alpha_activations;
  d.join_probes = after.join_probes - before.join_probes;
  d.tokens_created = after.tokens_created - before.tokens_created;
  d.tokens_deleted = after.tokens_deleted - before.tokens_deleted;
  d.resolve_cost = after.resolve_cost - before.resolve_cost;
  d.rhs_cost = after.rhs_cost - before.rhs_cost;
  d.firings = after.firings - before.firings;
  d.rhs_actions = after.rhs_actions - before.rhs_actions;
  d.wmes_added = after.wmes_added - before.wmes_added;
  d.wmes_removed = after.wmes_removed - before.wmes_removed;
  d.cycles = after.cycles - before.cycles;
  return d;
}

TaskRunner::TaskRunner(const TaskProcessFactory& factory,
                       std::optional<std::size_t> match_threads,
                       std::optional<ops5::MatchCostSource> match_cost_source) {
  if (!factory.make_engine) throw std::invalid_argument("factory needs make_engine");
  engine_ = factory.make_engine();
  if (match_threads || match_cost_source) {
    ops5::EngineConfig config = engine_->config();
    if (match_cost_source) config.match_cost_source = *match_cost_source;
    if (match_threads) config.match_threads = *match_threads;
    engine_->reconfigure(config);
  }
  if (factory.base_init) factory.base_init(*engine_);
  // Base-WM loading is initialization, not task work; its cycle records (none
  // should exist, the engine has not run) and counters are excluded by the
  // per-task delta measurement.
  cycle_offset_ = engine_->cycle_records().size();
}

TaskMeasurement TaskRunner::measure_from(const Task& task, const util::WorkCounters& before) {
  TaskMeasurement m;
  m.task_id = task.id;
  m.counters = counters_delta(before, engine_->counters());
  const auto records = engine_->cycle_records();
  m.cycles.assign(records.begin() + static_cast<std::ptrdiff_t>(cycle_offset_), records.end());
  cycle_offset_ = records.size();
  return m;
}

TaskMeasurement TaskRunner::run(const Task& task) {
  const util::WorkCounters before = engine_->counters();
  task.inject(*engine_);
  (void)engine_->run();
  return measure_from(task, before);
}

void TaskRunner::rollback() {
  engine_->rollback_undo_log();
  cycle_offset_ = engine_->cycle_records().size();
}

// Runs the injected task to quiescence, in cancellation-polled slices when
// asked to. Returns true when the cycle deadline (or the engine's own
// max_cycles ceiling) cut the run off; throws TaskAborted when `cancelled`
// turns true between slices. The caller owns the undo log.
bool TaskRunner::run_sliced(std::uint64_t cycle_deadline, const std::function<bool()>& cancelled,
                            std::uint64_t cancel_check_every, std::uint64_t task_id) {
  if (!cancelled || cancel_check_every == 0) {
    return engine_->run(cycle_deadline).cycle_limited;
  }
  const std::uint64_t start = engine_->counters().cycles;
  while (true) {
    if (cancelled()) throw TaskAborted(task_id);
    std::uint64_t slice = cancel_check_every;
    if (cycle_deadline != 0) {
      const std::uint64_t used = engine_->counters().cycles - start;
      if (used >= cycle_deadline) return true;
      slice = std::min(slice, cycle_deadline - used);
    }
    const std::uint64_t before = engine_->counters().cycles;
    if (!engine_->run(slice).cycle_limited) return false;  // quiesced or halted
    // cycle_limited with less progress than the slice budget means the
    // engine's max_cycles ceiling stopped it — no further slice can advance.
    if (engine_->counters().cycles - before < slice) return true;
  }
}

TaskMeasurement TaskRunner::run_guarded(const Task& task, std::uint64_t cycle_deadline,
                                        const std::function<bool()>& cancelled,
                                        std::uint64_t cancel_check_every) {
  const util::WorkCounters before = engine_->counters();
  engine_->begin_undo_log();
  bool deadline_hit = false;
  try {
    task.inject(*engine_);
    deadline_hit = run_sliced(cycle_deadline, cancelled, cancel_check_every, task.id);
  } catch (...) {
    rollback();
    throw;
  }
  if (deadline_hit) {
    rollback();
    throw TaskDeadlineExceeded(task.id, cycle_deadline);
  }
  engine_->commit_undo_log();
  return measure_from(task, before);
}

TaskMeasurement TaskRunner::run_isolated(const Task& task, std::uint64_t cycle_deadline,
                                         const std::function<bool()>& cancelled,
                                         std::uint64_t cancel_check_every,
                                         const std::function<void(ops5::Engine&)>& collect) {
  const util::WorkCounters before = engine_->counters();
  engine_->begin_undo_log();
  bool deadline_hit = false;
  try {
    task.inject(*engine_);
    deadline_hit = run_sliced(cycle_deadline, cancelled, cancel_check_every, task.id);
    if (!deadline_hit && collect) collect(*engine_);
  } catch (...) {
    rollback();
    throw;
  }
  if (deadline_hit) {
    rollback();
    throw TaskDeadlineExceeded(task.id, cycle_deadline);
  }
  TaskMeasurement m = measure_from(task, before);
  rollback();
  return m;
}

void TaskRunner::abort_after(const Task& task, std::uint64_t cycles) {
  engine_->begin_undo_log();
  try {
    task.inject(*engine_);
    (void)engine_->run(cycles == 0 ? 1 : cycles);
  } catch (...) {
    engine_->rollback_undo_log();
    cycle_offset_ = engine_->cycle_records().size();
    throw;
  }
  engine_->rollback_undo_log();
  cycle_offset_ = engine_->cycle_records().size();
}

void TaskRunner::begin_stream() {
  if (stream_active_) throw std::logic_error("stream already active");
  engine_->begin_undo_log();
  stream_active_ = true;
}

TaskMeasurement TaskRunner::run_tick(const Task& task, std::uint64_t cycle_deadline,
                                     const std::function<bool()>& cancelled,
                                     std::uint64_t cancel_check_every,
                                     const std::function<void(ops5::Engine&)>& collect) {
  if (!stream_active_) throw std::logic_error("run_tick outside an active stream");
  const util::WorkCounters before = engine_->counters();
  const ops5::Engine::UndoCheckpoint cp = engine_->undo_checkpoint();
  bool deadline_hit = false;
  try {
    task.inject(*engine_);
    deadline_hit = run_sliced(cycle_deadline, cancelled, cancel_check_every, task.id);
    if (!deadline_hit && collect) collect(*engine_);
  } catch (...) {
    engine_->rollback_to_checkpoint(cp);
    cycle_offset_ = engine_->cycle_records().size();
    throw;
  }
  if (deadline_hit) {
    engine_->rollback_to_checkpoint(cp);
    cycle_offset_ = engine_->cycle_records().size();
    throw TaskDeadlineExceeded(task.id, cycle_deadline);
  }
  // Success: the tick's WM effects stay resident for later ticks.
  return measure_from(task, before);
}

void TaskRunner::abort_tick_after(const Task& task, std::uint64_t cycles) {
  if (!stream_active_) throw std::logic_error("abort_tick_after outside an active stream");
  const ops5::Engine::UndoCheckpoint cp = engine_->undo_checkpoint();
  try {
    task.inject(*engine_);
    (void)engine_->run(cycles == 0 ? 1 : cycles);
  } catch (...) {
    engine_->rollback_to_checkpoint(cp);
    cycle_offset_ = engine_->cycle_records().size();
    throw;
  }
  engine_->rollback_to_checkpoint(cp);
  cycle_offset_ = engine_->cycle_records().size();
}

void TaskRunner::end_stream() {
  if (!stream_active_) throw std::logic_error("no active stream to end");
  stream_active_ = false;
  engine_->rollback_undo_log();
  cycle_offset_ = engine_->cycle_records().size();
}

bool TaskRunner::stream_active() const noexcept { return stream_active_; }

}  // namespace psmsys::psm
