#include "serve/rulebase.hpp"

#include <stdexcept>
#include <utility>

#include "analysis/rete_static.hpp"

namespace psmsys::serve {

namespace {

/// Topology export needs a compiled network but no conflict set.
class NullListener final : public rete::MatchListener {
 public:
  void on_activate(const ops5::Production&, std::span<const ops5::Wme* const>) override {}
  void on_deactivate(const ops5::Production&, std::span<const ops5::Wme* const>) override {}
};

}  // namespace

std::shared_ptr<const SharedRuleBase> SharedRuleBase::compile(
    std::shared_ptr<const ops5::Program> program, const ops5::ExternalRegistry* externals,
    ops5::EngineOptions engine_options) {
  if (program == nullptr) throw std::invalid_argument("rule base needs a program");
  auto rb = std::shared_ptr<SharedRuleBase>(new SharedRuleBase);
  rb->program_ = std::move(program);
  rb->externals_ = externals;
  rb->engine_options_ = std::move(engine_options);

  // The three compile-once artifacts: binding analyses, analyzer costs,
  // topology. Sessions reuse the first two; the third is the read-only
  // network shape the server publishes.
  rb->bindings_ = rete::analyze_all_bindings(*rb->program_);
  rb->engine_options_.rete.shared_bindings = &rb->bindings_;
  rb->engine_options_.shared_match_costs = std::make_shared<const std::vector<double>>(
      analysis::static_match_costs(*rb->program_, rb->engine_options_.rete));

  NullListener listener;
  util::WorkCounters scratch;
  rete::Network shape(*rb->program_, listener, scratch, rb->engine_options_.costs,
                      rb->engine_options_.rete);
  rb->topology_ = shape.topology();
  return rb;
}

std::unique_ptr<ops5::Engine> SharedRuleBase::make_engine() const {
  return std::make_unique<ops5::Engine>(program_, externals_, engine_options_);
}

}  // namespace psmsys::serve
