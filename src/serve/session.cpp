#include "serve/session.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>

#include "obs/trace.hpp"

namespace psmsys::serve {

const char* to_string(SceneStatus status) noexcept {
  switch (status) {
    case SceneStatus::Completed: return "completed";
    case SceneStatus::Rejected: return "rejected";
    case SceneStatus::Quarantined: return "quarantined";
    case SceneStatus::Aborted: return "aborted";
  }
  return "?";
}

const char* to_string(RejectReason reason) noexcept {
  switch (reason) {
    case RejectReason::None: return "none";
    case RejectReason::QueueFull: return "queue_full";
    case RejectReason::Draining: return "draining";
    case RejectReason::Stopped: return "stopped";
    case RejectReason::StreamClosed: return "stream_closed";
  }
  return "?";
}

namespace {

/// Same growth law as the robust executor's per-attempt deadline.
std::uint64_t grown_deadline(const SessionOptions& options, std::uint32_t attempt) {
  if (options.cycle_deadline == 0) return 0;
  const double grown =
      static_cast<double>(options.cycle_deadline) *
      std::pow(std::max(options.deadline_growth, 1.0), static_cast<double>(attempt - 1));
  return static_cast<std::uint64_t>(grown);
}

/// Cycles an injected mid-scene crash executes before dying (matches the
/// robust executor's kCrashAfterCycles): enough to leave partial WM state
/// behind, so isolation genuinely depends on the rollback.
constexpr std::uint64_t kCrashAfterCycles = 2;

}  // namespace

EngineContext::EngineContext(std::shared_ptr<const SharedRuleBase> rulebase,
                             const std::function<void(ops5::Engine&)>& base_init,
                             SessionOptions options)
    : rulebase_(std::move(rulebase)),
      options_(std::move(options)),
      runner_(psm::TaskProcessFactory{[this] { return rulebase_->make_engine(); }, base_init}) {
  if (options_.max_attempts == 0) options_.max_attempts = 1;
  if (options_.capture_firing_log || options_.trace_sink) {
    // Watch level 1 — one line per firing, the byte-identity proof surface.
    // Every line carries the session prefix, so a shared sink fed by many
    // contexts still yields separable per-session streams.
    runner_.engine().set_watch(1, [this](const std::string& line) {
      if (options_.capture_firing_log) {
        firing_log_ += prefix_;
        firing_log_ += line;
        firing_log_ += '\n';
      }
      if (options_.trace_sink) options_.trace_sink(prefix_ + line);
    });
  }
}

void Session::begin() {
  const SessionOptions& options = context_.options_;
  context_.prefix_ = "s" + std::to_string(id_) + "| ";
  if (options.tracer != nullptr) {
    // One tid lane per session: concurrent sessions never share a lane, so
    // their spans cannot interleave within one track of the timeline.
    context_.engine().set_tracer(options.tracer, static_cast<std::uint32_t>(id_));
  }
  context_.runner_.begin_stream();
}

Session::TickOutcome Session::run_tick(const SceneJob& job,
                                       const std::function<bool()>& aborted) {
  const SessionOptions& options = context_.options_;
  TickOutcome out;
  const psm::Task task{id_, job.label, job.inject};
  for (std::uint32_t attempt = 1; attempt <= options.max_attempts; ++attempt) {
    context_.firing_log_.clear();
    out.attempts = attempt;
    try {
      if (options.injector != nullptr && options.injector->fails(id_, attempt)) {
        // Mid-tick crash: really execute a couple of cycles, roll back to
        // the tick's checkpoint, then fail — the poisoned-scene path of the
        // fault-storm test. Earlier ticks' resident WM survives.
        context_.runner_.abort_tick_after(task, kCrashAfterCycles);
        throw psm::InjectedTaskFault(id_, attempt);
      }
      const std::uint64_t deadline =
          (options.injector != nullptr && options.injector->overruns(id_, attempt))
              ? 1  // livelock: the deadline machinery must cut it off
              : grown_deadline(options, attempt);
      psm::TaskMeasurement m = context_.runner_.run_tick(
          task, deadline, aborted, options.abort_check_every, job.collect);
      out.status = SceneStatus::Completed;
      out.counters = m.counters;
      out.firing_log = std::move(context_.firing_log_);
      out.wm_size = context_.engine().wm_size();
      out.live_tokens = context_.engine().network().live_tokens();
      break;
    } catch (const psm::TaskAborted&) {
      // Watchdog wall-clock abort: terminal, no retry — the budget that
      // tripped is host time, so a retry would just burn it again.
      out.status = SceneStatus::Aborted;
      out.error = "aborted by watchdog";
      break;
    } catch (const std::exception& e) {
      // Transient fault or cycle-deadline overrun: rolled back to the tick
      // checkpoint already; retry with a grown deadline until attempts run
      // out.
      out.error = e.what();
      out.status = SceneStatus::Quarantined;
    } catch (...) {
      out.error = "unknown error";
      out.status = SceneStatus::Quarantined;
    }
  }
  return out;
}

void Session::finish() {
  context_.runner_.end_stream();
  context_.firing_log_.clear();
  context_.prefix_.clear();
  ++context_.scenes_run_;
}

SceneReport Session::run(const SceneJob& job, const std::function<bool()>& aborted) {
  const SessionOptions& options = context_.options_;
  SceneReport report;
  report.scene = id_;
  report.label = job.label;

  begin();
  const auto begin_ts = obs::Tracer::Clock::now();
  TickOutcome out = run_tick(job, aborted);
  const auto end_ts = obs::Tracer::Clock::now();
  finish();

  report.status = out.status;
  report.attempts = out.attempts;
  report.error = std::move(out.error);
  report.counters = out.counters;
  report.firing_log = std::move(out.firing_log);
  if (options.tracer != nullptr) {
    obs::json::Object args;
    args.emplace_back("status", obs::json::Value(std::string(to_string(report.status))));
    args.emplace_back("attempts", obs::json::Value(static_cast<std::uint64_t>(report.attempts)));
    options.tracer->record_span("scene " + std::to_string(id_), "scene", begin_ts, end_ts,
                                static_cast<std::uint32_t>(id_), std::move(args));
  }
  return report;
}

}  // namespace psmsys::serve
