#include "serve/server.hpp"

#include <stdexcept>
#include <utility>

#include "obs/bench_schema.hpp"

namespace psmsys::serve {

namespace {

std::int64_t ns_between(std::chrono::steady_clock::time_point a,
                        std::chrono::steady_clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count();
}

}  // namespace

obs::json::Value ServerStats::to_json() const {
  obs::json::Object o;
  o.emplace_back("schema_version", obs::json::Value(obs::kServeRollupSchemaVersion));
  o.emplace_back("kind", obs::json::Value(std::string("serve_rollup")));
  const auto put = [&o](const char* key, std::uint64_t v) {
    o.emplace_back(key, obs::json::Value(v));
  };
  put("workers", workers);
  put("submitted", submitted);
  put("admitted", admitted);
  {
    obs::json::Object rej;
    rej.emplace_back("queue_full", obs::json::Value(rejected_queue_full));
    rej.emplace_back("draining", obs::json::Value(rejected_draining));
    o.emplace_back("rejected", obs::json::Value(std::move(rej)));
  }
  put("completed", completed);
  put("quarantined", quarantined);
  put("aborted", aborted);
  put("retries", retries);
  o.emplace_back("wall_ns", obs::json::Value(wall_ns));
  o.emplace_back("scenes_per_sec", obs::json::Value(scenes_per_sec));
  o.emplace_back("latency_ns", latency.to_json());
  o.emplace_back("engine", engine.to_json());
  return obs::json::Value(std::move(o));
}

Server::Server(std::shared_ptr<const SharedRuleBase> rulebase, ServerOptions options)
    : rulebase_(std::move(rulebase)), options_(std::move(options)) {
  if (rulebase_ == nullptr) throw std::invalid_argument("server needs a rule base");
  if (options_.workers == 0) options_.workers = 1;

  // Contexts share one sink but never a line: each context prefixes its
  // lines with the session id and this wrapper serializes whole lines.
  SessionOptions session = options_.session;
  if (session.trace_sink) {
    session.trace_sink = [this, sink = options_.session.trace_sink](const std::string& line) {
      const std::lock_guard<std::mutex> lock(sink_mu_);
      sink(line);
    };
  }

  slots_.reserve(options_.workers);
  contexts_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    slots_.push_back(std::make_unique<WorkerSlot>());
    // Built serially before any thread starts: engine compilation over the
    // shared artifacts plus one base_init per context, exactly once.
    contexts_.push_back(std::make_unique<EngineContext>(rulebase_, options_.base_init, session));
  }

  engine_.task_processes = options_.workers;
  engine_.match_threads = rulebase_->engine_options().match_threads;
  start_ = std::chrono::steady_clock::now();

  threads_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
  if (options_.watchdog_budget.count() > 0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

Server::~Server() { drain(); }

SubmitResult Server::submit(SceneJob job) {
  SubmitResult result;
  std::promise<SceneReport> promise;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    result.scene = next_scene_++;
    if (stopped_) {
      result.rejected = RejectReason::Stopped;
      ++rejected_draining_;
      return result;
    }
    if (draining_) {
      result.rejected = RejectReason::Draining;
      ++rejected_draining_;
      return result;
    }
    if (queue_.size() >= options_.queue_capacity) {
      result.rejected = RejectReason::QueueFull;
      ++rejected_queue_full_;
      return result;
    }
    result.report = promise.get_future();
    Pending& p = queue_.emplace_back();
    p.id = result.scene;
    p.job = std::move(job);
    p.promise = std::move(promise);
    p.enqueued = std::chrono::steady_clock::now();
  }
  work_cv_.notify_one();
  return result;
}

void Server::worker_loop(std::size_t index) {
  WorkerSlot& slot = *slots_[index];
  EngineContext& context = *contexts_[index];
  for (;;) {
    Pending pending;
    std::chrono::steady_clock::time_point dequeued;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return !queue_.empty() || draining_; });
      if (queue_.empty()) return;  // draining and nothing left: exit
      pending = std::move(queue_.front());
      queue_.pop_front();
      dequeued = std::chrono::steady_clock::now();
      slot.scene = pending.id;
      slot.busy_since = dequeued;
      slot.busy = true;
      slot.abort.store(false, std::memory_order_relaxed);
    }

    Session session(pending.id, context);
    SceneReport report =
        session.run(pending.job, [&slot] { return slot.abort.load(std::memory_order_relaxed); });
    const auto finished = std::chrono::steady_clock::now();
    report.queued_ns = ns_between(pending.enqueued, dequeued);
    report.service_ns = ns_between(dequeued, finished);
    report.latency_ns = ns_between(pending.enqueued, finished);

    {
      const std::lock_guard<std::mutex> lock(mu_);
      slot.busy = false;
      if (report.attempts > 1) retries_ += report.attempts - 1;
      switch (report.status) {
        case SceneStatus::Completed:
          ++completed_;
          latencies_ns_.push_back(report.latency_ns);
          engine_.add_counters(report.counters);
          ++engine_.tasks;
          break;
        case SceneStatus::Quarantined:
          ++quarantined_;
          ++engine_.quarantined;
          break;
        case SceneStatus::Aborted:
          ++aborted_;
          break;
        case SceneStatus::Rejected:
          break;  // unreachable: rejected scenes are never enqueued
      }
    }
    // Resolve the client's future exactly once, outside the lock.
    pending.promise.set_value(std::move(report));
  }
}

void Server::watchdog_loop() {
  while (!watchdog_stop_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(options_.watchdog_poll);
    const auto now = std::chrono::steady_clock::now();
    const std::lock_guard<std::mutex> lock(mu_);
    for (const auto& slot : slots_) {
      if (slot->busy && now - slot->busy_since > options_.watchdog_budget) {
        // The scene observes this between cycle slices, throws TaskAborted,
        // and rolls back; start/finish transitions happen under mu_, so the
        // flag can never hit a scene other than the one scanned here.
        slot->abort.store(true, std::memory_order_relaxed);
      }
    }
  }
}

ServerStats Server::drain() {
  ServerStats out;
  std::call_once(drain_once_, [this] {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      draining_ = true;
    }
    work_cv_.notify_all();
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
    watchdog_stop_.store(true, std::memory_order_relaxed);
    if (watchdog_.joinable()) watchdog_.join();
    const std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
    final_wall_ns_ = ns_between(start_, std::chrono::steady_clock::now());
  });
  return stats();
}

ServerStats Server::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_locked();
}

ServerStats Server::stats_locked() const {
  ServerStats s;
  s.workers = options_.workers;
  s.rejected_queue_full = rejected_queue_full_;
  s.rejected_draining = rejected_draining_;
  s.submitted = next_scene_;
  s.admitted = next_scene_ - rejected_queue_full_ - rejected_draining_;
  s.completed = completed_;
  s.quarantined = quarantined_;
  s.aborted = aborted_;
  s.retries = retries_;
  s.wall_ns =
      final_wall_ns_ >= 0 ? final_wall_ns_ : ns_between(start_, std::chrono::steady_clock::now());
  s.scenes_per_sec = s.wall_ns > 0 ? static_cast<double>(s.completed) /
                                         (static_cast<double>(s.wall_ns) * 1e-9)
                                   : 0.0;
  s.latency = obs::summarize_latency_ns(latencies_ns_);
  s.engine = engine_;
  s.engine.retries = retries_;
  s.engine.wall_ns = s.wall_ns;
  return s;
}

}  // namespace psmsys::serve
