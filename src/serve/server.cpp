#include "serve/server.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/bench_schema.hpp"
#include "obs/trace.hpp"

namespace psmsys::serve {

/// Shared state of one admitted stream: the handoff surface between the
/// client's StreamHandle (enqueues ticks, closes) and the worker the stream
/// is pinned to (dequeues ticks, resolves reports). One-shot submit() builds
/// the degenerate form — a single pre-enqueued tick with closed already set —
/// so the worker-side protocol below is the only execution path.
///
/// Lock ordering: a thread holding the server's mu_ may acquire mu (submit
/// does, building the one-shot before publication); never the reverse.
struct StreamState {
  SceneId id = 0;
  std::string label;
  bool oneshot = false;
  std::size_t tick_capacity = 16;
  std::chrono::steady_clock::time_point opened;

  struct PendingTick {
    std::uint64_t seq = 0;
    SceneJob job;
    std::promise<TickReport> promise;  ///< unused for the one-shot wrapper
    std::chrono::steady_clock::time_point enqueued;
  };

  util::Mutex mu;
  std::condition_variable_any cv;  ///< worker parks here between ticks
  std::deque<PendingTick> ticks PSMSYS_GUARDED_BY(mu);
  std::uint64_t next_seq PSMSYS_GUARDED_BY(mu) = 0;
  bool closed PSMSYS_GUARDED_BY(mu) = false;       ///< client closed
  bool force_close PSMSYS_GUARDED_BY(mu) = false;  ///< server drain poke
  bool dead PSMSYS_GUARDED_BY(mu) = false;         ///< worker finished it

  std::promise<StreamReport> close_promise;  ///< resolved at terminal state
  std::promise<SceneReport> scene_promise;   ///< one-shot wrapper only
};

namespace {

std::int64_t ns_between(std::chrono::steady_clock::time_point a,
                        std::chrono::steady_clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count();
}

std::string pack_label(const std::string& name, const std::string& version) {
  return version.empty() ? name : name + "@" + version;
}

/// Registry identity of a candidate: explicit name/version win, then the
/// program's `(pack ...)` metadata, then a plain default.
void resolve_identity(const PackCandidate& candidate, std::string& name,
                      std::string& version) {
  name = candidate.name.empty() ? candidate.program->pack_name() : candidate.name;
  version = candidate.version.empty() ? candidate.program->pack_version() : candidate.version;
  if (name.empty()) name = "pack";
}

}  // namespace

const char* to_string(PackState state) noexcept {
  switch (state) {
    case PackState::Active:
      return "active";
    case PackState::Staged:
      return "staged";
    case PackState::Retired:
      return "retired";
    case PackState::Rejected:
      return "rejected";
  }
  return "unknown";
}

obs::json::Value ServerStats::to_json() const {
  obs::json::Object o;
  o.emplace_back("schema_version", obs::json::Value(obs::kServeRollupSchemaVersion));
  o.emplace_back("kind", obs::json::Value(std::string("serve_rollup")));
  const auto put = [&o](const char* key, std::uint64_t v) {
    o.emplace_back(key, obs::json::Value(v));
  };
  put("workers", workers);
  put("submitted", submitted);
  put("admitted", admitted);
  {
    obs::json::Object rej;
    rej.emplace_back("queue_full", obs::json::Value(rejected_queue_full));
    rej.emplace_back("draining", obs::json::Value(rejected_draining));
    o.emplace_back("rejected", obs::json::Value(std::move(rej)));
  }
  put("completed", completed);
  put("quarantined", quarantined);
  put("aborted", aborted);
  put("retries", retries);
  {
    obs::json::Object pk;
    pk.emplace_back("loaded", obs::json::Value(packs_loaded));
    pk.emplace_back("rejected", obs::json::Value(packs_rejected));
    pk.emplace_back("swaps", obs::json::Value(pack_swaps));
    pk.emplace_back("rollbacks", obs::json::Value(pack_rollbacks));
    pk.emplace_back("active", obs::json::Value(active_pack));
    obs::json::Array per;
    per.reserve(packs.size());
    for (const auto& p : packs) {
      obs::json::Object e;
      e.emplace_back("id", obs::json::Value(p.id));
      e.emplace_back("name", obs::json::Value(p.name));
      e.emplace_back("version", obs::json::Value(p.version));
      e.emplace_back("state", obs::json::Value(std::string(to_string(p.state))));
      e.emplace_back("decision",
                     obs::json::Value(analysis::admission_decision_name(p.decision)));
      e.emplace_back("gated", obs::json::Value(p.gated));
      e.emplace_back("scenes_completed", obs::json::Value(p.scenes_completed));
      e.emplace_back("workers_on", obs::json::Value(p.workers_on));
      per.emplace_back(std::move(e));
    }
    pk.emplace_back("per_pack", obs::json::Value(std::move(per)));
    o.emplace_back("packs", obs::json::Value(std::move(pk)));
  }
  {
    obs::json::Object st;
    const auto sput = [&st](const char* key, std::uint64_t v) {
      st.emplace_back(key, obs::json::Value(v));
    };
    sput("opened", streams.opened);
    sput("completed", streams.completed);
    sput("quarantined", streams.quarantined);
    sput("aborted", streams.aborted);
    sput("drained", streams.drained);
    sput("ticks", streams.ticks);
    sput("ticks_completed", streams.ticks_completed);
    sput("ticks_failed", streams.ticks_failed);
    sput("ticks_shed", streams.ticks_shed);
    sput("tick_retries", streams.tick_retries);
    sput("wmes_streamed", streams.wmes_streamed);
    sput("peak_resident_wm", streams.peak_resident_wm);
    st.emplace_back("tick_latency_ns", streams.tick_latency.to_json());
    st.emplace_back("ticks_per_sec", obs::json::Value(streams.ticks_per_sec));
    o.emplace_back("streams", obs::json::Value(std::move(st)));
  }
  o.emplace_back("wall_ns", obs::json::Value(wall_ns));
  o.emplace_back("scenes_per_sec", obs::json::Value(scenes_per_sec));
  o.emplace_back("latency_ns", latency.to_json());
  o.emplace_back("engine", engine.to_json());
  return obs::json::Value(std::move(o));
}

Server::Server(std::shared_ptr<const SharedRuleBase> rulebase, ServerOptions options)
    : rulebase_(std::move(rulebase)), options_(std::move(options)) {
  if (rulebase_ == nullptr) throw std::invalid_argument("server needs a rule base");
  if (options_.workers == 0) options_.workers = 1;

  // Contexts share one sink but never a line: each context prefixes its
  // lines with the session id and this wrapper serializes whole lines.
  session_wrapped_ = options_.session;
  if (session_wrapped_.trace_sink) {
    session_wrapped_.trace_sink = [this, sink = options_.session.trace_sink](
                                      const std::string& line) {
      const util::MutexLock lock(sink_mu_);
      sink(line);
    };
  }

  // The boot pack: loaded before the gate existed for this server, so it is
  // registered ungated (verdict_json empty) and immediately Active.
  {
    const util::MutexLock lock(mu_);
    PackRecord boot;
    boot.id = next_pack_id_++;
    boot.name = rulebase_->program().pack_name().empty() ? "boot"
                                                         : rulebase_->program().pack_name();
    boot.version = rulebase_->program().pack_version();
    boot.state = PackState::Active;
    boot.gated = false;
    boot.rulebase = rulebase_;
    boot.workers_on = options_.workers;
    active_pack_id_ = boot.id;
    packs_.push_back(std::move(boot));
  }

  slots_.reserve(options_.workers);
  contexts_.reserve(options_.workers);
  context_pack_ids_.assign(options_.workers, 1);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    slots_.push_back(std::make_unique<WorkerSlot>());
    // Built serially before any thread starts: engine compilation over the
    // shared artifacts plus one base_init per context, exactly once.
    contexts_.push_back(
        std::make_unique<EngineContext>(rulebase_, options_.base_init, session_wrapped_));
  }

  {
    const util::MutexLock lock(mu_);
    engine_.task_processes = options_.workers;
    engine_.match_threads = rulebase_->engine_options().match_threads;
  }
  start_ = std::chrono::steady_clock::now();

  threads_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
  if (options_.watchdog_budget.count() > 0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

Server::~Server() { drain(); }

SubmitResult Server::submit(SceneJob job) {
  SubmitResult result;
  // One-shot = one-tick pre-closed stream: the worker-side stream protocol
  // (run_stream) is the single execution path for both submission flavors.
  auto stream = std::make_shared<StreamState>();
  stream->oneshot = true;
  stream->label = job.label;
  stream->tick_capacity = 1;
  const auto now = std::chrono::steady_clock::now();
  stream->opened = now;
  {
    const util::MutexLock lock(stream->mu);
    StreamState::PendingTick& t = stream->ticks.emplace_back();
    t.seq = stream->next_seq++;
    t.job = std::move(job);
    t.enqueued = now;
    stream->closed = true;
  }
  {
    const util::MutexLock lock(mu_);
    result.scene = stream->id = next_scene_++;
    if (stopped_) {
      result.rejected = RejectReason::Stopped;
      ++rejected_draining_;
      return result;
    }
    if (draining_) {
      result.rejected = RejectReason::Draining;
      ++rejected_draining_;
      return result;
    }
    if (queue_.size() >= options_.queue_capacity) {
      result.rejected = RejectReason::QueueFull;
      ++rejected_queue_full_;
      return result;
    }
    result.report = stream->scene_promise.get_future();
    queue_.push_back(std::move(stream));
  }
  work_cv_.notify_one();
  return result;
}

StreamHandle Server::open_stream(std::string label) {
  StreamHandle handle;
  handle.server_ = this;
  auto stream = std::make_shared<StreamState>();
  stream->label = std::move(label);
  stream->tick_capacity = std::max<std::size_t>(1, options_.stream_tick_capacity);
  stream->opened = std::chrono::steady_clock::now();
  handle.report_ = stream->close_promise.get_future();
  {
    const util::MutexLock lock(mu_);
    handle.id_ = stream->id = next_scene_++;
    if (stopped_) {
      handle.rejected_ = RejectReason::Stopped;
      ++rejected_draining_;
    } else if (draining_) {
      handle.rejected_ = RejectReason::Draining;
      ++rejected_draining_;
    } else if (queue_.size() >= options_.queue_capacity) {
      handle.rejected_ = RejectReason::QueueFull;
      ++rejected_queue_full_;
    } else {
      ++streams_opened_;
      std::erase_if(stream_registry_,
                    [](const std::weak_ptr<StreamState>& w) { return w.expired(); });
      stream_registry_.push_back(stream);
      queue_.push_back(stream);
      handle.state_ = std::move(stream);
    }
  }
  if (handle.state_ == nullptr) {
    // Shed at open: resolve the terminal report here so close() never hangs.
    StreamReport report;
    report.stream = handle.id_;
    report.label = stream->label;
    report.status = SceneStatus::Rejected;
    report.error = to_string(handle.rejected_);
    stream->close_promise.set_value(std::move(report));
    return handle;
  }
  work_cv_.notify_one();
  return handle;
}

SubmitTickResult Server::stream_tick(const std::shared_ptr<StreamState>& stream, SceneJob job) {
  SubmitTickResult result;
  bool shed_draining = false;
  {
    const util::MutexLock lock(mu_);
    shed_draining = draining_ || stopped_;
  }
  {
    const util::MutexLock lock(stream->mu);
    result.tick = stream->next_seq++;
    if (stream->dead || stream->closed || stream->force_close) {
      result.rejected = RejectReason::StreamClosed;
    } else if (shed_draining) {
      result.rejected = RejectReason::Draining;
    } else if (stream->ticks.size() >= stream->tick_capacity) {
      result.rejected = RejectReason::QueueFull;
    } else {
      std::promise<TickReport> promise;
      result.report = promise.get_future();
      StreamState::PendingTick& t = stream->ticks.emplace_back();
      t.seq = result.tick;
      t.job = std::move(job);
      t.promise = std::move(promise);
      t.enqueued = std::chrono::steady_clock::now();
    }
  }
  {
    const util::MutexLock lock(mu_);
    ++ticks_;
    if (result.rejected != RejectReason::None) ++ticks_shed_;
  }
  stream->cv.notify_all();
  return result;
}

void Server::stream_close(const std::shared_ptr<StreamState>& stream) {
  {
    const util::MutexLock lock(stream->mu);
    stream->closed = true;
  }
  stream->cv.notify_all();
}

SubmitTickResult StreamHandle::tick(SceneJob job) {
  if (server_ == nullptr || state_ == nullptr) {
    SubmitTickResult result;
    result.rejected = rejected_ == RejectReason::None ? RejectReason::Stopped : rejected_;
    return result;
  }
  return server_->stream_tick(state_, std::move(job));
}

std::future<StreamReport> StreamHandle::close() {
  if (server_ != nullptr && state_ != nullptr) server_->stream_close(state_);
  return std::move(report_);
}

void Server::worker_loop(std::size_t index) {
  WorkerSlot& slot = *slots_[index];
  for (;;) {
    std::shared_ptr<StreamState> stream;
    std::uint64_t my_pack = 0;
    std::shared_ptr<const SharedRuleBase> my_rulebase;
    bool rebind = false;
    {
      util::MutexLock lock(mu_);
      work_cv_.wait(lock, [this]() PSMSYS_REQUIRES(mu_) {
        return !queue_.empty() || draining_;
      });
      if (queue_.empty()) return;  // draining and nothing left: exit
      stream = std::move(queue_.front());
      queue_.pop_front();

      // Dequeue-time pack binding: the stream runs on whatever pack is
      // active NOW; a swap after this point affects only later dequeues, so
      // in-flight scenes and streams always finish on the pack they started
      // with.
      my_pack = active_pack_id_;
      rebind = context_pack_ids_[index] != my_pack;
      if (rebind) {
        if (PackRecord* old = find_pack_locked(context_pack_ids_[index])) {
          --old->workers_on;
        }
        PackRecord* next = find_pack_locked(my_pack);
        ++next->workers_on;
        my_rulebase = next->rulebase;
      }
    }

    if (rebind) {
      // Rebuild the resident context (engine compile + base_init) OUTSIDE
      // the lock: a hot swap must never stall the rest of the pool.
      contexts_[index] = std::make_unique<EngineContext>(my_rulebase, options_.base_init,
                                                         session_wrapped_);
      context_pack_ids_[index] = my_pack;
    }

    run_stream(index, slot, stream, my_pack);
  }
}

void Server::run_stream(std::size_t index, WorkerSlot& slot,
                        const std::shared_ptr<StreamState>& stream, std::uint64_t pack_id) {
  const auto dequeued = std::chrono::steady_clock::now();
  Session session(stream->id, *contexts_[index]);
  session.begin();
  const auto span_begin = obs::Tracer::Clock::now();

  StreamReport rollup;
  rollup.stream = stream->id;
  rollup.label = stream->label;
  rollup.pack = pack_id;
  SceneReport scene;  // one-shot flavor of the same terminal state
  scene.scene = stream->id;
  scene.label = stream->label;
  std::chrono::steady_clock::time_point oneshot_enqueued = dequeued;

  util::WorkCounters stream_counters;  // sum over completed ticks
  std::vector<std::int64_t> tick_latencies;
  bool drained_by_server = false;

  for (;;) {
    StreamState::PendingTick tick;
    bool have_tick = false;
    {
      util::MutexLock lock(stream->mu);
      StreamState& st = *stream;
      stream->cv.wait(lock, [&st]() PSMSYS_REQUIRES(st.mu) {
        return !st.ticks.empty() || st.closed || st.force_close;
      });
      if (!stream->ticks.empty()) {
        tick = std::move(stream->ticks.front());
        stream->ticks.pop_front();
        have_tick = true;
      } else {
        drained_by_server = stream->force_close && !stream->closed;
      }
    }
    if (!have_tick) break;

    // The watchdog budget covers a tick, not the stream: the slot is busy
    // only while a tick executes, so an idle open stream never trips it.
    const auto tick_start = std::chrono::steady_clock::now();
    {
      const util::MutexLock lock(mu_);
      slot.scene = stream->id;
      slot.busy_since = tick_start;
      slot.busy = true;
      slot.abort.store(false, std::memory_order_relaxed);
    }
    Session::TickOutcome out = session.run_tick(
        tick.job, [&slot] { return slot.abort.load(std::memory_order_relaxed); });
    const auto tick_done = std::chrono::steady_clock::now();
    {
      const util::MutexLock lock(mu_);
      slot.busy = false;
    }

    ++rollup.ticks;
    if (out.attempts > 1) rollup.tick_retries += out.attempts - 1;
    const bool ok = out.status == SceneStatus::Completed;
    if (ok) {
      ++rollup.ticks_completed;
      stream_counters += out.counters;
      rollup.wmes_streamed += out.counters.wmes_added;
      rollup.peak_wm = std::max(rollup.peak_wm, out.wm_size);
      rollup.firing_log += out.firing_log;
      tick_latencies.push_back(ns_between(tick.enqueued, tick_done));
    } else {
      // Terminal tick failure kills the stream: the failed tick is already
      // rolled back to its checkpoint, and close-time rollback below returns
      // the context to base. Isolation would otherwise be unprovable — a
      // quarantined tick's partial state must not feed later ticks.
      rollup.status = out.status;
      rollup.error = out.error;
    }

    if (stream->oneshot) {
      oneshot_enqueued = tick.enqueued;
      scene.status = out.status;
      scene.attempts = out.attempts;
      scene.error = std::move(out.error);
      scene.counters = out.counters;
      scene.firing_log = std::move(out.firing_log);
    } else {
      TickReport tr;
      tr.stream = stream->id;
      tr.tick = tick.seq;
      tr.label = tick.job.label;
      tr.status = out.status;
      tr.attempts = out.attempts;
      tr.error = std::move(out.error);
      tr.counters = out.counters;
      tr.firing_log = std::move(out.firing_log);
      tr.wm_size = out.wm_size;
      tr.live_tokens = out.live_tokens;
      tr.queued_ns = ns_between(tick.enqueued, tick_start);
      tr.service_ns = ns_between(tick_start, tick_done);
      tr.latency_ns = ns_between(tick.enqueued, tick_done);
      tick.promise.set_value(std::move(tr));
    }
    if (!ok) break;
  }

  // One "scene" span per stream on the session's tracer lane, both
  // submission flavors: the serving window from dequeue to the last tick.
  if (obs::Tracer* tracer = options_.session.tracer) {
    const auto span_end = obs::Tracer::Clock::now();
    obs::json::Object args;
    args.emplace_back("status",
                      obs::json::Value(std::string(to_string(rollup.status))));
    args.emplace_back("attempts", obs::json::Value(
                                      static_cast<std::uint64_t>(scene.attempts)));
    if (!stream->oneshot) {
      args.emplace_back("ticks", obs::json::Value(rollup.ticks));
    }
    tracer->record_span("scene " + std::to_string(stream->id), "scene", span_begin,
                        span_end, static_cast<std::uint32_t>(stream->id),
                        std::move(args));
  }

  // Close-time rollback: the recycled context is bit-identical to fresh
  // (WMEs, timetags, recency) whatever the stream did or failed to do.
  session.finish();

  // Kill the stream and abandon whatever is still queued (terminal failure
  // left ticks behind; a clean close cannot, the loop drained them first).
  std::deque<StreamState::PendingTick> abandoned;
  {
    const util::MutexLock lock(stream->mu);
    stream->dead = true;
    abandoned.swap(stream->ticks);
  }
  for (StreamState::PendingTick& t : abandoned) {
    TickReport tr;
    tr.stream = stream->id;
    tr.tick = t.seq;
    tr.label = t.job.label;
    tr.status = SceneStatus::Rejected;
    tr.reject = RejectReason::StreamClosed;
    tr.error = "stream terminated before this tick ran";
    t.promise.set_value(std::move(tr));
  }

  const auto finished = std::chrono::steady_clock::now();
  rollup.open_ns = ns_between(stream->opened, finished);
  rollup.drained = drained_by_server;
  if (stream->oneshot) {
    scene.queued_ns = ns_between(oneshot_enqueued, dequeued);
    scene.service_ns = ns_between(dequeued, finished);
    scene.latency_ns = ns_between(oneshot_enqueued, finished);
  }

  {
    const util::MutexLock lock(mu_);
    retries_ += rollup.tick_retries;
    // A stream is one scene in the top-level bins: opened streams were
    // admitted, and the stream's terminal status is its scene status — so
    // submitted == admitted + rejected and admitted == completed +
    // quarantined + aborted hold across both submission flavors.
    switch (rollup.status) {
      case SceneStatus::Completed:
        ++completed_;
        latencies_ns_.push_back(stream->oneshot ? scene.latency_ns : rollup.open_ns);
        engine_.add_counters(stream_counters);
        ++engine_.tasks;
        if (PackRecord* rec = find_pack_locked(pack_id)) ++rec->scenes_completed;
        break;
      case SceneStatus::Quarantined:
        ++quarantined_;
        ++engine_.quarantined;
        break;
      case SceneStatus::Aborted:
        ++aborted_;
        break;
      case SceneStatus::Rejected:
        break;  // unreachable: enqueued streams are never Rejected
    }
    if (!stream->oneshot) {
      switch (rollup.status) {
        case SceneStatus::Completed: ++streams_completed_; break;
        case SceneStatus::Quarantined: ++streams_quarantined_; break;
        case SceneStatus::Aborted: ++streams_aborted_; break;
        case SceneStatus::Rejected: break;
      }
      if (drained_by_server) ++streams_drained_;
      ticks_completed_ += rollup.ticks_completed;
      ticks_failed_ += rollup.ticks - rollup.ticks_completed;
      ticks_shed_ += abandoned.size();
      tick_retries_ += rollup.tick_retries;
      wmes_streamed_ += rollup.wmes_streamed;
      peak_resident_wm_ = std::max(peak_resident_wm_, rollup.peak_wm);
      tick_latencies_ns_.insert(tick_latencies_ns_.end(), tick_latencies.begin(),
                                tick_latencies.end());
    }
  }

  // Resolve the terminal future exactly once, outside the lock.
  if (stream->oneshot) {
    stream->scene_promise.set_value(std::move(scene));
  } else {
    stream->close_promise.set_value(std::move(rollup));
  }
}

void Server::watchdog_loop() {
  while (!watchdog_stop_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(options_.watchdog_poll);
    const auto now = std::chrono::steady_clock::now();
    const util::MutexLock lock(mu_);
    for (const auto& slot : slots_) {
      if (slot->busy && now - slot->busy_since > options_.watchdog_budget) {
        // The scene observes this between cycle slices, throws TaskAborted,
        // and rolls back; start/finish transitions happen under mu_, so the
        // flag can never hit a scene other than the one scanned here.
        slot->abort.store(true, std::memory_order_relaxed);
      }
    }
  }
}

ServerStats Server::drain() {
  std::call_once(drain_once_, [this] {
    std::vector<std::weak_ptr<StreamState>> registry;
    {
      const util::MutexLock lock(mu_);
      draining_ = true;
      registry = stream_registry_;
    }
    // Force-close every live stream: workers park on a stream's own cv
    // waiting for ticks a client may never send, so drain must poke them.
    // Queued ticks still run first (drain finishes admitted work); only the
    // open-ended wait is cut short.
    for (const std::weak_ptr<StreamState>& weak : registry) {
      if (const std::shared_ptr<StreamState> stream = weak.lock()) {
        {
          const util::MutexLock lock(stream->mu);
          stream->force_close = true;
        }
        stream->cv.notify_all();
      }
    }
    work_cv_.notify_all();
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
    watchdog_stop_.store(true, std::memory_order_relaxed);
    if (watchdog_.joinable()) watchdog_.join();
    const util::MutexLock lock(mu_);
    stopped_ = true;
    final_wall_ns_ = ns_between(start_, std::chrono::steady_clock::now());
    // Harvest per-node Rete activation gauges from the contexts still bound
    // to the active pack (only those share one network topology / id space;
    // a context left behind on a retired pack would skew the calibration).
    // Workers are joined, so the worker-owned contexts are safe to read.
    for (std::size_t i = 0; i < contexts_.size(); ++i) {
      if (context_pack_ids_[i] != active_pack_id_) continue;
      const rete::NodeActivations acts = contexts_[i]->engine().network().node_activations();
      engine_.add_node_activations(acts.alpha, acts.join);
    }
  });
  return stats();
}

ServerStats Server::stats() const {
  const util::MutexLock lock(mu_);
  return stats_locked();
}

ServerStats Server::stats_locked() const {
  ServerStats s;
  s.workers = options_.workers;
  s.rejected_queue_full = rejected_queue_full_;
  s.rejected_draining = rejected_draining_;
  s.submitted = next_scene_;
  s.admitted = next_scene_ - rejected_queue_full_ - rejected_draining_;
  s.completed = completed_;
  s.quarantined = quarantined_;
  s.aborted = aborted_;
  s.retries = retries_;
  s.wall_ns =
      final_wall_ns_ >= 0 ? final_wall_ns_ : ns_between(start_, std::chrono::steady_clock::now());
  s.scenes_per_sec = s.wall_ns > 0 ? static_cast<double>(s.completed) /
                                         (static_cast<double>(s.wall_ns) * 1e-9)
                                   : 0.0;
  s.latency = obs::summarize_latency_ns(latencies_ns_);
  s.engine = engine_;
  s.engine.retries = retries_;
  s.engine.wall_ns = s.wall_ns;

  s.streams.opened = streams_opened_;
  s.streams.completed = streams_completed_;
  s.streams.quarantined = streams_quarantined_;
  s.streams.aborted = streams_aborted_;
  s.streams.drained = streams_drained_;
  s.streams.ticks = ticks_;
  s.streams.ticks_completed = ticks_completed_;
  s.streams.ticks_failed = ticks_failed_;
  s.streams.ticks_shed = ticks_shed_;
  s.streams.tick_retries = tick_retries_;
  s.streams.wmes_streamed = wmes_streamed_;
  s.streams.peak_resident_wm = peak_resident_wm_;
  s.streams.tick_latency = obs::summarize_latency_ns(tick_latencies_ns_);
  s.streams.ticks_per_sec = s.wall_ns > 0 ? static_cast<double>(s.streams.ticks_completed) /
                                                (static_cast<double>(s.wall_ns) * 1e-9)
                                          : 0.0;

  s.packs_loaded = packs_.size();
  s.packs_rejected = packs_rejected_;
  s.pack_swaps = pack_swaps_;
  s.pack_rollbacks = pack_rollbacks_;
  s.active_pack = active_pack_id_;
  s.packs.reserve(packs_.size());
  for (const auto& rec : packs_) {
    PackInfo info;
    info.id = rec.id;
    info.name = rec.name;
    info.version = rec.version;
    info.state = rec.state;
    info.decision = rec.decision;
    info.gated = rec.gated;
    info.scenes_completed = rec.scenes_completed;
    info.workers_on = rec.workers_on;
    s.packs.push_back(std::move(info));
  }
  return s;
}

Server::PackRecord* Server::find_pack_locked(std::uint64_t id) {
  for (auto& rec : packs_) {
    if (rec.id == id) return &rec;
  }
  return nullptr;
}

const Server::PackRecord* Server::find_pack_locked(std::uint64_t id) const {
  for (const auto& rec : packs_) {
    if (rec.id == id) return &rec;
  }
  return nullptr;
}

LoadResult Server::stage_pack(const PackCandidate& candidate) {
  if (candidate.program == nullptr || !candidate.program->frozen()) {
    throw std::invalid_argument("stage_pack needs a frozen candidate program");
  }

  // Snapshot the live side under the lock, then run analysis and compilation
  // WITHOUT it — the gate is pure static analysis over immutable programs,
  // and workers must keep serving while a candidate is judged.
  std::shared_ptr<const SharedRuleBase> live_rb;
  std::string live_name, live_version;
  {
    const util::MutexLock lock(mu_);
    const PackRecord* live = find_pack_locked(active_pack_id_);
    live_rb = live->rulebase;
    live_name = live->name;
    live_version = live->version;
  }

  std::string cand_name, cand_version;
  resolve_identity(candidate, cand_name, cand_version);

  analysis::PackInput live_input;
  live_input.label = pack_label(live_name, live_version);
  live_input.program = live_rb->program_ptr();
  live_input.seed_classes = options_.admission_seeds;
  live_input.output_classes = options_.admission_outputs;
  live_input.spec = options_.admission_spec;

  analysis::PackInput cand_input;
  cand_input.label = pack_label(cand_name, cand_version);
  cand_input.program = candidate.program;
  cand_input.seed_classes = options_.admission_seeds;
  cand_input.output_classes = options_.admission_outputs;

  const analysis::AnalysisPipeline pipeline(options_.admission);
  LoadResult out;
  out.verdict = pipeline.admit(&live_input, cand_input);
  out.accepted = out.verdict.accepted();

  std::shared_ptr<const SharedRuleBase> compiled;
  if (out.accepted) {
    // Candidate engines inherit the live pack's options unless overridden.
    const ops5::EngineOptions opts =
        candidate.engine_options ? *candidate.engine_options : live_rb->engine_options();
    compiled = SharedRuleBase::compile(candidate.program, candidate.externals, opts);
  }

  {
    const util::MutexLock lock(mu_);
    PackRecord rec;
    rec.id = next_pack_id_++;
    rec.name = std::move(cand_name);
    rec.version = std::move(cand_version);
    rec.state = out.accepted ? PackState::Staged : PackState::Rejected;
    rec.decision = out.verdict.decision;
    rec.gated = true;
    rec.verdict_json = out.verdict.to_json().dump(2);
    rec.rulebase = std::move(compiled);
    out.pack = rec.id;
    if (!out.accepted) ++packs_rejected_;
    packs_.push_back(std::move(rec));
  }
  return out;
}

bool Server::activate_locked(std::uint64_t pack, bool is_rollback, std::string* error) {
  const auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (stopped_) return fail("server is stopped");
  PackRecord* next = find_pack_locked(pack);
  if (next == nullptr) return fail("unknown pack id " + std::to_string(pack));
  if (next->state == PackState::Rejected) {
    return fail("pack " + std::to_string(pack) + " was rejected by the admission gate");
  }
  if (pack == active_pack_id_) {
    return fail("pack " + std::to_string(pack) + " is already active");
  }
  PackRecord* old = find_pack_locked(active_pack_id_);
  old->state = PackState::Retired;
  next->state = PackState::Active;
  rollback_pack_id_ = active_pack_id_;
  active_pack_id_ = pack;
  if (is_rollback) {
    ++pack_rollbacks_;
  } else {
    ++pack_swaps_;
  }
  return true;
}

bool Server::activate_pack(std::uint64_t pack, std::string* error) {
  const util::MutexLock lock(mu_);
  return activate_locked(pack, /*is_rollback=*/false, error);
}

bool Server::rollback_pack(std::string* error) {
  const util::MutexLock lock(mu_);
  if (rollback_pack_id_ == 0) {
    if (error != nullptr) *error = "no previous pack to roll back to";
    return false;
  }
  return activate_locked(rollback_pack_id_, /*is_rollback=*/true, error);
}

LoadResult Server::load_pack(const PackCandidate& candidate) {
  LoadResult out = stage_pack(candidate);
  if (out.accepted) {
    std::string error;
    out.activated = activate_pack(out.pack, &error);
  }
  return out;
}

std::vector<PackInfo> Server::packs() const {
  const util::MutexLock lock(mu_);
  return stats_locked().packs;
}

std::uint64_t Server::active_pack() const {
  const util::MutexLock lock(mu_);
  return active_pack_id_;
}

std::optional<std::string> Server::verdict_json(std::uint64_t pack) const {
  const util::MutexLock lock(mu_);
  const PackRecord* rec = find_pack_locked(pack);
  if (rec == nullptr) return std::nullopt;
  return rec->verdict_json;
}

std::string Server::admin_talk(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> argv;
  for (std::string tok; in >> tok;) argv.push_back(std::move(tok));

  const auto parse_id = [](const std::string& s, std::uint64_t& out) {
    char* end = nullptr;
    out = std::strtoull(s.c_str(), &end, 10);
    return end != nullptr && *end == '\0' && end != s.c_str();
  };

  if (argv.empty() || argv[0] == "help") {
    return "commands:\n"
           "  help                  this text\n"
           "  stats                 server rollup JSON so far\n"
           "  pack list             registered rule packs\n"
           "  pack verdict <id>     admission verdict JSON of a gated pack\n"
           "  pack swap <id>        activate a staged/retired pack\n"
           "  pack rollback         re-activate the previously live pack\n"
           "  drain                 stop admission, finish in-flight scenes";
  }
  if (argv[0] == "stats") {
    return stats().to_json().dump(2);
  }
  if (argv[0] == "drain") {
    const ServerStats s = drain();
    return "drained: " + std::to_string(s.completed) + " completed, " +
           std::to_string(s.quarantined) + " quarantined, " + std::to_string(s.aborted) +
           " aborted";
  }
  if (argv[0] == "pack") {
    if (argv.size() >= 2 && argv[1] == "list") {
      std::string out = "id  pack                 state     decision  scenes  workers";
      for (const PackInfo& p : packs()) {
        char row[160];
        std::snprintf(row, sizeof row, "\n%-3llu %-20s %-9s %-9s %-7llu %llu%s",
                      static_cast<unsigned long long>(p.id),
                      pack_label(p.name, p.version).c_str(), to_string(p.state),
                      std::string(analysis::admission_decision_name(p.decision)).c_str(),
                      static_cast<unsigned long long>(p.scenes_completed),
                      static_cast<unsigned long long>(p.workers_on),
                      p.gated ? "" : "  (ungated boot pack)");
        out += row;
      }
      return out;
    }
    if (argv.size() >= 3 && argv[1] == "verdict") {
      std::uint64_t id = 0;
      if (!parse_id(argv[2], id)) return "error: bad pack id '" + argv[2] + "'";
      const std::optional<std::string> verdict = verdict_json(id);
      if (!verdict) return "error: unknown pack id " + argv[2];
      if (verdict->empty()) return "pack " + argv[2] + " is the ungated boot pack (no verdict)";
      return *verdict;
    }
    if (argv.size() >= 3 && argv[1] == "swap") {
      std::uint64_t id = 0;
      if (!parse_id(argv[2], id)) return "error: bad pack id '" + argv[2] + "'";
      std::string error;
      if (!activate_pack(id, &error)) return "error: " + error;
      return "pack " + argv[2] + " active; in-flight scenes finish on their old pack";
    }
    if (argv.size() >= 2 && argv[1] == "rollback") {
      std::string error;
      if (!rollback_pack(&error)) return "error: " + error;
      return "rolled back to pack " + std::to_string(active_pack());
    }
  }
  return "error: unknown command '" + line + "' (try help)";
}

}  // namespace psmsys::serve
