#pragma once

// Streaming scenes (DESIGN.md §16): the client-facing types of the stream
// half of the serve API.
//
// A stream is a long-lived scene whose working memory arrives as *ticks* —
// batches of WME adds/retracts submitted over time. The server holds the
// stream's working memory resident on one engine context between ticks, runs
// incremental match + firing to quiescence per tick, and rolls everything
// back only when the stream closes, so a recycled context is bit-identical
// to fresh. One-shot submission is the degenerate case: Server::submit() is
// a thin wrapper over a one-tick, pre-closed stream, so admission, shedding,
// deadlines, pack binding, and the watchdog have exactly one code path.

#include <cstdint>
#include <future>
#include <memory>
#include <string>

#include "serve/session.hpp"
#include "util/counters.hpp"

namespace psmsys::serve {

class Server;
struct StreamState;  // internal (server.cpp); handles hold it by shared_ptr

using StreamId = SceneId;  ///< streams share the scene id space

/// Everything a client learns about one tick of a stream. Mirrors
/// SceneReport at tick granularity, plus the resident working-set gauges
/// sampled after the tick quiesced.
struct TickReport {
  StreamId stream = 0;
  std::uint64_t tick = 0;  ///< sequence number within the stream (0-based)
  std::string label;
  SceneStatus status = SceneStatus::Completed;
  RejectReason reject = RejectReason::None;
  std::uint32_t attempts = 0;
  std::string error;
  util::WorkCounters counters;  ///< successful attempt's engine deltas
  std::string firing_log;       ///< tick's session-prefixed watch lines (opt-in)
  std::uint64_t wm_size = 0;      ///< resident WMEs after the tick
  std::uint64_t live_tokens = 0;  ///< resident beta tokens after the tick (OBS)
  std::int64_t queued_ns = 0;     ///< tick submit -> tick start
  std::int64_t service_ns = 0;    ///< tick start -> tick done
  std::int64_t latency_ns = 0;    ///< tick submit -> tick done
};

/// Outcome of StreamHandle::tick(). Admitted ticks resolve through `report`
/// exactly once; shed ticks carry the reason and no future.
struct SubmitTickResult {
  std::uint64_t tick = 0;
  RejectReason rejected = RejectReason::None;
  std::future<TickReport> report;  ///< valid only when admitted()

  [[nodiscard]] bool admitted() const noexcept { return rejected == RejectReason::None; }
};

/// Terminal rollup of one stream, resolved when the stream closes (or the
/// server drains it, or a tick fails terminally).
struct StreamReport {
  StreamId stream = 0;
  std::string label;
  SceneStatus status = SceneStatus::Completed;
  std::string error;  ///< terminal failure cause (non-Completed)
  std::uint64_t pack = 0;  ///< pack bound at dequeue; the stream finished on it
  std::uint64_t ticks = 0;            ///< ticks executed (completed + failed)
  std::uint64_t ticks_completed = 0;
  std::uint64_t tick_retries = 0;     ///< extra attempts beyond each tick's first
  std::uint64_t wmes_streamed = 0;    ///< WME adds over all completed ticks
  std::uint64_t peak_wm = 0;          ///< peak resident WMEs across ticks
  std::string firing_log;             ///< concatenated completed-tick logs (opt-in)
  std::int64_t open_ns = 0;           ///< open -> terminal
  bool drained = false;  ///< server drain force-closed the stream
};

/// Client handle to one stream. Cheap to move; must not outlive the server.
/// tick() and close() are safe to call from one client thread at a time
/// (per-handle; different handles are independent).
class StreamHandle {
 public:
  StreamHandle() = default;

  [[nodiscard]] StreamId id() const noexcept { return id_; }
  /// False when admission shed the stream at open (see rejected()).
  [[nodiscard]] bool admitted() const noexcept { return rejected_ == RejectReason::None; }
  [[nodiscard]] RejectReason rejected() const noexcept { return rejected_; }

  /// Submit one tick. Sheds (without blocking) when the stream's bounded
  /// tick queue is full, the stream is closed or dead, or the server is
  /// draining.
  [[nodiscard]] SubmitTickResult tick(SceneJob job);

  /// No more ticks: the worker finishes everything queued, rolls the
  /// stream's working memory back, and resolves the report. Idempotent.
  [[nodiscard]] std::future<StreamReport> close();

 private:
  friend class Server;

  Server* server_ = nullptr;
  std::shared_ptr<StreamState> state_;
  StreamId id_ = 0;
  RejectReason rejected_ = RejectReason::None;
  std::future<StreamReport> report_;
};

}  // namespace psmsys::serve
