#pragma once

// Compile-once rule-base artifacts for the multi-session interpretation
// server (DESIGN.md §14).
//
// The ROADMAP north-star is a resident service interpreting many concurrent
// scenes over ONE compiled rule base. Everything about a frozen program that
// is immutable at serve time is computed here exactly once — the program
// itself, the whole-rule-base analyzer's production cost vector, the
// per-production binding analyses, and the network topology — and every
// session engine is then instantiated over these shared read-only artifacts
// with only its private state (working memory, alpha/beta memories, conflict
// set, undo log) allocated per session.

#include <memory>
#include <vector>

#include "ops5/engine.hpp"
#include "ops5/external.hpp"
#include "rete/network.hpp"

namespace psmsys::serve {

/// The shared, read-only half of the serve-time engine split. Thread-safe
/// after compile() returns (all state is immutable); engines made from it
/// must not outlive it, which the server guarantees by handing every session
/// a shared_ptr to the rule base.
class SharedRuleBase {
 public:
  /// Compile the shared artifacts for a frozen program. `engine_options`
  /// seeds every session engine's configuration; its `rete.shared_bindings`
  /// and `shared_match_costs` fields are overwritten with the artifacts
  /// computed here. `externals` (optional) must outlive the rule base.
  [[nodiscard]] static std::shared_ptr<const SharedRuleBase> compile(
      std::shared_ptr<const ops5::Program> program,
      const ops5::ExternalRegistry* externals = nullptr,
      ops5::EngineOptions engine_options = {});

  [[nodiscard]] const ops5::Program& program() const noexcept { return *program_; }
  [[nodiscard]] const std::shared_ptr<const ops5::Program>& program_ptr() const noexcept {
    return program_;
  }
  [[nodiscard]] const rete::NetworkTopology& topology() const noexcept { return topology_; }
  [[nodiscard]] const ops5::EngineOptions& engine_options() const noexcept {
    return engine_options_;
  }
  [[nodiscard]] const std::vector<double>& match_costs() const noexcept {
    return *engine_options_.shared_match_costs;
  }

  /// A fresh session engine over the shared artifacts: same program, shared
  /// binding analyses and analyzer costs, private everything else.
  [[nodiscard]] std::unique_ptr<ops5::Engine> make_engine() const;

 private:
  SharedRuleBase() = default;

  std::shared_ptr<const ops5::Program> program_;
  const ops5::ExternalRegistry* externals_ = nullptr;
  ops5::EngineOptions engine_options_;
  rete::BindingTable bindings_;
  rete::NetworkTopology topology_;
};

}  // namespace psmsys::serve
