#pragma once

// The multi-session interpretation server (DESIGN.md §14, §15).
//
// One SharedRuleBase, a fixed pool of worker-owned EngineContexts, and a
// bounded admission queue in front. The robustness surface:
//
//  * Admission control — submit() never blocks and never grows memory
//    without bound: a full queue (or a draining/stopped server) sheds the
//    scene with a typed RejectReason instead.
//  * Runaway containment — per-session cycle deadlines (deterministic,
//    retry-then-quarantine) plus a wall-clock watchdog thread that aborts
//    sessions stuck past their host-time budget; both paths roll the
//    session's engine back to base working memory.
//  * Fault isolation — every scene executes under the undo log and is
//    always rolled back after collection, so faulted/poisoned scenes cannot
//    perturb healthy ones (their firing logs stay byte-identical).
//  * Graceful drain — drain() stops admission, finishes everything already
//    admitted, force-closes open streams after their queued ticks, joins the
//    pool, and rolls per-session metrics up into a schema-versioned
//    server-level JSON document (p50/p99 scene latency, scenes/sec,
//    exactly-once accounting, a "streams" section for tick metrics).
//  * Streaming sessions (§16) — open_stream() admits a long-lived scene
//    whose WM arrives as ticks; the worker holds the stream's working memory
//    resident between ticks (incremental match per tick, rollback only at
//    close) and one-shot submit() is a one-tick stream over the same path.
//  * Versioned hot-reload (§15) — stage_pack() compiles a candidate rule
//    pack and runs the static admission pipeline (lint, rete_static,
//    interference recheck, AN010-AN013 semantic diff) as a gate;
//    activate_pack() atomically points new scenes at the accepted pack while
//    in-flight scenes finish on the pack they were dequeued with;
//    rollback_pack() re-activates the previously live pack. Workers bind a
//    scene to the active pack at dequeue time and lazily rebuild their
//    resident context outside the lock when their generation is stale, so a
//    swap never blocks the pool. admin_talk() exposes the pack list,
//    verdicts, swap/rollback, stats, and drain as a tiny console surface.
//
// Mutex discipline is machine-checked: all shared state is GUARDED_BY(mu_)
// via clang -Wthread-safety over the annotated util::Mutex wrapper.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "analysis/admission.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "serve/rulebase.hpp"
#include "serve/session.hpp"
#include "serve/stream.hpp"
#include "util/thread_annotations.hpp"

namespace psmsys::serve {

struct ServerOptions {
  /// Worker threads == resident engine contexts. Scenes multiplex over them.
  std::size_t workers = 4;
  /// Bounded admission queue (scenes admitted but not yet executing).
  std::size_t queue_capacity = 64;
  /// Loads the base working memory into every context at startup — and into
  /// rebuilt contexts after a pack swap, possibly from several worker threads
  /// at once, so it must be safe to call concurrently on distinct engines.
  std::function<void(ops5::Engine&)> base_init;
  /// Per-session execution policy (deadlines, retries, capture, injection).
  SessionOptions session;
  /// Wall-clock budget per scene — per TICK for streams, since a stream is
  /// only busy while a tick runs — before the watchdog aborts it (0 = off).
  std::chrono::milliseconds watchdog_budget{0};
  std::chrono::milliseconds watchdog_poll{1};

  /// Bounded per-stream tick queue (ticks submitted but not yet executed);
  /// a full queue sheds the tick with RejectReason::QueueFull.
  std::size_t stream_tick_capacity = 16;

  /// Admission gate configuration for stage_pack()/load_pack().
  analysis::AdmissionOptions admission;
  /// The live independence certificate the gate re-establishes against every
  /// candidate (nullptr disables the interference section). Must outlive the
  /// server.
  const analysis::DecompositionSpec* admission_spec = nullptr;
  /// Seed / output class names for the gate's linter (see analysis::PackInput).
  std::optional<std::vector<std::string>> admission_seeds;
  std::optional<std::vector<std::string>> admission_outputs;
};

/// Outcome of submit(). Admitted scenes resolve through `report` exactly
/// once; shed scenes carry the reason and no future.
struct SubmitResult {
  SceneId scene = 0;
  RejectReason rejected = RejectReason::None;
  std::future<SceneReport> report;  ///< valid only when admitted()

  [[nodiscard]] bool admitted() const noexcept { return rejected == RejectReason::None; }
};

/// A candidate rule pack for hot-reload.
struct PackCandidate {
  /// Display identity; when empty, taken from the program's `(pack ...)`
  /// metadata, falling back to "pack".
  std::string name;
  std::string version;
  std::shared_ptr<const ops5::Program> program;  ///< frozen
  /// Must outlive the server (nullptr = no externals).
  const ops5::ExternalRegistry* externals = nullptr;
  /// Engine options for sessions on this pack; unset inherits the options of
  /// the pack that is active when the candidate is staged.
  std::optional<ops5::EngineOptions> engine_options;
};

enum class PackState : std::uint8_t {
  Active,    ///< new scenes bind to this pack
  Staged,    ///< admitted by the gate, awaiting activate_pack()
  Retired,   ///< superseded; may still be finishing in-flight scenes
  Rejected,  ///< failed the gate; never compiled into the server
};

[[nodiscard]] const char* to_string(PackState state) noexcept;

/// Snapshot of one registered pack (packs(), admin channel).
struct PackInfo {
  std::uint64_t id = 0;
  std::string name;
  std::string version;
  PackState state = PackState::Staged;
  analysis::AdmissionDecision decision = analysis::AdmissionDecision::Pass;
  bool gated = false;  ///< false for the boot pack (loaded before the gate)
  std::uint64_t scenes_completed = 0;
  std::uint64_t workers_on = 0;  ///< contexts currently bound (drain gauge)
};

/// Outcome of stage_pack()/load_pack().
struct LoadResult {
  std::uint64_t pack = 0;  ///< registry id (also of rejected packs)
  bool accepted = false;   ///< verdict was not a reject
  bool activated = false;  ///< load_pack() switched new scenes to it
  analysis::AdmissionVerdict verdict;
};

/// Stream-family rollup: real streams only (one-shot submit() wrappers run
/// through the same machinery but report in the scene-level bins alone).
/// Every stream ALSO counts as one scene in the top-level bins — opened
/// streams are admitted scenes, a stream's terminal status is its scene
/// status — so the exactly-once scene accounting holds unchanged.
struct StreamStats {
  std::uint64_t opened = 0;  ///< streams admitted via open_stream()
  std::uint64_t completed = 0;
  std::uint64_t quarantined = 0;  ///< a tick exhausted its attempts
  std::uint64_t aborted = 0;      ///< a tick hit the wall-clock watchdog
  std::uint64_t drained = 0;      ///< completed by a server drain force-close
  std::uint64_t ticks = 0;        ///< tick submissions (admitted + shed)
  std::uint64_t ticks_completed = 0;
  std::uint64_t ticks_failed = 0;  ///< terminal tick failures (kill the stream)
  std::uint64_t ticks_shed = 0;    ///< rejected at tick admission or abandoned
  std::uint64_t tick_retries = 0;
  std::uint64_t wmes_streamed = 0;     ///< WME adds over completed ticks
  std::uint64_t peak_resident_wm = 0;  ///< max resident WMEs across all streams
  obs::LatencySummary tick_latency;    ///< completed ticks, submit->done
  double ticks_per_sec = 0.0;          ///< completed ticks / wall
};

/// Server-level rollup of per-session metrics, produced by drain()/stats().
struct ServerStats {
  std::uint64_t workers = 0;
  std::uint64_t submitted = 0;  ///< admission attempts (admitted + rejected)
  std::uint64_t admitted = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_draining = 0;  ///< shed while draining or stopped
  std::uint64_t completed = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t aborted = 0;
  std::uint64_t retries = 0;  ///< extra attempts beyond the first
  std::int64_t wall_ns = 0;
  double scenes_per_sec = 0.0;            ///< completed / wall
  obs::LatencySummary latency;            ///< completed scenes, admission->done
  obs::RunMetrics engine;                 ///< engine counters over completed scenes

  // Hot-reload accounting.
  std::uint64_t packs_loaded = 0;    ///< registry size incl. boot + rejected
  std::uint64_t packs_rejected = 0;  ///< gate rejections
  std::uint64_t pack_swaps = 0;      ///< successful activations (not rollbacks)
  std::uint64_t pack_rollbacks = 0;
  std::uint64_t active_pack = 0;     ///< id new scenes bind to
  std::vector<PackInfo> packs;       ///< registry snapshot, by id

  StreamStats streams;  ///< streaming-family accounting (real streams only)

  /// Schema-versioned rollup document (obs::validate_serve_rollup).
  [[nodiscard]] obs::json::Value to_json() const;
};

class Server {
 public:
  Server(std::shared_ptr<const SharedRuleBase> rulebase, ServerOptions options);
  /// Drains (blocking) if the server was not drained explicitly.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Admit one scene, or shed it. Never blocks on the pool; never allocates
  /// past the bounded queue. Implemented as a one-tick, pre-closed stream,
  /// so one-shot and streaming submission share one execution code path.
  [[nodiscard]] SubmitResult submit(SceneJob job);

  /// Admit one stream, or shed it (same admission as submit(): a stream
  /// occupies one slot of the bounded queue and counts as one scene). The
  /// stream binds a worker and its pack at dequeue time and holds both until
  /// it closes — mid-stream pack swaps affect only later dequeues, so a
  /// stream always finishes on the pack it started on.
  [[nodiscard]] StreamHandle open_stream(std::string label = {});

  /// Graceful shutdown: stop admitting, execute everything already admitted,
  /// join workers and watchdog, return the final rollup. Idempotent and
  /// thread-safe; later submits shed with RejectReason::Stopped.
  ServerStats drain();

  /// Point-in-time rollup (wall = elapsed so far until drained).
  [[nodiscard]] ServerStats stats() const;

  // --- versioned hot-reload -------------------------------------------------

  /// Run the admission gate on `candidate` against the currently active pack
  /// and, when accepted, compile it into the registry as Staged. Analysis and
  /// compilation happen on the caller's thread without holding the server
  /// lock, so workers keep serving throughout. Rejected candidates are
  /// registered too (state Rejected, verdict retained) but never compiled.
  [[nodiscard]] LoadResult stage_pack(const PackCandidate& candidate);

  /// Atomically point new scenes at a Staged (or Retired) pack. In-flight
  /// scenes finish on the pack they were dequeued with; workers rebuild
  /// their contexts lazily at the next dequeue. Fails (false + reason) for
  /// unknown/rejected packs or a stopped server.
  bool activate_pack(std::uint64_t pack, std::string* error = nullptr);

  /// Re-activate the pack that was live before the last swap.
  bool rollback_pack(std::string* error = nullptr);

  /// stage_pack() + activate_pack() when the verdict accepts.
  [[nodiscard]] LoadResult load_pack(const PackCandidate& candidate);

  /// Registry snapshot, ordered by pack id.
  [[nodiscard]] std::vector<PackInfo> packs() const;

  /// Id of the pack new scenes bind to.
  [[nodiscard]] std::uint64_t active_pack() const;

  /// Pretty-printed AdmissionVerdict JSON of a gated pack; nullopt for
  /// unknown ids, empty string for the ungated boot pack.
  [[nodiscard]] std::optional<std::string> verdict_json(std::uint64_t pack) const;

  /// Console surface (gromox console_talk-style): "help", "stats",
  /// "pack list", "pack verdict <id>", "pack swap <id>", "pack rollback",
  /// "drain". Returns the response text (never empty).
  std::string admin_talk(const std::string& line);

  [[nodiscard]] const SharedRuleBase& rulebase() const noexcept { return *rulebase_; }

 private:
  friend class StreamHandle;

  /// Watchdog view of one worker, guarded by mu_ except the abort flag,
  /// which the session's cancel predicate reads lock-free mid-scene.
  struct WorkerSlot {
    SceneId scene = 0;
    std::chrono::steady_clock::time_point busy_since{};
    bool busy = false;
    std::atomic<bool> abort{false};
  };

  /// One registry entry. rulebase is null exactly for rejected packs.
  struct PackRecord {
    std::uint64_t id = 0;
    std::string name;
    std::string version;
    PackState state = PackState::Staged;
    analysis::AdmissionDecision decision = analysis::AdmissionDecision::Pass;
    bool gated = false;
    std::string verdict_json;  ///< pretty JSON; empty for the boot pack
    std::shared_ptr<const SharedRuleBase> rulebase;
    std::uint64_t scenes_completed = 0;
    std::uint64_t workers_on = 0;
  };

  void worker_loop(std::size_t index);
  /// Serve one dequeued stream to its terminal state on worker `index`
  /// (also the one-shot path: submit() enqueues a one-tick closed stream).
  void run_stream(std::size_t index, WorkerSlot& slot,
                  const std::shared_ptr<StreamState>& stream, std::uint64_t pack_id);
  /// StreamHandle backends (handles must not outlive the server).
  SubmitTickResult stream_tick(const std::shared_ptr<StreamState>& stream, SceneJob job);
  void stream_close(const std::shared_ptr<StreamState>& stream);
  void watchdog_loop();
  [[nodiscard]] ServerStats stats_locked() const PSMSYS_REQUIRES(mu_);
  [[nodiscard]] PackRecord* find_pack_locked(std::uint64_t id) PSMSYS_REQUIRES(mu_);
  [[nodiscard]] const PackRecord* find_pack_locked(std::uint64_t id) const
      PSMSYS_REQUIRES(mu_);
  bool activate_locked(std::uint64_t pack, bool is_rollback, std::string* error)
      PSMSYS_REQUIRES(mu_);

  std::shared_ptr<const SharedRuleBase> rulebase_;  ///< boot pack artifacts
  ServerOptions options_;
  SessionOptions session_wrapped_;  ///< options_.session with serialized sink
  std::chrono::steady_clock::time_point start_;

  mutable util::Mutex mu_;
  std::condition_variable_any work_cv_;
  /// Unit of admission: every entry is a stream (one-shot submits are
  /// one-tick pre-closed streams). A stream occupies its slot only until a
  /// worker dequeues it; from then on it lives pinned to that worker.
  std::deque<std::shared_ptr<StreamState>> queue_ PSMSYS_GUARDED_BY(mu_);
  /// Live streams drain() must force-close (workers park on a stream's own
  /// cv waiting for ticks; the drain poke is what wakes them). Entries expire
  /// as streams terminate; pruned opportunistically.
  std::vector<std::weak_ptr<StreamState>> stream_registry_ PSMSYS_GUARDED_BY(mu_);
  bool draining_ PSMSYS_GUARDED_BY(mu_) = false;
  bool stopped_ PSMSYS_GUARDED_BY(mu_) = false;
  SceneId next_scene_ PSMSYS_GUARDED_BY(mu_) = 0;

  // Accounting (guarded by mu_).
  std::uint64_t rejected_queue_full_ PSMSYS_GUARDED_BY(mu_) = 0;
  std::uint64_t rejected_draining_ PSMSYS_GUARDED_BY(mu_) = 0;
  std::uint64_t completed_ PSMSYS_GUARDED_BY(mu_) = 0;
  std::uint64_t quarantined_ PSMSYS_GUARDED_BY(mu_) = 0;
  std::uint64_t aborted_ PSMSYS_GUARDED_BY(mu_) = 0;
  std::uint64_t retries_ PSMSYS_GUARDED_BY(mu_) = 0;
  std::vector<std::int64_t> latencies_ns_ PSMSYS_GUARDED_BY(mu_);
  obs::RunMetrics engine_ PSMSYS_GUARDED_BY(mu_);
  std::int64_t final_wall_ns_ PSMSYS_GUARDED_BY(mu_) = -1;

  // Streaming accounting (guarded by mu_; real streams only — one-shot
  // wrappers report through the scene bins above).
  std::uint64_t streams_opened_ PSMSYS_GUARDED_BY(mu_) = 0;
  std::uint64_t streams_completed_ PSMSYS_GUARDED_BY(mu_) = 0;
  std::uint64_t streams_quarantined_ PSMSYS_GUARDED_BY(mu_) = 0;
  std::uint64_t streams_aborted_ PSMSYS_GUARDED_BY(mu_) = 0;
  std::uint64_t streams_drained_ PSMSYS_GUARDED_BY(mu_) = 0;
  std::uint64_t ticks_ PSMSYS_GUARDED_BY(mu_) = 0;
  std::uint64_t ticks_completed_ PSMSYS_GUARDED_BY(mu_) = 0;
  std::uint64_t ticks_failed_ PSMSYS_GUARDED_BY(mu_) = 0;
  std::uint64_t ticks_shed_ PSMSYS_GUARDED_BY(mu_) = 0;
  std::uint64_t tick_retries_ PSMSYS_GUARDED_BY(mu_) = 0;
  std::uint64_t wmes_streamed_ PSMSYS_GUARDED_BY(mu_) = 0;
  std::uint64_t peak_resident_wm_ PSMSYS_GUARDED_BY(mu_) = 0;
  std::vector<std::int64_t> tick_latencies_ns_ PSMSYS_GUARDED_BY(mu_);

  // Pack registry (guarded by mu_). Exactly one record is Active.
  std::vector<PackRecord> packs_ PSMSYS_GUARDED_BY(mu_);
  std::uint64_t active_pack_id_ PSMSYS_GUARDED_BY(mu_) = 0;
  std::uint64_t rollback_pack_id_ PSMSYS_GUARDED_BY(mu_) = 0;  ///< 0 = none
  std::uint64_t next_pack_id_ PSMSYS_GUARDED_BY(mu_) = 1;
  std::uint64_t pack_swaps_ PSMSYS_GUARDED_BY(mu_) = 0;
  std::uint64_t pack_rollbacks_ PSMSYS_GUARDED_BY(mu_) = 0;
  std::uint64_t packs_rejected_ PSMSYS_GUARDED_BY(mu_) = 0;

  util::Mutex sink_mu_;  ///< serializes trace_sink lines across sessions
  std::vector<std::unique_ptr<WorkerSlot>> slots_;
  std::vector<std::unique_ptr<EngineContext>> contexts_;  ///< worker-owned
  std::vector<std::uint64_t> context_pack_ids_;  ///< worker-owned; read at drain
  std::vector<std::thread> threads_;
  std::thread watchdog_;
  std::atomic<bool> watchdog_stop_{false};
  std::once_flag drain_once_;
};

}  // namespace psmsys::serve
