#pragma once

// The multi-session interpretation server (DESIGN.md §14).
//
// One SharedRuleBase, a fixed pool of worker-owned EngineContexts, and a
// bounded admission queue in front. The robustness surface:
//
//  * Admission control — submit() never blocks and never grows memory
//    without bound: a full queue (or a draining/stopped server) sheds the
//    scene with a typed RejectReason instead.
//  * Runaway containment — per-session cycle deadlines (deterministic,
//    retry-then-quarantine) plus a wall-clock watchdog thread that aborts
//    sessions stuck past their host-time budget; both paths roll the
//    session's engine back to base working memory.
//  * Fault isolation — every scene executes under the undo log and is
//    always rolled back after collection, so faulted/poisoned scenes cannot
//    perturb healthy ones (their firing logs stay byte-identical).
//  * Graceful drain — drain() stops admission, finishes everything already
//    admitted, joins the pool, and rolls per-session metrics up into a
//    schema-versioned server-level JSON document (p50/p99 scene latency,
//    scenes/sec, exactly-once accounting).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "serve/rulebase.hpp"
#include "serve/session.hpp"

namespace psmsys::serve {

struct ServerOptions {
  /// Worker threads == resident engine contexts. Scenes multiplex over them.
  std::size_t workers = 4;
  /// Bounded admission queue (scenes admitted but not yet executing).
  std::size_t queue_capacity = 64;
  /// Loads the base working memory into every context at startup.
  std::function<void(ops5::Engine&)> base_init;
  /// Per-session execution policy (deadlines, retries, capture, injection).
  SessionOptions session;
  /// Wall-clock budget per scene before the watchdog aborts it (0 = off).
  std::chrono::milliseconds watchdog_budget{0};
  std::chrono::milliseconds watchdog_poll{1};
};

/// Outcome of submit(). Admitted scenes resolve through `report` exactly
/// once; shed scenes carry the reason and no future.
struct SubmitResult {
  SceneId scene = 0;
  RejectReason rejected = RejectReason::None;
  std::future<SceneReport> report;  ///< valid only when admitted()

  [[nodiscard]] bool admitted() const noexcept { return rejected == RejectReason::None; }
};

/// Server-level rollup of per-session metrics, produced by drain()/stats().
struct ServerStats {
  std::uint64_t workers = 0;
  std::uint64_t submitted = 0;  ///< admission attempts (admitted + rejected)
  std::uint64_t admitted = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_draining = 0;  ///< shed while draining or stopped
  std::uint64_t completed = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t aborted = 0;
  std::uint64_t retries = 0;  ///< extra attempts beyond the first
  std::int64_t wall_ns = 0;
  double scenes_per_sec = 0.0;            ///< completed / wall
  obs::LatencySummary latency;            ///< completed scenes, admission->done
  obs::RunMetrics engine;                 ///< engine counters over completed scenes

  /// Schema-versioned rollup document (obs::validate_serve_rollup).
  [[nodiscard]] obs::json::Value to_json() const;
};

class Server {
 public:
  Server(std::shared_ptr<const SharedRuleBase> rulebase, ServerOptions options);
  /// Drains (blocking) if the server was not drained explicitly.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Admit one scene, or shed it. Never blocks on the pool; never allocates
  /// past the bounded queue.
  [[nodiscard]] SubmitResult submit(SceneJob job);

  /// Graceful shutdown: stop admitting, execute everything already admitted,
  /// join workers and watchdog, return the final rollup. Idempotent and
  /// thread-safe; later submits shed with RejectReason::Stopped.
  ServerStats drain();

  /// Point-in-time rollup (wall = elapsed so far until drained).
  [[nodiscard]] ServerStats stats() const;

  [[nodiscard]] const SharedRuleBase& rulebase() const noexcept { return *rulebase_; }

 private:
  struct Pending {
    SceneId id = 0;
    SceneJob job;
    std::promise<SceneReport> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  /// Watchdog view of one worker, guarded by mu_ except the abort flag,
  /// which the session's cancel predicate reads lock-free mid-scene.
  struct WorkerSlot {
    SceneId scene = 0;
    std::chrono::steady_clock::time_point busy_since{};
    bool busy = false;
    std::atomic<bool> abort{false};
  };

  void worker_loop(std::size_t index);
  void watchdog_loop();
  [[nodiscard]] ServerStats stats_locked() const;

  std::shared_ptr<const SharedRuleBase> rulebase_;
  ServerOptions options_;
  std::chrono::steady_clock::time_point start_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<Pending> queue_;
  bool draining_ = false;
  bool stopped_ = false;
  SceneId next_scene_ = 0;

  // Accounting (guarded by mu_).
  std::uint64_t rejected_queue_full_ = 0;
  std::uint64_t rejected_draining_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t quarantined_ = 0;
  std::uint64_t aborted_ = 0;
  std::uint64_t retries_ = 0;
  std::vector<std::int64_t> latencies_ns_;
  obs::RunMetrics engine_;
  std::int64_t final_wall_ns_ = -1;

  std::mutex sink_mu_;  ///< serializes trace_sink lines across sessions
  std::vector<std::unique_ptr<WorkerSlot>> slots_;
  std::vector<std::unique_ptr<EngineContext>> contexts_;
  std::vector<std::thread> threads_;
  std::thread watchdog_;
  std::atomic<bool> watchdog_stop_{false};
  std::once_flag drain_once_;
};

}  // namespace psmsys::serve
