#pragma once

// Sessions: the per-scene half of the serve-time engine split (DESIGN.md §14).
//
// An EngineContext is a resident engine (program + base working memory) owned
// by one server worker; a Session is the lightweight per-scene execution over
// a context. Every scene runs under the engine's undo log and is ALWAYS
// rolled back after its results are collected, so the context returns to the
// base working memory bit-identically (WMEs, timetags, recency) between
// scenes. That discipline is what makes sessions isolated: a scene's firing
// log depends only on the rule base, the base WM, and its own injected WMEs —
// never on which context ran it or what ran before it — and a quarantined or
// aborted scene provably cannot leak state into later ones.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "ops5/engine.hpp"
#include "psm/faults.hpp"
#include "psm/task.hpp"
#include "serve/rulebase.hpp"
#include "util/counters.hpp"

namespace psmsys::obs {
class Tracer;
}

namespace psmsys::serve {

using SceneId = std::uint64_t;

/// A unit of server work: one scene interpreted over the shared rule base.
struct SceneJob {
  std::string label;
  /// Adds the scene's WMEs to the session engine (the paper's "task is just
  /// a working memory element" applied at scene granularity).
  std::function<void(ops5::Engine&)> inject;
  /// Optional: read results out of working memory after the scene quiesces,
  /// before the session's WM effects are rolled back.
  std::function<void(ops5::Engine&)> collect;
};

/// Terminal state of an admitted (or shed) scene.
enum class SceneStatus : std::uint8_t {
  Completed,    ///< quiesced within its deadline; results collected
  Rejected,     ///< shed at admission (see RejectReason); never executed
  Quarantined,  ///< failed/overran max_attempts times; rolled back each time
  Aborted,      ///< watchdog wall-clock abort; rolled back
};

/// Why admission shed a scene or a stream tick (SceneStatus::Rejected).
enum class RejectReason : std::uint8_t {
  None,          ///< not rejected
  QueueFull,     ///< bounded queue at capacity — backpressure, not OOM
  Draining,      ///< server is draining; no new work accepted
  Stopped,       ///< server already drained and stopped
  StreamClosed,  ///< tick submitted to a closed or terminally failed stream
};

[[nodiscard]] const char* to_string(SceneStatus status) noexcept;
[[nodiscard]] const char* to_string(RejectReason reason) noexcept;

/// Everything the server (and the submitting client, via its future) learns
/// about one scene. The queue/latency fields are filled by the server.
struct SceneReport {
  SceneId scene = 0;
  std::string label;
  SceneStatus status = SceneStatus::Completed;
  RejectReason reject = RejectReason::None;
  std::uint32_t attempts = 0;          ///< execution attempts consumed
  std::string error;                   ///< last failure cause (non-Completed)
  util::WorkCounters counters;         ///< successful attempt's engine deltas
  std::string firing_log;              ///< session-prefixed watch lines (opt-in)
  std::int64_t queued_ns = 0;          ///< admission -> dequeue
  std::int64_t service_ns = 0;         ///< dequeue -> terminal state
  std::int64_t latency_ns = 0;         ///< admission -> terminal state
};

/// Per-session execution policy, shared by every session of a server.
struct SessionOptions {
  /// Recognize-act cycles per attempt (0 = unlimited). The deterministic
  /// runaway bound: a scene that exceeds it is rolled back and retried with
  /// a grown deadline, then quarantined after max_attempts.
  std::uint64_t cycle_deadline = 0;
  double deadline_growth = 2.0;  ///< deadline multiplier per retry
  std::size_t max_attempts = 2;  ///< attempts before quarantine (min 1)
  /// Cycles between watchdog-abort polls while a scene runs; 0 disables
  /// polling (the wall-clock watchdog then cannot interrupt mid-scene).
  std::uint64_t abort_check_every = 64;
  /// Capture each scene's watch-level-1 firing log into SceneReport
  /// (the byte-identity proof surface; costs a string per firing).
  bool capture_firing_log = false;
  /// Forward session-prefixed watch lines to this sink as well. The server
  /// serializes calls, so concurrent sessions never interleave mid-line.
  std::function<void(const std::string&)> trace_sink;
  /// Deterministic fault injection (tests); fails/overruns keyed by scene id.
  const psm::FaultInjector* injector = nullptr;
  /// Span timeline; each session records on its own tid lane (= scene id).
  obs::Tracer* tracer = nullptr;
};

/// One resident engine over the shared rule base: program + base working
/// memory, reused by every session its owning worker runs. Not thread-safe;
/// each server worker owns exactly one.
class EngineContext {
 public:
  EngineContext(std::shared_ptr<const SharedRuleBase> rulebase,
                const std::function<void(ops5::Engine&)>& base_init, SessionOptions options);

  [[nodiscard]] ops5::Engine& engine() noexcept { return runner_.engine(); }
  [[nodiscard]] const SessionOptions& options() const noexcept { return options_; }
  [[nodiscard]] std::uint64_t scenes_run() const noexcept { return scenes_run_; }

 private:
  friend class Session;

  std::shared_ptr<const SharedRuleBase> rulebase_;
  SessionOptions options_;
  psm::TaskRunner runner_;
  std::string prefix_;       ///< "s<id>| " of the session in flight
  std::string firing_log_;   ///< captured lines of the session in flight
  std::uint64_t scenes_run_ = 0;
};

/// The per-scene/per-stream execution: binds a session id to a context for
/// the duration of one scene or stream. The lifecycle is begin() →
/// run_tick()* → finish(): begin() opens the engine's stream journal,
/// each run_tick() executes one batch of injected WMEs to quiescence
/// (attempt/retry per the context's options, per-tick checkpoint rollback on
/// failure) and KEEPS its effects resident, and finish() rolls the whole
/// journal back so the context returns to its base working memory
/// bit-identically. run() is the one-shot wrapper: begin + one tick +
/// finish, so batch scenes and streams share one execution code path.
class Session {
 public:
  Session(SceneId id, EngineContext& context) : id_(id), context_(context) {}

  [[nodiscard]] SceneId id() const noexcept { return id_; }

  /// Execute the scene: one tick between begin() and finish(). The context
  /// is back at its base working memory when this returns, whatever the
  /// outcome. `aborted` (may be empty) is polled between cycle slices for
  /// the wall-clock watchdog.
  [[nodiscard]] SceneReport run(const SceneJob& job, const std::function<bool()>& aborted);

  /// What one tick produced (the session-level slice of TickReport).
  struct TickOutcome {
    SceneStatus status = SceneStatus::Completed;
    std::uint32_t attempts = 0;
    std::string error;
    util::WorkCounters counters;
    std::string firing_log;
    std::uint64_t wm_size = 0;      ///< resident WMEs after the tick
    std::uint64_t live_tokens = 0;  ///< resident beta tokens after the tick
  };

  /// Bind the session to the context and open the stream journal.
  void begin();

  /// Execute one tick inside begin()/finish(). On Completed the tick's WM
  /// effects stay resident; on Quarantined/Aborted the engine is back at the
  /// tick's checkpoint (earlier ticks' effects survive) and the caller
  /// should treat the stream as terminally failed.
  [[nodiscard]] TickOutcome run_tick(const SceneJob& job, const std::function<bool()>& aborted);

  /// Roll every tick's effects back and release the context: base working
  /// memory, timetags, and recency are bit-identical to pre-begin().
  void finish();

 private:
  SceneId id_;
  EngineContext& context_;
};

}  // namespace psmsys::serve
