#pragma once

// Sessions: the per-scene half of the serve-time engine split (DESIGN.md §14).
//
// An EngineContext is a resident engine (program + base working memory) owned
// by one server worker; a Session is the lightweight per-scene execution over
// a context. Every scene runs under the engine's undo log and is ALWAYS
// rolled back after its results are collected, so the context returns to the
// base working memory bit-identically (WMEs, timetags, recency) between
// scenes. That discipline is what makes sessions isolated: a scene's firing
// log depends only on the rule base, the base WM, and its own injected WMEs —
// never on which context ran it or what ran before it — and a quarantined or
// aborted scene provably cannot leak state into later ones.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "ops5/engine.hpp"
#include "psm/faults.hpp"
#include "psm/task.hpp"
#include "serve/rulebase.hpp"
#include "util/counters.hpp"

namespace psmsys::obs {
class Tracer;
}

namespace psmsys::serve {

using SceneId = std::uint64_t;

/// A unit of server work: one scene interpreted over the shared rule base.
struct SceneJob {
  std::string label;
  /// Adds the scene's WMEs to the session engine (the paper's "task is just
  /// a working memory element" applied at scene granularity).
  std::function<void(ops5::Engine&)> inject;
  /// Optional: read results out of working memory after the scene quiesces,
  /// before the session's WM effects are rolled back.
  std::function<void(ops5::Engine&)> collect;
};

/// Terminal state of an admitted (or shed) scene.
enum class SceneStatus : std::uint8_t {
  Completed,    ///< quiesced within its deadline; results collected
  Rejected,     ///< shed at admission (see RejectReason); never executed
  Quarantined,  ///< failed/overran max_attempts times; rolled back each time
  Aborted,      ///< watchdog wall-clock abort; rolled back
};

/// Why admission shed a scene (SceneStatus::Rejected).
enum class RejectReason : std::uint8_t {
  None,       ///< not rejected
  QueueFull,  ///< bounded queue at capacity — backpressure, not OOM
  Draining,   ///< server is draining; no new work accepted
  Stopped,    ///< server already drained and stopped
};

[[nodiscard]] const char* to_string(SceneStatus status) noexcept;
[[nodiscard]] const char* to_string(RejectReason reason) noexcept;

/// Everything the server (and the submitting client, via its future) learns
/// about one scene. The queue/latency fields are filled by the server.
struct SceneReport {
  SceneId scene = 0;
  std::string label;
  SceneStatus status = SceneStatus::Completed;
  RejectReason reject = RejectReason::None;
  std::uint32_t attempts = 0;          ///< execution attempts consumed
  std::string error;                   ///< last failure cause (non-Completed)
  util::WorkCounters counters;         ///< successful attempt's engine deltas
  std::string firing_log;              ///< session-prefixed watch lines (opt-in)
  std::int64_t queued_ns = 0;          ///< admission -> dequeue
  std::int64_t service_ns = 0;         ///< dequeue -> terminal state
  std::int64_t latency_ns = 0;         ///< admission -> terminal state
};

/// Per-session execution policy, shared by every session of a server.
struct SessionOptions {
  /// Recognize-act cycles per attempt (0 = unlimited). The deterministic
  /// runaway bound: a scene that exceeds it is rolled back and retried with
  /// a grown deadline, then quarantined after max_attempts.
  std::uint64_t cycle_deadline = 0;
  double deadline_growth = 2.0;  ///< deadline multiplier per retry
  std::size_t max_attempts = 2;  ///< attempts before quarantine (min 1)
  /// Cycles between watchdog-abort polls while a scene runs; 0 disables
  /// polling (the wall-clock watchdog then cannot interrupt mid-scene).
  std::uint64_t abort_check_every = 64;
  /// Capture each scene's watch-level-1 firing log into SceneReport
  /// (the byte-identity proof surface; costs a string per firing).
  bool capture_firing_log = false;
  /// Forward session-prefixed watch lines to this sink as well. The server
  /// serializes calls, so concurrent sessions never interleave mid-line.
  std::function<void(const std::string&)> trace_sink;
  /// Deterministic fault injection (tests); fails/overruns keyed by scene id.
  const psm::FaultInjector* injector = nullptr;
  /// Span timeline; each session records on its own tid lane (= scene id).
  obs::Tracer* tracer = nullptr;
};

/// One resident engine over the shared rule base: program + base working
/// memory, reused by every session its owning worker runs. Not thread-safe;
/// each server worker owns exactly one.
class EngineContext {
 public:
  EngineContext(std::shared_ptr<const SharedRuleBase> rulebase,
                const std::function<void(ops5::Engine&)>& base_init, SessionOptions options);

  [[nodiscard]] ops5::Engine& engine() noexcept { return runner_.engine(); }
  [[nodiscard]] const SessionOptions& options() const noexcept { return options_; }
  [[nodiscard]] std::uint64_t scenes_run() const noexcept { return scenes_run_; }

 private:
  friend class Session;

  std::shared_ptr<const SharedRuleBase> rulebase_;
  SessionOptions options_;
  psm::TaskRunner runner_;
  std::string prefix_;       ///< "s<id>| " of the session in flight
  std::string firing_log_;   ///< captured lines of the session in flight
  std::uint64_t scenes_run_ = 0;
};

/// The per-scene execution: binds a session id to a context for the duration
/// of one scene. `run` fills everything in the report except the
/// server-level queue/latency fields.
class Session {
 public:
  Session(SceneId id, EngineContext& context) : id_(id), context_(context) {}

  [[nodiscard]] SceneId id() const noexcept { return id_; }

  /// Execute the scene: attempt/retry/quarantine per the context's options,
  /// polling `aborted` (may be empty) between cycle slices for the
  /// wall-clock watchdog. The context is back at its base working memory
  /// when this returns, whatever the outcome.
  [[nodiscard]] SceneReport run(const SceneJob& job, const std::function<bool()>& aborted);

 private:
  SceneId id_;
  EngineContext& context_;
};

}  // namespace psmsys::serve
