// Robustness study: how gracefully does task-level parallelism degrade when
// the machine misbehaves? The paper's executors assume a perfect machine;
// this bench quantifies three failure economies on the measured SPAM tasks:
//
//   1. message loss + retransmission on the message-passing model
//      (speedup vs loss rate),
//   2. SVM fault storms and node failure (re-execution economics),
//   3. the real threaded executor under injected faults (retry/quarantine
//      accounting from RunReport).

#include <iostream>

#include "bench/common.hpp"
#include "psm/faults.hpp"
#include "psm/message_passing.hpp"
#include "psm/threaded.hpp"
#include "svm/svm.hpp"

using namespace psmsys;

namespace {

void loss_rate_curve(const std::vector<util::WorkUnits>& costs, util::WorkUnits base) {
  std::cout << "--- Message loss: speedup vs loss rate (dynamic distribution, 14 workers) ---\n\n";
  util::Table table({"loss %", "speedup @14", "lost", "retransmits", "stall %", "vs lossless"});
  std::vector<std::pair<std::size_t, double>> curve;
  double lossless = 0.0;
  for (const double loss : {0.0, 0.01, 0.02, 0.05, 0.10, 0.20, 0.40}) {
    psm::MessagePassingConfig c;
    c.workers = 14;
    c.distribution = psm::Distribution::Dynamic;
    c.loss_rate = loss;
    const auto r = psm::simulate_message_passing(costs, c);
    const double s = psm::speedup(base, r.makespan);
    if (loss == 0.0) lossless = s;
    curve.emplace_back(static_cast<std::size_t>(loss * 100.0), s);
    table.add_row({util::Table::fmt(loss * 100.0, 0), util::Table::fmt(s, 2),
                   util::Table::fmt(r.lost_messages), util::Table::fmt(r.retransmits),
                   util::Table::fmt(100.0 * static_cast<double>(r.retransmit_stall) /
                                        static_cast<double>(r.makespan * c.workers),
                                    1),
                   util::Table::fmt(100.0 * s / lossless, 1) + "%"});
  }
  table.print(std::cout, "SF Level 3 tasks, exponential retransmit backoff");
  bench::plot_curve(std::cout, "\nspeedup vs message loss rate (%)", curve);
  bench::emit_csv(std::cout, "loss_rate_curve", table);
}

void svm_degradation(std::span<const psm::TaskMeasurement> tasks) {
  std::cout << "\n--- SVM: fault storms and node failure (20 processors) ---\n\n";
  svm::SvmConfig healthy;
  svm::SvmConfig stormy = healthy;
  stormy.storm_factor = 8.0;
  stormy.storm_until = 30000;
  svm::SvmConfig dying = healthy;
  dying.node1_fails_at = 40000;

  const auto base = svm::simulate_svm(tasks, 1, healthy).makespan;
  util::Table table(
      {"scenario", "speedup @20", "remote faults", "reexecuted", "wasted wu", "lost procs"});
  const auto row = [&](const char* name, const svm::SvmConfig& c) {
    const auto r = svm::simulate_svm(tasks, 20, c);
    table.add_row({name, util::Table::fmt(psm::speedup(base, r.makespan), 2),
                   util::Table::fmt(r.remote_faults), util::Table::fmt(r.reexecuted_tasks),
                   util::Table::fmt(r.wasted_work), util::Table::fmt(r.failed_procs)});
  };
  row("healthy", healthy);
  row("init fault storm x8", stormy);
  row("node 1 dies mid-run", dying);
  table.print(std::cout, "graceful degradation: the run always completes");
  bench::emit_csv(std::cout, "svm_degradation", table);
}

void robust_executor_report() {
  std::cout << "\n--- Threaded executor under injected faults (DC Level 3, 4 processes) ---\n\n";
  const auto scene = spam::generate_scene(spam::dc_config());
  const auto best = spam::best_fragments(spam::run_rtf(scene, 3).fragments);
  const auto d = spam::lcc_decomposition(3, scene, best);

  psm::FaultConfig faults;
  faults.seed = 0x5eed;
  faults.transient_rate = 0.05;
  faults.kill_worker = 1;
  faults.kill_at_pop = 3;
  const psm::FaultInjector injector(faults);
  psm::RobustnessPolicy policy;
  policy.max_attempts = 6;

  const auto clean = psm::run_robust(d.factory, d.tasks, 4, policy, nullptr);
  const auto faulty = psm::run_robust(d.factory, d.tasks, 4, policy, &injector);

  util::Table table({"metric", "no faults", "5% transient + worker kill"});
  const auto row = [&](const char* name, std::uint64_t a, std::uint64_t b) {
    table.add_row({name, util::Table::fmt(a), util::Table::fmt(b)});
  };
  row("tasks completed", clean.completed_ids.size(), faulty.completed_ids.size());
  row("tasks quarantined", clean.quarantined_ids.size(), faulty.quarantined_ids.size());
  row("retries", clean.retries, faulty.retries);
  row("requeues after worker death", clean.requeues, faulty.requeues);
  row("workers lost", clean.dead_workers.size(), faulty.dead_workers.size());
  util::WorkUnits clean_wu = 0;
  util::WorkUnits faulty_wu = 0;
  for (const auto& m : clean.measurements) clean_wu += m.cost();
  for (const auto& m : faulty.measurements) faulty_wu += m.cost();
  row("useful work (wu)", clean_wu, faulty_wu);
  table.print(std::cout, "every task id accounted for exactly once in both runs");
  std::cout << "\nInjected faults cost retries and a worker, but the surviving\n"
               "processes drain the queue: failed attempts roll back the working\n"
               "memory (with original timetags), so retried tasks recompute\n"
               "bit-identical results. Useful work shifts by well under 1% --\n"
               "that is task placement across engines, not lost or repeated\n"
               "results.\n";
  bench::emit_csv(std::cout, "robust_executor", table);
}

}  // namespace

int main() {
  std::cout << "=== Fault tolerance: speedup under message loss, SVM failure, and "
               "injected task faults ===\n\n";
  const auto measured = bench::measure_lcc(spam::sf_config(), 3);
  const auto costs = psm::task_costs(measured.tasks);
  psm::TlpConfig one;
  one.task_processes = 1;
  const util::WorkUnits base = psm::simulate_tlp(costs, one).makespan;

  loss_rate_curve(costs, base);
  svm_degradation(measured.tasks);
  robust_executor_report();
  return 0;
}
