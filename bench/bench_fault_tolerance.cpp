// Robustness study: how gracefully does task-level parallelism degrade when
// the machine misbehaves? The paper's executors assume a perfect machine;
// these cases quantify three failure economies on the measured SPAM tasks:
//
//   1. message loss + retransmission on the message-passing model
//      (speedup vs loss rate),
//   2. SVM fault storms and node failure (re-execution economics),
//   3. the real threaded executor under injected faults (retry/quarantine
//      accounting from the unified RunResult).

#include "bench/harness.hpp"
#include "psm/message_passing.hpp"
#include "psm/run.hpp"
#include "svm/svm.hpp"

namespace psmsys::bench {

PSMSYS_BENCH_CASE(loss_rate, "faults", "Message loss: speedup vs loss rate (14 workers)") {
  auto& os = ctx.out();
  const auto& measured = ctx.lcc(spam::sf_config(), 3);
  const auto costs = psm::task_costs(measured.tasks);
  psm::TlpConfig one;
  one.task_processes = 1;
  const util::WorkUnits base = psm::simulate_tlp(costs, one).makespan;

  util::Table table({"loss %", "speedup @14", "lost", "retransmits", "stall %", "vs lossless"});
  std::vector<std::pair<std::size_t, double>> curve;
  double lossless = 0.0;
  for (const double loss : {0.0, 0.01, 0.02, 0.05, 0.10, 0.20, 0.40}) {
    psm::MessagePassingConfig c;
    c.workers = 14;
    c.distribution = psm::Distribution::Dynamic;
    c.loss_rate = loss;
    const auto r = psm::simulate_message_passing(costs, c);
    const double s = psm::speedup(base, r.makespan);
    if (loss == 0.0) lossless = s;
    curve.emplace_back(static_cast<std::size_t>(loss * 100.0), s);
    table.add_row({util::Table::fmt(loss * 100.0, 0), util::Table::fmt(s, 2),
                   util::Table::fmt(r.lost_messages), util::Table::fmt(r.retransmits),
                   util::Table::fmt(100.0 * static_cast<double>(r.retransmit_stall) /
                                        static_cast<double>(r.makespan * c.workers),
                                    1),
                   util::Table::fmt(100.0 * s / lossless, 1) + "%"});
  }
  table.print(os, "SF Level 3 tasks, exponential retransmit backoff");
  plot_curve(os, "\nspeedup vs message loss rate (%)", curve);
  ctx.table("loss_rate_curve", table);
  ctx.metric("lossless_speedup_at_14", lossless);
}

PSMSYS_BENCH_CASE(svm_degradation, "faults",
                  "SVM: fault storms and node failure (20 processors)") {
  auto& os = ctx.out();
  const auto& measured = ctx.lcc(spam::sf_config(), 3);

  svm::SvmConfig healthy;
  svm::SvmConfig stormy = healthy;
  stormy.storm_factor = 8.0;
  stormy.storm_until = 30000;
  svm::SvmConfig dying = healthy;
  dying.node1_fails_at = 40000;

  const auto base = svm::simulate_svm(measured.tasks, 1, healthy).makespan;
  util::Table table(
      {"scenario", "speedup @20", "remote faults", "reexecuted", "wasted wu", "lost procs"});
  const auto row = [&](const char* name, const svm::SvmConfig& c) {
    const auto r = svm::simulate_svm(measured.tasks, 20, c);
    table.add_row({name, util::Table::fmt(psm::speedup(base, r.makespan), 2),
                   util::Table::fmt(r.remote_faults), util::Table::fmt(r.reexecuted_tasks),
                   util::Table::fmt(r.wasted_work), util::Table::fmt(r.failed_procs)});
  };
  row("healthy", healthy);
  row("init fault storm x8", stormy);
  row("node 1 dies mid-run", dying);
  table.print(os, "graceful degradation: the run always completes");
  ctx.table("svm_degradation", table);
}

PSMSYS_BENCH_CASE(robust_executor, "faults",
                  "Threaded executor under injected faults (Level 3, 4 processes)") {
  auto& os = ctx.out();
  const auto config = ctx.quick() ? spam::sf_config() : spam::dc_config();
  const auto scene = spam::generate_scene(config);
  const auto best = spam::best_fragments(spam::run_rtf(scene, 3).fragments);
  const auto d = spam::lcc_decomposition(3, scene, best);

  psm::FaultConfig faults;
  faults.seed = 0x5eed;
  faults.transient_rate = 0.05;
  faults.kill_worker = 1;
  faults.kill_at_pop = 3;
  const psm::FaultInjector injector(faults);

  psm::RunOptions options;
  options.task_processes = 4;
  options.robustness.max_attempts = 6;
  const auto clean = psm::run(d.factory, d.tasks, options);
  options.injector = &injector;
  const auto faulty = psm::run(d.factory, d.tasks, options);

  util::Table table({"metric", "no faults", "5% transient + worker kill"});
  const auto row = [&](const char* name, std::uint64_t a, std::uint64_t b) {
    table.add_row({name, util::Table::fmt(a), util::Table::fmt(b)});
  };
  row("tasks completed", clean.report.completed_ids.size(),
      faulty.report.completed_ids.size());
  row("tasks quarantined", clean.report.quarantined_ids.size(),
      faulty.report.quarantined_ids.size());
  row("retries", clean.metrics.retries, faulty.metrics.retries);
  row("requeues after worker death", clean.metrics.requeues, faulty.metrics.requeues);
  row("workers lost", clean.metrics.dead_workers, faulty.metrics.dead_workers);
  row("useful work (wu)", clean.metrics.total_cost_wu(), faulty.metrics.total_cost_wu());
  table.print(os, "every task id accounted for exactly once in both runs");
  ctx.table("robust_executor", table);
  // The unified executor's full metrics snapshot, straight into the JSON.
  ctx.metrics(clean.metrics, "clean_");
  ctx.metrics(faulty.metrics, "faulty_");
  os << "\nInjected faults cost retries and a worker, but the surviving\n"
        "processes drain the queue: failed attempts roll back the working\n"
        "memory (with original timetags), so retried tasks recompute\n"
        "bit-identical results. Useful work shifts by well under 1% --\n"
        "that is task placement across engines, not lost or repeated\n"
        "results.\n";
}

}  // namespace psmsys::bench
