// Implementation of the bench case registry, the measurement cache, the
// BENCH_<suite>.json assembly (schema v1, self-validated before exit) and
// the harness CLI.

#include "bench/harness.hpp"

#include <algorithm>
#include <chrono>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string_view>
#include <thread>

#include "obs/bench_schema.hpp"
#include "obs/obs_config.hpp"
#include "psm/run.hpp"

namespace psmsys::bench {

namespace json = obs::json;

// ---------------------------------------------------------------------------
// Measurement helpers (hoisted from the old bench/common.hpp)
// ---------------------------------------------------------------------------

MeasuredLcc measure_lcc(const spam::DatasetConfig& config, int level, bool record_cycles) {
  MeasuredLcc out;
  out.config = config;
  out.scene = std::make_shared<spam::Scene>(spam::generate_scene(config));
  out.best = spam::best_fragments(spam::run_rtf(*out.scene, 3).fragments);
  out.level = level;
  out.has_cycle_records = record_cycles;
  const auto d = spam::lcc_decomposition(level, *out.scene, out.best, record_cycles);
  out.tasks = spam::run_baseline(d);
  return out;
}

MeasuredLcc measure_rtf(const spam::DatasetConfig& config, bool record_cycles) {
  MeasuredLcc out;
  out.config = config;
  out.scene = std::make_shared<spam::Scene>(spam::generate_scene(config));
  out.level = 2;
  out.has_cycle_records = record_cycles;
  const auto d = spam::rtf_decomposition(*out.scene, 3, record_cycles);
  out.tasks = spam::run_baseline(d);
  out.best = spam::best_fragments(spam::run_rtf(*out.scene, 3).fragments);  // for completeness
  return out;
}

TimedRun timed_run(const spam::Decomposition& decomposition, std::size_t task_processes,
                   std::size_t match_threads, int repetitions,
                   ops5::MatchCostSource cost_source) {
  TimedRun best;
  best.wall = std::chrono::nanoseconds::max();
  for (int rep = 0; rep < std::max(1, repetitions); ++rep) {
    psm::RunOptions options;
    options.task_processes = task_processes;
    options.strict = true;
    options.match_threads = match_threads;
    options.match_cost_source = cost_source;
    auto result = psm::run(decomposition.factory, decomposition.tasks, options);
    if (result.elapsed < best.wall) {
      best.wall = result.elapsed;
      best.metrics = std::move(result.metrics);
    }
  }
  return best;
}

MeasuredMatrix measure_matrix(const spam::Decomposition& decomposition,
                              std::vector<std::size_t> task_procs,
                              std::vector<std::size_t> match_threads, int repetitions) {
  MeasuredMatrix m;
  m.task_procs = std::move(task_procs);
  m.match_threads = std::move(match_threads);
  m.cells.resize(m.task_procs.size());
  for (std::size_t ti = 0; ti < m.task_procs.size(); ++ti) {
    for (std::size_t mi = 0; mi < m.match_threads.size(); ++mi) {
      m.cells[ti].push_back(
          timed_run(decomposition, m.task_procs[ti], m.match_threads[mi], repetitions));
      if (m.task_procs[ti] == 1 && m.match_threads[mi] == 0) {
        m.baseline_wall = m.cells[ti].back().wall;
      }
    }
  }
  // If the sweep skipped the (1 task, serial match) corner, measure it.
  if (m.baseline_wall.count() == 0) {
    m.baseline_wall = timed_run(decomposition, 1, 0, repetitions).wall;
  }
  return m;
}

double tlp_speedup(const std::vector<util::WorkUnits>& costs, std::size_t procs,
                   psm::SchedulePolicy policy) {
  psm::TlpConfig base_cfg;
  base_cfg.task_processes = 1;
  psm::TlpConfig cfg;
  cfg.task_processes = procs;
  cfg.policy = policy;
  const auto base = psm::simulate_tlp(costs, base_cfg);
  const auto run = psm::simulate_tlp(costs, cfg);
  return psm::speedup(base.makespan, run.makespan);
}

void plot_curve(std::ostream& os, const std::string& title,
                const std::vector<std::pair<std::size_t, double>>& points, double y_max) {
  double top = y_max;
  for (const auto& [x, y] : points) top = std::max(top, y);
  const int height = 12;
  os << title << '\n';
  for (int row = height; row >= 1; --row) {
    const double level = top * row / height;
    os << (row == height ? '^' : '|');
    for (const auto& [x, y] : points) {
      os << (y >= level ? "  *" : "   ");
    }
    if (row == height) {
      os << "   " << util::Table::fmt(top, 1) << "x";
    }
    os << '\n';
  }
  os << '+';
  for (std::size_t i = 0; i < points.size(); ++i) os << "---";
  os << "-> procs\n ";
  for (const auto& [x, y] : points) {
    std::string label = std::to_string(x);
    while (label.size() < 3) label = " " + label;
    os << label;
  }
  os << '\n';
}

void emit_csv(std::ostream& os, const std::string& name, const util::Table& table) {
  os << "\n--- csv:" << name << " ---\n";
  table.write_csv(os);
  os << "--- end csv ---\n";
}

// ---------------------------------------------------------------------------
// MeasureCache
// ---------------------------------------------------------------------------

namespace {

/// Insert-or-assign on the vector-backed json::Object.
void set_member(json::Object& object, std::string_view key, json::Value value) {
  for (auto& [k, v] : object) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object.emplace_back(std::string(key), std::move(value));
}

const MeasuredLcc& cached(std::map<std::string, MeasuredLcc>& cache, const std::string& key,
                          bool record_cycles, const auto& measure) {
  auto it = cache.find(key);
  // A cached run *with* cycle records serves requests without them: the
  // records only add per-cycle data, costs and counters are identical.
  if (it == cache.end() || (record_cycles && !it->second.has_cycle_records)) {
    it = cache.insert_or_assign(key, measure(record_cycles)).first;
  }
  return it->second;
}

}  // namespace

const MeasuredLcc& MeasureCache::lcc(const spam::DatasetConfig& config, int level,
                                     bool record_cycles) {
  return cached(lcc_, config.name + "/L" + std::to_string(level), record_cycles,
                [&](bool rc) { return measure_lcc(config, level, rc); });
}

const MeasuredLcc& MeasureCache::rtf(const spam::DatasetConfig& config, bool record_cycles) {
  return cached(rtf_, config.name, record_cycles,
                [&](bool rc) { return measure_rtf(config, rc); });
}

// ---------------------------------------------------------------------------
// CaseContext
// ---------------------------------------------------------------------------

std::vector<spam::DatasetConfig> CaseContext::datasets() const {
  if (quick_) return {spam::sf_config()};
  return spam::all_datasets();
}

std::vector<std::size_t> CaseContext::trim(std::vector<std::size_t> procs) const {
  if (!quick_ || procs.size() <= 2) return procs;
  std::vector<std::size_t> kept;
  for (std::size_t i = 0; i < procs.size(); ++i) {
    const std::size_t p = procs[i];
    const bool power_of_two = p != 0 && (p & (p - 1)) == 0;
    if (i == 0 || i + 1 == procs.size() || power_of_two) kept.push_back(p);
  }
  return kept;
}

void CaseContext::metric(const std::string& name, double value) {
  set_member(result_.metrics, name, json::Value(value));
}

void CaseContext::metrics(const obs::RunMetrics& m, const std::string& prefix) {
  const json::Value snapshot = m.to_json();
  for (const auto& [name, value] : snapshot.as_object()) {
    set_member(result_.metrics, prefix + name, value);
  }
}

void CaseContext::speedup_series(const std::string& name, std::vector<SpeedupPoint> points) {
  json::Array arr;
  for (const auto& p : points) {
    json::Object point;
    point.emplace_back("procs", json::Value(p.procs));
    point.emplace_back("speedup", json::Value(p.speedup));
    arr.emplace_back(std::move(point));
  }
  json::Object series;
  series.emplace_back("name", json::Value(name));
  series.emplace_back("points", json::Value(std::move(arr)));
  result_.speedups.emplace_back(std::move(series));
}

void CaseContext::table(const std::string& name, const util::Table& t) {
  json::Array columns;
  for (const auto& h : t.headers()) columns.emplace_back(h);
  json::Array rows;
  for (const auto& row : t.row_data()) {
    json::Array cells;
    for (const auto& cell : row) cells.emplace_back(cell);
    rows.emplace_back(std::move(cells));
  }
  json::Object entry;
  entry.emplace_back("name", json::Value(name));
  entry.emplace_back("columns", json::Value(std::move(columns)));
  entry.emplace_back("rows", json::Value(std::move(rows)));
  result_.tables.emplace_back(std::move(entry));
  emit_csv(out_, name, t);
}

void CaseContext::note(std::string text) { result_.notes.push_back(std::move(text)); }

void CaseContext::fail(std::string reason) {
  result_.failed = true;
  result_.notes.push_back("FAILED: " + reason);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

namespace {

struct RegisteredCase {
  std::string id;
  std::string suite;
  std::string title;
  CaseFn fn = nullptr;
};

[[nodiscard]] std::vector<RegisteredCase>& registry() {
  static std::vector<RegisteredCase> cases;
  return cases;
}

}  // namespace

bool register_case(const char* id, const char* suite, const char* title, CaseFn fn) {
  registry().push_back({id, suite, title, fn});
  return true;
}

// ---------------------------------------------------------------------------
// Harness CLI
// ---------------------------------------------------------------------------

namespace {

/// Environment fingerprint for the `env` object of every BENCH file.
[[nodiscard]] json::Object env_fingerprint() {
  json::Object env;
#if defined(__VERSION__)
  env.emplace_back("compiler", json::Value(std::string(__VERSION__)));
#else
  env.emplace_back("compiler", json::Value("unknown"));
#endif
#if defined(PSMSYS_BUILD_TYPE)
  env.emplace_back("build_type", json::Value(PSMSYS_BUILD_TYPE));
#else
  env.emplace_back("build_type", json::Value("unknown"));
#endif
#if defined(__linux__)
  env.emplace_back("os", json::Value("linux"));
#elif defined(__APPLE__)
  env.emplace_back("os", json::Value("darwin"));
#else
  env.emplace_back("os", json::Value("other"));
#endif
#if defined(__x86_64__)
  env.emplace_back("arch", json::Value("x86_64"));
#elif defined(__aarch64__)
  env.emplace_back("arch", json::Value("aarch64"));
#else
  env.emplace_back("arch", json::Value("other"));
#endif
  const unsigned threads = std::max(1u, std::thread::hardware_concurrency());
  env.emplace_back("hardware_threads", json::Value(threads));
  env.emplace_back("obs_enabled", json::Value(obs::kEnabled));
  return env;
}

/// Swallows narrative output under --quiet.
class NullBuffer final : public std::streambuf {
 protected:
  int overflow(int c) override { return c; }
};

struct Options {
  std::vector<std::string> suites;  // empty = all
  std::string out_dir = ".";
  std::string validate_path;
  bool quick = false;
  bool quiet = false;
  bool list = false;
  bool help = false;
};

void print_help(std::ostream& os) {
  os << "usage: harness [options]\n"
        "\n"
        "Runs the paper-reproduction benchmark suites and writes one\n"
        "BENCH_<suite>.json per suite (schema v1, see src/obs/bench_schema.hpp).\n"
        "\n"
        "options:\n"
        "  --suite <name>    run only this suite (repeatable; default: all)\n"
        "  --quick           trimmed sweeps + SF-only datasets (CI mode)\n"
        "  --out <dir>       directory for BENCH_*.json files (default: .)\n"
        "  --list            list suites and cases, then exit\n"
        "  --quiet           suppress narrative output (JSON still written)\n"
        "  --validate <file> validate an existing BENCH_*.json and exit\n"
        "  --help            this message\n";
}

[[nodiscard]] bool parse_args(int argc, char** argv, Options& options, std::string& error) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        error = std::string(flag) + " requires an argument";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--suite") {
      const char* v = value("--suite");
      if (v == nullptr) return false;
      options.suites.emplace_back(v);
    } else if (arg == "--out") {
      const char* v = value("--out");
      if (v == nullptr) return false;
      options.out_dir = v;
    } else if (arg == "--validate") {
      const char* v = value("--validate");
      if (v == nullptr) return false;
      options.validate_path = v;
    } else if (arg == "--quick") {
      options.quick = true;
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else if (arg == "--list") {
      options.list = true;
    } else if (arg == "--help" || arg == "-h") {
      options.help = true;
    } else {
      error = "unknown option: " + std::string(arg);
      return false;
    }
  }
  return true;
}

[[nodiscard]] int validate_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "harness: cannot open " << path << '\n';
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string parse_error;
  const auto doc = json::parse(buffer.str(), &parse_error);
  if (!doc.has_value()) {
    std::cerr << "harness: " << path << ": JSON parse error: " << parse_error << '\n';
    return 1;
  }
  const auto violations = obs::validate_bench_json(*doc);
  for (const auto& v : violations) std::cerr << "harness: " << path << ": " << v << '\n';
  if (violations.empty()) {
    std::cout << path << ": valid (schema v" << obs::kBenchSchemaVersion << ")\n";
    return 0;
  }
  return 1;
}

[[nodiscard]] json::Value case_to_json(const CaseResult& r) {
  json::Object c;
  c.emplace_back("name", json::Value(r.id));
  c.emplace_back("title", json::Value(r.title));
  c.emplace_back("wall_ns", json::Value(r.wall_ns));
  c.emplace_back("cpu_ns", json::Value(r.cpu_ns));
  if (!r.metrics.empty()) c.emplace_back("metrics", json::Value(r.metrics));
  if (!r.speedups.empty()) c.emplace_back("speedups", json::Value(json::Array(r.speedups)));
  if (!r.tables.empty()) c.emplace_back("tables", json::Value(json::Array(r.tables)));
  if (!r.notes.empty()) {
    json::Array notes;
    for (const auto& n : r.notes) notes.emplace_back(n);
    c.emplace_back("notes", json::Value(std::move(notes)));
  }
  if (r.failed) c.emplace_back("failed", json::Value(true));
  return json::Value(std::move(c));
}

}  // namespace

int run_harness(int argc, char** argv) {
  Options options;
  std::string error;
  if (!parse_args(argc, argv, options, error)) {
    std::cerr << "harness: " << error << '\n';
    print_help(std::cerr);
    return 2;
  }
  if (options.help) {
    print_help(std::cout);
    return 0;
  }
  if (!options.validate_path.empty()) return validate_file(options.validate_path);

  // Suites in registration order, cases grouped under them.
  std::vector<std::string> suite_order;
  for (const auto& c : registry()) {
    if (std::find(suite_order.begin(), suite_order.end(), c.suite) == suite_order.end()) {
      suite_order.push_back(c.suite);
    }
  }
  if (options.list) {
    for (const auto& suite : suite_order) {
      std::cout << suite << '\n';
      for (const auto& c : registry()) {
        if (c.suite == suite) std::cout << "  " << c.id << "  (" << c.title << ")\n";
      }
    }
    return 0;
  }

  const std::vector<std::string> selected =
      options.suites.empty() ? suite_order : options.suites;
  for (const auto& s : selected) {
    if (std::find(suite_order.begin(), suite_order.end(), s) == suite_order.end()) {
      std::cerr << "harness: unknown suite '" << s << "' (try --list)\n";
      return 2;
    }
  }

  NullBuffer null_buffer;
  std::ostream null_stream(&null_buffer);
  std::ostream& out = options.quiet ? null_stream : std::cout;

  std::error_code ec;
  std::filesystem::create_directories(options.out_dir, ec);
  if (ec) {
    std::cerr << "harness: cannot create " << options.out_dir << ": " << ec.message() << '\n';
    return 1;
  }

  MeasureCache cache;
  bool any_failed = false;
  std::size_t violations_total = 0;

  for (const auto& suite : selected) {
    std::vector<CaseResult> results;
    for (const auto& c : registry()) {
      if (c.suite != suite) continue;
      out << "=== [" << suite << "/" << c.id << "] " << c.title << " ===\n\n";
      CaseResult result;
      result.id = c.id;
      result.suite = c.suite;
      result.title = c.title;
      CaseContext ctx(result, cache, out, options.quick);
      const auto wall_begin = std::chrono::steady_clock::now();
      const std::clock_t cpu_begin = std::clock();
      try {
        c.fn(ctx);
      } catch (const std::exception& e) {
        ctx.fail(std::string("unhandled exception: ") + e.what());
      }
      const std::clock_t cpu_end = std::clock();
      result.wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - wall_begin)
                           .count();
      result.cpu_ns = static_cast<std::int64_t>(
          1e9 * static_cast<double>(cpu_end - cpu_begin) / CLOCKS_PER_SEC);
      if (result.failed) {
        any_failed = true;
        std::cerr << "harness: case " << suite << "/" << c.id << " FAILED\n";
      }
      results.push_back(std::move(result));
      out << '\n';
    }

    json::Object doc;
    doc.emplace_back("schema_version", json::Value(obs::kBenchSchemaVersion));
    doc.emplace_back("suite", json::Value(suite));
    doc.emplace_back("quick", json::Value(options.quick));
    doc.emplace_back("env", json::Value(env_fingerprint()));
    json::Array cases;
    for (const auto& r : results) cases.push_back(case_to_json(r));
    doc.emplace_back("cases", json::Value(std::move(cases)));

    const json::Value value{std::move(doc)};
    const auto violations = obs::validate_bench_json(value);
    const std::string path = options.out_dir + "/BENCH_" + suite + ".json";
    std::ofstream file(path);
    if (!file) {
      std::cerr << "harness: cannot write " << path << '\n';
      return 1;
    }
    file << value.dump(2) << '\n';
    file.close();
    for (const auto& v : violations) {
      std::cerr << "harness: " << path << ": schema violation: " << v << '\n';
    }
    violations_total += violations.size();
    out << "wrote " << path << " (" << results.size() << " cases"
        << (violations.empty() ? "" : ", SCHEMA VIOLATIONS") << ")\n\n";
  }

  return (any_failed || violations_total > 0) ? 1 : 0;
}

}  // namespace psmsys::bench
