// Rete design ablation: the two network optimizations this implementation
// shares with ParaOPS5 — node sharing between productions with common
// prefixes, and hash-indexed join memories. Both are toggled off to show
// their contribution on the LCC workload.

#include "bench/harness.hpp"

namespace psmsys::bench {

namespace {

util::WorkUnits run_with(const spam::Scene& scene, const std::vector<spam::Fragment>& best,
                         bool sharing, bool indexed, rete::NetworkStats* stats_out) {
  const spam::PhaseProgram phase = spam::build_lcc_program();
  ops5::EngineOptions options;
  options.rete.node_sharing = sharing;
  options.rete.indexed_joins = indexed;
  auto engine = phase.make_engine(scene, options);
  if (stats_out != nullptr) *stats_out = engine->network().stats();

  spam::seed_fragment_wmes(*engine, best);
  spam::seed_constraint_wmes(*engine);
  spam::seed_support_wmes(*engine, best);
  for (std::size_t i = 0; i < spam::kRegionClassCount; ++i) {
    engine->make_wme(
        "lcc-task",
        {{"level", ops5::Value(4.0)},
         {"subject-class", ops5::Value(*engine->program().symbols().find(
                               spam::class_name(static_cast<spam::RegionClass>(i))))}});
  }
  (void)engine->run();
  return engine->counters().match_cost;
}

}  // namespace

PSMSYS_BENCH_CASE(rete_ablation, "rete",
                  "Rete ablation: node sharing and hashed join memories") {
  auto& os = ctx.out();

  const auto config = ctx.quick() ? spam::sf_config() : spam::dc_config();
  const auto scene = spam::generate_scene(config);
  const auto best = spam::best_fragments(spam::run_rtf(scene, 3).fragments);

  util::Table table({"node sharing", "indexed joins", "match cost (wu)", "vs full",
                     "alpha patterns", "join nodes"});
  util::WorkUnits full = 0;
  for (const bool sharing : {true, false}) {
    for (const bool indexed : {true, false}) {
      rete::NetworkStats stats;
      const util::WorkUnits cost = run_with(scene, best, sharing, indexed, &stats);
      if (sharing && indexed) full = cost;
      const double vs_full = static_cast<double>(cost) / static_cast<double>(full);
      if (!sharing && !indexed) ctx.metric("both_off_vs_full", vs_full);
      table.add_row({sharing ? "on" : "off", indexed ? "on" : "off", util::Table::fmt(cost),
                     util::Table::fmt(vs_full, 2) + "x",
                     util::Table::fmt(stats.alpha_patterns), util::Table::fmt(stats.join_nodes)});
    }
  }

  table.print(os, "Full LCC (Level 4) run on " + config.name +
                      " under four network configurations");
  os << "\nBoth optimizations are part of what made ParaOPS5's C implementation\n"
        "10-20x faster than the Lisp OPS5; indexing dominates on this workload\n"
        "because LCC's joins are equality-selective (fragment ids, subjects).\n";
  ctx.table("rete_ablation", table);
}

}  // namespace psmsys::bench
