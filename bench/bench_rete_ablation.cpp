// Rete design ablation: the three network optimizations this implementation
// shares with ParaOPS5 and Doorenbos — node sharing between productions with
// common prefixes, hash-indexed join memories, and left/right node unlinking.
// Each is toggled off to show its contribution on the LCC workload. A second
// section measures the value-domain specialization pass: the generated LCC
// base itself is clean (empty plan), so the workload is augmented with a
// batch of provably-infeasible probe productions the abstract interpreter
// can prune — the before/after match cost is the pass's headroom.

#include "analysis/value_domain.hpp"
#include "bench/harness.hpp"
#include "ops5/parser.hpp"

namespace psmsys::bench {

namespace {

util::WorkUnits run_with(const spam::Scene& scene, const std::vector<spam::Fragment>& best,
                         bool sharing, bool indexed, bool unlinking,
                         rete::NetworkStats* stats_out) {
  const spam::PhaseProgram phase = spam::build_lcc_program();
  ops5::EngineOptions options;
  options.rete.node_sharing = sharing;
  options.rete.indexed_joins = indexed;
  options.rete.unlinking = unlinking;
  auto engine = phase.make_engine(scene, options);
  if (stats_out != nullptr) *stats_out = engine->network().stats();

  spam::seed_fragment_wmes(*engine, best);
  spam::seed_constraint_wmes(*engine);
  spam::seed_support_wmes(*engine, best);
  for (std::size_t i = 0; i < spam::kRegionClassCount; ++i) {
    engine->make_wme(
        "lcc-task",
        {{"level", ops5::Value(4.0)},
         {"subject-class", ops5::Value(*engine->program().symbols().find(
                               spam::class_name(static_cast<spam::RegionClass>(i))))}});
  }
  (void)engine->run();
  return engine->counters().match_cost;
}

/// LCC plus `n` infeasible probes: each joins real fragment traffic against
/// a relation name the constraint catalog can never produce, so the value
/// domain of relation.name (a constant set) proves the production dead. The
/// unspecialized network still pays alpha tests and left-memory insertions
/// for every probe; the specialization plan prunes them at compile time.
std::string augmented_lcc_source(int n) {
  std::string src = spam::lcc_source();
  for (int i = 0; i < n; ++i) {
    const std::string tag = std::to_string(i);
    src += "(p dead-probe-" + tag +
           "\n"
           "   (fragment ^id <s> ^best yes)\n"
           "   (relation ^name no-such-relation-" + tag +
           " ^subject <s>)\n"
           "   -->\n   (halt))\n";
  }
  return src;
}

/// Runs the augmented workload with the plan applied (or not); reports the
/// prune count through `pruned_out` when specializing.
util::WorkUnits run_specialized(const spam::Scene& scene,
                                const std::vector<spam::Fragment>& best, bool specialize,
                                std::size_t* pruned_out) {
  spam::PhaseProgram phase = spam::build_lcc_program();
  phase.program =
      std::make_shared<const ops5::Program>(ops5::parse_program(augmented_lcc_source(8)));

  ops5::EngineOptions options;
  if (specialize) {
    const auto cls = [&](const char* name) {
      return *phase.program->class_index(*phase.program->symbols().find(name));
    };
    analysis::ValueDomainOptions vdo;
    vdo.seed_classes = {{cls("fragment"), cls("constraint"), cls("support"), cls("lcc-task")}};
    vdo.output_classes = {{cls("context"), cls("consistency"), cls("relation")}};
    // The constraint catalog writes more than the default 8 distinct
    // relation names; keep the constant set exact so the probes' bogus
    // names stay provably outside it.
    vdo.max_constants = 64;
    const analysis::ValueDomainReport vd =
        analysis::analyze_value_domains(*phase.program, vdo);
    options.rete.specialize =
        vd.converged && analysis::verify_specialization(*phase.program, vdo, vd).empty();
    options.rete.plan = vd.plan;
    if (pruned_out != nullptr) *pruned_out = vd.plan->pruned_productions.size();
  }

  auto engine = phase.make_engine(scene, options);
  spam::seed_fragment_wmes(*engine, best);
  spam::seed_constraint_wmes(*engine);
  spam::seed_support_wmes(*engine, best);
  for (std::size_t i = 0; i < spam::kRegionClassCount; ++i) {
    engine->make_wme(
        "lcc-task",
        {{"level", ops5::Value(4.0)},
         {"subject-class", ops5::Value(*engine->program().symbols().find(
                               spam::class_name(static_cast<spam::RegionClass>(i))))}});
  }
  (void)engine->run();
  return engine->counters().match_cost;
}

}  // namespace

PSMSYS_BENCH_CASE(rete_ablation, "rete",
                  "Rete ablation: node sharing, hashed join memories, node unlinking") {
  auto& os = ctx.out();

  const auto config = ctx.quick() ? spam::sf_config() : spam::dc_config();
  const auto scene = spam::generate_scene(config);
  const auto best = spam::best_fragments(spam::run_rtf(scene, 3).fragments);

  struct Config {
    bool sharing, indexed, unlinking;
  };
  // The sharing x indexing matrix (unlinking on, the default), plus one
  // unlinking-off row: its contribution is orthogonal to the other two, so a
  // single ablation row against the full configuration shows its share.
  const std::vector<Config> configs = {
      {true, true, true},   {true, false, true}, {false, true, true},
      {false, false, true}, {true, true, false},
  };

  util::Table table({"node sharing", "indexed joins", "unlinking", "match cost (wu)",
                     "vs full", "alpha patterns", "join nodes"});
  util::WorkUnits full = 0;
  for (const auto& [sharing, indexed, unlinking] : configs) {
    rete::NetworkStats stats;
    const util::WorkUnits cost = run_with(scene, best, sharing, indexed, unlinking, &stats);
    if (sharing && indexed && unlinking) full = cost;
    const double vs_full = static_cast<double>(cost) / static_cast<double>(full);
    if (!sharing && !indexed) ctx.metric("both_off_vs_full", vs_full);
    if (!unlinking) ctx.metric("no_unlinking_vs_full", vs_full);
    table.add_row({sharing ? "on" : "off", indexed ? "on" : "off", unlinking ? "on" : "off",
                   util::Table::fmt(cost), util::Table::fmt(vs_full, 2) + "x",
                   util::Table::fmt(stats.alpha_patterns), util::Table::fmt(stats.join_nodes)});
  }

  table.print(os, "Full LCC (Level 4) run on " + config.name +
                      " under five network configurations");
  os << "\nSharing and indexing are part of what made ParaOPS5's C implementation\n"
        "10-20x faster than the Lisp OPS5; indexing dominates on this workload\n"
        "because LCC's joins are equality-selective (fragment ids, subjects).\n"
        "Unlinking (Doorenbos) trims the residual activations of quiescent\n"
        "productions without changing any match result.\n";
  ctx.table("rete_ablation", table);

  // Value-domain specialization: the augmented workload (LCC + 8 infeasible
  // probe productions) with the proof-carrying plan off, then on.
  std::size_t pruned = 0;
  const util::WorkUnits plain = run_specialized(scene, best, false, nullptr);
  const util::WorkUnits spec = run_specialized(scene, best, true, &pruned);
  const double ratio = static_cast<double>(spec) / static_cast<double>(plain);
  ctx.metric("specialized_vs_plain", ratio);
  ctx.metric("specialization_pruned", static_cast<double>(pruned));

  util::Table spec_table(
      {"specialization", "match cost (wu)", "vs plain", "productions pruned"});
  spec_table.add_row({"off", util::Table::fmt(plain), "1.00x", "0"});
  spec_table.add_row({"on", util::Table::fmt(spec), util::Table::fmt(ratio, 2) + "x",
                      util::Table::fmt(pruned)});
  spec_table.print(os, "Same workload + 8 infeasible probe productions, with and "
                       "without the value-domain specialization plan");
  os << "\nThe abstract interpreter proves each probe's relation-name test\n"
        "value-disjoint with relation.name's inferred constant set, prunes the\n"
        "productions at compile time, and carries a certificate the network\n"
        "re-verifies before applying the plan. Firing behaviour is identical;\n"
        "only the provably-dead match work disappears.\n";
  ctx.table("rete_specialization", spec_table);
}

}  // namespace psmsys::bench
