// Rete design ablation: the three network optimizations this implementation
// shares with ParaOPS5 and Doorenbos — node sharing between productions with
// common prefixes, hash-indexed join memories, and left/right node unlinking.
// Each is toggled off to show its contribution on the LCC workload.

#include "bench/harness.hpp"

namespace psmsys::bench {

namespace {

util::WorkUnits run_with(const spam::Scene& scene, const std::vector<spam::Fragment>& best,
                         bool sharing, bool indexed, bool unlinking,
                         rete::NetworkStats* stats_out) {
  const spam::PhaseProgram phase = spam::build_lcc_program();
  ops5::EngineOptions options;
  options.rete.node_sharing = sharing;
  options.rete.indexed_joins = indexed;
  options.rete.unlinking = unlinking;
  auto engine = phase.make_engine(scene, options);
  if (stats_out != nullptr) *stats_out = engine->network().stats();

  spam::seed_fragment_wmes(*engine, best);
  spam::seed_constraint_wmes(*engine);
  spam::seed_support_wmes(*engine, best);
  for (std::size_t i = 0; i < spam::kRegionClassCount; ++i) {
    engine->make_wme(
        "lcc-task",
        {{"level", ops5::Value(4.0)},
         {"subject-class", ops5::Value(*engine->program().symbols().find(
                               spam::class_name(static_cast<spam::RegionClass>(i))))}});
  }
  (void)engine->run();
  return engine->counters().match_cost;
}

}  // namespace

PSMSYS_BENCH_CASE(rete_ablation, "rete",
                  "Rete ablation: node sharing, hashed join memories, node unlinking") {
  auto& os = ctx.out();

  const auto config = ctx.quick() ? spam::sf_config() : spam::dc_config();
  const auto scene = spam::generate_scene(config);
  const auto best = spam::best_fragments(spam::run_rtf(scene, 3).fragments);

  struct Config {
    bool sharing, indexed, unlinking;
  };
  // The sharing x indexing matrix (unlinking on, the default), plus one
  // unlinking-off row: its contribution is orthogonal to the other two, so a
  // single ablation row against the full configuration shows its share.
  const std::vector<Config> configs = {
      {true, true, true},   {true, false, true}, {false, true, true},
      {false, false, true}, {true, true, false},
  };

  util::Table table({"node sharing", "indexed joins", "unlinking", "match cost (wu)",
                     "vs full", "alpha patterns", "join nodes"});
  util::WorkUnits full = 0;
  for (const auto& [sharing, indexed, unlinking] : configs) {
    rete::NetworkStats stats;
    const util::WorkUnits cost = run_with(scene, best, sharing, indexed, unlinking, &stats);
    if (sharing && indexed && unlinking) full = cost;
    const double vs_full = static_cast<double>(cost) / static_cast<double>(full);
    if (!sharing && !indexed) ctx.metric("both_off_vs_full", vs_full);
    if (!unlinking) ctx.metric("no_unlinking_vs_full", vs_full);
    table.add_row({sharing ? "on" : "off", indexed ? "on" : "off", unlinking ? "on" : "off",
                   util::Table::fmt(cost), util::Table::fmt(vs_full, 2) + "x",
                   util::Table::fmt(stats.alpha_patterns), util::Table::fmt(stats.join_nodes)});
  }

  table.print(os, "Full LCC (Level 4) run on " + config.name +
                      " under five network configurations");
  os << "\nSharing and indexing are part of what made ParaOPS5's C implementation\n"
        "10-20x faster than the Lisp OPS5; indexing dominates on this workload\n"
        "because LCC's joins are equality-selective (fragment ids, subjects).\n"
        "Unlinking (Doorenbos) trims the residual activations of quiescent\n"
        "productions without changing any match result.\n";
  ctx.table("rete_ablation", table);
}

}  // namespace psmsys::bench
