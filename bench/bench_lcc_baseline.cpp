// Table 8: baseline (one task process) measurements of the LCC phase for
// the three datasets at decomposition Levels 3 and 2 — the numbers every
// speedup in the paper is computed against.
//
// Paper values (optimized ParaOPS5-based uniprocessor version):
//   dataset      total(s) #tasks avg(s) prods-fired rhs-actions
//   SF  Level 3    1433     283   5.07     33475       42383
//   SF  Level 2    1423     941   1.51     32251       41159
//   DC  Level 3     988     151   6.55     20059       31205
//   DC  Level 2     956     490   1.95     19418       30564
//   MOFF Level 3    991     209   4.74     22203       23637
//   MOFF Level 2    973     700   1.39     21294       22728

#include "bench/harness.hpp"

namespace psmsys::bench {

namespace {

struct PaperRow {
  const char* dataset;
  int level;
  double total;
  int tasks;
  double avg;
  int prods;
  int rhs;
};

constexpr PaperRow kPaper[] = {
    {"SF", 3, 1433, 283, 5.07, 33475, 42383},   {"SF", 2, 1423, 941, 1.51, 32251, 41159},
    {"DC", 3, 988, 151, 6.55, 20059, 31205},    {"DC", 2, 956, 490, 1.95, 19418, 30564},
    {"MOFF", 3, 991, 209, 4.74, 22203, 23637},  {"MOFF", 2, 973, 700, 1.39, 21294, 22728},
};

}  // namespace

PSMSYS_BENCH_CASE(lcc_baseline, "lcc", "Table 8: LCC baseline (single task process)") {
  auto& os = ctx.out();

  util::Table table({"Dataset", "Total time (s)", "Number of tasks", "Avg time per task (s)",
                     "Prods fired", "RHS actions", "paper: total/tasks/avg"});

  for (const auto& config : ctx.datasets()) {
    for (const int level : {3, 2}) {
      const auto& measured = ctx.lcc(config, level);
      util::WorkUnits total = 0;
      std::uint64_t prods = 0;
      std::uint64_t rhs = 0;
      for (const auto& m : measured.tasks) {
        total += m.cost();
        prods += m.counters.firings;
        rhs += m.counters.rhs_actions;
      }
      const double total_s = util::to_seconds(total);
      const PaperRow* paper = nullptr;
      for (const auto& row : kPaper) {
        if (config.name == row.dataset && level == row.level) paper = &row;
      }
      table.add_row({config.name + " Level " + std::to_string(level),
                     util::Table::fmt(total_s, 0), util::Table::fmt(measured.tasks.size()),
                     util::Table::fmt(total_s / static_cast<double>(measured.tasks.size()), 2),
                     util::Table::fmt(prods), util::Table::fmt(rhs),
                     paper != nullptr
                         ? util::Table::fmt(paper->total, 0) + "/" +
                               util::Table::fmt(std::uint64_t(paper->tasks)) + "/" +
                               util::Table::fmt(paper->avg, 2)
                         : "-"});
      const std::string key = config.name + "_L" + std::to_string(level);
      ctx.metric(key + "_total_s", total_s);
      ctx.metric(key + "_tasks", static_cast<double>(measured.tasks.size()));
      ctx.metric(key + "_firings", static_cast<double>(prods));
    }
  }

  table.print(os, "Measurements for baseline system on the datasets");
  ctx.table("table8", table);

  ctx.note("totals nearly level-independent; Level 3 tasks ~3.3x coarser than Level 2");
  os << "\nShape checks: totals nearly level-independent per dataset; SF is the\n"
        "largest run; Level 3 tasks are ~3.3x coarser than Level 2 tasks.\n";
}

}  // namespace psmsys::bench
