// Multi-session interpretation server (DESIGN.md §14): measured host-time
// throughput and latency of the serve pool. Unlike the paper-reproduction
// suites these cases measure the *server* economics: the Rete network is
// compiled once, scenes multiplex over a fixed pool of resident engine
// contexts, and the offered concurrency sweeps past the pool size.
//
//   1. offered-concurrency sweep — N closed-loop clients against a fixed
//      4-worker pool: p50/p99 scene latency and scenes/sec at
//      N in {1, 8, 64, 256},
//   2. fault-storm degradation — same pool under injected poison/overrun
//      storms: throughput, quarantine and retry accounting,
//   3. pack-swap overhead — a versioned hot reload (admission gate + atomic
//      activation + per-worker context rebuilds) lands mid-run; scenes/sec
//      and p99 with and without the swap.
//
// Every rollup is validated against the serve schema
// (obs::validate_serve_rollup) before it is reported; a violation fails the
// case and the harness exits nonzero.

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "bench/harness.hpp"
#include "obs/bench_schema.hpp"
#include "ops5/parser.hpp"
#include "psm/faults.hpp"
#include "serve/server.hpp"

namespace psmsys::bench {
namespace {

// Scene-id-dependent workload: ctr counts id % 25 -> 30, so scenes cost a
// few dozen cycles each — cheap enough to sweep thousands, real enough that
// the pool actually interprets rules rather than shuffling empty futures.
constexpr const char* kServeSrc = R"(
(literalize ctr n)
(literalize spin n)
(p count-to-30 (ctr ^n {<v> < 30}) --> (modify 1 ^n (compute <v> + 1)))
(p spin-forever (spin ^n <v>) --> (modify 1 ^n (compute <v> + 1)))
)";

[[nodiscard]] std::shared_ptr<const serve::SharedRuleBase> serve_rulebase() {
  auto program = std::make_shared<const ops5::Program>(ops5::parse_program(kServeSrc));
  return serve::SharedRuleBase::compile(std::move(program));
}

[[nodiscard]] serve::SceneJob counting_scene(std::uint64_t id) {
  serve::SceneJob job;
  job.label = "count";
  job.inject = [id](ops5::Engine& engine) {
    engine.make_wme("ctr", {{"n", ops5::Value(static_cast<double>(id % 25))}});
  };
  return job;
}

/// N closed-loop clients (submit, wait for the report, submit again) against
/// one server; returns the drained rollup. Queue capacity covers the offered
/// concurrency so admission never sheds — this measures service, not shedding.
[[nodiscard]] serve::ServerStats closed_loop(
    const std::shared_ptr<const serve::SharedRuleBase>& rb, std::size_t workers,
    std::size_t clients, std::size_t scenes_per_client,
    const psm::FaultInjector* injector = nullptr, std::uint64_t cycle_deadline = 0) {
  serve::ServerOptions options;
  options.workers = workers;
  options.queue_capacity = clients + workers;
  options.session.injector = injector;
  options.session.cycle_deadline = cycle_deadline;
  serve::Server server(rb, options);

  std::vector<std::thread> pool;
  pool.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    pool.emplace_back([&server, c, scenes_per_client] {
      for (std::size_t i = 0; i < scenes_per_client; ++i) {
        auto r = server.submit(counting_scene(c * scenes_per_client + i));
        if (r.admitted()) (void)r.report.get();
      }
    });
  }
  for (auto& t : pool) t.join();
  return server.drain();
}

}  // namespace

PSMSYS_BENCH_CASE(serve_scaling, "serve",
                  "Session server: offered concurrency vs fixed 4-worker pool") {
  auto& os = ctx.out();
  const auto rb = serve_rulebase();
  constexpr std::size_t kWorkers = 4;
  const std::size_t total = ctx.quick() ? 256 : 2048;

  util::Table table({"clients", "scenes", "scenes/sec", "p50 us", "p99 us", "max us"});
  std::vector<std::pair<std::size_t, double>> curve;
  for (const std::size_t clients : {1u, 8u, 64u, 256u}) {
    const std::size_t per_client = std::max<std::size_t>(1, total / clients);
    const serve::ServerStats stats = closed_loop(rb, kWorkers, clients, per_client);

    const auto violations = obs::validate_serve_rollup(stats.to_json());
    for (const auto& v : violations) ctx.fail("serve rollup schema: " + v);
    if (stats.completed != clients * per_client) ctx.fail("closed loop lost scenes");

    const std::string tag = "n" + std::to_string(clients) + "_";
    ctx.metric(tag + "scenes_per_sec", stats.scenes_per_sec);
    ctx.metric(tag + "p50_ns", static_cast<double>(stats.latency.p50_ns));
    ctx.metric(tag + "p99_ns", static_cast<double>(stats.latency.p99_ns));
    curve.emplace_back(clients, stats.scenes_per_sec);
    table.add_row({util::Table::fmt(clients), util::Table::fmt(stats.completed),
                   util::Table::fmt(stats.scenes_per_sec, 0),
                   util::Table::fmt(static_cast<double>(stats.latency.p50_ns) / 1e3, 1),
                   util::Table::fmt(static_cast<double>(stats.latency.p99_ns) / 1e3, 1),
                   util::Table::fmt(static_cast<double>(stats.latency.max_ns) / 1e3, 1)});
  }
  table.print(os, "closed-loop clients, compile-once rule base, 4 resident contexts");
  plot_curve(os, "\nscenes/sec vs offered concurrency", curve);
  ctx.table("serve_scaling", table);
  ctx.note("latency is admission->terminal (queueing included); past 4 clients "
           "added concurrency buys queue depth, not service rate");
}

PSMSYS_BENCH_CASE(serve_fault_storm, "serve",
                  "Session server: graceful degradation under fault storms") {
  auto& os = ctx.out();
  const auto rb = serve_rulebase();
  constexpr std::size_t kWorkers = 4;
  constexpr std::size_t kClients = 16;
  const std::size_t per_client = ctx.quick() ? 16 : 128;

  util::Table table({"storm", "completed", "quarantined", "retries", "scenes/sec",
                     "vs healthy"});
  double healthy = 0.0;
  for (const double rate : {0.0, 0.05, 0.20}) {
    psm::FaultConfig config;
    config.seed = 0x5e12fULL;
    config.transient_rate = rate;
    config.poison_rate = rate / 2.0;
    config.overrun_rate = rate / 2.0;
    const psm::FaultInjector injector(config);
    const serve::ServerStats stats =
        closed_loop(rb, kWorkers, kClients, per_client, &injector, /*cycle_deadline=*/200);

    const auto violations = obs::validate_serve_rollup(stats.to_json());
    for (const auto& v : violations) ctx.fail("serve rollup schema: " + v);

    if (rate == 0.0) healthy = stats.scenes_per_sec;
    table.add_row({util::Table::fmt(100.0 * rate, 0) + "%", util::Table::fmt(stats.completed),
                   util::Table::fmt(stats.quarantined), util::Table::fmt(stats.retries),
                   util::Table::fmt(stats.scenes_per_sec, 0),
                   util::Table::fmt(healthy == 0.0 ? 0.0 : 100.0 * stats.scenes_per_sec / healthy,
                                    1) +
                       "%"});
    ctx.metric("storm" + util::Table::fmt(100.0 * rate, 0) + "_scenes_per_sec",
               stats.scenes_per_sec);
  }
  table.print(os, "16 clients, 4 workers; poisoned scenes quarantine, healthy scenes complete");
  ctx.table("serve_fault_storm", table);
}

PSMSYS_BENCH_CASE(serve_pack_swap, "serve",
                  "Session server: hot pack swap overhead under closed-loop load") {
  auto& os = ctx.out();
  constexpr std::size_t kWorkers = 4;
  constexpr std::size_t kClients = 16;
  const std::size_t per_client = ctx.quick() ? 16 : 128;
  const std::uint64_t total = kClients * per_client;

  // The candidate carries the same rules under a new version tag: the gate
  // runs its full pipeline (semantic diff is empty, so it must accept), and
  // the swap cost measured is pure mechanism — admission analysis, atomic
  // activation, and every worker rebuilding its resident context mid-stream.
  util::Table table({"run", "scenes", "swaps", "scenes/sec", "p50 us", "p99 us"});
  double baseline = 0.0;
  for (const bool swap : {false, true}) {
    serve::ServerOptions options;
    options.workers = kWorkers;
    options.queue_capacity = kClients + kWorkers;
    serve::Server server(serve_rulebase(), options);

    std::thread swapper;
    if (swap) {
      swapper = std::thread([&server, total, &ctx] {
        while (server.stats().completed < total / 2) std::this_thread::yield();
        serve::PackCandidate candidate;
        candidate.program =
            std::make_shared<const ops5::Program>(ops5::parse_program(
                std::string("(pack serve 2)\n") + kServeSrc));
        const serve::LoadResult load = server.load_pack(candidate);
        if (!load.activated) ctx.fail("mid-run pack swap did not activate");
      });
    }

    std::vector<std::thread> pool;
    pool.reserve(kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
      pool.emplace_back([&server, c, per_client] {
        for (std::size_t i = 0; i < per_client; ++i) {
          auto r = server.submit(counting_scene(c * per_client + i));
          if (r.admitted()) (void)r.report.get();
        }
      });
    }
    for (auto& t : pool) t.join();
    if (swapper.joinable()) swapper.join();
    const serve::ServerStats stats = server.drain();

    const auto violations = obs::validate_serve_rollup(stats.to_json());
    for (const auto& v : violations) ctx.fail("serve rollup schema: " + v);
    if (stats.completed != total) ctx.fail("closed loop lost scenes");
    if (swap && stats.pack_swaps != 1) ctx.fail("expected exactly one swap");

    if (!swap) baseline = stats.scenes_per_sec;
    const std::string tag = swap ? "swap_" : "steady_";
    ctx.metric(tag + "scenes_per_sec", stats.scenes_per_sec);
    ctx.metric(tag + "p99_ns", static_cast<double>(stats.latency.p99_ns));
    table.add_row({swap ? "mid-run swap" : "steady state", util::Table::fmt(stats.completed),
                   util::Table::fmt(stats.pack_swaps),
                   util::Table::fmt(stats.scenes_per_sec, 0),
                   util::Table::fmt(static_cast<double>(stats.latency.p50_ns) / 1e3, 1),
                   util::Table::fmt(static_cast<double>(stats.latency.p99_ns) / 1e3, 1)});
    if (swap && baseline > 0.0) {
      ctx.metric("swap_throughput_ratio", stats.scenes_per_sec / baseline);
    }
  }
  table.print(os, "16 clients, 4 workers; identical-rules candidate through the full gate");
  ctx.note("swap cost = admission pipeline + activation + per-worker context "
           "rebuild at next dequeue; in-flight scenes finish on the old pack");
  ctx.table("serve_pack_swap", table);
}

}  // namespace psmsys::bench
