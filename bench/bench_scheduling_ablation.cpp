// Section 6.2 ablation: the tail-end effect and the paper's proposed fix.
//
// "Some of these [outlier] tasks occur at the end of the task queue and
// create a tail-end effect in which processor utilization is low at the end
// of the phase. ... One way to both negate this disparity and reduce the
// tail-end effect would be to use a separate task queue for the larger tasks
// and process them at the beginning of the phase."
//
// We compare FIFO queue order (the paper's implementation; giants land at
// the end) against largest-first ordering at each level, reporting speedup
// and utilization at 14 task processes.

#include "bench/harness.hpp"

namespace psmsys::bench {

PSMSYS_BENCH_CASE(scheduling_ablation, "scheduling",
                  "Scheduling ablation: FIFO vs largest-first (14 processes)") {
  auto& os = ctx.out();

  util::Table table({"dataset", "level", "fifo speedup", "lpt speedup", "fifo util",
                     "lpt util", "gain"});

  for (const auto& config : ctx.datasets()) {
    for (const int level : {3, 2}) {
      const auto& measured = ctx.lcc(config, level);
      const auto costs = psm::task_costs(measured.tasks);

      psm::TlpConfig base_cfg;
      base_cfg.task_processes = 1;
      const util::WorkUnits base = psm::simulate_tlp(costs, base_cfg).makespan;

      psm::TlpConfig fifo;
      fifo.task_processes = 14;
      psm::TlpConfig lpt = fifo;
      lpt.policy = psm::SchedulePolicy::LargestFirst;

      const auto r_fifo = psm::simulate_tlp(costs, fifo);
      const auto r_lpt = psm::simulate_tlp(costs, lpt);
      const double s_fifo = psm::speedup(base, r_fifo.makespan);
      const double s_lpt = psm::speedup(base, r_lpt.makespan);

      table.add_row({config.name, std::to_string(level), util::Table::fmt(s_fifo, 2),
                     util::Table::fmt(s_lpt, 2), util::Table::fmt(r_fifo.utilization(), 3),
                     util::Table::fmt(r_lpt.utilization(), 3),
                     util::Table::fmt(100.0 * (s_lpt - s_fifo) / s_fifo, 1) + "%"});
      const std::string key = config.name + "_L" + std::to_string(level);
      ctx.metric(key + "_fifo_speedup", s_fifo);
      ctx.metric(key + "_lpt_speedup", s_lpt);
    }
  }

  table.print(os, "Tail-end effect: FIFO (giants last) vs big-tasks-first");
  os << "\npaper's prediction: scheduling large tasks first \"would result in\n"
        "better processor utilization and thus better speed-up curves in both\n"
        "levels\" — the gain column confirms it, more so at Level 3 where the\n"
        "relative disparity of the outliers is larger.\n";
  ctx.table("scheduling_ablation", table);
}

}  // namespace psmsys::bench
