// Table 9: multiplicative speed-ups from combining task-level and match
// parallelism, for SF at Level 2 — the paper's central claim that the two
// sources are independent and multiply.
//
// Paper (SF Level 2, achieved with predicted in parentheses):
//           match0  match1  match2  match3  match4
//   task1    1       1.21    1.50    1.60    1.68
//   task2    1.99    2.40(2.41)  2.98(2.99) ...
//   task4    3.98    ...     5.82(5.96)  *       *
//   task7    6.85    8.17(8.29)  *       *       *
// Entries marked * exceed the paper's 16-processor machine:
// processors used = 1 control + T + T*M.

#include "bench/harness.hpp"

namespace psmsys::bench {

PSMSYS_BENCH_CASE(multiplicative, "multiplicative",
                  "Table 9: multiplicative speed-ups (SF, Level 2)") {
  auto& os = ctx.out();

  const auto& measured = ctx.lcc(spam::sf_config(), 2, /*record_cycles=*/true);

  psm::TlpConfig one;
  one.task_processes = 1;
  const auto plain_costs = psm::task_costs(measured.tasks);
  const util::WorkUnits baseline = psm::simulate_tlp(plain_costs, one).makespan;

  const std::vector<std::size_t> task_procs =
      ctx.quick() ? std::vector<std::size_t>{1, 2, 4, 7}
                  : std::vector<std::size_t>{1, 2, 3, 4, 5, 6, 7};
  const std::vector<std::size_t> match_procs =
      ctx.quick() ? std::vector<std::size_t>{0, 1, 2} : std::vector<std::size_t>{0, 1, 2, 3, 4};
  constexpr std::size_t kMachineProcessors = 16;  // Encore Multimax
  constexpr std::size_t kUsable = kMachineProcessors - 2;  // control + OS

  // Isolated speedups for the prediction.
  std::vector<double> match_iso(match_procs.size());
  for (std::size_t mi = 0; mi < match_procs.size(); ++mi) {
    psm::MatchModel model;
    model.match_processes = match_procs[mi];
    const auto costs =
        match_procs[mi] == 0 ? plain_costs : psm::task_costs(measured.tasks, &model);
    match_iso[mi] = psm::speedup(baseline, psm::simulate_tlp(costs, one).makespan);
  }
  std::vector<double> task_iso(task_procs.size());
  for (std::size_t ti = 0; ti < task_procs.size(); ++ti) {
    psm::TlpConfig cfg;
    cfg.task_processes = task_procs[ti];
    task_iso[ti] = psm::speedup(baseline, psm::simulate_tlp(plain_costs, cfg).makespan);
  }

  std::vector<std::string> headers{""};
  for (const std::size_t m : match_procs) headers.push_back("Match" + std::to_string(m));
  util::Table table(std::move(headers));
  double worst_rel_err = 0.0;
  for (std::size_t ti = 0; ti < task_procs.size(); ++ti) {
    std::vector<std::string> row{"Task" + std::to_string(task_procs[ti])};
    for (std::size_t mi = 0; mi < match_procs.size(); ++mi) {
      const std::size_t T = task_procs[ti];
      const std::size_t M = match_procs[mi];
      if (T + T * M > kUsable) {
        row.push_back("*");
        continue;
      }
      psm::MatchModel model;
      model.match_processes = M;
      const auto costs = M == 0 ? plain_costs : psm::task_costs(measured.tasks, &model);
      psm::TlpConfig cfg;
      cfg.task_processes = T;
      const double achieved = psm::speedup(baseline, psm::simulate_tlp(costs, cfg).makespan);
      const double predicted = task_iso[ti] * match_iso[mi];
      if (T > 1 && M > 0) {
        worst_rel_err = std::max(worst_rel_err, std::abs(achieved - predicted) / predicted);
      }
      row.push_back(util::Table::fmt(achieved, 2) + " (" + util::Table::fmt(predicted, 2) +
                    ")");
    }
    table.add_row(std::move(row));
  }

  table.print(os,
              "Achieved multiplicative speed-ups (predicted = taskN x matchM in parens);\n"
              "* = configuration exceeds the 16-processor machine");
  ctx.metric("worst_rel_err_pct", 100.0 * worst_rel_err);
  os << "\nworst |achieved - predicted| / predicted over combined cells: "
     << util::Table::fmt(100.0 * worst_rel_err, 2) << "%\n"
     << "paper: \"the achieved speed-ups to be very close to the predicted\n"
        "speed-ups\" (e.g. Task4/Match2: 5.82 achieved vs 5.96 predicted).\n";
  ctx.table("table9", table);
  ctx.note("task-level and match speedups combine multiplicatively");
}

}  // namespace psmsys::bench
