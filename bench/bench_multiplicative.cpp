// Table 9: multiplicative speed-ups from combining task-level and match
// parallelism, for SF at Level 2 — the paper's central claim that the two
// sources are independent and multiply.
//
// Paper (SF Level 2, achieved with predicted in parentheses):
//           match0  match1  match2  match3  match4
//   task1    1       1.21    1.50    1.60    1.68
//   task2    1.99    2.40(2.41)  2.98(2.99) ...
//   task4    3.98    ...     5.82(5.96)  *       *
//   task7    6.85    8.17(8.29)  *       *       *
// Entries marked * exceed the paper's 16-processor machine:
// processors used = 1 control + T + T*M.

#include <algorithm>
#include <thread>

#include "bench/harness.hpp"

namespace psmsys::bench {

PSMSYS_BENCH_CASE(multiplicative, "multiplicative",
                  "Table 9: multiplicative speed-ups (SF, Level 2)") {
  auto& os = ctx.out();

  const auto& measured = ctx.lcc(spam::sf_config(), 2, /*record_cycles=*/true);

  psm::TlpConfig one;
  one.task_processes = 1;
  const auto plain_costs = psm::task_costs(measured.tasks);
  const util::WorkUnits baseline = psm::simulate_tlp(plain_costs, one).makespan;

  const std::vector<std::size_t> task_procs =
      ctx.quick() ? std::vector<std::size_t>{1, 2, 4, 7}
                  : std::vector<std::size_t>{1, 2, 3, 4, 5, 6, 7};
  const std::vector<std::size_t> match_procs =
      ctx.quick() ? std::vector<std::size_t>{0, 1, 2} : std::vector<std::size_t>{0, 1, 2, 3, 4};
  constexpr std::size_t kMachineProcessors = 16;  // Encore Multimax
  constexpr std::size_t kUsable = kMachineProcessors - 2;  // control + OS

  // Isolated speedups for the prediction.
  std::vector<double> match_iso(match_procs.size());
  for (std::size_t mi = 0; mi < match_procs.size(); ++mi) {
    psm::MatchModel model;
    model.match_processes = match_procs[mi];
    const auto costs =
        match_procs[mi] == 0 ? plain_costs : psm::task_costs(measured.tasks, &model);
    match_iso[mi] = psm::speedup(baseline, psm::simulate_tlp(costs, one).makespan);
  }
  std::vector<double> task_iso(task_procs.size());
  for (std::size_t ti = 0; ti < task_procs.size(); ++ti) {
    psm::TlpConfig cfg;
    cfg.task_processes = task_procs[ti];
    task_iso[ti] = psm::speedup(baseline, psm::simulate_tlp(plain_costs, cfg).makespan);
  }

  std::vector<std::string> headers{""};
  for (const std::size_t m : match_procs) headers.push_back("Match" + std::to_string(m));
  util::Table table(std::move(headers));
  double worst_rel_err = 0.0;
  for (std::size_t ti = 0; ti < task_procs.size(); ++ti) {
    std::vector<std::string> row{"Task" + std::to_string(task_procs[ti])};
    for (std::size_t mi = 0; mi < match_procs.size(); ++mi) {
      const std::size_t T = task_procs[ti];
      const std::size_t M = match_procs[mi];
      if (T + T * M > kUsable) {
        row.push_back("*");
        continue;
      }
      psm::MatchModel model;
      model.match_processes = M;
      const auto costs = M == 0 ? plain_costs : psm::task_costs(measured.tasks, &model);
      psm::TlpConfig cfg;
      cfg.task_processes = T;
      const double achieved = psm::speedup(baseline, psm::simulate_tlp(costs, cfg).makespan);
      const double predicted = task_iso[ti] * match_iso[mi];
      if (T > 1 && M > 0) {
        worst_rel_err = std::max(worst_rel_err, std::abs(achieved - predicted) / predicted);
      }
      row.push_back(util::Table::fmt(achieved, 2) + " (" + util::Table::fmt(predicted, 2) +
                    ")");
    }
    table.add_row(std::move(row));
  }

  table.print(os,
              "Achieved multiplicative speed-ups (predicted = taskN x matchM in parens);\n"
              "* = configuration exceeds the 16-processor machine");
  ctx.metric("worst_rel_err_pct", 100.0 * worst_rel_err);
  os << "\nworst |achieved - predicted| / predicted over combined cells: "
     << util::Table::fmt(100.0 * worst_rel_err, 2) << "%\n"
     << "paper: \"the achieved speed-ups to be very close to the predicted\n"
        "speed-ups\" (e.g. Task4/Match2: 5.82 achieved vs 5.96 predicted).\n";
  ctx.table("table9", table);
  ctx.note("task-level and match speedups combine multiplicatively");

  // -------------------------------------------------------------------------
  // Measured: the same task x match grid on the *real* executor — host
  // wall-clock of psm::run with T task processes, each engine matching on M
  // rete::ParallelMatcher workers. The model above replays measured work
  // units through virtual time; this section is the ground truth it predicts.
  // M here counts match pool threads (M=1 is a degenerate 1-thread pool:
  // canonical-merge overhead with no concurrency, so expect <= 1.0x; the
  // model's match1 column instead assumes one *extra* dedicated match
  // process, which is why the two columns are aligned by processor count,
  // not compared cell-for-cell).
  const auto decomposition = spam::lcc_decomposition(2, *measured.scene, measured.best);
  const std::vector<std::size_t> m_tasks =
      ctx.quick() ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 4};
  const std::vector<std::size_t> m_match =
      ctx.quick() ? std::vector<std::size_t>{0, 2} : std::vector<std::size_t>{0, 1, 2, 4};
  const int reps = ctx.quick() ? 1 : 3;
  const auto matrix = measure_matrix(decomposition, m_tasks, m_match, reps);

  std::vector<std::string> m_headers{""};
  for (const std::size_t m : m_match) m_headers.push_back("Match" + std::to_string(m));
  util::Table m_table(std::move(m_headers));
  double match2_speedup_1task = 0.0;
  for (std::size_t ti = 0; ti < m_tasks.size(); ++ti) {
    std::vector<std::string> row{"Task" + std::to_string(m_tasks[ti])};
    std::vector<SpeedupPoint> series;
    for (std::size_t mi = 0; mi < m_match.size(); ++mi) {
      const std::size_t T = m_tasks[ti];
      const std::size_t M = m_match[mi];
      const double achieved = matrix.speedup(ti, mi);
      if (T == 1 && M == 2) match2_speedup_1task = achieved;
      // Predicted from the isolated virtual-time curves, looked up by value
      // in the modeled sweeps above (their indices differ from this grid's).
      const auto t_it = std::find(task_procs.begin(), task_procs.end(), T);
      const auto m_it = std::find(match_procs.begin(), match_procs.end(), M);
      const double predicted =
          (t_it != task_procs.end() && m_it != match_procs.end())
              ? task_iso[static_cast<std::size_t>(t_it - task_procs.begin())] *
                    match_iso[static_cast<std::size_t>(m_it - match_procs.begin())]
              : achieved;
      series.push_back({T + T * M, achieved});
      row.push_back(util::Table::fmt(achieved, 2) + " (" + util::Table::fmt(predicted, 2) +
                    ")");
    }
    m_table.add_row(std::move(row));
    ctx.speedup_series("measured_task" + std::to_string(m_tasks[ti]) + "_SF_L2",
                       std::move(series));
  }
  m_table.print(os,
                "\nMeasured wall-clock speed-ups on the real executor (model prediction\n"
                "in parens); series x-axis = T + T*M threads carrying the run");
  ctx.table("table9_measured", m_table);
  ctx.metric("measured_match2_speedup_1task", match2_speedup_1task);

  const unsigned hardware = std::thread::hardware_concurrency();
  ctx.metric("hardware_concurrency", hardware);
  if (hardware >= 4) {
    if (match2_speedup_1task <= 1.2) {
      ctx.fail("measured 2-thread match speedup " + util::Table::fmt(match2_speedup_1task, 2) +
               "x <= 1.2x on SF Level 2 with " + std::to_string(hardware) + " cores");
    }
  } else {
    ctx.note("host has " + std::to_string(hardware) +
             " hardware thread(s); measured match-speedup gate (>1.2x at 2 threads) "
             "needs >= 4 and was skipped");
  }
  os << "\nmeasured Task1/Match2: " << util::Table::fmt(match2_speedup_1task, 2)
     << "x (gate: > 1.2x when the host has >= 4 cores; this host: " << hardware << ")\n";
}

}  // namespace psmsys::bench
