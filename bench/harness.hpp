#pragma once

// The benchmark harness: every reproduced table/figure from the paper is a
// named *case* registered into one `harness` binary. Running a suite prints
// the same narrative tables the old per-bench mains did AND emits a
// schema-versioned BENCH_<suite>.json (see src/obs/bench_schema.hpp) with
// the machine-readable rows, speedup curves, counters and environment
// fingerprint. `--quick` trims datasets/sweeps for CI.
//
// Registering a case:
//
//   PSMSYS_BENCH_CASE(lcc_tlp, "lcc", "Figure 6: LCC task-level parallelism") {
//     const auto& measured = ctx.lcc(spam::sf_config(), 3);
//     ctx.speedup_series("SF_L3", {{1, 1.0}, {2, 1.99}, ...});
//     ctx.table("figure6", table);
//   }
//
// The shared measurement cache (`ctx.lcc` / `ctx.rtf`) memoizes the
// expensive dataset runs so cases in one invocation never re-measure.

#include <chrono>
#include <cstdint>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "psm/sim.hpp"
#include "spam/decomposition.hpp"
#include "spam/phases.hpp"
#include "spam/scene_generator.hpp"
#include "util/table.hpp"
#include "util/work_units.hpp"

namespace psmsys::bench {

// ---------------------------------------------------------------------------
// Measurement helpers (hoisted from the old bench/common.hpp)
// ---------------------------------------------------------------------------

/// A fully measured LCC (or RTF) decomposition for one dataset + level.
struct MeasuredLcc {
  spam::DatasetConfig config;
  std::shared_ptr<spam::Scene> scene;
  std::vector<spam::Fragment> best;
  int level = 3;
  bool has_cycle_records = false;
  std::vector<psm::TaskMeasurement> tasks;

  [[nodiscard]] util::WorkUnits total_cost() const {
    util::WorkUnits t = 0;
    for (const auto& m : tasks) t += m.cost();
    return t;
  }
};

/// Run RTF, decompose LCC at `level`, execute every task on the baseline
/// (single task process) and return the measurements.
[[nodiscard]] MeasuredLcc measure_lcc(const spam::DatasetConfig& config, int level,
                                      bool record_cycles = false);

/// Same for the RTF decomposition.
[[nodiscard]] MeasuredLcc measure_rtf(const spam::DatasetConfig& config,
                                      bool record_cycles = false);

/// TLP speedup at `procs` from measured task costs.
[[nodiscard]] double tlp_speedup(const std::vector<util::WorkUnits>& costs, std::size_t procs,
                                 psm::SchedulePolicy policy = psm::SchedulePolicy::Fifo);

/// One *measured* (host wall-clock) execution of a decomposition on the real
/// executor — the counterpart of the virtual-time model above. Runs strict
/// mode with `task_processes` TLP workers, each engine matching on
/// `match_threads` rete workers (0 = serial matcher), `repetitions` times,
/// and keeps the fastest run (min wall absorbs scheduler noise).
struct TimedRun {
  std::chrono::nanoseconds wall{};
  obs::RunMetrics metrics;
};
[[nodiscard]] TimedRun timed_run(
    const spam::Decomposition& decomposition, std::size_t task_processes,
    std::size_t match_threads, int repetitions,
    ops5::MatchCostSource cost_source = ops5::MatchCostSource::Analyzer);

/// Measured speedup matrix over task_procs x match_threads: wall(1 task
/// process, serial match) / wall(T, M). matrix[ti][mi] pairs each cell with
/// its TimedRun so cases can also report utilization counters.
struct MeasuredMatrix {
  std::vector<std::size_t> task_procs;
  std::vector<std::size_t> match_threads;  ///< 0 = serial matcher
  std::vector<std::vector<TimedRun>> cells;
  std::chrono::nanoseconds baseline_wall{};

  [[nodiscard]] double speedup(std::size_t ti, std::size_t mi) const {
    const auto wall = cells[ti][mi].wall.count();
    return wall == 0 ? 0.0
                     : static_cast<double>(baseline_wall.count()) / static_cast<double>(wall);
  }
};
[[nodiscard]] MeasuredMatrix measure_matrix(const spam::Decomposition& decomposition,
                                            std::vector<std::size_t> task_procs,
                                            std::vector<std::size_t> match_threads,
                                            int repetitions);

/// ASCII rendering of a speedup curve (x = processes, y = speedup).
void plot_curve(std::ostream& os, const std::string& title,
                const std::vector<std::pair<std::size_t, double>>& points, double y_max = 0.0);

/// CSV trailer, so every case's data can be scraped mechanically.
void emit_csv(std::ostream& os, const std::string& name, const util::Table& table);

// ---------------------------------------------------------------------------
// Case registry
// ---------------------------------------------------------------------------

/// One (procs, speedup) point of a speedup curve; serialized per schema v1.
struct SpeedupPoint {
  std::size_t procs = 1;
  double speedup = 1.0;
};

/// Memoizes the expensive per-dataset measurements across cases. A cached
/// entry measured with cycle records satisfies requests without them (the
/// records only add data; costs and counters are identical).
class MeasureCache {
 public:
  const MeasuredLcc& lcc(const spam::DatasetConfig& config, int level, bool record_cycles);
  const MeasuredLcc& rtf(const spam::DatasetConfig& config, bool record_cycles);

 private:
  std::map<std::string, MeasuredLcc> lcc_;
  std::map<std::string, MeasuredLcc> rtf_;
};

/// What a case produced; assembled into the suite's BENCH_<suite>.json.
struct CaseResult {
  std::string id;
  std::string suite;
  std::string title;
  obs::json::Object metrics;            // name -> number
  std::vector<obs::json::Value> speedups;
  std::vector<obs::json::Value> tables;
  std::vector<std::string> notes;
  bool failed = false;
  std::int64_t wall_ns = 0;
  std::int64_t cpu_ns = 0;
};

/// Handed to each case body: narrative output, quick-mode knobs, the shared
/// measurement cache, and the JSON accumulators.
class CaseContext {
 public:
  CaseContext(CaseResult& result, MeasureCache& cache, std::ostream& out, bool quick)
      : result_(result), cache_(cache), out_(out), quick_(quick) {}

  /// True under `--quick`: cases should trim datasets and sweep sizes.
  [[nodiscard]] bool quick() const noexcept { return quick_; }

  /// Narrative stream (the old printf output); /dev/null under `--quiet`.
  [[nodiscard]] std::ostream& out() noexcept { return out_; }

  /// Datasets to sweep: all three airports, or SF only under `--quick`.
  [[nodiscard]] std::vector<spam::DatasetConfig> datasets() const;

  /// Trim a processor sweep under `--quick` (keeps first/last and powers of
  /// two so curves stay recognizable).
  [[nodiscard]] std::vector<std::size_t> trim(std::vector<std::size_t> procs) const;

  /// Memoized measurements shared by every case in this invocation.
  [[nodiscard]] const MeasuredLcc& lcc(const spam::DatasetConfig& config, int level,
                                       bool record_cycles = false) {
    return cache_.lcc(config, level, record_cycles);
  }
  [[nodiscard]] const MeasuredLcc& rtf(const spam::DatasetConfig& config,
                                       bool record_cycles = false) {
    return cache_.rtf(config, record_cycles);
  }

  /// Record a scalar metric on this case's JSON entry.
  void metric(const std::string& name, double value);
  /// Record every RunMetrics field (flat, `prefix` + field name).
  void metrics(const obs::RunMetrics& m, const std::string& prefix = {});
  /// Record a named speedup curve (schema: speedups[].points[]).
  void speedup_series(const std::string& name, std::vector<SpeedupPoint> points);
  /// Record a table (schema: tables[].columns/rows) and print its CSV block.
  void table(const std::string& name, const util::Table& t);
  /// Attach a free-form note to the JSON entry.
  void note(std::string text);
  /// Mark the case failed (harness exits nonzero); recorded as a note too.
  void fail(std::string reason);

 private:
  CaseResult& result_;
  MeasureCache& cache_;
  std::ostream& out_;
  bool quick_;
};

using CaseFn = void (*)(CaseContext&);

/// Called by PSMSYS_BENCH_CASE at static-init time; the registry itself is a
/// function-local static, so registration order never races construction.
bool register_case(const char* id, const char* suite, const char* title, CaseFn fn);

/// CLI entry point (see --help). Returns the process exit code.
int run_harness(int argc, char** argv);

}  // namespace psmsys::bench

/// Defines and registers a bench case. Usage:
///   PSMSYS_BENCH_CASE(case_id, "suite", "Human title") { ... use ctx ... }
#define PSMSYS_BENCH_CASE(id, suite, title)                                          \
  static void psmsys_bench_case_##id(::psmsys::bench::CaseContext& ctx);             \
  static const bool psmsys_bench_registered_##id =                                   \
      ::psmsys::bench::register_case(#id, suite, title, &psmsys_bench_case_##id);    \
  static void psmsys_bench_case_##id([[maybe_unused]] ::psmsys::bench::CaseContext& ctx)
