// Tables 1-3: per-phase CPU time, production firings, productions/second and
// hypotheses for the three airports (San Francisco, Washington National,
// NASA Ames Moffett Field).
//
// Paper values (Lisp-based OPS5 on a VAX/785) for orientation:
//   SF   (Table 1): RTF 1.5 h / LCC 144.5 h / FA 7.3 h / MODEL 0.7 h,
//                   firings 11274 / 185950 / 10447 / 3085, hyps 466 / 44 / 1
//   DC   (Table 2): total ~46939 firings
//   MOFF (Table 3): RTF 0.25 h / LCC 4.12 h / FA 2.33 h / MODEL 0.33 h
//
// Our reproduction reports virtual seconds on the ParaOPS5-analog engine
// (the paper's own C port was 10-20x faster than the Lisp system), so only
// the per-phase *profile* is comparable: LCC dominates, MODEL is smallest,
// and hypotheses decrease monotonically through the phases.

#include "bench/harness.hpp"

namespace psmsys::bench {

PSMSYS_BENCH_CASE(phase_stats, "phases", "Tables 1-3: interpretation phase statistics") {
  auto& os = ctx.out();
  os << "(paper: Lisp OPS5 wall hours; here: engine virtual seconds)\n\n";

  for (const auto& config : ctx.datasets()) {
    const spam::Scene scene = spam::generate_scene(config);
    const spam::PipelineResult result = spam::run_pipeline(scene);

    util::Table table({"SPAM Phase", "CPU Time (s)", "#Firings", "Firings/Second",
                       "Hypotheses", "Match fraction"});
    util::WorkCounters total;
    std::uint64_t total_hyps = 0;
    for (const auto& phase : result.phases) {
      const double seconds = util::to_seconds(phase.counters.total_cost());
      table.add_row({phase.name, util::Table::fmt(seconds, 1),
                     util::Table::fmt(phase.counters.firings),
                     util::Table::fmt(seconds > 0 ? phase.counters.firings / seconds : 0.0, 2),
                     util::Table::fmt(phase.hypotheses),
                     util::Table::fmt(phase.counters.match_fraction(), 2)});
      total += phase.counters;
      total_hyps += phase.hypotheses;
    }
    const double total_seconds = util::to_seconds(total.total_cost());
    table.add_row({"Total", util::Table::fmt(total_seconds, 1), util::Table::fmt(total.firings),
                   util::Table::fmt(total.firings / total_seconds, 2),
                   util::Table::fmt(total_hyps), util::Table::fmt(total.match_fraction(), 2)});

    table.print(os, "--- " + config.name + " (" + std::to_string(scene.size()) +
                        " regions, " + std::to_string(result.fragments.size()) +
                        " RTF hypotheses) ---");
    os << '\n';
    ctx.table("phase_stats_" + config.name, table);
    ctx.metric(config.name + "_total_virtual_s", total_seconds);
    ctx.metric(config.name + "_total_firings", static_cast<double>(total.firings));
    ctx.metric(config.name + "_match_fraction", total.match_fraction());
    os << '\n';
  }

  ctx.note("shape: LCC dominates every dataset; hypotheses shrink RTF -> FA -> MODEL");
  os << "Shape checks vs the paper:\n"
        "  * LCC is by far the most expensive phase on every dataset\n"
        "  * RTF produces hundreds of hypotheses, FA tens, MODEL exactly 1\n"
        "  * the whole system spends well under half its time in match\n";
}

}  // namespace psmsys::bench
