// Section 7 ablation: the two shared-virtual-memory optimizations the paper
// describes.
//
//  1. False contention: "two or more processes across the Encores contending
//     for objects located on the same page though not shared between them
//     ... brought our system to a halt just during the initialization."
//     We sweep the false-sharing multiplier.
//  2. Diff shipping: "instead of shipping a full 8K page, the server ships
//     only small, 64-byte segments of the page that has been modified."
//     We compare full-page vs diff protocols.

#include "bench/harness.hpp"
#include "svm/svm.hpp"

namespace psmsys::bench {

PSMSYS_BENCH_CASE(svm_ablation, "svm",
                  "SVM ablation: false contention and diff shipping (22 procs)") {
  auto& os = ctx.out();

  const auto& measured = ctx.lcc(spam::sf_config(), 3);
  const auto costs = psm::task_costs(measured.tasks);
  psm::TlpConfig one;
  one.task_processes = 1;
  const util::WorkUnits base = psm::simulate_tlp(costs, one).makespan;

  util::Table table({"false-sharing factor", "protocol", "speedup @22", "remote fault cost (s)",
                     "fraction of pure TLP"});
  psm::TlpConfig c22;
  c22.task_processes = 22;
  const double tlp22 = psm::speedup(base, psm::simulate_tlp(costs, c22).makespan);

  for (const double factor : {1.0, 5.0, 20.0, 80.0}) {
    for (const bool diff : {true, false}) {
      svm::SvmConfig config;
      config.false_sharing_factor = factor;
      config.diff_shipping = diff;
      const auto r = svm::simulate_svm(measured.tasks, 22, config);
      const double s = psm::speedup(base, r.makespan);
      table.add_row({util::Table::fmt(factor, 0), diff ? "64B diffs" : "full 8K pages",
                     util::Table::fmt(s, 2),
                     util::Table::fmt(util::to_seconds(r.remote_fault_cost), 1),
                     util::Table::fmt(100.0 * s / tlp22, 0) + "%"});
    }
  }

  table.print(os, "SF Level 3, 13 local + 9 remote processes; pure TLP at 22 = " +
                      util::Table::fmt(tlp22, 2) + "x");
  ctx.metric("pure_tlp_at_22", tlp22);
  os << "\npaper: naive data placement (high false contention, full pages) halted\n"
        "the system; per-node data layout + diff shipping made \"real speed-ups\"\n"
        "possible. The factor-80/full-pages row is the halt; factor-1/diffs is\n"
        "the published Figure 9 configuration.\n";
  ctx.table("svm_ablation", table);
}

}  // namespace psmsys::bench
