// Streaming scenes (DESIGN.md §16): measured behavior of incremental
// delta-match sessions on the serve layer. Two cases:
//
//   1. steady-state flatness — one long stream (>= 50 ticks, even arrival
//      pacing, sensor-revision retractions) against a 1-worker pool. The
//      incremental-match claim: per-tick match cost tracks the *delta*, not
//      the resident working memory, so the last tick's deterministic match
//      work-units must stay within 2x of the first tick's even as resident
//      WM grows monotonically. Host-time tick latency (p50/p99) and
//      deltas/sec are reported alongside; the gate is on the deterministic
//      counters so the case never flakes on a loaded host.
//   2. determinism — the same delta schedule delivered at match_threads
//      1/2/4 must produce byte-identical concatenated firing logs, and a
//      mid-stream hot pack swap (identical rules, new version) must leave
//      the log byte-identical too: the stream finishes on the pack it was
//      dequeued with.
//
// Every rollup is validated against the serve schema
// (obs::validate_serve_rollup) before it is reported; a violation fails the
// case and the harness exits nonzero.

#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "bench/harness.hpp"
#include "obs/bench_schema.hpp"
#include "ops5/parser.hpp"
#include "serve/server.hpp"
#include "spam/stream_schedule.hpp"

namespace psmsys::bench {
namespace {

// ---------------------------------------------------------------------------
// Flatness workload: arriving regions are classified once (fresh -> done) by
// mode. A classified region fails the alpha constant test on ^stage, so it
// drops out of every alpha memory: per-tick match traffic is proportional to
// the tick's deltas while the resident region population keeps growing.
// ---------------------------------------------------------------------------

constexpr const char* kRegionSrc = R"(
(literalize region id stage mode)
(literalize hypothesis id)
(literalize params mode)
(p classify (params ^mode <m>) (region ^id <r> ^stage fresh ^mode <m>)
   --> (make hypothesis ^id <r>) (modify 2 ^stage done))
)";

void inject_region(ops5::Engine& engine, std::size_t item) {
  // "fresh" appears in the rule text, so it is interned in the frozen table.
  const ops5::Symbol fresh = *engine.program().symbols().find("fresh");
  engine.make_wme("region", {{"id", ops5::Value(static_cast<double>(item))},
                             {"stage", ops5::Value(fresh)},
                             {"mode", ops5::Value(static_cast<double>(item % 2))}});
}

void retract_region(ops5::Engine& engine, std::size_t item) {
  for (const ops5::Wme* wme : engine.wmes_of_class("region")) {
    if (wme->slot(0).number() == static_cast<double>(item)) {
      engine.remove_wme(*wme);
      return;
    }
  }
  throw std::logic_error("retraction of a region that never arrived");
}

[[nodiscard]] serve::SceneJob region_tick(const spam::StreamTickSpec& spec) {
  serve::SceneJob job;
  job.label = "delta";
  job.inject = [spec](ops5::Engine& engine) {
    for (std::size_t item : spec.arrivals) inject_region(engine, item);
    for (std::size_t item : spec.retractions) retract_region(engine, item);
  };
  return job;
}

// ---------------------------------------------------------------------------
// Determinism workload: parity splits arrivals over two productions so the
// firing order within a tick is a real resolution outcome, not a triviality.
// ---------------------------------------------------------------------------

constexpr const char* kParitySrc = R"(
(literalize item n parity)
(literalize out n)
(p note-even (item ^n <v> ^parity even) --> (make out ^n <v>))
(p note-odd (item ^n <v> ^parity odd) --> (make out ^n <v>))
)";

void inject_parity_item(ops5::Engine& engine, std::size_t item) {
  const ops5::Symbol parity =
      *engine.program().symbols().find(item % 3 == 0 ? "even" : "odd");
  engine.make_wme("item", {{"n", ops5::Value(static_cast<double>(item))},
                           {"parity", ops5::Value(parity)}});
}

void retract_parity_item(ops5::Engine& engine, std::size_t item) {
  for (const ops5::Wme* wme : engine.wmes_of_class("item")) {
    if (wme->slot(0).number() == static_cast<double>(item)) {
      engine.remove_wme(*wme);
      return;
    }
  }
  throw std::logic_error("retraction of an item that never arrived");
}

[[nodiscard]] serve::SceneJob parity_tick(const spam::StreamTickSpec& spec) {
  serve::SceneJob job;
  job.label = "delta";
  job.inject = [spec](ops5::Engine& engine) {
    for (std::size_t item : spec.arrivals) inject_parity_item(engine, item);
    for (std::size_t item : spec.retractions) retract_parity_item(engine, item);
  };
  return job;
}

/// Firing-log bytes minus the `sN| ` session-id prefix, so logs compare
/// across servers regardless of scene-id assignment.
[[nodiscard]] std::string without_session_prefix(const std::string& log) {
  std::string out;
  std::size_t pos = 0;
  while (pos < log.size()) {
    std::size_t eol = log.find('\n', pos);
    if (eol == std::string::npos) eol = log.size();
    const std::string_view line(log.data() + pos, eol - pos);
    const std::size_t bar = line.find("| ");
    out.append(bar == std::string_view::npos ? line : line.substr(bar + 2));
    out += '\n';
    pos = eol + 1;
  }
  return out;
}

/// Drive one closed-loop stream (tick, wait for its report, next tick) over
/// `schedule` and return the concatenated firing log plus the drained stats.
struct StreamRun {
  std::string firing_log;
  std::uint64_t boot_pack = 0;
  std::uint64_t stream_pack = 0;
  serve::ServerStats stats;
};
[[nodiscard]] StreamRun run_parity_stream(CaseContext& ctx, std::size_t match_threads,
                                          const std::vector<spam::StreamTickSpec>& schedule,
                                          std::size_t swap_after_tick = 0) {
  ops5::EngineOptions engine_options;
  engine_options.match_threads = match_threads;
  auto program = std::make_shared<const ops5::Program>(ops5::parse_program(kParitySrc));
  auto rb = serve::SharedRuleBase::compile(std::move(program), nullptr, engine_options);

  serve::ServerOptions options;
  options.workers = 1;
  options.session.capture_firing_log = true;
  serve::Server server(rb, options);

  StreamRun run;
  run.boot_pack = server.active_pack();
  serve::StreamHandle stream = server.open_stream("bench");
  if (!stream.admitted()) {
    ctx.fail("stream shed at open");
    run.stats = server.drain();
    return run;
  }
  for (std::size_t t = 0; t < schedule.size(); ++t) {
    auto ticket = stream.tick(parity_tick(schedule[t]));
    if (!ticket.admitted()) {
      ctx.fail("tick " + std::to_string(t) + " shed in a closed loop");
      break;
    }
    const serve::TickReport report = ticket.report.get();
    if (report.status != serve::SceneStatus::Completed) {
      ctx.fail("tick " + std::to_string(t) + " did not complete: " + report.error);
      break;
    }
    if (swap_after_tick != 0 && t == swap_after_tick) {
      // Identical rules under a new version: the gate's semantic diff is
      // empty, so it must accept, and the swap must not disturb the stream.
      serve::PackCandidate candidate;
      candidate.program = std::make_shared<const ops5::Program>(
          ops5::parse_program(std::string("(pack streaming 2)\n") + kParitySrc));
      const serve::LoadResult load = server.load_pack(candidate);
      if (!load.activated) ctx.fail("mid-stream pack swap did not activate");
    }
  }
  const serve::StreamReport report = stream.close().get();
  if (report.status != serve::SceneStatus::Completed) {
    ctx.fail("stream did not complete: " + report.error);
  }
  run.firing_log = without_session_prefix(report.firing_log);
  run.stream_pack = report.pack;
  run.stats = server.drain();

  const auto violations = obs::validate_serve_rollup(run.stats.to_json());
  for (const auto& v : violations) ctx.fail("serve rollup schema: " + v);
  return run;
}

}  // namespace

PSMSYS_BENCH_CASE(streaming_flatness, "streaming",
                  "Streaming sessions: per-tick delta-match cost stays flat as WM grows") {
  auto& os = ctx.out();

  spam::StreamScheduleConfig config;
  config.ticks = ctx.quick() ? 56 : 64;     // acceptance floor: >= 50 ticks
  config.items = config.ticks * 8;          // even pacing: ~8 arrivals/tick
  config.burstiness = 0.0;
  config.retract_fraction = 0.12;
  config.seed = 0x57f1a7ULL;
  const auto schedule = spam::make_stream_schedule(config);

  auto rb = serve::SharedRuleBase::compile(
      std::make_shared<const ops5::Program>(ops5::parse_program(kRegionSrc)));
  serve::ServerOptions options;
  options.workers = 1;
  options.base_init = [](ops5::Engine& engine) {
    engine.make_wme("params", {{"mode", ops5::Value(0.0)}});
    engine.make_wme("params", {{"mode", ops5::Value(1.0)}});
  };
  serve::Server server(rb, options);

  serve::StreamHandle stream = server.open_stream("flatness");
  if (!stream.admitted()) ctx.fail("stream shed at open");

  std::vector<serve::TickReport> ticks;
  ticks.reserve(schedule.size());
  for (std::size_t t = 0; t < schedule.size() && stream.admitted(); ++t) {
    auto ticket = stream.tick(region_tick(schedule[t]));
    if (!ticket.admitted()) {
      ctx.fail("tick " + std::to_string(t) + " shed in a closed loop");
      break;
    }
    ticks.push_back(ticket.report.get());
    if (ticks.back().status != serve::SceneStatus::Completed) {
      ctx.fail("tick " + std::to_string(t) + " did not complete: " + ticks.back().error);
      break;
    }
  }
  const serve::StreamReport report = stream.admitted() ? stream.close().get()
                                                       : serve::StreamReport{};
  const serve::ServerStats stats = server.drain();

  const auto violations = obs::validate_serve_rollup(stats.to_json());
  for (const auto& v : violations) ctx.fail("serve rollup schema: " + v);
  if (ticks.size() != schedule.size()) {
    ctx.fail("closed loop lost ticks");
    return;
  }
  if (stats.streams.ticks_completed != schedule.size()) ctx.fail("tick accounting drifted");

  // The gate: deterministic match work-units of the stream's tail vs its
  // head. Windowed means absorb the +-1 arrival remainder of even dealing.
  constexpr std::size_t kWindow = 4;
  const auto window_mean = [&ticks](std::size_t begin) {
    double sum = 0.0;
    for (std::size_t i = begin; i < begin + kWindow; ++i) {
      sum += static_cast<double>(ticks[i].counters.match_cost);
    }
    return sum / static_cast<double>(kWindow);
  };
  const double head = window_mean(0);
  const double tail = window_mean(ticks.size() - kWindow);
  const double ratio = head == 0.0 ? 0.0 : tail / head;
  if (head == 0.0) ctx.fail("first ticks did no match work");
  if (ratio > 2.0) {
    ctx.fail("steady-state match cost not flat: last-window/first-window = " +
             util::Table::fmt(ratio, 2) + " (> 2x)");
  }

  util::Table table({"tick", "arrivals", "retracts", "resident wm", "match wu", "wall us"});
  for (std::size_t t = 0; t < ticks.size(); t += 8) {
    table.add_row({util::Table::fmt(t), util::Table::fmt(schedule[t].arrivals.size()),
                   util::Table::fmt(schedule[t].retractions.size()),
                   util::Table::fmt(ticks[t].wm_size),
                   util::Table::fmt(static_cast<double>(ticks[t].counters.match_cost), 0),
                   util::Table::fmt(static_cast<double>(ticks[t].service_ns) / 1e3, 1)});
  }
  table.print(os, "one stream, 1 worker; resident WM grows, per-tick match cost does not");
  ctx.table("streaming_flatness", table);

  const double wall_s = static_cast<double>(stats.wall_ns) / 1e9;
  ctx.metric("ticks", static_cast<double>(stats.streams.ticks_completed));
  ctx.metric("flatness_ratio", ratio);
  ctx.metric("peak_resident_wm", static_cast<double>(stats.streams.peak_resident_wm));
  ctx.metric("wmes_streamed", static_cast<double>(stats.streams.wmes_streamed));
  ctx.metric("tick_p50_ns", static_cast<double>(stats.streams.tick_latency.p50_ns));
  ctx.metric("tick_p99_ns", static_cast<double>(stats.streams.tick_latency.p99_ns));
  ctx.metric("ticks_per_sec", stats.streams.ticks_per_sec);
  ctx.metric("deltas_per_sec",
             wall_s == 0.0 ? 0.0 : static_cast<double>(stats.streams.wmes_streamed) / wall_s);
  ctx.metric("stream_open_ns", static_cast<double>(report.open_ns));
  ctx.note("flatness is gated on deterministic match work-units (host-load "
           "immune); wall-clock tick latency is reported, not gated");
  ctx.note("classified regions fail the ^stage alpha constant test, so they "
           "leave every alpha memory: tick cost tracks the delta, not the WM");
}

PSMSYS_BENCH_CASE(streaming_determinism, "streaming",
                  "Streaming sessions: byte-identical logs across match threads and a pack swap") {
  auto& os = ctx.out();

  spam::StreamScheduleConfig config;
  config.ticks = ctx.quick() ? 16 : 24;
  config.items = config.ticks * 6;
  config.burstiness = 0.4;
  config.retract_fraction = 0.15;
  config.seed = 0xd37e2ULL;
  const auto schedule = spam::make_stream_schedule(config);

  util::Table table({"run", "ticks", "log bytes", "identical"});
  const StreamRun baseline = run_parity_stream(ctx, 1, schedule);
  table.add_row({"1 match thread", util::Table::fmt(schedule.size()),
                 util::Table::fmt(baseline.firing_log.size()), "baseline"});
  if (baseline.firing_log.empty()) ctx.fail("baseline stream produced no firings");

  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    const StreamRun run = run_parity_stream(ctx, threads, schedule);
    const bool same = run.firing_log == baseline.firing_log;
    if (!same) {
      ctx.fail("firing log diverged at match_threads=" + std::to_string(threads));
    }
    table.add_row({std::to_string(threads) + " match threads", util::Table::fmt(schedule.size()),
                   util::Table::fmt(run.firing_log.size()), same ? "yes" : "NO"});
  }

  // Mid-stream hot swap: the server activates a new (identical-rules) pack
  // while the stream is live; the stream must finish on its dequeue-time pack
  // with a byte-identical log.
  const StreamRun swapped = run_parity_stream(ctx, 2, schedule, schedule.size() / 2);
  const bool swap_same = swapped.firing_log == baseline.firing_log;
  if (!swap_same) ctx.fail("firing log diverged across a mid-stream pack swap");
  if (swapped.stats.pack_swaps != 1) ctx.fail("expected exactly one pack swap");
  if (swapped.stream_pack != swapped.boot_pack) {
    ctx.fail("stream migrated off its dequeue-time pack mid-flight");
  }
  table.add_row({"2 threads + swap", util::Table::fmt(schedule.size()),
                 util::Table::fmt(swapped.firing_log.size()), swap_same ? "yes" : "NO"});

  table.print(os, "same delta schedule; logs compared byte-for-byte after prefix strip");
  ctx.table("streaming_determinism", table);
  ctx.metric("ticks", static_cast<double>(schedule.size()));
  ctx.metric("log_bytes", static_cast<double>(baseline.firing_log.size()));
  ctx.metric("pack_swaps", static_cast<double>(swapped.stats.pack_swaps));
  ctx.note("dequeue-time pack binding: the swap affects only later dequeues, "
           "so a live stream's rule base is immutable for its whole lifetime");
}

}  // namespace psmsys::bench
